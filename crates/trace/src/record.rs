//! Tracer records and the §2.1.2 stage-association algorithm.
//!
//! One [`RecordSet`] exists per rule strand. Each [`Record`] captures (at
//! most) one in-flight execution: the input event, one precondition per
//! join stage, and the window `[first, last]` of stages the execution
//! currently occupies. The four observations drive it:
//!
//! * **input** — reuse a record with no associated stages (or allocate,
//!   up to the fixed cap; beyond it the oldest record is recycled —
//!   §3.4's "fixed number of execution records" optimization), clear it,
//!   store the input, associate window `[0, 0]`.
//! * **precondition at stage i** — post into the record whose window
//!   covers `i`, flushing any filled fields to the right of `i` (§2.1.1:
//!   tuples flow left-to-right, so a mid-strand precondition invalidates
//!   later ones). If no window covers `i`, the record with the latest
//!   window is extended to contain `i`.
//! * **stage i complete** — the record whose window *begins* at `i`
//!   abandons it (advance `first` to `i + 1`); a record advancing past
//!   the last stage retires (window cleared, fields kept until reuse).
//!   If no window begins at `i`, the record with the latest window is
//!   extended to contain `i` (no-op when already contained).
//! * **output** — package the record with the highest window into
//!   `ruleExec` rows (done by the [`crate::tracer::Tracer`], which owns
//!   tuple IDs; this module just finds the record).

use p2_types::{Time, TupleId};

/// One execution record: the §2.1.1 structure, sized by the strand's
/// join-stage count.
#[derive(Debug, Clone)]
pub struct Record {
    /// Window of stages this record's execution currently occupies
    /// (`None` = idle/reusable).
    window: Option<(usize, usize)>,
    /// The input event observation.
    pub input: Option<(TupleId, Time)>,
    /// One precondition observation slot per join stage.
    pub preconditions: Vec<Option<(TupleId, Time)>>,
    /// Allocation age, for oldest-first recycling.
    age: u64,
}

impl Record {
    fn new(stage_count: usize) -> Record {
        Record {
            window: None,
            input: None,
            preconditions: vec![None; stage_count],
            age: 0,
        }
    }

    /// The record's stage window, if active.
    pub fn window(&self) -> Option<(usize, usize)> {
        self.window
    }

    fn clear(&mut self, stage_count: usize) {
        self.input = None;
        self.preconditions.clear();
        self.preconditions.resize(stage_count, None);
    }
}

/// All records of one strand.
#[derive(Debug)]
pub struct RecordSet {
    records: Vec<Record>,
    stage_count: usize,
    cap: usize,
    next_age: u64,
}

impl RecordSet {
    /// Create a record set for a strand with `stage_count` join stages,
    /// holding at most `cap` concurrent records.
    pub fn new(stage_count: usize, cap: usize) -> RecordSet {
        RecordSet {
            records: Vec::new(),
            stage_count,
            cap: cap.max(1),
            next_age: 0,
        }
    }

    /// The join-stage count this set was sized for.
    pub fn stage_count(&self) -> usize {
        self.stage_count
    }

    /// Number of live (associated) records.
    pub fn active_count(&self) -> usize {
        self.records.iter().filter(|r| r.window.is_some()).count()
    }

    /// Total allocated records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are allocated.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Observe a strand input.
    pub fn observe_input(&mut self, id: TupleId, at: Time) {
        let stage_count = self.stage_count;
        let age = self.bump_age();
        // Prefer an idle record.
        if let Some(r) = self.records.iter_mut().find(|r| r.window.is_none()) {
            r.clear(stage_count);
            r.input = Some((id, at));
            r.window = if stage_count == 0 { None } else { Some((0, 0)) };
            r.age = age;
            return;
        }
        if self.records.len() < self.cap {
            let mut r = Record::new(stage_count);
            r.input = Some((id, at));
            r.window = if stage_count == 0 { None } else { Some((0, 0)) };
            r.age = age;
            self.records.push(r);
            return;
        }
        // Fixed record budget exhausted: recycle the oldest (§3.4).
        if let Some(r) = self.records.iter_mut().min_by_key(|r| r.age) {
            r.clear(stage_count);
            r.input = Some((id, at));
            r.window = if stage_count == 0 { None } else { Some((0, 0)) };
            r.age = age;
        }
    }

    /// Observe a precondition fetched at stage `i`.
    pub fn observe_precondition(&mut self, i: usize, id: TupleId, at: Time) {
        if i >= self.stage_count {
            return;
        }
        if let Some(r) = self
            .records
            .iter_mut()
            .filter(|r| matches!(r.window, Some((f, l)) if f <= i && i <= l))
            .max_by_key(|r| r.age)
        {
            r.preconditions[i] = Some((id, at));
            for later in r.preconditions[i + 1..].iter_mut() {
                *later = None;
            }
            return;
        }
        // Extend the record with the latest window to contain stage i.
        if let Some(r) = self
            .records
            .iter_mut()
            .filter(|r| r.window.is_some())
            .max_by_key(|r| (r.window.map(|(_, l)| l), r.age))
        {
            let (f, l) = r.window.expect("filtered");
            r.window = Some((f.min(i), l.max(i)));
            r.preconditions[i] = Some((id, at));
            for later in r.preconditions[i + 1..].iter_mut() {
                *later = None;
            }
        }
        // No active record at all: a precondition without an observed
        // input (e.g. tracing enabled mid-flight) is dropped.
    }

    /// Observe a stage-completion signal for stage `i`.
    pub fn observe_stage_complete(&mut self, i: usize) {
        if let Some(r) = self
            .records
            .iter_mut()
            .filter(|r| matches!(r.window, Some((f, _)) if f == i))
            .min_by_key(|r| r.age)
        {
            let (_, l) = r.window.expect("filtered");
            let nf = i + 1;
            if nf >= self.stage_count {
                // Advanced past the final stage: retire.
                r.window = None;
            } else {
                r.window = Some((nf, l.max(nf)));
            }
            return;
        }
        // Extend the latest record to contain stage i (usually a no-op —
        // a later batch of an execution already covering i completing).
        if let Some(r) = self
            .records
            .iter_mut()
            .filter(|r| r.window.is_some())
            .max_by_key(|r| (r.window.map(|(_, l)| l), r.age))
        {
            let (f, l) = r.window.expect("filtered");
            r.window = Some((f, l.max(i)));
        }
    }

    /// Find the record an output should package from: the record with the
    /// highest associated stage (§2.1.2); for zero-stage strands, the most
    /// recent record with an input.
    pub fn record_for_output(&self) -> Option<&Record> {
        if self.stage_count == 0 {
            return self
                .records
                .iter()
                .filter(|r| r.input.is_some())
                .max_by_key(|r| r.age);
        }
        self.records
            .iter()
            .filter(|r| r.window.is_some() && r.input.is_some())
            .max_by_key(|r| (r.window.map(|(_, l)| l), r.age))
            // An output may be observed just after the final stage
            // completed (aggregate strands signal completions in a
            // batch); fall back to the freshest inputful record.
            .or_else(|| {
                self.records
                    .iter()
                    .filter(|r| r.input.is_some())
                    .max_by_key(|r| r.age)
            })
    }

    fn bump_age(&mut self) -> u64 {
        self.next_age += 1;
        self.next_age
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> TupleId {
        TupleId(n)
    }

    fn t(n: u64) -> Time {
        Time(n)
    }

    #[test]
    fn simple_execution_single_record() {
        // One event through a 2-stage strand (the §2.1.1 worked example
        // generalized to rule r2's shape).
        let mut rs = RecordSet::new(2, 4);
        rs.observe_input(id(1), t(10));
        assert_eq!(rs.active_count(), 1);
        rs.observe_precondition(0, id(2), t(11));
        rs.observe_precondition(1, id(3), t(12));
        let r = rs.record_for_output().unwrap();
        assert_eq!(r.input, Some((id(1), t(10))));
        assert_eq!(r.preconditions[0], Some((id(2), t(11))));
        assert_eq!(r.preconditions[1], Some((id(3), t(12))));
        // Window extended to cover stage 1 by the precondition.
        assert_eq!(r.window(), Some((0, 1)));
    }

    #[test]
    fn flush_right_on_mid_strand_precondition() {
        // §2.1.1: a new stage-0 precondition invalidates the stage-1 slot.
        let mut rs = RecordSet::new(2, 4);
        rs.observe_input(id(1), t(0));
        rs.observe_precondition(0, id(2), t(1));
        rs.observe_precondition(1, id(3), t(2));
        rs.observe_precondition(0, id(4), t(3));
        let r = rs.record_for_output().unwrap();
        assert_eq!(r.preconditions[0], Some((id(4), t(3))));
        assert_eq!(r.preconditions[1], None, "right of stage 0 flushed");
    }

    #[test]
    fn figure3_pipelined_two_records() {
        // Reproduce Figure 3: event 1 occupies the last join while
        // event 2 has started on the first join.
        let mut rs = RecordSet::new(2, 4);
        rs.observe_input(id(1), t(0)); // e1 -> record A (0,0)
        rs.observe_precondition(0, id(2), t(1)); // A[0]
        rs.observe_stage_complete(0); // A advances to (1,1)
        rs.observe_input(id(10), t(2)); // e2 -> record B (0,0)
        assert_eq!(rs.active_count(), 2);
        // Preconditions route by window: stage 1 -> A, stage 0 -> B.
        rs.observe_precondition(1, id(3), t(3));
        rs.observe_precondition(0, id(11), t(4));
        let a = rs.record_for_output().unwrap(); // highest window = A
        assert_eq!(a.input, Some((id(1), t(0))));
        assert_eq!(a.preconditions[1], Some((id(3), t(3))));
        rs.observe_stage_complete(1); // A retires
        assert_eq!(rs.active_count(), 1);
        // Now B is the only record; its execution proceeds.
        rs.observe_stage_complete(0); // B -> (1,1)
        rs.observe_precondition(1, id(12), t(5));
        let b = rs.record_for_output().unwrap();
        assert_eq!(b.input, Some((id(10), t(2))));
        assert_eq!(b.preconditions[0], Some((id(11), t(4))));
        assert_eq!(b.preconditions[1], Some((id(12), t(5))));
        rs.observe_stage_complete(1);
        assert_eq!(rs.active_count(), 0);
        // Records are reused, not leaked.
        assert_eq!(rs.len(), 2);
        rs.observe_input(id(20), t(6));
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn record_cap_recycles_oldest() {
        let mut rs = RecordSet::new(1, 2);
        rs.observe_input(id(1), t(0));
        rs.observe_input(id(2), t(1));
        rs.observe_input(id(3), t(2)); // cap hit: recycles record of id(1)
        assert_eq!(rs.len(), 2);
        let inputs: Vec<_> = rs.records.iter().filter_map(|r| r.input).collect();
        assert!(inputs.contains(&(id(2), t(1))));
        assert!(inputs.contains(&(id(3), t(2))));
        assert!(!inputs.contains(&(id(1), t(0))));
    }

    #[test]
    fn zero_stage_strand() {
        let mut rs = RecordSet::new(0, 2);
        rs.observe_input(id(1), t(0));
        let r = rs.record_for_output().unwrap();
        assert_eq!(r.input, Some((id(1), t(0))));
        assert!(r.preconditions.is_empty());
        // A second input reuses the (idle) record.
        rs.observe_input(id(2), t(1));
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.record_for_output().unwrap().input, Some((id(2), t(1))));
    }

    #[test]
    fn orphan_precondition_dropped() {
        // Tracing enabled mid-execution: a precondition with no input.
        let mut rs = RecordSet::new(2, 2);
        rs.observe_precondition(1, id(9), t(0));
        assert!(rs.record_for_output().is_none());
        assert_eq!(rs.active_count(), 0);
    }

    #[test]
    fn out_of_range_stage_ignored() {
        let mut rs = RecordSet::new(1, 2);
        rs.observe_input(id(1), t(0));
        rs.observe_precondition(5, id(2), t(1)); // nonsense stage
        let r = rs.record_for_output().unwrap();
        assert_eq!(r.preconditions[0], None);
    }

    #[test]
    fn stage_complete_without_records_is_noop() {
        let mut rs = RecordSet::new(2, 2);
        rs.observe_stage_complete(0);
        rs.observe_stage_complete(1);
        assert_eq!(rs.active_count(), 0);
    }
}
