//! # p2-trace — the execution tracer
//!
//! Implements §2.1 of the paper: the component that turns dataflow tap
//! observations into the two queryable trace tables,
//!
//! * **`ruleExec(loc, rule, cause, effect, t_in, t_out, isEvent)`** — one
//!   row per (cause tuple, output tuple) pair of a rule execution: the
//!   triggering event row (`isEvent = true`) plus one row per
//!   precondition fetched from a table (`isEvent = false`). §2.1.1.
//! * **`tupleTable(loc, id, srcAddr, srcId, dstAddr)`** — the memoization
//!   table relating node-local tuple IDs to content and, for tuples that
//!   crossed the network, to the sender's ID, enabling cross-node
//!   execution-graph traversal. §2.1.3.
//!
//! The heart of the module is the **pipelined record-matching algorithm**
//! of §2.1.2: the tracer holds several *records* per rule strand, each
//! associated with a contiguous window of join stages; stage-completion
//! signals advance the windows, preconditions are posted to the record
//! whose window covers their stage (flushing stale fields to the right),
//! and outputs are packaged from the record with the highest window.
//!
//! Both optimizations the paper names in §3.4 are implemented: a *fixed
//! number of execution records* per strand (`TraceConfig::records_per_strand`)
//! and *storing only executions that produce a valid output* (rows are
//! emitted only at output observation).

pub mod record;
pub mod tracer;

pub use record::{Record, RecordSet};
pub use tracer::{TraceConfig, Tracer};

/// Table name for rule-execution rows.
pub const RULE_EXEC: &str = "ruleExec";
/// Table name for tuple memoization rows.
pub const TUPLE_TABLE: &str = "tupleTable";
/// Table name for system-event rows (`eventLog(loc, relation, op, T)`),
/// §2.1's arrival/removal log. Populated only when
/// [`TraceConfig::log_events`] is on.
pub const EVENT_LOG: &str = "eventLog";
