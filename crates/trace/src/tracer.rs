//! The tracer: tap consumer, tuple memoization, trace-table row source.

use crate::record::RecordSet;
use crate::{RULE_EXEC, TUPLE_TABLE};
use p2_dataflow::{TapEvent, TapKind, TapSink};
use p2_store::Catalog;
use p2_types::{Addr, RingId, Time, Tuple, TupleId, Value};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Tracer configuration (the §3.4 resource-bounding knobs).
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Concurrent execution records kept per rule strand ("fixed number
    /// of execution records", §3.4).
    pub records_per_strand: usize,
    /// Lifetime of `ruleExec` rows, seconds.
    pub rule_exec_lifetime_secs: f64,
    /// Row bound of the `ruleExec` table.
    pub rule_exec_max_rows: usize,
    /// Row bound of the `tupleTable`.
    pub tuple_table_max_rows: usize,
    /// Also log tuple arrivals and deletions into the `eventLog` table
    /// (§2.1: *"the logging of system events such as arrival of a tuple
    /// or removal of a tuple from a table"*). Off by default: the §4
    /// logging-cost experiment measures execution tracing alone.
    pub log_events: bool,
    /// Row bound of the `eventLog` table.
    pub event_log_max_rows: usize,
    /// Lifetime of `eventLog` rows, seconds.
    pub event_log_lifetime_secs: f64,
    /// How long an *unreferenced* memoized tuple survives GC, seconds.
    /// §2.1.3 flushes a tuple record when the last referring `ruleExec`
    /// row times out; a tuple with no referring row yet must live at
    /// least as long as one could still appear, so this defaults to the
    /// `ruleExec` lifetime.
    pub unreferenced_grace_secs: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            records_per_strand: 4,
            rule_exec_lifetime_secs: 120.0,
            rule_exec_max_rows: 10_000,
            tuple_table_max_rows: 20_000,
            log_events: false,
            event_log_max_rows: 10_000,
            event_log_lifetime_secs: 120.0,
            unreferenced_grace_secs: 120.0,
        }
    }
}

/// The per-node execution tracer.
///
/// The node runtime registers it as the tap sink of every strand (when
/// tracing is enabled), notifies it of network sends/receives, and
/// periodically drains [`Tracer::drain_rows`] into the catalog so the
/// trace is queryable from OverLog like any other state.
pub struct Tracer {
    local: Addr,
    config: TraceConfig,
    records: HashMap<Arc<str>, RecordSet>,
    /// Content → node-unique ID memoization (§2.1.3: "This ID is used to
    /// memoize the tuple").
    memo: HashMap<Tuple, TupleId>,
    /// Reverse map, serving content lookups during forensic traversals.
    content: HashMap<TupleId, Tuple>,
    /// When each ID was first memoized (drives the unreferenced-grace GC).
    birth: HashMap<TupleId, Time>,
    next_id: u64,
    /// Rows awaiting insertion into the catalog.
    pending: Vec<Tuple>,
    /// Tuple IDs already described by a `tupleTable` row.
    described: HashSet<TupleId>,
}

impl Tracer {
    /// Create a tracer for the node at `local`.
    pub fn new(local: Addr, config: TraceConfig) -> Tracer {
        Tracer {
            local,
            config,
            records: HashMap::new(),
            memo: HashMap::new(),
            content: HashMap::new(),
            birth: HashMap::new(),
            next_id: 1,
            pending: Vec::new(),
            described: HashSet::new(),
        }
    }

    /// The table declarations the tracer needs in the catalog. The node
    /// runtime registers these when tracing is enabled.
    pub fn table_specs(&self) -> Vec<p2_store::TableSpec> {
        use p2_types::TimeDelta;
        vec![
            // ruleExec(loc, rule, cause, effect, tIn, tOut, isEvent)
            p2_store::TableSpec::new(
                RULE_EXEC,
                Some(TimeDelta::from_secs_f64(
                    self.config.rule_exec_lifetime_secs,
                )),
                Some(self.config.rule_exec_max_rows),
                vec![0, 1, 2, 3, 6],
            ),
            // tupleTable(loc, id, srcAddr, srcId, dstAddr)
            p2_store::TableSpec::new(
                TUPLE_TABLE,
                None,
                Some(self.config.tuple_table_max_rows),
                vec![0, 1],
            ),
        ]
    }

    /// The node-local ID of a tuple, assigning one on first sight at
    /// time `now`.
    pub fn id_of(&mut self, t: &Tuple, now: Time) -> TupleId {
        if let Some(id) = self.memo.get(t) {
            return *id;
        }
        let id = TupleId(self.next_id);
        self.next_id += 1;
        self.memo.insert(t.clone(), id);
        self.content.insert(id, t.clone());
        self.birth.insert(id, now);
        id
    }

    /// The content of a memoized tuple (forensic traversals resolve
    /// `ruleExec` IDs back to tuples through this).
    pub fn content_of(&self, id: TupleId) -> Option<&Tuple> {
        self.content.get(&id)
    }

    /// The ID of an already-memoized tuple, without assigning one.
    pub fn lookup_id(&self, t: &Tuple) -> Option<TupleId> {
        self.memo.get(t).copied()
    }

    /// Record that `t` was sent to `dest`: sender-side `tupleTable` row
    /// `(id, self, id, dest)` — the paper's `tupleTable@n(o1, n, o1, z)`.
    ///
    /// Returns the sender-local ID, which the network envelope carries so
    /// the receiver can correlate (§2.1.3).
    pub fn on_send(&mut self, t: &Tuple, dest: &Addr, now: Time) -> TupleId {
        let id = self.id_of(t, now);
        self.pending.push(Tuple::new(
            TUPLE_TABLE,
            [
                Value::Addr(self.local.clone()),
                Value::Id(RingId(id.0)),
                Value::Addr(self.local.clone()),
                Value::Id(RingId(id.0)),
                Value::Addr(dest.clone()),
            ],
        ));
        self.described.insert(id);
        id
    }

    /// Record that `t` arrived from `src` where it had ID `src_id`:
    /// receiver-side row `(d1, src, src_id, self)` — the paper's
    /// `tupleTable@z(d1, n, o1, z)`. Returns the fresh local ID.
    pub fn on_receive(&mut self, t: &Tuple, src: &Addr, src_id: TupleId, now: Time) -> TupleId {
        let id = self.id_of(t, now);
        self.pending.push(Tuple::new(
            TUPLE_TABLE,
            [
                Value::Addr(self.local.clone()),
                Value::Id(RingId(id.0)),
                Value::Addr(src.clone()),
                Value::Id(RingId(src_id.0)),
                Value::Addr(self.local.clone()),
            ],
        ));
        self.described.insert(id);
        id
    }

    /// Describe a locally created tuple in the `tupleTable` (src = dst =
    /// self), once. Local rows let forensic walks (§3.2) uniformly join
    /// `tupleTable` to decide whether a hop crossed the network.
    fn describe_local(&mut self, id: TupleId) {
        if self.described.insert(id) {
            self.pending.push(Tuple::new(
                TUPLE_TABLE,
                [
                    Value::Addr(self.local.clone()),
                    Value::Id(RingId(id.0)),
                    Value::Addr(self.local.clone()),
                    Value::Id(RingId(id.0)),
                    Value::Addr(self.local.clone()),
                ],
            ));
        }
    }

    /// Take the accumulated `ruleExec`/`tupleTable` rows. The node
    /// runtime inserts them into the catalog (insertions into these
    /// tables fire delta rules like any other, which is what makes
    /// higher-order tracing queries possible — but executions of strands
    /// *triggered by* trace tables are themselves untraced, preventing
    /// the obvious regress; the runtime enforces that).
    pub fn drain_rows(&mut self) -> Vec<Tuple> {
        std::mem::take(&mut self.pending)
    }

    /// Number of rows waiting to be drained.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Reference-count sweep (§2.1.3): drop `tupleTable` rows (and the
    /// memoization entries behind them) whose IDs are no longer
    /// referenced by any live `ruleExec` row. Runs periodically from the
    /// node runtime.
    pub fn gc(&mut self, catalog: &mut Catalog, now: Time) {
        let mut referenced: HashSet<u64> = HashSet::new();
        for row in catalog.scan(RULE_EXEC, now) {
            for idx in [2usize, 3] {
                if let Some(Value::Id(rid)) = row.get(idx) {
                    referenced.insert(rid.0);
                }
            }
        }
        let grace_rows = p2_types::TimeDelta::from_secs_f64(self.config.unreferenced_grace_secs);
        if let Some(table) = catalog.table_mut(TUPLE_TABLE) {
            let birth = &self.birth;
            table.delete_where(now, |row| match row.get(1) {
                Some(Value::Id(rid)) => {
                    let young = birth
                        .get(&TupleId(rid.0))
                        .is_some_and(|b| *b + grace_rows > now);
                    !referenced.contains(&rid.0) && !young
                }
                _ => true,
            });
        }
        // Prune the memoization maps in step with the table, but keep
        // young unreferenced entries: a referring ruleExec row (or a
        // forensic walk) may still arrive for them.
        let grace = p2_types::TimeDelta::from_secs_f64(self.config.unreferenced_grace_secs);
        let birth = &self.birth;
        let keep = |id: &TupleId| {
            referenced.contains(&id.0) || birth.get(id).is_some_and(|b| *b + grace > now)
        };
        self.content.retain(|id, _| keep(id));
        self.memo.retain(|_, id| keep(id));
        self.described.retain(keep);
        let content = &self.content;
        self.birth.retain(|id, _| content.contains_key(id));
    }

    /// Approximate memory footprint of tracer-internal state in bytes
    /// (counted into the node's memory metric; the paper's §4 logging
    /// cost includes this).
    pub fn approx_bytes(&self) -> usize {
        self.content
            .values()
            .map(|t| t.approx_bytes() + 24)
            .sum::<usize>()
            + self.pending.iter().map(|t| t.approx_bytes()).sum::<usize>()
    }

    fn rule_exec_row(
        &self,
        rule: &str,
        cause: TupleId,
        effect: TupleId,
        t_in: Time,
        t_out: Time,
        is_event: bool,
    ) -> Tuple {
        Tuple::new(
            RULE_EXEC,
            [
                Value::Addr(self.local.clone()),
                Value::str(rule),
                Value::Id(RingId(cause.0)),
                Value::Id(RingId(effect.0)),
                Value::Time(t_in),
                Value::Time(t_out),
                Value::Bool(is_event),
            ],
        )
    }
}

impl TapSink for Tracer {
    fn tap(&mut self, event: TapEvent) {
        let records = self
            .records
            .entry(event.strand_id.clone())
            .or_insert_with(|| RecordSet::new(event.stage_count, self.config.records_per_strand));
        if records.stage_count() != event.stage_count {
            // Same strand id, different plan shape: the program was
            // re-installed after a planner change (e.g. join reordering at
            // a different optimization level). Stale records would index
            // preconditions out of bounds — start fresh.
            *records = RecordSet::new(event.stage_count, self.config.records_per_strand);
        }
        match event.kind {
            TapKind::Input { tuple } => {
                let id = self.id_of(&tuple, event.at);
                self.describe_local(id);
                self.records
                    .get_mut(&event.strand_id)
                    .expect("just inserted")
                    .observe_input(id, event.at);
            }
            TapKind::Precondition { stage, tuple } => {
                let id = self.id_of(&tuple, event.at);
                self.describe_local(id);
                self.records
                    .get_mut(&event.strand_id)
                    .expect("just inserted")
                    .observe_precondition(stage, id, event.at);
            }
            TapKind::StageComplete { stage } => {
                records.observe_stage_complete(stage);
            }
            TapKind::Output { tuple } => {
                let effect = self.id_of(&tuple, event.at);
                self.describe_local(effect);
                let Some(record) = self
                    .records
                    .get(&event.strand_id)
                    .and_then(|rs| rs.record_for_output())
                else {
                    return;
                };
                let t_out = event.at;
                let mut rows = Vec::new();
                if let Some((cause, t_in)) = record.input {
                    rows.push((cause, t_in, true));
                }
                for pre in record.preconditions.iter().flatten() {
                    rows.push((pre.0, pre.1, false));
                }
                for (cause, t_in, is_event) in rows {
                    let row =
                        self.rule_exec_row(&event.rule_label, cause, effect, t_in, t_out, is_event);
                    self.pending.push(row);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tap(tracer: &mut Tracer, strand: &str, stages: usize, at: u64, kind: TapKind) {
        tracer.tap(TapEvent {
            strand_id: Arc::from(strand),
            rule_label: Arc::from(strand),
            stage_count: stages,
            kind,
            at: Time(at),
        });
    }

    fn tup(name: &str, x: i64) -> Tuple {
        Tuple::new(name, [Value::addr("n"), Value::Int(x)])
    }

    #[test]
    fn paper_worked_example_two_rows() {
        // §2.1.1: rule r1 with event event@n(y), precondition prec@n(z),
        // output head@z(y) yields exactly two ruleExec rows sharing the
        // effect, one is_event=true and one false.
        let mut tr = Tracer::new(Addr::new("n"), TraceConfig::default());
        let ev = tup("event", 1);
        let prec = tup("prec", 2);
        let head = tup("head", 1);
        tap(&mut tr, "r1", 1, 10, TapKind::Input { tuple: ev.clone() });
        tap(
            &mut tr,
            "r1",
            1,
            11,
            TapKind::Precondition {
                stage: 0,
                tuple: prec.clone(),
            },
        );
        tap(
            &mut tr,
            "r1",
            1,
            12,
            TapKind::Output {
                tuple: head.clone(),
            },
        );
        let rows = tr.drain_rows();
        let execs: Vec<&Tuple> = rows.iter().filter(|r| r.name() == RULE_EXEC).collect();
        assert_eq!(execs.len(), 2);
        let ev_row = execs
            .iter()
            .find(|r| r.get(6) == Some(&Value::Bool(true)))
            .unwrap();
        let pre_row = execs
            .iter()
            .find(|r| r.get(6) == Some(&Value::Bool(false)))
            .unwrap();
        // Same effect ID, different causes; times are (ts, te) and (ti, te).
        assert_eq!(ev_row.get(3), pre_row.get(3));
        assert_ne!(ev_row.get(2), pre_row.get(2));
        assert_eq!(ev_row.get(4), Some(&Value::Time(Time(10))));
        assert_eq!(ev_row.get(5), Some(&Value::Time(Time(12))));
        assert_eq!(pre_row.get(4), Some(&Value::Time(Time(11))));
        // Local tupleTable rows were generated for all three tuples.
        let tts: Vec<&Tuple> = rows.iter().filter(|r| r.name() == TUPLE_TABLE).collect();
        assert_eq!(tts.len(), 3);
    }

    #[test]
    fn memoization_is_stable() {
        let mut tr = Tracer::new(Addr::new("n"), TraceConfig::default());
        let a = tup("x", 1);
        let id1 = tr.id_of(&a, Time::ZERO);
        let id2 = tr.id_of(&tup("x", 1), Time::ZERO);
        assert_eq!(id1, id2);
        assert_ne!(tr.id_of(&tup("x", 2), Time::ZERO), id1);
        assert_eq!(tr.content_of(id1), Some(&a));
    }

    #[test]
    fn send_receive_rows_match_paper_shapes() {
        // Sender n: (o1, n, o1, z); receiver z: (d1, n, o1, z).
        let mut sender = Tracer::new(Addr::new("n"), TraceConfig::default());
        let t = tup("msg", 9);
        let o1 = sender.on_send(&t, &Addr::new("z"), Time::ZERO);
        let row = sender.drain_rows().pop().unwrap();
        assert_eq!(row.name(), TUPLE_TABLE);
        assert_eq!(row.get(0), Some(&Value::addr("n")));
        assert_eq!(row.get(1), Some(&Value::Id(RingId(o1.0))));
        assert_eq!(row.get(2), Some(&Value::addr("n")));
        assert_eq!(row.get(4), Some(&Value::addr("z")));

        let mut receiver = Tracer::new(Addr::new("z"), TraceConfig::default());
        let d1 = receiver.on_receive(&t, &Addr::new("n"), o1, Time::ZERO);
        let row = receiver.drain_rows().pop().unwrap();
        assert_eq!(row.get(0), Some(&Value::addr("z")));
        assert_eq!(row.get(1), Some(&Value::Id(RingId(d1.0))));
        assert_eq!(row.get(2), Some(&Value::addr("n")));
        assert_eq!(row.get(3), Some(&Value::Id(RingId(o1.0))));
        assert_eq!(row.get(4), Some(&Value::addr("z")));
    }

    #[test]
    fn gc_drops_unreferenced_tuple_rows() {
        let mut tr = Tracer::new(Addr::new("n"), TraceConfig::default());
        let mut cat = Catalog::new();
        for spec in tr.table_specs() {
            cat.register(spec).unwrap();
        }
        // A full execution: rows flow into the catalog.
        tap(
            &mut tr,
            "r1",
            1,
            0,
            TapKind::Input {
                tuple: tup("event", 1),
            },
        );
        tap(
            &mut tr,
            "r1",
            1,
            1,
            TapKind::Precondition {
                stage: 0,
                tuple: tup("prec", 2),
            },
        );
        tap(
            &mut tr,
            "r1",
            1,
            2,
            TapKind::Output {
                tuple: tup("head", 3),
            },
        );
        // And one orphan tuple described via send but never referenced.
        tr.on_send(&tup("orphan", 9), &Addr::new("z"), Time::ZERO);
        for row in tr.drain_rows() {
            cat.insert(row, Time::ZERO).unwrap();
        }
        assert_eq!(cat.scan(TUPLE_TABLE, Time::ZERO).len(), 4);
        // Young unreferenced entries survive the grace window (a
        // referring row or a forensic walk may still arrive)...
        tr.gc(&mut cat, Time::ZERO);
        assert_eq!(cat.scan(TUPLE_TABLE, Time::ZERO).len(), 4);
        // ...but past the grace (and with the ruleExec rows still live),
        // only the referenced ones remain.
        let mid = Time::from_secs(121);
        // Keep the ruleExec rows alive by refreshing them.
        for row in cat.scan(RULE_EXEC, Time::ZERO) {
            cat.insert(row, mid).unwrap();
        }
        tr.gc(&mut cat, mid);
        assert_eq!(
            cat.scan(TUPLE_TABLE, mid).len(),
            3,
            "orphan must be dropped"
        );
        // After the ruleExec rows expire too, everything is collected.
        let later = Time::from_secs(10_000);
        tr.gc(&mut cat, later);
        assert_eq!(cat.scan(TUPLE_TABLE, later).len(), 0);
        assert_eq!(tr.approx_bytes(), 0);
    }

    #[test]
    fn output_without_record_is_dropped() {
        // §3.4 "only store executions that produce a valid output" — and
        // symmetrically, an output with no observed input records nothing.
        let mut tr = Tracer::new(Addr::new("n"), TraceConfig::default());
        tap(
            &mut tr,
            "r1",
            1,
            0,
            TapKind::Output {
                tuple: tup("head", 1),
            },
        );
        let execs: Vec<Tuple> = tr
            .drain_rows()
            .into_iter()
            .filter(|r| r.name() == RULE_EXEC)
            .collect();
        assert!(execs.is_empty());
    }

    #[test]
    fn pipelined_two_events_attribute_correctly() {
        // The Figure 3 interleaving at tracer level, end to end.
        let mut tr = Tracer::new(Addr::new("n"), TraceConfig::default());
        let e1 = tup("ev", 1);
        let e2 = tup("ev", 2);
        tap(&mut tr, "r2", 2, 0, TapKind::Input { tuple: e1.clone() });
        tap(
            &mut tr,
            "r2",
            2,
            1,
            TapKind::Precondition {
                stage: 0,
                tuple: tup("p1", 1),
            },
        );
        tap(&mut tr, "r2", 2, 2, TapKind::StageComplete { stage: 0 });
        tap(&mut tr, "r2", 2, 3, TapKind::Input { tuple: e2.clone() });
        tap(
            &mut tr,
            "r2",
            2,
            4,
            TapKind::Precondition {
                stage: 1,
                tuple: tup("p2", 1),
            },
        );
        tap(&mut tr, "r2", 2, 5, TapKind::Output { tuple: tup("h", 1) });
        tap(&mut tr, "r2", 2, 6, TapKind::StageComplete { stage: 1 });
        tap(
            &mut tr,
            "r2",
            2,
            7,
            TapKind::Precondition {
                stage: 0,
                tuple: tup("p1", 2),
            },
        );
        tap(&mut tr, "r2", 2, 8, TapKind::StageComplete { stage: 0 });
        tap(
            &mut tr,
            "r2",
            2,
            9,
            TapKind::Precondition {
                stage: 1,
                tuple: tup("p2", 2),
            },
        );
        tap(&mut tr, "r2", 2, 10, TapKind::Output { tuple: tup("h", 2) });
        let rows: Vec<Tuple> = tr
            .drain_rows()
            .into_iter()
            .filter(|r| r.name() == RULE_EXEC)
            .collect();
        // 3 rows per output (event + 2 preconditions).
        assert_eq!(rows.len(), 6);
        // The first output's event-cause is e1, the second's is e2.
        // IDs are tracer-local; compare via time fields instead.
        let first_event_row = &rows[0];
        assert_eq!(first_event_row.get(4), Some(&Value::Time(Time(0)))); // e1 seen at 0
        let second_event_row = rows
            .iter()
            .filter(|r| r.get(6) == Some(&Value::Bool(true)))
            .nth(1)
            .unwrap();
        assert_eq!(second_event_row.get(4), Some(&Value::Time(Time(3)))); // e2 seen at 3
    }
}
