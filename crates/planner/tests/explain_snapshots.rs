//! Golden EXPLAIN snapshots for the paper's programs.
//!
//! Every program the repository ships — Chord and each §3 monitor — is
//! planned at the default (Full) optimization level and its EXPLAIN
//! text compared against a checked-in snapshot under
//! `tests/snapshots/`. A diff means the planner's output changed:
//! either a bug, or an intentional optimizer change that must be
//! reviewed and re-recorded with
//!
//! ```text
//! scripts/update_snapshots.sh        # or: SNAPSHOT_REGEN=1 cargo test -p p2-planner
//! ```
//!
//! EXPLAIN is deterministic by construction (see `explain.rs`), so these
//! tests never flake.

use p2_chord::{chord_program, ChordConfig};
use p2_monitor::{consistency, ordering, oscillation, ring, snapshot};
use p2_planner::{compile_program, explain};
use p2_types::Addr;
use std::collections::HashSet;
use std::path::PathBuf;

/// Tables already materialized when a monitor installs: everything
/// Chord declares, plus the tracer's tables (§2.1.2).
fn chord_tables() -> HashSet<String> {
    let chord = p2_overlog::compile(&chord_program(&ChordConfig::default())).unwrap();
    chord
        .materializations()
        .map(|m| m.table.clone())
        .chain(["ruleExec".to_string(), "tupleTable".to_string()])
        .collect()
}

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(format!("{name}.txt"))
}

fn check(name: &str, source: &str, extra_tables: &[&str]) {
    let mut known = chord_tables();
    known.extend(extra_tables.iter().map(|s| s.to_string()));
    let program = p2_overlog::compile(source)
        .unwrap_or_else(|e| panic!("{name}: front end rejected program: {e}"));
    let compiled = compile_program(&program, &known)
        .unwrap_or_else(|e| panic!("{name}: planner rejected program: {e}"));
    let text = explain(&compiled);

    let path = snapshot_path(name);
    if std::env::var_os("SNAPSHOT_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{name}: cannot read snapshot {}: {e}\nrun scripts/update_snapshots.sh to record it",
            path.display()
        )
    });
    if text != golden {
        let diff: Vec<String> = golden
            .lines()
            .zip(text.lines())
            .enumerate()
            .filter(|(_, (g, t))| g != t)
            .take(8)
            .map(|(i, (g, t))| format!("  line {}:\n    -{g}\n    +{t}", i + 1))
            .collect();
        panic!(
            "{name}: EXPLAIN drifted from {} \
             ({} golden lines, {} actual).\nFirst differing lines:\n{}\n\
             If the plan change is intentional, re-record with scripts/update_snapshots.sh \
             and review the diff.",
            path.display(),
            golden.lines().count(),
            text.lines().count(),
            diff.join("\n")
        );
    }
}

#[test]
fn chord() {
    check("chord", &chord_program(&ChordConfig::default()), &[]);
}

#[test]
fn ring_active_probe() {
    check("ring_active_probe", &ring::active_probe_program(9), &[]);
}

#[test]
fn ring_passive_check() {
    check("ring_passive_check", &ring::passive_check_program(), &[]);
}

#[test]
fn ordering_traversal() {
    check("ordering_traversal", &ordering::traversal_program(), &[]);
}

#[test]
fn oscillation_full() {
    check("oscillation_full", &oscillation::full_program(), &[]);
}

#[test]
fn consistency_probe() {
    check(
        "consistency_probe",
        &consistency::probe_program(&consistency::ProbeConfig {
            probe_secs: 8.0,
            tally_secs: 10,
            wait_secs: 10,
            ..Default::default()
        }),
        &[],
    );
}

#[test]
fn snapshot_backpointer() {
    check(
        "snapshot_backpointer",
        &snapshot::backpointer_program(),
        &[],
    );
}

#[test]
fn snapshot_rules() {
    // Installs after the back-pointer rules, whose tables it reads.
    check(
        "snapshot_rules",
        &snapshot::snapshot_program(),
        &["backPointer", "numBackPointers"],
    );
}

#[test]
fn snapshot_initiator() {
    check(
        "snapshot_initiator",
        &snapshot::initiator_program(&Addr::new("n0"), 45.0),
        &[
            "backPointer",
            "numBackPointers",
            "snapState",
            "currentSnap",
            "snapBestSucc",
            "snapFinger",
            "snapPred",
            "channelState",
            "channelSuccDump",
            "channelDoneCount",
            "channelTotalCount",
        ],
    );
}
