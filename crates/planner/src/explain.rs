//! EXPLAIN: render a [`CompiledProgram`] as stable, human-readable text.
//!
//! The output is **deterministic** — it depends only on the plan data,
//! never on hash iteration order, timestamps, or addresses — so it can be
//! snapshot-tested (`crates/planner/tests/explain_snapshots.rs`) and
//! diffed across planner changes. Slots are printed by their source-level
//! variable names ([`Strand::slot_names`]); the trailing `#k` form is
//! used only for synthetic slots with no name (which today cannot
//! happen, but EXPLAIN must not panic on future plans).

use crate::expr::PExpr;
use crate::plan::{
    CompiledProgram, FieldMatch, FieldOut, HeadSpec, HistoryProvider, MatchSpec, Op, Strand,
    Trigger,
};
use p2_overlog::UnOp;
use std::fmt::Write as _;

/// Render the full program plan.
pub fn explain(p: &CompiledProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "program: {} table(s), {} fact(s), {} strand(s)",
        p.tables.len(),
        p.facts.len(),
        p.strands.len()
    );

    for t in &p.tables {
        let lifetime = match t.lifetime_secs {
            Some(s) => format!("{s}s"),
            None => "infinity".into(),
        };
        let max = match t.max_rows {
            Some(n) => n.to_string(),
            None => "infinity".into(),
        };
        let keys: Vec<String> = t.key_fields.iter().map(|k| k.to_string()).collect();
        let _ = writeln!(
            out,
            "table {} (lifetime={lifetime}, max={max}, keys={})",
            t.name,
            keys.join(",")
        );
    }

    for f in &p.facts {
        let _ = writeln!(out, "fact {f}");
    }

    for s in &p.strands {
        out.push('\n');
        explain_strand(s, &mut out);
    }

    if !p.prefix_groups.is_empty() {
        out.push('\n');
        for g in &p.prefix_groups {
            let ids: Vec<&str> = g
                .members
                .iter()
                .map(|&i| p.strands[i].strand_id.as_str())
                .collect();
            let _ = writeln!(
                out,
                "shared prefix: strands {} share {} op(s)",
                ids.join(", "),
                g.shared_ops
            );
        }
    }

    if !p.diagnostics.is_empty() {
        out.push('\n');
        for d in &p.diagnostics {
            let _ = writeln!(out, "warning [{}]: {}", d.strand_id, d.message);
        }
    }

    if !p.index_requests.is_empty() {
        out.push('\n');
        for (table, field) in &p.index_requests {
            let _ = writeln!(out, "index request: {table} field {field}");
        }
    }

    out
}

fn explain_strand(s: &Strand, out: &mut String) {
    let _ = writeln!(out, "strand {}  [rule {}]", s.strand_id, s.rule_label);
    let trig = match &s.trigger {
        Trigger::Event { name } => format!("event {name}"),
        Trigger::TableInsert { name } => format!("insert into {name}"),
        Trigger::Periodic { period_secs } => format!("periodic every {period_secs}s"),
    };
    let _ = writeln!(out, "  trigger: {trig}");
    let _ = writeln!(
        out,
        "  match:   {}({})",
        s.trigger.dispatch_name(),
        match_fields(&s.trigger_match, s)
    );
    for op in &s.ops {
        match op {
            Op::Join { table, match_spec } => {
                let probe = match match_spec.probe_field() {
                    Some(f) => format!("probe field {f}"),
                    None => "full scan".into(),
                };
                let _ = writeln!(
                    out,
                    "  op: join {table}({})  [{probe}]",
                    match_fields(match_spec, s)
                );
            }
            Op::ArchiveScan {
                table,
                t0,
                t1,
                match_spec,
                provider,
            } => {
                // The default (local) provider renders exactly as before so
                // pinned EXPLAIN snapshots stay byte-identical; only a
                // deployment-wide scan carries a marker.
                let marker = match provider {
                    HistoryProvider::Local => "",
                    HistoryProvider::Deployment => "  [deployment]",
                };
                let _ = writeln!(
                    out,
                    "  op: past {table}[{} .. {}]({}){marker}",
                    pexpr(t0, s),
                    pexpr(t1, s),
                    match_fields(match_spec, s)
                );
            }
            Op::Select(e) => {
                let _ = writeln!(out, "  op: select {}", pexpr(e, s));
            }
            Op::Assign { slot, expr } => {
                let _ = writeln!(
                    out,
                    "  op: assign {} := {}",
                    slot_name(*slot, s),
                    pexpr(expr, s)
                );
            }
        }
    }
    let _ = writeln!(out, "  head: {}", head(&s.head, s));
    let _ = writeln!(out, "  slots: {} ({})", s.slots, s.slot_names.join(", "));
    let _ = writeln!(out, "  est. fanout: {}", s.est_fanout);
    let _ = writeln!(out, "  stratum: {}", s.stratum);
}

fn match_fields(ms: &MatchSpec, s: &Strand) -> String {
    let fields: Vec<String> = ms
        .fields
        .iter()
        .map(|f| match f {
            FieldMatch::Bind(slot) => format!("bind {}", slot_name(*slot, s)),
            FieldMatch::EqVar(slot) => format!("={}", slot_name(*slot, s)),
            FieldMatch::EqConst(v) => format!("={v}"),
            FieldMatch::EqExpr(e) => format!("=({})", pexpr(e, s)),
            FieldMatch::Ignore => "_".into(),
        })
        .collect();
    fields.join(", ")
}

fn head(h: &HeadSpec, s: &Strand) -> String {
    let fields: Vec<String> = h
        .fields
        .iter()
        .map(|f| match f {
            FieldOut::Slot(slot) => slot_name(*slot, s),
            FieldOut::Const(v) => v.to_string(),
            FieldOut::Expr(e) => pexpr(e, s),
            FieldOut::Agg => {
                #[expect(
                    clippy::expect_used,
                    reason = "an Agg field is only planned with an agg"
                )]
                let agg = h.agg.as_ref().expect("Agg field implies agg plan");
                let over = match &agg.over {
                    Some(e) => pexpr(e, s),
                    None => "*".into(),
                };
                let grouped = if agg.group_bound_by_trigger {
                    ", group bound by trigger"
                } else {
                    ""
                };
                let func = format!("{:?}", agg.func).to_lowercase();
                format!("{func}<{over}>{grouped}")
            }
        })
        .collect();
    let delete = if h.delete { "delete " } else { "" };
    format!("{delete}{}({})", h.name, fields.join(", "))
}

fn slot_name(slot: usize, s: &Strand) -> String {
    s.slot_names
        .get(slot)
        .cloned()
        .unwrap_or_else(|| format!("#{slot}"))
}

fn pexpr(e: &PExpr, s: &Strand) -> String {
    match e {
        PExpr::Slot(i) => slot_name(*i, s),
        PExpr::Const(v) => v.to_string(),
        PExpr::Unary(UnOp::Neg, inner) => format!("-{}", pexpr(inner, s)),
        PExpr::Unary(UnOp::Not, inner) => format!("!{}", pexpr(inner, s)),
        PExpr::Binary(op, a, b) => {
            format!("({} {} {})", pexpr(a, s), op.symbol(), pexpr(b, s))
        }
        PExpr::In {
            expr,
            lo,
            hi,
            lo_closed,
            hi_closed,
        } => format!(
            "{} in {}{}, {}{}",
            pexpr(expr, s),
            if *lo_closed { "[" } else { "(" },
            pexpr(lo, s),
            pexpr(hi, s),
            if *hi_closed { "]" } else { ")" },
        ),
        PExpr::Call { func, args } => {
            let args: Vec<String> = args.iter().map(|a| pexpr(a, s)).collect();
            format!("{}({})", func.name(), args.join(", "))
        }
        PExpr::List(items) => {
            let items: Vec<String> = items.iter().map(|i| pexpr(i, s)).collect();
            format!("[{}]", items.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_program;
    use p2_overlog::parse_program;
    use std::collections::HashSet;

    #[test]
    fn explain_is_deterministic_and_complete() {
        let src = "materialize(t, 100, 10, keys(1)).
                   r1 out@N(X, Z) :- ev@N(X, Y), t@N(Z), Y > 3.";
        let p = compile_program(&parse_program(src).unwrap(), &HashSet::new()).unwrap();
        let a = explain(&p);
        let b = explain(&p);
        assert_eq!(a, b);
        assert!(a.contains("strand r1"));
        assert!(a.contains("trigger: event ev"));
        assert!(a.contains("op: select (Y > 3)"));
        assert!(a.contains("op: join t(=N, bind Z)"));
        assert!(a.contains("head: out(N, X, Z)"));
        assert!(a.contains("index request: t field 0"));
    }

    #[test]
    fn explain_renders_archive_scans() {
        let src = r#"f1 was@N(S) :- probe@N(T0, T1), past@N("succ", T0, T1, N, S)."#;
        let p = compile_program(&parse_program(src).unwrap(), &HashSet::new()).unwrap();
        let text = explain(&p);
        assert!(
            text.contains("op: past succ[T0 .. T1](=N, bind S)"),
            "{text}"
        );
    }

    #[test]
    fn explain_renders_aggregates_and_deletes() {
        let src = "materialize(t, 100, 100, keys(1, 2)).
                   c1 total@N(X, count<*>) :- ev@N(X), t@N(X, Y).
                   c2 delete t@N(P, T2) :- c@N(P), t@N(P, T2).";
        let p = compile_program(&parse_program(src).unwrap(), &HashSet::new()).unwrap();
        let text = explain(&p);
        assert!(text.contains("count<*>"));
        assert!(text.contains("head: delete t(N, P, T2)"));
    }
}
