//! The per-rule **logical IR**: a normalized, symbolic form of one rule
//! strand, produced before any slot assignment.
//!
//! The staged planner works in three phases (DESIGN.md §2.6):
//!
//! 1. **Build** ([`build_strand_ir`]): classify the trigger, resolve the
//!    `periodic` period, and normalize the body into a list of [`IrOp`]s
//!    over *named* variables. For table-triggered aggregates the trigger
//!    table's re-join appears as an ordinary [`IrOp::Join`] here.
//! 2. **Rewrite** ([`crate::passes`]): selection/assignment pushdown and
//!    index-aware join reordering permute `ops`. Rewrites must happen on
//!    this symbolic form — slot numbering and `Bind`/`EqVar` field roles
//!    both depend on operator order, so reordering a lowered
//!    [`crate::plan::Strand`] would corrupt its bindings.
//! 3. **Lower** ([`crate::compile`]): walk the (possibly rewritten) op
//!    list once, allocating dense environment slots in encounter order,
//!    and emit the executable [`crate::plan::Strand`].

use crate::compile::PlanError;
use crate::expr::Builtin;
use crate::plan::Trigger;
use p2_overlog::{Arg, Expr, Predicate, Rule, Term};
use p2_types::Value;
use std::collections::HashSet;

/// A symbolic strand operator (named variables, no slots yet).
#[derive(Debug, Clone, PartialEq)]
pub enum IrOp {
    /// Probe a materialized table.
    Join(Predicate),
    /// Range over an archived relation's history: the whole
    /// `past@N("rel", T0, T1, fields...)` predicate occurrence, lowered
    /// to [`crate::plan::Op::ArchiveScan`]. Args 0 (location) and 2/3
    /// (interval bounds) are *reads* — they must already be bound —
    /// while args 4.. bind or test against the archived tuple's fields.
    Past(Predicate),
    /// Filter on a condition.
    Select(Expr),
    /// Bind a variable to an expression value.
    Assign {
        /// Target variable.
        var: String,
        /// Defining expression.
        expr: Expr,
    },
}

impl IrOp {
    /// Variables that must already be bound for the op to be
    /// executable. For a join only embedded expression arguments impose
    /// requirements — plain variable fields either bind or test
    /// equality, both legal at any point.
    pub fn required_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        match self {
            IrOp::Join(p) => {
                for a in &p.args {
                    if let Arg::Expr(e) = a {
                        e.free_vars(&mut out);
                    }
                }
            }
            IrOp::Past(p) => {
                for (i, a) in p.args.iter().enumerate() {
                    match a {
                        // Location and interval bounds are reads.
                        Arg::Var(v) if i < 4 && !out.iter().any(|x| x == v) => {
                            out.push(v.clone());
                        }
                        Arg::Expr(e) => e.free_vars(&mut out),
                        _ => {}
                    }
                }
            }
            IrOp::Select(e) => e.free_vars(&mut out),
            IrOp::Assign { expr, .. } => expr.free_vars(&mut out),
        }
        out
    }

    /// Variables the op introduces into the environment.
    pub fn bound_vars(&self) -> Vec<String> {
        match self {
            IrOp::Join(p) => {
                let mut out = Vec::new();
                for a in &p.args {
                    if let Arg::Var(v) = a {
                        if !out.iter().any(|x| x == v) {
                            out.push(v.clone());
                        }
                    }
                }
                out
            }
            IrOp::Past(p) => {
                // Only the field args (4..) bind; the location and the
                // interval bounds are required_vars instead.
                let mut out = Vec::new();
                for a in p.args.iter().skip(4) {
                    if let Arg::Var(v) = a {
                        if !out.iter().any(|x| x == v) {
                            out.push(v.clone());
                        }
                    }
                }
                out
            }
            IrOp::Select(_) => Vec::new(),
            IrOp::Assign { var, .. } => vec![var.clone()],
        }
    }

    /// Whether every expression inside the op is referentially
    /// transparent. Impure ops (reading time, RNG, or node identity) are
    /// pinned by the rewrite passes: moving one changes its evaluation
    /// count or the RNG stream, which changes program output. An
    /// unresolvable function name is conservatively impure — lowering
    /// rejects it anyway.
    pub fn is_pure(&self) -> bool {
        let expr_pure = |e: &Expr| {
            let mut pure = true;
            e.for_each_call(&mut |name| match Builtin::resolve(name) {
                Some(b) if b.is_pure() => {}
                _ => pure = false,
            });
            pure
        };
        match self {
            IrOp::Join(p) | IrOp::Past(p) => p.args.iter().all(|a| match a {
                Arg::Expr(e) => expr_pure(e),
                _ => true,
            }),
            IrOp::Select(e) => expr_pure(e),
            IrOp::Assign { expr, .. } => expr_pure(expr),
        }
    }
}

/// One rule strand in logical form: trigger + symbolic body ops + the
/// untouched head (lowered after the rewrite passes).
#[derive(Debug, Clone)]
pub struct StrandIr {
    /// The rule's label.
    pub rule_label: String,
    /// Unique strand id (`label~k` for delta-rule fan-out).
    pub strand_id: String,
    /// Resolved trigger (periodic period already extracted and checked).
    pub trigger: Trigger,
    /// The trigger predicate occurrence (source of the trigger match).
    pub trigger_pred: Predicate,
    /// For table-triggered aggregates: bind only these variables from
    /// the trigger delta (the head's group variables); the re-join binds
    /// the rest. `None` = bind everything.
    pub trigger_restrict: Option<HashSet<String>>,
    /// Body operators. Source order after [`build_strand_ir`]; rewrite
    /// passes may permute.
    pub ops: Vec<IrOp>,
    /// Variables bound by the trigger match (the initial bound set for
    /// scheduling; mirrors what lowering will bind).
    pub trigger_binds: Vec<String>,
}

impl StrandIr {
    /// The initial bound-variable set the body ops start from.
    pub fn initial_bound(&self) -> HashSet<String> {
        self.trigger_binds.iter().cloned().collect()
    }
}

/// Variables appearing in the head outside the aggregate argument (the
/// aggregate's group key).
pub(crate) fn head_group_vars(rule: &Rule) -> HashSet<String> {
    let mut out = HashSet::new();
    for a in &rule.head.args {
        match a {
            Arg::Var(v) => {
                out.insert(v.clone());
            }
            Arg::Expr(e) => {
                let mut vs = Vec::new();
                e.free_vars(&mut vs);
                out.extend(vs);
            }
            _ => {}
        }
    }
    out
}

/// Build the logical IR for one strand of a rule (phase 1 of the staged
/// planner): resolve and check the trigger, and normalize the body into
/// symbolic [`IrOp`]s in source order.
pub fn build_strand_ir(
    rule: &Rule,
    label: &str,
    strand_id: String,
    trigger_pos: usize,
    materialized: &HashSet<String>,
) -> Result<StrandIr, PlanError> {
    let trigger_pred = match &rule.body[trigger_pos] {
        Term::Pred(p) => p.clone(),
        _ => unreachable!("trigger positions index predicates"),
    };

    let is_agg = rule.is_aggregate();
    let trigger_is_table =
        trigger_pred.name != "periodic" && materialized.contains(&trigger_pred.name);
    // Table-triggered aggregates re-join the trigger table (full
    // recompute restricted to the delta's group) — see crate docs.
    let rejoin_trigger = is_agg && trigger_is_table;

    let trigger = if trigger_pred.name == "periodic" {
        if trigger_pred.args.len() != 3 {
            return Err(PlanError::BadPeriodic {
                rule: label.to_string(),
                message: format!(
                    "periodic takes (location, nonce, period); got {} args",
                    trigger_pred.args.len()
                ),
            });
        }
        let period_secs = match &trigger_pred.args[2] {
            Arg::Const(Value::Int(n)) if *n > 0 => *n as f64,
            Arg::Const(Value::Float(x)) if *x > 0.0 => *x,
            other => {
                return Err(PlanError::BadPeriodic {
                    rule: label.to_string(),
                    message: format!("period must be a positive constant, got {other:?}"),
                })
            }
        };
        for a in &trigger_pred.args {
            if matches!(a, Arg::Expr(_) | Arg::Agg { .. }) {
                return Err(PlanError::BadPeriodic {
                    rule: label.to_string(),
                    message: format!("unsupported periodic argument {a:?}"),
                });
            }
        }
        Trigger::Periodic { period_secs }
    } else if trigger_is_table {
        Trigger::TableInsert {
            name: trigger_pred.name.clone(),
        }
    } else {
        Trigger::Event {
            name: trigger_pred.name.clone(),
        }
    };

    let trigger_restrict = if rejoin_trigger {
        Some(head_group_vars(rule))
    } else {
        None
    };
    let mut trigger_binds = Vec::new();
    for a in &trigger_pred.args {
        if let Arg::Var(v) = a {
            let allowed = trigger_restrict
                .as_ref()
                .map(|allow| allow.contains(v))
                .unwrap_or(true);
            if allowed && !trigger_binds.iter().any(|x| x == v) {
                trigger_binds.push(v.clone());
            }
        }
    }

    let mut ops = Vec::new();
    for (i, term) in rule.body.iter().enumerate() {
        match term {
            Term::Pred(p) => {
                if i == trigger_pos && !rejoin_trigger {
                    continue;
                }
                if p.name == "past" {
                    ops.push(IrOp::Past(p.clone()));
                } else {
                    ops.push(IrOp::Join(p.clone()));
                }
            }
            Term::Cond { expr, .. } => ops.push(IrOp::Select(expr.clone())),
            Term::Assign { var, expr, .. } => ops.push(IrOp::Assign {
                var: var.clone(),
                expr: expr.clone(),
            }),
        }
    }

    Ok(StrandIr {
        rule_label: label.to_string(),
        strand_id,
        trigger,
        trigger_pred,
        trigger_restrict,
        ops,
        trigger_binds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_types::Value;

    fn pred(name: &str, args: Vec<Arg>) -> Predicate {
        Predicate {
            name: name.into(),
            args,
            at_form: true,
            span: Default::default(),
        }
    }

    #[test]
    fn join_requirements_and_bindings() {
        let j = IrOp::Join(pred(
            "t",
            vec![
                Arg::Var("N".into()),
                Arg::Const(Value::Int(1)),
                Arg::Expr(Expr::Binary(
                    p2_overlog::BinOp::Add,
                    Box::new(Expr::Var("X".into())),
                    Box::new(Expr::Const(Value::Int(1))),
                )),
                Arg::Wildcard,
            ],
        ));
        assert_eq!(j.required_vars(), vec!["X".to_string()]);
        assert_eq!(j.bound_vars(), vec!["N".to_string()]);
        assert!(j.is_pure());
    }

    #[test]
    fn impure_calls_detected() {
        let a = IrOp::Assign {
            var: "T".into(),
            expr: Expr::Call {
                func: "f_now".into(),
                args: vec![],
            },
        };
        assert!(!a.is_pure());
        let s = IrOp::Select(Expr::Call {
            func: "f_sha1".into(),
            args: vec![Expr::Var("X".into())],
        });
        assert!(s.is_pure());
        let unknown = IrOp::Select(Expr::Call {
            func: "f_mystery".into(),
            args: vec![],
        });
        assert!(!unknown.is_pure(), "unresolved functions are pinned");
    }
}
