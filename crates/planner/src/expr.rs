//! Slot-compiled expressions and their evaluator.
//!
//! The planner resolves every variable of a rule to a dense environment
//! slot, turning [`p2_overlog::Expr`] into [`PExpr`]. Built-in functions
//! are **interned at plan time**: the surface name (`f_now`, `f_sha1`,
//! ...) is resolved to a [`Builtin`] enum and arity-checked once, during
//! compilation, so per-tuple evaluation dispatches on an enum instead of
//! matching a `String`. Evaluation then needs only a `&[Option<Value>]`
//! environment and an [`EvalCtx`] that supplies the impure built-ins —
//! which is how virtual time and deterministic randomness are injected by
//! the simulator.
//!
//! Evaluation never panics: ill-typed operations surface as
//! [`EvalError`], and the strand drops that binding (counting it in node
//! diagnostics), exactly as a robust runtime must treat expressions over
//! tuples that arrived off the wire. Unknown functions and wrong arities
//! are impossible at runtime: they are rejected at plan time as
//! [`ExprError`].

use p2_overlog::{BinOp, Expr, UnOp};
use p2_types::{Addr, Interval, RingId, Time, Value, ValueError};
use std::fmt;

/// An interned built-in function.
///
/// Resolution and arity checking happen once, at plan time
/// ([`Builtin::resolve`]); the evaluator dispatches on the enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `f_now()` — current (virtual or real) time.
    Now,
    /// `f_rand()` — fresh random 64-bit ring value.
    Rand,
    /// `f_randID()` — alias of `f_rand` used for event nonces.
    RandId,
    /// `f_sha1(x)` — hash the display form onto the 64-bit ring.
    Sha1,
    /// `f_localAddr()` — the evaluating node's own address.
    LocalAddr,
    /// `f_pow2(i)` — `2^i` as a ring identifier (finger targets).
    Pow2,
    /// `f_addr(x)` — coerce a string to an address.
    AddrOf,
}

impl Builtin {
    /// Resolve a surface name to a built-in.
    pub fn resolve(name: &str) -> Option<Builtin> {
        Some(match name {
            "f_now" => Builtin::Now,
            "f_rand" => Builtin::Rand,
            "f_randID" => Builtin::RandId,
            "f_sha1" => Builtin::Sha1,
            "f_localAddr" => Builtin::LocalAddr,
            "f_pow2" => Builtin::Pow2,
            "f_addr" => Builtin::AddrOf,
            _ => return None,
        })
    }

    /// The source-level name.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Now => "f_now",
            Builtin::Rand => "f_rand",
            Builtin::RandId => "f_randID",
            Builtin::Sha1 => "f_sha1",
            Builtin::LocalAddr => "f_localAddr",
            Builtin::Pow2 => "f_pow2",
            Builtin::AddrOf => "f_addr",
        }
    }

    /// Required argument count (checked at plan time).
    pub fn arity(self) -> usize {
        match self {
            Builtin::Now | Builtin::Rand | Builtin::RandId | Builtin::LocalAddr => 0,
            Builtin::Sha1 | Builtin::Pow2 | Builtin::AddrOf => 1,
        }
    }

    /// Whether the function is a pure value → value map (foldable and
    /// freely movable by optimizer passes). Impure built-ins read the
    /// evaluation context (time, RNG, node identity) and must keep their
    /// evaluation count and relative order.
    pub fn is_pure(self) -> bool {
        match self {
            Builtin::Sha1 | Builtin::Pow2 | Builtin::AddrOf => true,
            Builtin::Now | Builtin::Rand | Builtin::RandId | Builtin::LocalAddr => false,
        }
    }
}

/// A compiled expression: variables are environment slot indexes.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    /// Environment slot reference.
    Slot(usize),
    /// Literal.
    Const(Value),
    /// Unary operation.
    Unary(UnOp, Box<PExpr>),
    /// Binary operation.
    Binary(BinOp, Box<PExpr>, Box<PExpr>),
    /// Ring-interval membership.
    In {
        /// Tested expression.
        expr: Box<PExpr>,
        /// Lower endpoint.
        lo: Box<PExpr>,
        /// Upper endpoint.
        hi: Box<PExpr>,
        /// `[` vs `(`.
        lo_closed: bool,
        /// `]` vs `)`.
        hi_closed: bool,
    },
    /// Built-in function call (interned and arity-checked at plan time).
    Call {
        /// The built-in.
        func: Builtin,
        /// Compiled arguments.
        args: Vec<PExpr>,
    },
    /// List constructor.
    List(Vec<PExpr>),
}

impl PExpr {
    /// Whether evaluating the expression is referentially transparent:
    /// no context reads (time, RNG, node address) anywhere inside. Pure
    /// expressions may be folded at plan time and re-ordered/de-duplicated
    /// by optimizer passes; impure ones must keep their evaluation count
    /// and order.
    pub fn is_pure(&self) -> bool {
        match self {
            PExpr::Slot(_) | PExpr::Const(_) => true,
            PExpr::Unary(_, e) => e.is_pure(),
            PExpr::Binary(_, a, b) => a.is_pure() && b.is_pure(),
            PExpr::In { expr, lo, hi, .. } => expr.is_pure() && lo.is_pure() && hi.is_pure(),
            PExpr::Call { func, args } => func.is_pure() && args.iter().all(|a| a.is_pure()),
            PExpr::List(items) => items.iter().all(|i| i.is_pure()),
        }
    }

    /// Collect the environment slots the expression reads into `out`.
    pub fn slots(&self, out: &mut Vec<usize>) {
        match self {
            PExpr::Slot(s) => {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
            PExpr::Const(_) => {}
            PExpr::Unary(_, e) => e.slots(out),
            PExpr::Binary(_, a, b) => {
                a.slots(out);
                b.slots(out);
            }
            PExpr::In { expr, lo, hi, .. } => {
                expr.slots(out);
                lo.slots(out);
                hi.slots(out);
            }
            PExpr::Call { args, .. } => {
                for a in args {
                    a.slots(out);
                }
            }
            PExpr::List(items) => {
                for i in items {
                    i.slots(out);
                }
            }
        }
    }
}

/// Plan-time expression errors: problems detectable (and detected) during
/// compilation, never at tuple-processing time.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprError {
    /// The source names a function no built-in resolves to.
    UnknownFunction(String),
    /// A built-in was called with the wrong number of arguments.
    Arity {
        /// Function name.
        func: String,
        /// Expected argument count.
        expected: usize,
        /// Got.
        got: usize,
    },
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownFunction(n) => write!(f, "unknown function {n}"),
            ExprError::Arity {
                func,
                expected,
                got,
            } => write!(f, "{func} expects {expected} args, got {got}"),
        }
    }
}

impl std::error::Error for ExprError {}

/// Errors during expression evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A value-level operation failed (type mismatch, div by zero, ...).
    Value(ValueError),
    /// A referenced slot was not bound (planner bug or engine misuse —
    /// validation should make this unreachable, but we fail closed).
    UnboundSlot(usize),
    /// A condition evaluated to a non-boolean.
    NotBoolean,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Value(e) => write!(f, "{e}"),
            EvalError::UnboundSlot(i) => write!(f, "unbound variable slot {i}"),
            EvalError::NotBoolean => write!(f, "condition did not evaluate to a boolean"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ValueError> for EvalError {
    fn from(e: ValueError) -> Self {
        EvalError::Value(e)
    }
}

/// Built-in function context. The node runtime implements this; tests use
/// [`FixedCtx`].
pub trait EvalCtx {
    /// Current time (`f_now()`), virtual or real.
    fn now(&self) -> Time;
    /// Fresh random 64-bit value (`f_rand()`, `periodic` nonces).
    fn rand(&mut self) -> u64;
    /// The local node's address (`f_localAddr()` extension).
    fn local_addr(&self) -> Addr;
}

/// A trivial context for tests and offline evaluation.
#[derive(Debug, Clone)]
pub struct FixedCtx {
    /// The time `f_now()` reports.
    pub now: Time,
    /// Deterministic counter backing `f_rand()`.
    pub next_rand: u64,
    /// The address `f_localAddr()` reports.
    pub addr: Addr,
}

impl Default for FixedCtx {
    fn default() -> Self {
        FixedCtx {
            now: Time::ZERO,
            next_rand: 1,
            addr: Addr::new("test"),
        }
    }
}

impl EvalCtx for FixedCtx {
    fn now(&self) -> Time {
        self.now
    }
    fn rand(&mut self) -> u64 {
        let v = self.next_rand;
        self.next_rand += 1;
        v
    }
    fn local_addr(&self) -> Addr {
        self.addr.clone()
    }
}

/// Compile an AST expression given a variable→slot mapping.
///
/// Every variable must be present in `slot_of` (validation guarantees
/// boundness; the compiler passes the rule's full slot map). Function
/// calls are interned: unknown names and wrong arities are compile
/// errors, not per-tuple runtime errors.
pub fn compile_expr<F>(e: &Expr, slot_of: &F) -> Result<PExpr, ExprError>
where
    F: Fn(&str) -> usize,
{
    Ok(match e {
        Expr::Var(v) => PExpr::Slot(slot_of(v)),
        Expr::Const(c) => PExpr::Const(c.clone()),
        Expr::Unary(op, inner) => PExpr::Unary(*op, Box::new(compile_expr(inner, slot_of)?)),
        Expr::Binary(op, a, b) => PExpr::Binary(
            *op,
            Box::new(compile_expr(a, slot_of)?),
            Box::new(compile_expr(b, slot_of)?),
        ),
        Expr::In {
            expr,
            lo,
            hi,
            lo_closed,
            hi_closed,
        } => PExpr::In {
            expr: Box::new(compile_expr(expr, slot_of)?),
            lo: Box::new(compile_expr(lo, slot_of)?),
            hi: Box::new(compile_expr(hi, slot_of)?),
            lo_closed: *lo_closed,
            hi_closed: *hi_closed,
        },
        Expr::Call { func, args } => {
            let builtin =
                Builtin::resolve(func).ok_or_else(|| ExprError::UnknownFunction(func.clone()))?;
            if args.len() != builtin.arity() {
                return Err(ExprError::Arity {
                    func: func.clone(),
                    expected: builtin.arity(),
                    got: args.len(),
                });
            }
            PExpr::Call {
                func: builtin,
                args: args
                    .iter()
                    .map(|a| compile_expr(a, slot_of))
                    .collect::<Result<_, _>>()?,
            }
        }
        Expr::List(items) => PExpr::List(
            items
                .iter()
                .map(|a| compile_expr(a, slot_of))
                .collect::<Result<_, _>>()?,
        ),
    })
}

/// Evaluate a compiled expression.
pub fn eval(e: &PExpr, env: &[Option<Value>], ctx: &mut dyn EvalCtx) -> Result<Value, EvalError> {
    match e {
        PExpr::Slot(i) => env
            .get(*i)
            .and_then(|v| v.clone())
            .ok_or(EvalError::UnboundSlot(*i)),
        PExpr::Const(c) => Ok(c.clone()),
        PExpr::Unary(UnOp::Neg, inner) => match eval(inner, env, ctx)? {
            Value::Int(n) => Ok(Value::Int(-n)),
            Value::Float(x) => Ok(Value::Float(-x)),
            other => Err(ValueError::type_mismatch("number", &other).into()),
        },
        PExpr::Unary(UnOp::Not, inner) => match eval(inner, env, ctx)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(ValueError::type_mismatch("bool", &other).into()),
        },
        PExpr::Binary(op, a, b) => {
            // Short-circuit boolean connectives.
            match op {
                BinOp::And => {
                    return Ok(Value::Bool(
                        truthy(&eval(a, env, ctx)?)? && truthy(&eval(b, env, ctx)?)?,
                    ))
                }
                BinOp::Or => {
                    return Ok(Value::Bool(
                        truthy(&eval(a, env, ctx)?)? || truthy(&eval(b, env, ctx)?)?,
                    ))
                }
                _ => {}
            }
            let x = eval(a, env, ctx)?;
            let y = eval(b, env, ctx)?;
            eval_binop(*op, &x, &y)
        }
        PExpr::In {
            expr,
            lo,
            hi,
            lo_closed,
            hi_closed,
        } => {
            let x = eval(expr, env, ctx)?.as_ring_id()?;
            let lo = eval(lo, env, ctx)?.as_ring_id()?;
            let hi = eval(hi, env, ctx)?.as_ring_id()?;
            let iv = Interval {
                lo,
                hi,
                lo_closed: *lo_closed,
                hi_closed: *hi_closed,
            };
            Ok(Value::Bool(iv.contains(x)))
        }
        PExpr::Call { func, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, env, ctx)?);
            }
            call_builtin(*func, &vals, ctx)
        }
        PExpr::List(items) => {
            let mut vals = Vec::with_capacity(items.len());
            for i in items {
                vals.push(eval(i, env, ctx)?);
            }
            Ok(Value::list(vals))
        }
    }
}

/// Evaluate a non-short-circuiting binary operator over two values.
/// Shared by the runtime evaluator and the plan-time constant folder.
pub(crate) fn eval_binop(op: BinOp, x: &Value, y: &Value) -> Result<Value, EvalError> {
    Ok(match op {
        BinOp::Add => x.add(y)?,
        BinOp::Sub => x.sub(y)?,
        BinOp::Mul => x.mul(y)?,
        BinOp::Div => x.div(y)?,
        BinOp::Rem => x.rem(y)?,
        BinOp::Eq => Value::Bool(x == y),
        BinOp::Ne => Value::Bool(x != y),
        BinOp::Lt => Value::Bool(x < y),
        BinOp::Le => Value::Bool(x <= y),
        BinOp::Gt => Value::Bool(x > y),
        BinOp::Ge => Value::Bool(x >= y),
        BinOp::And | BinOp::Or => unreachable!("connectives short-circuit in eval"),
    })
}

/// Interpret a value as a boolean condition result.
pub fn truthy(v: &Value) -> Result<bool, EvalError> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(EvalError::NotBoolean),
    }
}

fn call_builtin(func: Builtin, args: &[Value], ctx: &mut dyn EvalCtx) -> Result<Value, EvalError> {
    match func {
        Builtin::Now => Ok(Value::Time(ctx.now())),
        Builtin::Rand | Builtin::RandId => Ok(Value::Id(RingId(ctx.rand()))),
        // The paper's prototype hashes with SHA-1; only the spread over
        // the ring matters (DESIGN.md §2.4), so we hash the display form
        // with FNV-1a into the 64-bit ring.
        Builtin::Sha1 => {
            let s = args[0].to_string();
            Ok(Value::Id(RingId(p2_types::rng::fnv1a(s.as_bytes()))))
        }
        Builtin::LocalAddr => Ok(Value::Addr(ctx.local_addr())),
        Builtin::Pow2 => {
            let i = args[0].as_int().map_err(EvalError::Value)?;
            if !(0..64).contains(&i) {
                return Err(EvalError::Value(p2_types::ValueError::TypeMismatch {
                    expected: "exponent in [0, 64)",
                    found: "int",
                }));
            }
            Ok(Value::Id(RingId(1u64 << i)))
        }
        Builtin::AddrOf => Ok(Value::Addr(Addr::new(args[0].to_string()))),
    }
}

/// Evaluate a pure, closed expression at plan time. Returns `None` when
/// the expression reads slots or the context (not constant), or when the
/// constant operation fails (left for the runtime to count as an eval
/// error, preserving `Off`-level semantics).
pub fn const_eval(e: &PExpr) -> Option<Value> {
    if !e.is_pure() {
        return None;
    }
    let mut slots = Vec::new();
    e.slots(&mut slots);
    if !slots.is_empty() {
        return None;
    }
    // Pure and closed: a FixedCtx is never consulted.
    let mut ctx = FixedCtx::default();
    eval(e, &[], &mut ctx).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_overlog::parse_program;
    use p2_overlog::{Statement, Term};

    /// Helper: compile the first condition/assignment expression from a
    /// one-rule program with the given variable order.
    fn compile_cond(src: &str, vars: &[&str]) -> PExpr {
        let p = parse_program(src).unwrap();
        let rule = match &p.statements[0] {
            Statement::Rule(r) => r.clone(),
            _ => panic!(),
        };
        let e = rule
            .body
            .iter()
            .find_map(|t| match t {
                Term::Cond { expr, .. } => Some(expr.clone()),
                Term::Assign { expr, .. } => Some(expr.clone()),
                _ => None,
            })
            .unwrap();
        compile_expr(&e, &|v| vars.iter().position(|x| *x == v).expect("var")).unwrap()
    }

    fn env(vals: &[Value]) -> Vec<Option<Value>> {
        vals.iter().cloned().map(Some).collect()
    }

    #[test]
    fn arith_and_compare() {
        let e = compile_cond("r h@A() :- t@A(X, Y), X + 1 < Y * 2.", &["A", "X", "Y"]);
        let mut ctx = FixedCtx::default();
        let out = eval(
            &e,
            &env(&[Value::addr("a"), Value::Int(3), Value::Int(3)]),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(out, Value::Bool(true));
        let out = eval(
            &e,
            &env(&[Value::addr("a"), Value::Int(10), Value::Int(3)]),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(out, Value::Bool(false));
    }

    #[test]
    fn interval_eval() {
        let e = compile_cond(
            "r h@A() :- t@A(K, N, S), K in (N, S].",
            &["A", "K", "N", "S"],
        );
        let mut ctx = FixedCtx::default();
        let yes = eval(
            &e,
            &env(&[Value::addr("a"), Value::id(5), Value::id(1), Value::id(9)]),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(yes, Value::Bool(true));
        let no = eval(
            &e,
            &env(&[Value::addr("a"), Value::id(0), Value::id(1), Value::id(9)]),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(no, Value::Bool(false));
    }

    #[test]
    fn builtins() {
        let mut ctx = FixedCtx {
            now: Time::from_secs(9),
            ..Default::default()
        };
        let now = eval(
            &PExpr::Call {
                func: Builtin::Now,
                args: vec![],
            },
            &[],
            &mut ctx,
        )
        .unwrap();
        assert_eq!(now, Value::Time(Time::from_secs(9)));
        let r1 = eval(
            &PExpr::Call {
                func: Builtin::Rand,
                args: vec![],
            },
            &[],
            &mut ctx,
        )
        .unwrap();
        let r2 = eval(
            &PExpr::Call {
                func: Builtin::Rand,
                args: vec![],
            },
            &[],
            &mut ctx,
        )
        .unwrap();
        assert_ne!(r1, r2);
        let h1 = eval(
            &PExpr::Call {
                func: Builtin::Sha1,
                args: vec![PExpr::Const(Value::str("n1"))],
            },
            &[],
            &mut ctx,
        )
        .unwrap();
        let h2 = eval(
            &PExpr::Call {
                func: Builtin::Sha1,
                args: vec![PExpr::Const(Value::str("n1"))],
            },
            &[],
            &mut ctx,
        )
        .unwrap();
        assert_eq!(h1, h2, "hash is deterministic");
    }

    #[test]
    fn unknown_function_rejected_at_compile_time() {
        let p = parse_program("r h@A(X) :- t@A(X), Y := f_nope(), Y == Y.").unwrap();
        let rule = match &p.statements[0] {
            Statement::Rule(r) => r.clone(),
            _ => panic!(),
        };
        let e = rule
            .body
            .iter()
            .find_map(|t| match t {
                Term::Assign { expr, .. } => Some(expr.clone()),
                _ => None,
            })
            .unwrap();
        let err = compile_expr(&e, &|_| 0).unwrap_err();
        assert!(matches!(err, ExprError::UnknownFunction(ref n) if n == "f_nope"));
    }

    #[test]
    fn arity_rejected_at_compile_time() {
        let e = Expr::Call {
            func: "f_now".into(),
            args: vec![Expr::Const(Value::Int(1))],
        };
        let err = compile_expr(&e, &|_| 0).unwrap_err();
        assert!(matches!(
            err,
            ExprError::Arity {
                expected: 0,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn unbound_slot_is_error_not_panic() {
        let mut ctx = FixedCtx::default();
        let e = PExpr::Slot(7);
        assert_eq!(eval(&e, &[], &mut ctx), Err(EvalError::UnboundSlot(7)));
        let partial: Vec<Option<Value>> = vec![None];
        assert_eq!(
            eval(&PExpr::Slot(0), &partial, &mut ctx),
            Err(EvalError::UnboundSlot(0))
        );
    }

    #[test]
    fn short_circuit_or() {
        // sr11: (C > 0) || (Src == Remote).
        let e = compile_cond(
            "r h@A() :- t@A(C, S, R), (C > 0) || (S == R).",
            &["A", "C", "S", "R"],
        );
        let mut ctx = FixedCtx::default();
        let out = eval(
            &e,
            &env(&[
                Value::addr("a"),
                Value::Int(1),
                Value::addr("x"),
                Value::addr("y"),
            ]),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(out, Value::Bool(true));
        let out = eval(
            &e,
            &env(&[
                Value::addr("a"),
                Value::Int(0),
                Value::addr("x"),
                Value::addr("x"),
            ]),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(out, Value::Bool(true));
        let out = eval(
            &e,
            &env(&[
                Value::addr("a"),
                Value::Int(0),
                Value::addr("x"),
                Value::addr("y"),
            ]),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(out, Value::Bool(false));
    }

    #[test]
    fn division_by_zero_propagates() {
        let e = compile_cond("r h@A() :- t@A(X), X / 0 == 1.", &["A", "X"]);
        let mut ctx = FixedCtx::default();
        let err = eval(&e, &env(&[Value::addr("a"), Value::Int(5)]), &mut ctx).unwrap_err();
        assert!(matches!(err, EvalError::Value(ValueError::DivisionByZero)));
    }

    #[test]
    fn list_literal() {
        let e = compile_cond("r h@A() :- t@A(B, P), [B, B] + P == P.", &["A", "B", "P"]);
        // Just evaluate the LHS shape through the comparison.
        let mut ctx = FixedCtx::default();
        let out = eval(
            &e,
            &env(&[
                Value::addr("a"),
                Value::str("b"),
                Value::list([Value::str("c")]),
            ]),
            &mut ctx,
        )
        .unwrap();
        assert_eq!(out, Value::Bool(false));
    }

    #[test]
    fn not_boolean_condition() {
        let mut ctx = FixedCtx::default();
        let e = PExpr::Binary(
            BinOp::And,
            Box::new(PExpr::Const(Value::Int(1))),
            Box::new(PExpr::Const(Value::Bool(true))),
        );
        assert!(matches!(
            eval(&e, &[], &mut ctx),
            Err(EvalError::NotBoolean)
        ));
    }

    #[test]
    fn purity_classification() {
        assert!(PExpr::Call {
            func: Builtin::Sha1,
            args: vec![PExpr::Slot(0)]
        }
        .is_pure());
        assert!(!PExpr::Call {
            func: Builtin::Now,
            args: vec![]
        }
        .is_pure());
        assert!(!PExpr::Binary(
            BinOp::Add,
            Box::new(PExpr::Const(Value::Int(1))),
            Box::new(PExpr::Call {
                func: Builtin::Rand,
                args: vec![]
            }),
        )
        .is_pure());
    }

    #[test]
    fn const_eval_folds_closed_pure_exprs() {
        let e = PExpr::Binary(
            BinOp::Add,
            Box::new(PExpr::Const(Value::Int(2))),
            Box::new(PExpr::Const(Value::Int(3))),
        );
        assert_eq!(const_eval(&e), Some(Value::Int(5)));
        // Slots block folding.
        let open = PExpr::Binary(
            BinOp::Add,
            Box::new(PExpr::Slot(0)),
            Box::new(PExpr::Const(Value::Int(3))),
        );
        assert_eq!(const_eval(&open), None);
        // Impure calls block folding.
        let imp = PExpr::Call {
            func: Builtin::Rand,
            args: vec![],
        };
        assert_eq!(const_eval(&imp), None);
        // Failing constant ops are left for the runtime.
        let bad = PExpr::Binary(
            BinOp::Div,
            Box::new(PExpr::Const(Value::Int(1))),
            Box::new(PExpr::Const(Value::Int(0))),
        );
        assert_eq!(const_eval(&bad), None);
        // Pure builtins fold too.
        let pow = PExpr::Call {
            func: Builtin::Pow2,
            args: vec![PExpr::Const(Value::Int(4))],
        };
        assert_eq!(const_eval(&pow), Some(Value::id(16)));
    }
}
