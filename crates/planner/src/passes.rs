//! Rewrite passes over the logical IR and the lowered plan.
//!
//! Pass order (DESIGN.md §2.6):
//!
//! 1. **Schedule** ([`schedule_ops`], IR level): one greedy pass that
//!    combines *selection/assignment pushdown* (stateless ops run as
//!    soon as their variables are bound) with *index-aware join
//!    reordering* (among executable joins, probe the one the PR-1
//!    secondary indexes can answer with an equality lookup first).
//! 2. **Fold** ([`fold_strand`], plan level): constant-fold `PExpr`s
//!    bottom-up, promote folded `EqExpr` field matches to `EqConst`
//!    (making them index-probeable), drop provably-true selections, and
//!    report provably-false ones as dead-rule diagnostics.
//! 3. **Share** ([`shared_prefix_groups`], program level): rules with
//!    the same trigger and an identical join pipeline share one strand
//!    prefix in the dataflow graph; only their stateless tails and
//!    heads stay separate.
//!
//! ## Invariants each pass preserves
//!
//! The oracle is `OptLevel::Off` (source-order compilation): for any
//! program and any input stream, the optimized plan must produce the
//! same output tuple **multiset**. Three rules keep that true:
//!
//! * **Impure ops are pinned.** An op calling `f_now`/`f_rand`/
//!   `f_randID`/`f_localAddr` keeps its order relative to every join
//!   and every other op. Moving one across a join changes its
//!   evaluation *count* (the binding multiset grows at each join), and
//!   with it the RNG stream; reordering two impure ops swaps their
//!   draws. Pure ops likewise never cross an impure op in either
//!   direction, because filtering earlier would change how many times
//!   the impure op runs.
//! * **Joins only move where their inputs exist.** A join whose
//!   embedded expression argument (`t@N(X + 1)`) reads unbound
//!   variables is not yet executable and cannot be hoisted above its
//!   binders. Pure join reordering is otherwise multiset-safe: the
//!   conjunctive body is order-independent.
//! * **Folding never invents failure or success.** A constant
//!   subexpression whose evaluation *errors* (division by zero) is
//!   left unfolded for the runtime to count, exactly as `Off` would.
//!   Always-false selections are kept (cheap, and the strand stays
//!   inspectable) but reported as diagnostics.
//!
//! Shared prefixes additionally require the *whole member strand* to be
//! pure: sharing evaluates the prefix once instead of once per member,
//! which would change RNG draws if anything impure were involved, and
//! the stateless tails run per member at finalize time.

use crate::expr::{const_eval, PExpr};
use crate::ir::{IrOp, StrandIr};
use crate::plan::{Diagnostic, FieldMatch, FieldOut, MatchSpec, Op, PrefixGroup, Strand, Trigger};
use p2_overlog::{Arg, Predicate};
use std::collections::HashSet;

/// How hard the planner tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// Source-order compilation, no rewrites: the semantic oracle.
    Off,
    /// All passes: pushdown, join reordering, folding, prefix sharing.
    #[default]
    Full,
}

/// Planner options (threaded through `compile_program_with`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanOpts {
    /// Optimization level.
    pub level: OptLevel,
    /// Which history `past()` predicates range over. `Local` (the
    /// default) compiles the pre-shipping behavior bit-for-bit;
    /// `Deployment` lowers every archive scan against the collected
    /// histories of all known nodes (DESIGN.md §2.12).
    pub history: crate::plan::HistoryProvider,
}

impl PlanOpts {
    /// Options with every pass disabled.
    pub fn off() -> PlanOpts {
        PlanOpts {
            level: OptLevel::Off,
            ..PlanOpts::default()
        }
    }

    /// Options lowering `past()` against deployment-wide history.
    pub fn deployment() -> PlanOpts {
        PlanOpts {
            history: crate::plan::HistoryProvider::Deployment,
            ..PlanOpts::default()
        }
    }
}

// ---------------------------------------------------------------- schedule

/// Reorder a strand's body ops: push stateless ops down to their
/// earliest legal position and pick join order by probe quality.
///
/// Greedy loop over the remaining ops. Each step first drains every
/// *ready* stateless op in source order (pushdown), then emits the
/// ready join with the best probe score (ties break toward source
/// order, keeping the result deterministic). An op is ready when its
/// required variables are bound and ordering constraints hold: every
/// op waits for all earlier-in-source impure ops, and an impure op
/// additionally waits for all earlier-in-source joins.
///
/// The source order itself is always a legal completion (validation
/// guarantees it), and the earliest-unemitted op is always ready — so
/// the loop provably terminates with all ops emitted.
pub fn schedule_ops(ir: &mut StrandIr) {
    let ops = std::mem::take(&mut ir.ops);
    let n = ops.len();
    let pure: Vec<bool> = ops.iter().map(|o| o.is_pure()).collect();
    // Archive scans are stateful stages: for ordering purposes they are
    // joins (impure ops must not cross them; they are reorderable among
    // themselves by probe quality, where a scan always scores 0).
    let join: Vec<bool> = ops
        .iter()
        .map(|o| matches!(o, IrOp::Join(_) | IrOp::Past(_)))
        .collect();
    let mut emitted = vec![false; n];
    let mut bound = ir.initial_bound();
    let mut out: Vec<IrOp> = Vec::with_capacity(n);

    let ready = |i: usize, emitted: &[bool], bound: &HashSet<String>| -> bool {
        if !ops[i].required_vars().iter().all(|v| bound.contains(v)) {
            return false;
        }
        // Order constraints against earlier-in-source ops.
        for j in 0..i {
            if emitted[j] {
                continue;
            }
            if !pure[j] {
                return false; // nobody crosses an impure op
            }
            if !pure[i] && join[j] {
                return false; // impure ops never cross a join
            }
        }
        true
    };

    while out.len() < n {
        // Pushdown: drain ready stateless ops in source order.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for i in 0..n {
                if !emitted[i] && !join[i] && ready(i, &emitted, &bound) {
                    for v in ops[i].bound_vars() {
                        bound.insert(v);
                    }
                    emitted[i] = true;
                    out.push(ops[i].clone());
                    progressed = true;
                }
            }
        }
        if out.len() == n {
            break;
        }
        // Join choice: best probe score among ready joins; stable ties.
        let mut best: Option<(u8, usize)> = None;
        for i in 0..n {
            if emitted[i] || !join[i] || !ready(i, &emitted, &bound) {
                continue;
            }
            let score = match &ops[i] {
                IrOp::Join(p) => probe_score(p, &bound),
                // An archive scan reads whole segments; it never probes.
                IrOp::Past(_) => 0,
                _ => unreachable!("join[i] holds only for stateful ops"),
            };
            if best.map(|(s, _)| score > s).unwrap_or(true) {
                best = Some((score, i));
            }
        }
        #[expect(
            clippy::expect_used,
            reason = "the loop runs while fewer than n ops are emitted, so one remains"
        )]
        let i = match best {
            Some((_, i)) => i,
            // Unreachable for validated rules; fall back to source order
            // rather than loop forever on a planner bug.
            None => (0..n).find(|&i| !emitted[i]).expect("ops remain"),
        };
        for v in ops[i].bound_vars() {
            bound.insert(v);
        }
        emitted[i] = true;
        out.push(ops[i].clone());
    }
    ir.ops = out;
}

/// How well a join over `p` probes given the bound set, mirroring
/// [`MatchSpec::probe_field`]: `2` = an equality field beyond the
/// location (a selective index probe), `1` = equality on the location
/// only, `0` = full scan. Repeated variables within the predicate count
/// (the second occurrence lowers to `EqVar`).
fn probe_score(p: &Predicate, bound: &HashSet<String>) -> u8 {
    let mut local: HashSet<&str> = HashSet::new();
    let mut loc_eq = false;
    for (i, a) in p.args.iter().enumerate() {
        let eq = match a {
            Arg::Const(_) => true,
            Arg::Var(v) => {
                let b = bound.contains(v.as_str()) || local.contains(v.as_str());
                if !b {
                    local.insert(v);
                }
                b
            }
            _ => false, // Expr lowers to EqExpr (not index-probeable), Wildcard ignores
        };
        if eq {
            if i == 0 {
                loc_eq = true;
            } else {
                return 2;
            }
        }
    }
    u8::from(loc_eq)
}

// ---------------------------------------------------------------- fold

/// Constant-fold a single compiled expression, bottom-up. Pure, closed
/// subtrees whose evaluation succeeds become [`PExpr::Const`]; anything
/// else (slots, impure calls, erroring constants) is left in place.
pub fn fold_pexpr(e: PExpr) -> PExpr {
    let folded = match e {
        PExpr::Slot(_) | PExpr::Const(_) => return e,
        PExpr::Unary(op, a) => PExpr::Unary(op, Box::new(fold_pexpr(*a))),
        PExpr::Binary(op, a, b) => {
            PExpr::Binary(op, Box::new(fold_pexpr(*a)), Box::new(fold_pexpr(*b)))
        }
        PExpr::In {
            expr,
            lo,
            hi,
            lo_closed,
            hi_closed,
        } => PExpr::In {
            expr: Box::new(fold_pexpr(*expr)),
            lo: Box::new(fold_pexpr(*lo)),
            hi: Box::new(fold_pexpr(*hi)),
            lo_closed,
            hi_closed,
        },
        PExpr::Call { func, args } => PExpr::Call {
            func,
            args: args.into_iter().map(fold_pexpr).collect(),
        },
        PExpr::List(items) => PExpr::List(items.into_iter().map(fold_pexpr).collect()),
    };
    match const_eval(&folded) {
        Some(v) => PExpr::Const(v),
        None => folded,
    }
}

fn fold_match_spec(ms: &mut MatchSpec) {
    for f in &mut ms.fields {
        if let FieldMatch::EqExpr(e) = f {
            let folded = fold_pexpr(e.clone());
            *f = match folded {
                PExpr::Const(v) => FieldMatch::EqConst(v),
                other => FieldMatch::EqExpr(other),
            };
        }
    }
}

/// Constant-fold every expression in a lowered strand and surface
/// dead-rule diagnostics. Provably-true selections are removed;
/// provably-false ones stay (they cost one comparison and keep the
/// strand inspectable) but are reported.
pub fn fold_strand(strand: &mut Strand, diagnostics: &mut Vec<Diagnostic>) {
    fold_match_spec(&mut strand.trigger_match);
    let ops = std::mem::take(&mut strand.ops);
    for mut op in ops {
        match &mut op {
            Op::Select(e) => {
                let folded = fold_pexpr(e.clone());
                match &folded {
                    PExpr::Const(p2_types::Value::Bool(true)) => continue, // tautology
                    PExpr::Const(p2_types::Value::Bool(false)) => {
                        diagnostics.push(Diagnostic {
                            code: "P2W501",
                            strand_id: strand.strand_id.clone(),
                            message: format!(
                                "rule {}: selection is always false — the rule is dead \
                                 and can never produce output",
                                strand.rule_label
                            ),
                        });
                    }
                    PExpr::Const(_) => {
                        diagnostics.push(Diagnostic {
                            code: "P2W502",
                            strand_id: strand.strand_id.clone(),
                            message: format!(
                                "rule {}: selection always evaluates to a non-boolean — \
                                 every binding will be dropped as an eval error",
                                strand.rule_label
                            ),
                        });
                    }
                    _ => {}
                }
                *e = folded;
            }
            Op::Assign { expr, .. } => *expr = fold_pexpr(expr.clone()),
            Op::Join { match_spec, .. } => fold_match_spec(match_spec),
            Op::ArchiveScan {
                t0, t1, match_spec, ..
            } => {
                *t0 = fold_pexpr(t0.clone());
                *t1 = fold_pexpr(t1.clone());
                fold_match_spec(match_spec);
            }
        }
        strand.ops.push(op);
    }
    for f in &mut strand.head.fields {
        if let FieldOut::Expr(e) = f {
            let folded = fold_pexpr(e.clone());
            *f = match folded {
                PExpr::Const(v) => FieldOut::Const(v),
                other => FieldOut::Expr(other),
            };
        }
    }
    if let Some(agg) = &mut strand.head.agg {
        if let Some(over) = &mut agg.over {
            *over = fold_pexpr(over.clone());
        }
    }
}

// ---------------------------------------------------------------- share

/// A strand may join a shared-prefix family when its *entire* join
/// pipeline could be the common prefix and everything it computes is
/// pure (see module docs for why purity is required).
fn sharable(s: &Strand) -> bool {
    if s.head.agg.is_some() || s.join_count() == 0 {
        return false;
    }
    if matches!(s.trigger, Trigger::Periodic { .. }) {
        // Periodic strands own a timer and a per-firing nonce; merging
        // them would merge timers.
        return false;
    }
    let pure_match = |ms: &MatchSpec| {
        ms.fields.iter().all(|f| match f {
            FieldMatch::EqExpr(e) => e.is_pure(),
            _ => true,
        })
    };
    if !pure_match(&s.trigger_match) {
        return false;
    }
    let ops_pure = s.ops.iter().all(|op| match op {
        Op::Select(e) => e.is_pure(),
        Op::Assign { expr, .. } => expr.is_pure(),
        Op::Join { match_spec, .. } => pure_match(match_spec),
        // Archive scans read mutable history (segments seal and expire
        // between firings); never merge them into a shared prefix.
        Op::ArchiveScan { .. } => false,
    });
    ops_pure
        && s.head.fields.iter().all(|f| match f {
            FieldOut::Expr(e) => e.is_pure(),
            _ => true,
        })
}

/// Number of leading ops up to and including the last join — the
/// candidate shared region (the tail beyond it is stateless).
#[expect(
    clippy::expect_used,
    reason = "only strands that passed the sharable() join check are grouped"
)]
fn prefix_len(s: &Strand) -> usize {
    s.ops
        .iter()
        .rposition(|o| matches!(o, Op::Join { .. }))
        .map(|i| i + 1)
        .expect("sharable strands have joins")
}

/// Group strands whose trigger, trigger match, and full join pipeline
/// are identical. Each group with ≥ 2 members becomes one dataflow
/// strand family: the prefix runs once per trigger, the members' tails
/// and heads fan out per result. Deterministic slot lowering guarantees
/// the prefix's slot numbering is identical across members.
pub fn shared_prefix_groups(strands: &[Strand]) -> Vec<PrefixGroup> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (i, s) in strands.iter().enumerate() {
        if !sharable(s) {
            continue;
        }
        let p = prefix_len(s);
        let found = groups.iter_mut().find(|(rep, _)| {
            let r = &strands[*rep];
            prefix_len(r) == p
                && r.trigger == s.trigger
                && r.trigger_match == s.trigger_match
                && r.ops[..p] == s.ops[..p]
        });
        match found {
            Some((_, members)) => members.push(i),
            None => groups.push((i, vec![i])),
        }
    }
    groups
        .into_iter()
        .filter(|(_, members)| members.len() >= 2)
        .map(|(rep, members)| PrefixGroup {
            shared_ops: prefix_len(&strands[rep]),
            members,
        })
        .collect()
}
