// Library code must justify every panic path: unwrap/expect are
// clippy-warned outside tests (see scripts/tier1.sh, which denies
// warnings). Fix the call or carry an #[allow] with a reason.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! # p2-planner — compiling OverLog to executable rule strands
//!
//! The P2 *planner* translates each OverLog rule into one or more **rule
//! strands** — linear chains of database operators (Figure 1 of the
//! paper: network preamble → per-rule strands → network postamble). This
//! crate is the pure compilation half: it takes a validated
//! [`p2_overlog::Program`] plus the set of already-materialized tables on
//! the installing node and produces a [`plan::CompiledProgram`] of
//! [`plan::Strand`]s that the dataflow engine instantiates.
//!
//! Key decisions implemented here (DESIGN.md §2.1):
//!
//! * **Trigger selection.** A body predicate that is not materialized is
//!   a transient *event*; a rule may have at most one event predicate and
//!   it becomes the strand's trigger. A rule over only materialized
//!   predicates gets **one strand per predicate**, each triggered by
//!   insertions into that table (delta rules).
//! * **`periodic` triggers.** `periodic@N(E, T)` compiles to a timer
//!   trigger with period `T`; the runtime synthesizes the event tuple.
//! * **Aggregates.** For an event-triggered aggregate the strand's result
//!   multiset is grouped by the non-aggregate head fields. For a
//!   table-insert-triggered aggregate the strand first binds the delta's
//!   group fields and then **re-joins the trigger table itself**, so the
//!   aggregate is recomputed over the whole table restricted to the
//!   touched group (this is what makes `count<*>` rules like `cs6`,
//!   `os8`, `sr12` report totals, not deltas). A `count<*>` whose group
//!   fields are all bound by the trigger emits `0` on an empty match set
//!   (rule `sr8`/`sr9` depends on this).
//! * **Slot compilation.** Variables are resolved to dense environment
//!   slots at plan time; expressions become [`expr::PExpr`] over slots.

pub mod compile;
pub mod explain;
pub mod expr;
pub mod ir;
pub mod passes;
pub mod plan;

pub use compile::{compile_program, compile_program_with, PlanError};
pub use explain::explain;
pub use expr::{eval, Builtin, EvalCtx, EvalError, ExprError, PExpr};
pub use passes::{OptLevel, PlanOpts};
pub use plan::{
    AggPlan, CompiledProgram, Diagnostic, FieldMatch, FieldOut, HeadSpec, HistoryProvider,
    MatchSpec, Op, PrefixGroup, Strand, TableDecl, Trigger,
};
