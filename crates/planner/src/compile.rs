//! Rule → strand compilation: the staged pipeline driver.
//!
//! Compilation runs in stages per rule strand (DESIGN.md §2.6):
//!
//! 1. [`crate::ir::build_strand_ir`] — normalize to the symbolic IR,
//! 2. [`crate::passes::schedule_ops`] — pushdown + join reordering
//!    (skipped at [`OptLevel::Off`]),
//! 3. [`lower_strand`] — slot allocation in op order, expression
//!    compilation with plan-time builtin interning, head lowering,
//! 4. [`crate::passes::fold_strand`] — constant folding + dead-rule
//!    diagnostics (skipped at `Off`),
//!
//! then, program-wide, [`crate::passes::shared_prefix_groups`] finds
//! strand families and the join probes' index requests are collected.

use crate::expr::{compile_expr, ExprError, PExpr};
use crate::ir::{build_strand_ir, head_group_vars, IrOp, StrandIr};
use crate::passes::{fold_strand, schedule_ops, shared_prefix_groups, OptLevel, PlanOpts};
use crate::plan::*;
use p2_overlog::{
    validate_strict, Arg, Expr, Lifetime, Materialize, Predicate, Program, Rule, SizeLimit,
    Statement, Term, ValidateError,
};
use p2_types::{Addr, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// Planning errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The program failed static validation.
    Invalid(ValidateError),
    /// A rule has more than one non-materialized (event) predicate.
    TwoEventPredicates {
        /// Rule label or index.
        rule: String,
        /// The two event predicate names.
        first: String,
        /// Second offender.
        second: String,
    },
    /// `periodic` was used with a non-constant or non-positive period.
    BadPeriodic {
        /// Rule label or index.
        rule: String,
        /// Explanation.
        message: String,
    },
    /// `periodic` / `past` cannot be materialized or be a rule head.
    ReservedRelation {
        /// The reserved name.
        name: String,
    },
    /// A `past(...)` archive-scan predicate is malformed: bad shape,
    /// unbound interval bounds, or it was the only possible trigger.
    BadPast {
        /// Rule label or index.
        rule: String,
        /// Explanation.
        message: String,
    },
    /// An expression failed to compile (unknown builtin, wrong arity).
    Expr {
        /// Rule label or index.
        rule: String,
        /// The expression-level error.
        error: ExprError,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Invalid(e) => write!(f, "{e}"),
            PlanError::TwoEventPredicates {
                rule,
                first,
                second,
            } => write!(
                f,
                "in {rule}: two event predicates '{first}' and '{second}' — \
                 a rule may have at most one non-materialized predicate"
            ),
            PlanError::BadPeriodic { rule, message } => {
                write!(f, "in {rule}: bad periodic: {message}")
            }
            PlanError::BadPast { rule, message } => {
                write!(f, "in {rule}: bad past(): {message}")
            }
            PlanError::ReservedRelation { name } => {
                write!(f, "'{name}' is a reserved built-in relation")
            }
            PlanError::Expr { rule, error } => write!(f, "in {rule}: {error}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Compile a validated program at the default (full) optimization
/// level. See [`compile_program_with`].
pub fn compile_program(
    program: &Program,
    known_tables: &HashSet<String>,
) -> Result<CompiledProgram, PlanError> {
    compile_program_with(program, known_tables, &PlanOpts::default())
}

/// Compile a validated program.
///
/// `known_tables` is the set of relations already materialized on the
/// installing node — monitoring programs installed on-line read the base
/// application's tables, and classification of predicates as *table
/// match* vs *transient event* depends on it (install order matters and
/// is documented in the crate docs).
///
/// `opts` selects the optimization level; [`OptLevel::Off`] compiles
/// each rule body in literal source order with no rewrites and is the
/// semantic oracle the optimized plans are tested against.
pub fn compile_program_with(
    program: &Program,
    known_tables: &HashSet<String>,
    opts: &PlanOpts,
) -> Result<CompiledProgram, PlanError> {
    validate_strict(program).map_err(PlanError::Invalid)?;
    let optimize = opts.level == OptLevel::Full;

    let mut out = CompiledProgram::default();

    // Materialized set: already-known tables plus this program's own.
    let mut materialized: HashSet<String> = known_tables.clone();
    for m in program.materializations() {
        if m.table == "periodic" || m.table == "past" {
            return Err(PlanError::ReservedRelation {
                name: m.table.clone(),
            });
        }
        materialized.insert(m.table.clone());
        out.tables.push(lower_materialize(m));
    }

    let mut rule_idx = 0usize;
    for stmt in &program.statements {
        let rule = match stmt {
            Statement::Rule(r) => r,
            Statement::Materialize(_) => continue,
        };
        rule_idx += 1;
        let label = rule
            .label
            .clone()
            .unwrap_or_else(|| format!("rule#{rule_idx}"));

        if rule.head.name == "periodic" || rule.head.name == "past" {
            return Err(PlanError::ReservedRelation {
                name: rule.head.name.clone(),
            });
        }

        // Facts: ground heads with no body are injected at install.
        if rule.body.is_empty() {
            out.facts.push(fact_tuple(&rule.head));
            continue;
        }

        // Classify body predicates.
        let preds: Vec<(usize, &Predicate)> = rule
            .body
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t {
                Term::Pred(p) => Some((i, p)),
                _ => None,
            })
            .collect();
        // `past` is never an event and never a trigger: it scans frozen
        // history, so there is no delta to fire on.
        let event_preds: Vec<(usize, &Predicate)> = preds
            .iter()
            .copied()
            .filter(|(_, p)| {
                p.name != "past" && (p.name == "periodic" || !materialized.contains(&p.name))
            })
            .collect();

        if event_preds.len() > 1 {
            return Err(PlanError::TwoEventPredicates {
                rule: label,
                first: event_preds[0].1.name.clone(),
                second: event_preds[1].1.name.clone(),
            });
        }

        let trigger_positions: Vec<usize> = if let Some((i, _)) = event_preds.first() {
            vec![*i]
        } else {
            preds
                .iter()
                .filter(|(_, p)| p.name != "past")
                .map(|(i, _)| *i)
                .collect()
        };
        if trigger_positions.is_empty() {
            return Err(PlanError::BadPast {
                rule: label,
                message: "a rule cannot be triggered by past() alone — add an event, \
                          periodic, or table predicate"
                    .into(),
            });
        }

        let multi = trigger_positions.len() > 1;
        for (k, &tpos) in trigger_positions.iter().enumerate() {
            let strand_id = if multi {
                format!("{label}~{k}")
            } else {
                label.clone()
            };
            let mut ir = build_strand_ir(rule, &label, strand_id, tpos, &materialized)?;
            if optimize {
                schedule_ops(&mut ir);
            }
            let mut strand = lower_strand(&ir, rule, opts)?;
            if optimize {
                fold_strand(&mut strand, &mut out.diagnostics);
            }
            out.strands.push(strand);
        }
    }

    if optimize {
        out.prefix_groups = shared_prefix_groups(&out.strands);
    }

    // Collect the (table, field) pairs the strands' join probes will
    // scan on, so the runtime can register secondary indexes up front.
    let mut requests: BTreeSet<(String, usize)> = BTreeSet::new();
    for strand in &out.strands {
        for op in &strand.ops {
            if let Op::Join { table, match_spec } = op {
                if let Some(field) = match_spec.probe_field() {
                    requests.insert((table.clone(), field));
                }
            }
        }
    }
    out.index_requests = requests.into_iter().collect();
    annotate_flow(&mut out, known_tables);
    Ok(out)
}

/// Post-lowering flow annotations (DESIGN.md §2.13): each strand's
/// worst-case fan-out per firing and its head relation's stratum in
/// the aggregation order. This mirrors, over plan-level data, what the
/// analysis crate's deep passes compute over source — the planner
/// cannot depend on `p2-analysis` (which dry-runs the planner), so the
/// small computation is duplicated here. EXPLAIN renders both; the
/// scheduler consults `stratum` only under stratified dispatch.
fn annotate_flow(out: &mut CompiledProgram, known_tables: &HashSet<String>) {
    // Declared row bounds: Some(Some(n)) finite, Some(None) declared
    // infinity, absent = known-at-runtime table of unknown size.
    let decls: BTreeMap<&str, Option<usize>> = out
        .tables
        .iter()
        .map(|t| (t.name.as_str(), t.max_rows))
        .collect();
    let keyed = |table: &str, ms: &MatchSpec| -> bool {
        let all_eq = ms.fields.iter().all(|f| !matches!(f, FieldMatch::Bind(_)));
        if all_eq {
            return true;
        }
        out.tables
            .iter()
            .find(|t| t.name == table)
            .is_some_and(|t| {
                !t.key_fields.is_empty()
                    && t.key_fields.iter().all(|&k| {
                        ms.fields
                            .get(k)
                            .is_some_and(|f| !matches!(f, FieldMatch::Bind(_) | FieldMatch::Ignore))
                    })
            })
    };

    for s in &mut out.strands {
        let mut factors: Vec<String> = Vec::new();
        let mut product: Option<u64> = Some(1);
        for op in &s.ops {
            match op {
                Op::Join { table, match_spec } => {
                    if keyed(table, match_spec) {
                        continue; // keyed probe: ×1
                    }
                    match decls.get(table.as_str()) {
                        Some(Some(n)) => {
                            factors.push(format!("{table}\u{2264}{n}"));
                            product = product.map(|p| p.saturating_mul(*n as u64));
                        }
                        Some(None) => {
                            factors.push(format!("{table}\u{d7}N"));
                            product = None;
                        }
                        None => {
                            factors.push(format!("{table}\u{d7}?"));
                            product = None;
                        }
                    }
                }
                Op::ArchiveScan { table, .. } => {
                    factors.push(format!("past({table})\u{d7}?"));
                    product = None;
                }
                Op::Select(_) | Op::Assign { .. } => {}
            }
        }
        s.est_fanout = if s.head.agg.is_some() {
            // One aggregate tuple per firing, whatever was scanned.
            "1 (agg)".to_string()
        } else if factors.is_empty() {
            "1".to_string()
        } else if let Some(p) = product {
            if factors.len() == 1 {
                format!("\u{2264}{p}")
            } else {
                format!("\u{2264}{p} = {}", factors.join(" \u{b7} "))
            }
        } else {
            factors.join(" \u{b7} ")
        };
    }

    // Strata: body-table → materialized-head edges, aggregate-marked.
    // Fixpoint over `stratum[head] ≥ stratum[body] + agg`; sweeps are
    // capped so an unstratifiable program (rejected by `p2ql check
    // --deep`, P2E603) cannot spin the annotation pass.
    let materialized = |name: &str| decls.contains_key(name) || known_tables.contains(name);
    let mut strata: BTreeMap<&str, usize> = BTreeMap::new();
    let mut edges: Vec<(&str, &str, bool)> = Vec::new();
    for s in &out.strands {
        if s.head.delete || !materialized(&s.head.name) {
            continue;
        }
        let agg = s.head.agg.is_some();
        if let Trigger::TableInsert { name } = &s.trigger {
            edges.push((name.as_str(), s.head.name.as_str(), agg));
        }
        for op in &s.ops {
            if let Op::Join { table, .. } = op {
                if materialized(table) {
                    edges.push((table.as_str(), s.head.name.as_str(), agg));
                }
            }
        }
    }
    let relation_count = {
        let mut set: BTreeSet<&str> = BTreeSet::new();
        for (f, t, _) in &edges {
            set.insert(f);
            set.insert(t);
        }
        set.len()
    };
    for _ in 0..=relation_count {
        let mut changed = false;
        for (from, to, agg) in &edges {
            let want = strata.get(from).copied().unwrap_or(0) + usize::from(*agg);
            let cur = strata.entry(to).or_insert(0);
            if want > *cur {
                *cur = want;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let strata: BTreeMap<String, usize> = strata
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    for s in &mut out.strands {
        s.stratum = strata.get(&s.head.name).copied().unwrap_or(0);
    }
}

fn lower_materialize(m: &Materialize) -> TableDecl {
    TableDecl {
        name: m.table.clone(),
        lifetime_secs: match m.lifetime {
            Lifetime::Secs(s) => Some(s),
            Lifetime::Infinity => None,
        },
        max_rows: match m.max_size {
            SizeLimit::Rows(n) => Some(n),
            SizeLimit::Infinity => None,
        },
        // 1-based in source (over the full tuple, location included).
        key_fields: m.keys.iter().map(|k| k - 1).collect(),
    }
}

fn fact_tuple(head: &Predicate) -> Tuple {
    let vals: Vec<Value> = head
        .args
        .iter()
        .enumerate()
        .map(|(i, a)| match a {
            Arg::Const(v) => {
                // Coerce a string in location position to an address so
                // facts like `node@"n1:0"(17).` route correctly.
                if i == 0 {
                    if let Value::Str(s) = v {
                        return Value::Addr(Addr::new(&**s));
                    }
                }
                v.clone()
            }
            _ => unreachable!("validation: facts are ground"),
        })
        .collect();
    Tuple::new(&head.name, vals)
}

/// Per-strand slot allocator.
struct Slots {
    map: HashMap<String, usize>,
    names: Vec<String>,
}

impl Slots {
    fn new() -> Slots {
        Slots {
            map: HashMap::new(),
            names: Vec::new(),
        }
    }

    fn get(&self, v: &str) -> Option<usize> {
        self.map.get(v).copied()
    }

    fn bind(&mut self, v: &str) -> usize {
        let next = self.map.len();
        *self.map.entry(v.to_string()).or_insert_with(|| {
            self.names.push(v.to_string());
            next
        })
    }

    fn compile(&self, rule: &str, e: &Expr) -> Result<PExpr, PlanError> {
        compile_expr(e, &|v| {
            *self.map.get(v).unwrap_or_else(|| {
                panic!(
                    "planner invariant: variable {v} unbound (validator should have caught this)"
                )
            })
        })
        .map_err(|error| PlanError::Expr {
            rule: rule.to_string(),
            error,
        })
    }
}

/// Lower a (possibly rewritten) strand IR to the executable plan form:
/// allocate environment slots in encounter order and compile every
/// expression (phase 3 of the staged planner).
///
/// Slot allocation is deterministic in the op order, which is what lets
/// shared-prefix members agree on the prefix's slot numbering.
fn lower_strand(ir: &StrandIr, rule: &Rule, opts: &PlanOpts) -> Result<Strand, PlanError> {
    let label = &ir.rule_label;
    let mut slots = Slots::new();

    // ----- trigger -----
    let trigger_match = if matches!(ir.trigger, Trigger::Periodic { .. }) {
        let mut fields = Vec::new();
        for (i, a) in ir.trigger_pred.args.iter().enumerate() {
            fields.push(match a {
                Arg::Var(v) => match slots.get(v) {
                    Some(s) => FieldMatch::EqVar(s),
                    None => FieldMatch::Bind(slots.bind(v)),
                },
                // The period constant: the runtime synthesizes the tuple,
                // so the field needs no check.
                Arg::Const(_) if i == 2 => FieldMatch::Ignore,
                Arg::Const(c) => FieldMatch::EqConst(c.clone()),
                Arg::Wildcard => FieldMatch::Ignore,
                other => {
                    return Err(PlanError::BadPeriodic {
                        rule: label.to_string(),
                        message: format!("unsupported periodic argument {other:?}"),
                    })
                }
            });
        }
        MatchSpec { fields }
    } else {
        pred_match(
            &ir.trigger_pred,
            &mut slots,
            ir.trigger_restrict.as_ref(),
            label,
        )?
    };

    let trigger_bound: HashSet<String> = slots.map.keys().cloned().collect();

    // ----- body ops -----
    let mut ops = Vec::new();
    for op in &ir.ops {
        match op {
            IrOp::Join(p) => {
                let ms = pred_match(p, &mut slots, None, label)?;
                ops.push(Op::Join {
                    table: p.name.clone(),
                    match_spec: ms,
                });
            }
            IrOp::Past(p) => {
                ops.push(lower_past(p, &mut slots, label, opts.history)?);
            }
            IrOp::Select(e) => {
                ops.push(Op::Select(slots.compile(label, e)?));
            }
            IrOp::Assign { var, expr } => {
                let pe = slots.compile(label, expr)?;
                let slot = slots.bind(var);
                ops.push(Op::Assign { slot, expr: pe });
            }
        }
    }

    // ----- head -----
    let mut fields = Vec::new();
    let mut agg: Option<AggPlan> = None;
    #[expect(
        clippy::expect_used,
        reason = "validate_strict ran before planning: head and aggregate vars are bound"
    )]
    for (pos, a) in rule.head.args.iter().enumerate() {
        fields.push(match a {
            Arg::Var(v) => FieldOut::Slot(slots.get(v).expect("validated: head vars bound")),
            Arg::Const(c) => FieldOut::Const(c.clone()),
            Arg::Expr(e) => FieldOut::Expr(slots.compile(label, e)?),
            Arg::Agg { func, over } => {
                let over_expr = over
                    .as_ref()
                    .map(|v| PExpr::Slot(slots.get(v).expect("validated: agg var bound")));
                agg = Some(AggPlan {
                    func: *func,
                    over: over_expr,
                    position: pos,
                    group_bound_by_trigger: head_group_vars(rule)
                        .iter()
                        .all(|v| trigger_bound.contains(v)),
                });
                FieldOut::Agg
            }
            Arg::Wildcard => unreachable!("validated: no wildcards in heads"),
        });
    }

    Ok(Strand {
        rule_label: label.to_string(),
        strand_id: ir.strand_id.clone(),
        trigger: ir.trigger.clone(),
        trigger_match,
        ops,
        head: HeadSpec {
            name: rule.head.name.clone(),
            delete: rule.delete,
            fields,
            agg,
        },
        slots: slots.map.len(),
        slot_names: slots.names,
        source: p2_overlog::pretty::rule_to_string(rule),
        stratum: 0,
        est_fanout: String::new(),
    })
}

/// Lower a `past@N("rel", T0, T1, fields...)` occurrence to an
/// [`Op::ArchiveScan`].
///
/// Shape: arg 0 is the rule's location variable (must already be
/// bound), arg 1 names the archived relation as a string constant,
/// args 2/3 are the inclusive interval bounds `[T0, T1]` (constants,
/// bound variables, or expressions over bound variables), and args 4..
/// match against the archived tuple's own fields — location first,
/// exactly as the relation's live rows are shaped.
fn lower_past(
    p: &Predicate,
    slots: &mut Slots,
    rule: &str,
    provider: HistoryProvider,
) -> Result<Op, PlanError> {
    let bad = |message: String| PlanError::BadPast {
        rule: rule.to_string(),
        message,
    };
    if p.args.len() < 4 {
        return Err(bad(format!(
            "past takes (location, relation, t0, t1, fields...); got {} args",
            p.args.len()
        )));
    }
    match &p.args[0] {
        Arg::Var(v) if slots.get(v).is_some() => {}
        Arg::Var(v) => {
            return Err(bad(format!(
                "location {v} must already be bound (use the rule's location variable)"
            )))
        }
        other => return Err(bad(format!("location must be a variable, got {other:?}"))),
    }
    let table = match &p.args[1] {
        Arg::Const(Value::Str(s)) => s.to_string(),
        other => {
            return Err(bad(format!(
                "the archived relation must be a string constant, got {other:?}"
            )))
        }
    };
    let bound_expr = |a: &Arg, which: &str| -> Result<PExpr, PlanError> {
        match a {
            Arg::Const(c) => Ok(PExpr::Const(c.clone())),
            Arg::Var(v) => match slots.get(v) {
                Some(s) => Ok(PExpr::Slot(s)),
                None => Err(bad(format!(
                    "interval bound {which}={v} must be bound before past() runs"
                ))),
            },
            Arg::Expr(e) => slots.compile(rule, e),
            other => Err(bad(format!("interval bound {which} cannot be {other:?}"))),
        }
    };
    let t0 = bound_expr(&p.args[2], "t0")?;
    let t1 = bound_expr(&p.args[3], "t1")?;
    let mut fields = Vec::with_capacity(p.args.len() - 4);
    for a in &p.args[4..] {
        fields.push(match a {
            Arg::Var(v) => bind_or_eq(v, slots),
            Arg::Const(c) => FieldMatch::EqConst(c.clone()),
            Arg::Wildcard => FieldMatch::Ignore,
            Arg::Expr(e) => FieldMatch::EqExpr(slots.compile(rule, e)?),
            Arg::Agg { .. } => unreachable!("validated: no aggregates in body"),
        });
    }
    Ok(Op::ArchiveScan {
        table,
        t0,
        t1,
        match_spec: MatchSpec { fields },
        provider,
    })
}

/// Build a match spec for a predicate occurrence, updating the slot map.
///
/// If `restrict_to` is given, only variables in that set are bound;
/// other variable fields become `Ignore` (used for the delta-group
/// binding of table-triggered aggregates).
fn pred_match(
    p: &Predicate,
    slots: &mut Slots,
    restrict_to: Option<&HashSet<String>>,
    rule: &str,
) -> Result<MatchSpec, PlanError> {
    let mut fields = Vec::with_capacity(p.args.len());
    for a in &p.args {
        fields.push(match a {
            Arg::Var(v) => match restrict_to {
                Some(allow) if !allow.contains(v) => FieldMatch::Ignore,
                _ => bind_or_eq(v, slots),
            },
            Arg::Const(c) => FieldMatch::EqConst(c.clone()),
            Arg::Wildcard => FieldMatch::Ignore,
            Arg::Expr(e) => FieldMatch::EqExpr(slots.compile(rule, e)?),
            Arg::Agg { .. } => unreachable!("validated: no aggregates in body"),
        });
    }
    Ok(MatchSpec { fields })
}

fn bind_or_eq(v: &str, slots: &mut Slots) -> FieldMatch {
    match slots.get(v) {
        Some(s) => FieldMatch::EqVar(s),
        None => FieldMatch::Bind(slots.bind(v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_overlog::parse_program;

    fn compile(src: &str, known: &[&str]) -> CompiledProgram {
        let known: HashSet<String> = known.iter().map(|s| s.to_string()).collect();
        compile_program(&parse_program(src).unwrap(), &known).unwrap()
    }

    fn compile_off(src: &str, known: &[&str]) -> CompiledProgram {
        let known: HashSet<String> = known.iter().map(|s| s.to_string()).collect();
        compile_program_with(&parse_program(src).unwrap(), &known, &PlanOpts::off()).unwrap()
    }

    #[test]
    fn event_trigger_single_strand() {
        let p = compile(
            "materialize(pred, 100, 1, keys(1)).
             rp4 inconsistentPred@NAddr() :- stabilizeRequest@NAddr(SID, SA), pred@NAddr(PID, PA), SA != PA.",
            &[],
        );
        assert_eq!(p.strands.len(), 1);
        let s = &p.strands[0];
        assert_eq!(
            s.trigger,
            Trigger::Event {
                name: "stabilizeRequest".into()
            }
        );
        assert_eq!(s.join_count(), 1);
        assert_eq!(s.rule_label, "rp4");
        // Join on pred, then select (the select needs PA, which only the
        // join binds — pushdown cannot move it).
        assert!(matches!(&s.ops[0], Op::Join { table, .. } if table == "pred"));
        assert!(matches!(&s.ops[1], Op::Select(_)));
    }

    #[test]
    fn all_materialized_gets_strand_per_pred() {
        let p = compile(
            "materialize(a, 100, 10, keys(1)).
             materialize(b, 100, 10, keys(1)).
             r1 out@N(X, Y) :- a@N(X), b@N(Y).",
            &[],
        );
        assert_eq!(p.strands.len(), 2);
        assert_eq!(
            p.strands[0].trigger,
            Trigger::TableInsert { name: "a".into() }
        );
        assert_eq!(
            p.strands[1].trigger,
            Trigger::TableInsert { name: "b".into() }
        );
        assert_eq!(p.strands[0].strand_id, "r1~0");
        assert_eq!(p.strands[1].strand_id, "r1~1");
        // Each strand joins the *other* table.
        assert!(matches!(&p.strands[0].ops[0], Op::Join { table, .. } if table == "b"));
        assert!(matches!(&p.strands[1].ops[0], Op::Join { table, .. } if table == "a"));
    }

    #[test]
    fn known_tables_from_catalog_count_as_materialized() {
        // bestSucc is declared by the base program, not this one.
        let p = compile(
            "r result@NAddr() :- event@NAddr(), bestSucc@NAddr(SID, SAddr).",
            &["bestSucc"],
        );
        assert_eq!(p.strands.len(), 1);
        assert_eq!(
            p.strands[0].trigger,
            Trigger::Event {
                name: "event".into()
            }
        );
        assert!(matches!(&p.strands[0].ops[0], Op::Join { table, .. } if table == "bestSucc"));
    }

    #[test]
    fn two_events_rejected() {
        let known: HashSet<String> = HashSet::new();
        let err = compile_program(
            &parse_program("r h@N() :- e1@N(X), e2@N(Y).").unwrap(),
            &known,
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::TwoEventPredicates { .. }));
    }

    #[test]
    fn periodic_trigger() {
        let p = compile("r1 result@NAddr() :- periodic@NAddr(E, 30).", &[]);
        let s = &p.strands[0];
        assert_eq!(s.trigger, Trigger::Periodic { period_secs: 30.0 });
        assert_eq!(s.trigger_match.fields.len(), 3);
        assert!(matches!(s.trigger_match.fields[2], FieldMatch::Ignore));
    }

    #[test]
    fn periodic_requires_const_positive_period() {
        let known = HashSet::new();
        for bad in [
            "r h@N() :- periodic@N(E, T).",
            "r h@N() :- periodic@N(E, 0).",
        ] {
            let err = compile_program(&parse_program(bad).unwrap(), &known).unwrap_err();
            assert!(matches!(err, PlanError::BadPeriodic { .. }), "{bad}");
        }
        // A wrong arity is caught even earlier, by the validator.
        let err = compile_program(&parse_program("r h@N() :- periodic@N(E).").unwrap(), &known)
            .unwrap_err();
        assert!(matches!(err, PlanError::Invalid(_)));
    }

    #[test]
    fn periodic_not_materializable() {
        let known = HashSet::new();
        let err = compile_program(
            &parse_program("materialize(periodic, 1, 1, keys(1)).").unwrap(),
            &known,
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::ReservedRelation { .. }));
    }

    #[test]
    fn event_aggregate_groups() {
        // sr8: snapState is a table, marker is the event trigger.
        let p = compile(
            "materialize(snapState, 100, 100, keys(1)).
             sr8 haveSnap@NAddr(SrcAddr, I, count<*>) :- snapState@NAddr(I, State), marker@NAddr(SrcAddr, I).",
            &[],
        );
        assert_eq!(p.strands.len(), 1);
        let s = &p.strands[0];
        assert_eq!(
            s.trigger,
            Trigger::Event {
                name: "marker".into()
            }
        );
        let agg = s.head.agg.as_ref().unwrap();
        assert_eq!(agg.position, 3);
        // Group fields NAddr, SrcAddr, I are all bound by the marker
        // trigger — zero-count emission allowed (sr9 depends on it).
        assert!(agg.group_bound_by_trigger);
    }

    #[test]
    fn table_triggered_aggregate_rejoins_trigger() {
        // cs6: count over the whole conRespTable, not the delta.
        let p = compile(
            "materialize(conRespTable, 100, 100, keys(1)).
             cs6 respCluster@NAddr(ProbeID, SAddr, count<*>) :- conRespTable@NAddr(ProbeID, ReqID, SAddr).",
            &[],
        );
        let s = &p.strands[0];
        assert_eq!(
            s.trigger,
            Trigger::TableInsert {
                name: "conRespTable".into()
            }
        );
        // The trigger table appears again as a join.
        assert!(matches!(&s.ops[0], Op::Join { table, .. } if table == "conRespTable"));
        // Trigger match binds only the group vars (NAddr, ProbeID, SAddr);
        // ReqID is ignored.
        let binds = s
            .trigger_match
            .fields
            .iter()
            .filter(|f| matches!(f, FieldMatch::Bind(_)))
            .count();
        assert_eq!(binds, 3);
        assert!(matches!(s.trigger_match.fields[2], FieldMatch::Ignore)); // ReqID
    }

    #[test]
    fn facts_are_collected() {
        let p = compile(r#"node@"n1:0"(42)."#, &[]);
        assert_eq!(p.facts.len(), 1);
        assert_eq!(p.facts[0].name(), "node");
        // Location coerced to an address.
        assert_eq!(p.facts[0].location().unwrap().as_str(), "n1:0");
    }

    #[test]
    fn delete_rule_compiles() {
        let p = compile(
            "materialize(t, 100, 100, keys(1, 2)).
             cs10 delete t@N(P, T2) :- c@N(P), t@N(P, T2).",
            &[],
        );
        let s = &p.strands[0];
        assert!(s.head.delete);
        assert_eq!(s.trigger, Trigger::Event { name: "c".into() });
    }

    #[test]
    fn materialize_keys_are_zero_based() {
        let p = compile("materialize(path, 100, 5, keys(1, 2)).", &[]);
        assert_eq!(p.tables[0].key_fields, vec![0, 1]);
        assert_eq!(p.tables[0].lifetime_secs, Some(100.0));
        assert_eq!(p.tables[0].max_rows, Some(5));
    }

    #[test]
    fn assignment_slots() {
        let p = compile(
            "cs1 conProbe@NAddr(ProbeID, K, T) :- periodic@NAddr(ProbeID, 40), K := f_randID(), T := f_now().",
            &[],
        );
        let s = &p.strands[0];
        // Both assigns are impure — the scheduler pins them in source
        // order even at the full optimization level.
        assert_eq!(s.ops.len(), 2);
        assert!(matches!(&s.ops[0], Op::Assign { .. }));
        assert_eq!(s.slots, 4); // NAddr, ProbeID, K, T
        assert_eq!(s.head.fields.len(), 4);
    }

    #[test]
    fn min_aggregate_over_assigned_var() {
        let p = compile(
            "materialize(node, 100, 1, keys(1)).
             materialize(finger, 100, 100, keys(1, 2)).
             l2 bestLookupDist@NAddr(K, R, E, min<D>) :- node@NAddr(NID), lookup@NAddr(K, R, E), finger@NAddr(FP, FID, FA), D := K - FID - 1, FID in (NID, K).",
            &[],
        );
        let s = &p.strands[0];
        assert_eq!(
            s.trigger,
            Trigger::Event {
                name: "lookup".into()
            }
        );
        let agg = s.head.agg.as_ref().unwrap();
        assert!(agg.over.is_some());
        assert_eq!(agg.position, 4);
        assert!(agg.group_bound_by_trigger); // K, R, E, NAddr all from trigger
        assert_eq!(s.join_count(), 2); // node + finger
    }

    #[test]
    fn index_requests_cover_join_probe_fields() {
        let p = compile(
            "materialize(pred, 100, 10, keys(1)).
             materialize(succ, 100, 10, keys(1, 2)).
             r1 out@N(PID) :- ev@N(SID, SA), pred@N(PID, SA).
             r2 out2@N(SID) :- ev2@N(X), succ@N(SID, X).",
            &[],
        );
        // r1 probes pred on field 2 (SA, bound by the trigger); r2 probes
        // succ on field 2 (X).
        assert_eq!(
            p.index_requests,
            vec![("pred".to_string(), 2), ("succ".to_string(), 2)]
        );
    }

    #[test]
    fn index_requests_deduplicate_across_strands() {
        let p = compile(
            "materialize(a, 100, 10, keys(1)).
             materialize(b, 100, 10, keys(1)).
             r1 out@N(X, Y) :- a@N(X), b@N(Y).",
            &[],
        );
        // Two strands, each re-joining the other table on the location
        // field only → one request per table, on field 0.
        assert_eq!(
            p.index_requests,
            vec![("a".to_string(), 0), ("b".to_string(), 0)]
        );
    }

    #[test]
    fn source_text_retained_for_introspection() {
        let p = compile("r1 out@N(X) :- ev@N(X).", &[]);
        assert!(p.strands[0].source.contains("out@N(X)"));
    }

    // ----- staged-pipeline tests -----

    #[test]
    fn slot_names_follow_allocation_order() {
        let p = compile("r1 out@N(X, Y) :- ev@N(X, Y).", &[]);
        assert_eq!(p.strands[0].slot_names, vec!["N", "X", "Y"]);
        assert_eq!(p.strands[0].slots, 3);
    }

    #[test]
    fn selection_pushdown_moves_filter_before_join() {
        let src = "materialize(t, 100, 10, keys(1)).
                   r1 out@N(X) :- ev@N(X, Y), t@N(Z), Y > 3.";
        // Off: literal source order — join, then select.
        let off = compile_off(src, &[]);
        assert!(matches!(&off.strands[0].ops[0], Op::Join { .. }));
        assert!(matches!(&off.strands[0].ops[1], Op::Select(_)));
        // Full: Y is trigger-bound, so the filter runs before the scan.
        let full = compile(src, &[]);
        assert!(matches!(&full.strands[0].ops[0], Op::Select(_)));
        assert!(matches!(&full.strands[0].ops[1], Op::Join { .. }));
    }

    #[test]
    fn index_aware_join_reordering_prefers_probeable_join() {
        let src = "materialize(a, 100, 10, keys(1)).
                   materialize(b, 100, 10, keys(1, 2)).
                   r1 out@N(P, Q) :- ev@N(X), a@N(P), b@N(Q, X).";
        // Off: source order (a, then b).
        let off = compile_off(src, &[]);
        assert!(matches!(&off.strands[0].ops[0], Op::Join { table, .. } if table == "a"));
        // Full: b probes on the trigger-bound X (equality beyond the
        // location field) — it runs first to shrink the intermediate set.
        let full = compile(src, &[]);
        assert!(matches!(&full.strands[0].ops[0], Op::Join { table, .. } if table == "b"));
        assert!(matches!(&full.strands[0].ops[1], Op::Join { table, .. } if table == "a"));
    }

    #[test]
    fn constant_true_select_is_dropped() {
        let p = compile("r1 out@N(X) :- ev@N(X), 1 < 2.", &[]);
        assert!(p.strands[0].ops.is_empty());
        assert!(p.diagnostics.is_empty());
        // Off keeps the select for oracle fidelity.
        let off = compile_off("r1 out@N(X) :- ev@N(X), 1 < 2.", &[]);
        assert_eq!(off.strands[0].ops.len(), 1);
    }

    #[test]
    fn constant_false_select_warns_dead_rule() {
        let p = compile("r1 out@N(X) :- ev@N(X), 1 > 2.", &[]);
        // The op is kept (semantics preserved: the rule fires and drops).
        assert_eq!(p.strands[0].ops.len(), 1);
        assert_eq!(p.diagnostics.len(), 1);
        assert_eq!(p.diagnostics[0].strand_id, "r1");
        assert!(p.diagnostics[0].message.contains("always false"));
    }

    #[test]
    fn shared_prefix_groups_found_across_rules() {
        let p = compile(
            "materialize(t, 100, 10, keys(1)).
             r1 a@N(X, Y) :- ev@N(X), t@N(Y).
             r2 b@N(X, Y) :- ev@N(X), t@N(Y).",
            &[],
        );
        assert_eq!(p.prefix_groups.len(), 1);
        assert_eq!(p.prefix_groups[0].members, vec![0, 1]);
        assert_eq!(p.prefix_groups[0].shared_ops, 1);
        // Off discovers no groups.
        let off = compile_off(
            "materialize(t, 100, 10, keys(1)).
             r1 a@N(X, Y) :- ev@N(X), t@N(Y).
             r2 b@N(X, Y) :- ev@N(X), t@N(Y).",
            &[],
        );
        assert!(off.prefix_groups.is_empty());
    }

    // ----- past() archive-scan tests -----

    #[test]
    fn past_lowers_to_archive_scan() {
        let p = compile(
            r#"f1 wasSucc@N(S) :- probe@N(T0, T1), past@N("succ", T0, T1, N, S)."#,
            &[],
        );
        assert_eq!(p.strands.len(), 1);
        let s = &p.strands[0];
        assert_eq!(
            s.trigger,
            Trigger::Event {
                name: "probe".into()
            }
        );
        match &s.ops[0] {
            Op::ArchiveScan {
                table,
                t0,
                t1,
                match_spec,
                provider,
            } => {
                assert_eq!(*provider, HistoryProvider::Local);
                assert_eq!(table, "succ");
                assert!(matches!(t0, PExpr::Slot(_)));
                assert!(matches!(t1, PExpr::Slot(_)));
                // Fields: =N (location, trigger-bound), bind S.
                assert!(matches!(match_spec.fields[0], FieldMatch::EqVar(_)));
                assert!(matches!(match_spec.fields[1], FieldMatch::Bind(_)));
            }
            other => panic!("expected ArchiveScan, got {other:?}"),
        }
        assert_eq!(s.join_count(), 1);
        // Archive scans never request secondary indexes.
        assert!(p.index_requests.is_empty());
    }

    #[test]
    fn past_is_never_a_trigger() {
        // With a materialized table present, the table (not past) fans
        // out the strands.
        let p = compile(
            r#"materialize(t, 100, 10, keys(1)).
               f2 out@N(X, S) :- t@N(X), past@N("succ", 0, 10, N, S)."#,
            &[],
        );
        assert_eq!(p.strands.len(), 1);
        assert_eq!(
            p.strands[0].trigger,
            Trigger::TableInsert { name: "t".into() }
        );
        // past alone cannot trigger a rule.
        let known = HashSet::new();
        let err = compile_program(
            &parse_program(r#"f3 out@N(S) :- past@N("succ", 0, 10, N, S)."#).unwrap(),
            &known,
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::BadPast { .. }), "{err}");
    }

    #[test]
    fn past_shape_is_checked() {
        let known = HashSet::new();
        // Relation must be a string constant.
        let err = compile_program(
            &parse_program("f4 out@N(S) :- ev@N(R), past@N(R, 0, 10, N, S).").unwrap(),
            &known,
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::BadPast { .. }), "{err}");
        // Interval bounds must be bound before the scan runs.
        let err = compile_program(
            &parse_program(r#"f5 out@N(S) :- ev@N(), past@N("succ", T0, 10, N, S)."#).unwrap(),
            &known,
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::BadPast { .. }), "{err}");
    }

    #[test]
    fn past_is_reserved() {
        let known = HashSet::new();
        for bad in [
            "materialize(past, 100, 10, keys(1)).",
            "r1 past@N(A, B, C) :- ev@N(A, B, C).",
        ] {
            let err = compile_program(&parse_program(bad).unwrap(), &known).unwrap_err();
            assert!(matches!(err, PlanError::ReservedRelation { .. }), "{bad}");
        }
        // A too-short `past` head is already an arity error at validation.
        let err = compile_program(&parse_program("r1 past@N(X) :- ev@N(X).").unwrap(), &known)
            .unwrap_err();
        assert!(matches!(err, PlanError::Invalid(_)));
    }

    #[test]
    fn past_interval_bounds_fold() {
        let p = compile(
            r#"f6 out@N(S) :- ev@N(), past@N("succ", 5 + 5, 20, N, S)."#,
            &[],
        );
        match &p.strands[0].ops[0] {
            Op::ArchiveScan { t0, t1, .. } => {
                assert_eq!(*t0, PExpr::Const(Value::Int(10)));
                assert_eq!(*t1, PExpr::Const(Value::Int(20)));
            }
            other => panic!("expected ArchiveScan, got {other:?}"),
        }
    }

    #[test]
    fn unknown_function_is_a_plan_error() {
        let known = HashSet::new();
        let err = compile_program(
            &parse_program("r1 out@N(X) :- ev@N(Y), X := f_bogus(Y).").unwrap(),
            &known,
        )
        .unwrap_err();
        match err {
            PlanError::Expr { rule, error } => {
                assert_eq!(rule, "r1");
                assert!(matches!(error, ExprError::UnknownFunction(_)));
            }
            other => panic!("expected Expr error, got {other:?}"),
        }
    }

    #[test]
    fn builtin_arity_checked_at_plan_time() {
        let known = HashSet::new();
        let err = compile_program(
            &parse_program("r1 out@N(X) :- ev@N(Y), X := f_sha1().").unwrap(),
            &known,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PlanError::Expr {
                error: ExprError::Arity { .. },
                ..
            }
        ));
    }
}
