//! Rule → strand compilation.

use crate::expr::{compile_expr, PExpr};
use crate::plan::*;
use p2_overlog::{
    validate, Arg, Expr, Lifetime, Materialize, Predicate, Program, Rule, SizeLimit, Statement,
    Term, ValidateError,
};
use p2_types::{Addr, Tuple, Value};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// Planning errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The program failed static validation.
    Invalid(ValidateError),
    /// A rule has more than one non-materialized (event) predicate.
    TwoEventPredicates {
        /// Rule label or index.
        rule: String,
        /// The two event predicate names.
        first: String,
        /// Second offender.
        second: String,
    },
    /// `periodic` was used with a non-constant or non-positive period.
    BadPeriodic {
        /// Rule label or index.
        rule: String,
        /// Explanation.
        message: String,
    },
    /// `periodic` cannot be materialized or be a rule head.
    ReservedRelation {
        /// The reserved name.
        name: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Invalid(e) => write!(f, "{e}"),
            PlanError::TwoEventPredicates {
                rule,
                first,
                second,
            } => write!(
                f,
                "in {rule}: two event predicates '{first}' and '{second}' — \
                 a rule may have at most one non-materialized predicate"
            ),
            PlanError::BadPeriodic { rule, message } => {
                write!(f, "in {rule}: bad periodic: {message}")
            }
            PlanError::ReservedRelation { name } => {
                write!(f, "'{name}' is a reserved built-in relation")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Compile a validated program.
///
/// `known_tables` is the set of relations already materialized on the
/// installing node — monitoring programs installed on-line read the base
/// application's tables, and classification of predicates as *table
/// match* vs *transient event* depends on it (install order matters and
/// is documented in the crate docs).
pub fn compile_program(
    program: &Program,
    known_tables: &HashSet<String>,
) -> Result<CompiledProgram, PlanError> {
    validate(program).map_err(PlanError::Invalid)?;

    let mut out = CompiledProgram::default();

    // Materialized set: already-known tables plus this program's own.
    let mut materialized: HashSet<String> = known_tables.clone();
    for m in program.materializations() {
        if m.table == "periodic" {
            return Err(PlanError::ReservedRelation {
                name: m.table.clone(),
            });
        }
        materialized.insert(m.table.clone());
        out.tables.push(lower_materialize(m));
    }

    let mut rule_idx = 0usize;
    for stmt in &program.statements {
        let rule = match stmt {
            Statement::Rule(r) => r,
            Statement::Materialize(_) => continue,
        };
        rule_idx += 1;
        let label = rule
            .label
            .clone()
            .unwrap_or_else(|| format!("rule#{rule_idx}"));

        if rule.head.name == "periodic" {
            return Err(PlanError::ReservedRelation {
                name: "periodic".into(),
            });
        }

        // Facts: ground heads with no body are injected at install.
        if rule.body.is_empty() {
            out.facts.push(fact_tuple(&rule.head));
            continue;
        }

        // Classify body predicates.
        let preds: Vec<(usize, &Predicate)> = rule
            .body
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t {
                Term::Pred(p) => Some((i, p)),
                _ => None,
            })
            .collect();
        let event_preds: Vec<(usize, &Predicate)> = preds
            .iter()
            .copied()
            .filter(|(_, p)| p.name == "periodic" || !materialized.contains(&p.name))
            .collect();

        if event_preds.len() > 1 {
            return Err(PlanError::TwoEventPredicates {
                rule: label,
                first: event_preds[0].1.name.clone(),
                second: event_preds[1].1.name.clone(),
            });
        }

        let trigger_positions: Vec<usize> = if let Some((i, _)) = event_preds.first() {
            vec![*i]
        } else {
            preds.iter().map(|(i, _)| *i).collect()
        };

        let multi = trigger_positions.len() > 1;
        for (k, &tpos) in trigger_positions.iter().enumerate() {
            let strand_id = if multi {
                format!("{label}~{k}")
            } else {
                label.clone()
            };
            let strand = compile_strand(rule, &label, strand_id, tpos, &materialized)?;
            out.strands.push(strand);
        }
    }

    // Collect the (table, field) pairs the strands' join probes will
    // scan on, so the runtime can register secondary indexes up front.
    let mut requests: BTreeSet<(String, usize)> = BTreeSet::new();
    for strand in &out.strands {
        for op in &strand.ops {
            if let Op::Join { table, match_spec } = op {
                if let Some(field) = match_spec.probe_field() {
                    requests.insert((table.clone(), field));
                }
            }
        }
    }
    out.index_requests = requests.into_iter().collect();
    Ok(out)
}

fn lower_materialize(m: &Materialize) -> TableDecl {
    TableDecl {
        name: m.table.clone(),
        lifetime_secs: match m.lifetime {
            Lifetime::Secs(s) => Some(s),
            Lifetime::Infinity => None,
        },
        max_rows: match m.max_size {
            SizeLimit::Rows(n) => Some(n),
            SizeLimit::Infinity => None,
        },
        // 1-based in source (over the full tuple, location included).
        key_fields: m.keys.iter().map(|k| k - 1).collect(),
    }
}

fn fact_tuple(head: &Predicate) -> Tuple {
    let vals: Vec<Value> = head
        .args
        .iter()
        .enumerate()
        .map(|(i, a)| match a {
            Arg::Const(v) => {
                // Coerce a string in location position to an address so
                // facts like `node@"n1:0"(17).` route correctly.
                if i == 0 {
                    if let Value::Str(s) = v {
                        return Value::Addr(Addr::new(&**s));
                    }
                }
                v.clone()
            }
            _ => unreachable!("validation: facts are ground"),
        })
        .collect();
    Tuple::new(&head.name, vals)
}

/// Per-strand slot allocator.
struct Slots {
    map: HashMap<String, usize>,
}

impl Slots {
    fn new() -> Slots {
        Slots {
            map: HashMap::new(),
        }
    }

    fn get(&self, v: &str) -> Option<usize> {
        self.map.get(v).copied()
    }

    fn bind(&mut self, v: &str) -> usize {
        let next = self.map.len();
        *self.map.entry(v.to_string()).or_insert(next)
    }

    fn compile(&self, e: &Expr) -> PExpr {
        compile_expr(e, &|v| {
            *self.map.get(v).unwrap_or_else(|| {
                panic!(
                    "planner invariant: variable {v} unbound (validator should have caught this)"
                )
            })
        })
    }
}

fn compile_strand(
    rule: &Rule,
    label: &str,
    strand_id: String,
    trigger_pos: usize,
    materialized: &HashSet<String>,
) -> Result<Strand, PlanError> {
    let trigger_pred = match &rule.body[trigger_pos] {
        Term::Pred(p) => p,
        _ => unreachable!("trigger positions index predicates"),
    };

    let is_agg = rule.is_aggregate();
    let trigger_is_table =
        trigger_pred.name != "periodic" && materialized.contains(&trigger_pred.name);
    // Table-triggered aggregates re-join the trigger table (full
    // recompute restricted to the delta's group) — see crate docs.
    let rejoin_trigger = is_agg && trigger_is_table;

    let mut slots = Slots::new();

    // ----- trigger -----
    let (trigger, trigger_match) = if trigger_pred.name == "periodic" {
        if trigger_pred.args.len() != 3 {
            return Err(PlanError::BadPeriodic {
                rule: label.to_string(),
                message: format!(
                    "periodic takes (location, nonce, period); got {} args",
                    trigger_pred.args.len()
                ),
            });
        }
        let period_secs = match &trigger_pred.args[2] {
            Arg::Const(Value::Int(n)) if *n > 0 => *n as f64,
            Arg::Const(Value::Float(x)) if *x > 0.0 => *x,
            other => {
                return Err(PlanError::BadPeriodic {
                    rule: label.to_string(),
                    message: format!("period must be a positive constant, got {other:?}"),
                })
            }
        };
        let mut fields = Vec::new();
        for (i, a) in trigger_pred.args.iter().enumerate() {
            fields.push(match a {
                Arg::Var(v) => match slots.get(v) {
                    Some(s) => FieldMatch::EqVar(s),
                    None => FieldMatch::Bind(slots.bind(v)),
                },
                // The period constant: the runtime synthesizes the tuple,
                // so the field needs no check.
                Arg::Const(_) if i == 2 => FieldMatch::Ignore,
                Arg::Const(c) => FieldMatch::EqConst(c.clone()),
                Arg::Wildcard => FieldMatch::Ignore,
                other => {
                    return Err(PlanError::BadPeriodic {
                        rule: label.to_string(),
                        message: format!("unsupported periodic argument {other:?}"),
                    })
                }
            });
        }
        (Trigger::Periodic { period_secs }, MatchSpec { fields })
    } else {
        let restrict_to: Option<HashSet<String>> = if rejoin_trigger {
            // Bind only the variables the head group needs; everything
            // else re-binds in the re-join.
            Some(head_group_vars(rule))
        } else {
            None
        };
        let ms = pred_match(trigger_pred, &mut slots, restrict_to.as_ref());
        let trig = if trigger_is_table {
            Trigger::TableInsert {
                name: trigger_pred.name.clone(),
            }
        } else {
            Trigger::Event {
                name: trigger_pred.name.clone(),
            }
        };
        (trig, ms)
    };

    let trigger_bound: HashSet<String> = slots.map.keys().cloned().collect();

    // ----- body ops -----
    let mut ops = Vec::new();
    for (i, term) in rule.body.iter().enumerate() {
        match term {
            Term::Pred(p) => {
                if i == trigger_pos && !rejoin_trigger {
                    continue;
                }
                let ms = pred_match(p, &mut slots, None);
                ops.push(Op::Join {
                    table: p.name.clone(),
                    match_spec: ms,
                });
            }
            Term::Cond(e) => {
                ops.push(Op::Select(slots.compile(e)));
            }
            Term::Assign { var, expr } => {
                let pe = slots.compile(expr);
                let slot = slots.bind(var);
                ops.push(Op::Assign { slot, expr: pe });
            }
        }
    }

    // ----- head -----
    let mut fields = Vec::new();
    let mut agg: Option<AggPlan> = None;
    for (pos, a) in rule.head.args.iter().enumerate() {
        fields.push(match a {
            Arg::Var(v) => FieldOut::Slot(slots.get(v).expect("validated: head vars bound")),
            Arg::Const(c) => FieldOut::Const(c.clone()),
            Arg::Expr(e) => FieldOut::Expr(slots.compile(e)),
            Arg::Agg { func, over } => {
                let over_expr = over
                    .as_ref()
                    .map(|v| PExpr::Slot(slots.get(v).expect("validated: agg var bound")));
                agg = Some(AggPlan {
                    func: *func,
                    over: over_expr,
                    position: pos,
                    group_bound_by_trigger: head_group_vars(rule)
                        .iter()
                        .all(|v| trigger_bound.contains(v)),
                });
                FieldOut::Agg
            }
            Arg::Wildcard => unreachable!("validated: no wildcards in heads"),
        });
    }

    Ok(Strand {
        rule_label: label.to_string(),
        strand_id,
        trigger,
        trigger_match,
        ops,
        head: HeadSpec {
            name: rule.head.name.clone(),
            delete: rule.delete,
            fields,
            agg,
        },
        slots: slots.map.len(),
        source: p2_overlog::pretty::rule_to_string(rule),
    })
}

/// Variables appearing in the head outside the aggregate argument.
fn head_group_vars(rule: &Rule) -> HashSet<String> {
    let mut out = HashSet::new();
    for a in &rule.head.args {
        match a {
            Arg::Var(v) => {
                out.insert(v.clone());
            }
            Arg::Expr(e) => {
                let mut vs = Vec::new();
                e.free_vars(&mut vs);
                out.extend(vs);
            }
            _ => {}
        }
    }
    out
}

/// Build a match spec for a predicate occurrence, updating the slot map.
///
/// If `restrict_to` is given, only variables in that set are bound;
/// other variable fields become `Ignore` (used for the delta-group
/// binding of table-triggered aggregates).
fn pred_match(
    p: &Predicate,
    slots: &mut Slots,
    restrict_to: Option<&HashSet<String>>,
) -> MatchSpec {
    let mut fields = Vec::with_capacity(p.args.len());
    for a in &p.args {
        fields.push(match a {
            Arg::Var(v) => match restrict_to {
                Some(allow) if !allow.contains(v) => FieldMatch::Ignore,
                _ => bind_or_eq(v, slots),
            },
            Arg::Const(c) => FieldMatch::EqConst(c.clone()),
            Arg::Wildcard => FieldMatch::Ignore,
            Arg::Expr(e) => FieldMatch::EqExpr(slots.compile(e)),
            Arg::Agg { .. } => unreachable!("validated: no aggregates in body"),
        });
    }
    MatchSpec { fields }
}

fn bind_or_eq(v: &str, slots: &mut Slots) -> FieldMatch {
    match slots.get(v) {
        Some(s) => FieldMatch::EqVar(s),
        None => FieldMatch::Bind(slots.bind(v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_overlog::parse_program;

    fn compile(src: &str, known: &[&str]) -> CompiledProgram {
        let known: HashSet<String> = known.iter().map(|s| s.to_string()).collect();
        compile_program(&parse_program(src).unwrap(), &known).unwrap()
    }

    #[test]
    fn event_trigger_single_strand() {
        let p = compile(
            "materialize(pred, 100, 1, keys(1)).
             rp4 inconsistentPred@NAddr() :- stabilizeRequest@NAddr(SID, SA), pred@NAddr(PID, PA), SA != PA.",
            &[],
        );
        assert_eq!(p.strands.len(), 1);
        let s = &p.strands[0];
        assert_eq!(
            s.trigger,
            Trigger::Event {
                name: "stabilizeRequest".into()
            }
        );
        assert_eq!(s.join_count(), 1);
        assert_eq!(s.rule_label, "rp4");
        // Join on pred, then select.
        assert!(matches!(&s.ops[0], Op::Join { table, .. } if table == "pred"));
        assert!(matches!(&s.ops[1], Op::Select(_)));
    }

    #[test]
    fn all_materialized_gets_strand_per_pred() {
        let p = compile(
            "materialize(a, 100, 10, keys(1)).
             materialize(b, 100, 10, keys(1)).
             r1 out@N(X, Y) :- a@N(X), b@N(Y).",
            &[],
        );
        assert_eq!(p.strands.len(), 2);
        assert_eq!(
            p.strands[0].trigger,
            Trigger::TableInsert { name: "a".into() }
        );
        assert_eq!(
            p.strands[1].trigger,
            Trigger::TableInsert { name: "b".into() }
        );
        assert_eq!(p.strands[0].strand_id, "r1~0");
        assert_eq!(p.strands[1].strand_id, "r1~1");
        // Each strand joins the *other* table.
        assert!(matches!(&p.strands[0].ops[0], Op::Join { table, .. } if table == "b"));
        assert!(matches!(&p.strands[1].ops[0], Op::Join { table, .. } if table == "a"));
    }

    #[test]
    fn known_tables_from_catalog_count_as_materialized() {
        // bestSucc is declared by the base program, not this one.
        let p = compile(
            "r result@NAddr() :- event@NAddr(), bestSucc@NAddr(SID, SAddr).",
            &["bestSucc"],
        );
        assert_eq!(p.strands.len(), 1);
        assert_eq!(
            p.strands[0].trigger,
            Trigger::Event {
                name: "event".into()
            }
        );
        assert!(matches!(&p.strands[0].ops[0], Op::Join { table, .. } if table == "bestSucc"));
    }

    #[test]
    fn two_events_rejected() {
        let known: HashSet<String> = HashSet::new();
        let err = compile_program(
            &parse_program("r h@N() :- e1@N(X), e2@N(Y).").unwrap(),
            &known,
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::TwoEventPredicates { .. }));
    }

    #[test]
    fn periodic_trigger() {
        let p = compile("r1 result@NAddr() :- periodic@NAddr(E, 30).", &[]);
        let s = &p.strands[0];
        assert_eq!(s.trigger, Trigger::Periodic { period_secs: 30.0 });
        assert_eq!(s.trigger_match.fields.len(), 3);
        assert!(matches!(s.trigger_match.fields[2], FieldMatch::Ignore));
    }

    #[test]
    fn periodic_requires_const_positive_period() {
        let known = HashSet::new();
        for bad in [
            "r h@N() :- periodic@N(E, T).",
            "r h@N() :- periodic@N(E, 0).",
        ] {
            let err = compile_program(&parse_program(bad).unwrap(), &known).unwrap_err();
            assert!(matches!(err, PlanError::BadPeriodic { .. }), "{bad}");
        }
        // A wrong arity is caught even earlier, by the validator.
        let err = compile_program(&parse_program("r h@N() :- periodic@N(E).").unwrap(), &known)
            .unwrap_err();
        assert!(matches!(err, PlanError::Invalid(_)));
    }

    #[test]
    fn periodic_not_materializable() {
        let known = HashSet::new();
        let err = compile_program(
            &parse_program("materialize(periodic, 1, 1, keys(1)).").unwrap(),
            &known,
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::ReservedRelation { .. }));
    }

    #[test]
    fn event_aggregate_groups() {
        // sr8: snapState is a table, marker is the event trigger.
        let p = compile(
            "materialize(snapState, 100, 100, keys(1)).
             sr8 haveSnap@NAddr(SrcAddr, I, count<*>) :- snapState@NAddr(I, State), marker@NAddr(SrcAddr, I).",
            &[],
        );
        assert_eq!(p.strands.len(), 1);
        let s = &p.strands[0];
        assert_eq!(
            s.trigger,
            Trigger::Event {
                name: "marker".into()
            }
        );
        let agg = s.head.agg.as_ref().unwrap();
        assert_eq!(agg.position, 3);
        // Group fields NAddr, SrcAddr, I are all bound by the marker
        // trigger — zero-count emission allowed (sr9 depends on it).
        assert!(agg.group_bound_by_trigger);
    }

    #[test]
    fn table_triggered_aggregate_rejoins_trigger() {
        // cs6: count over the whole conRespTable, not the delta.
        let p = compile(
            "materialize(conRespTable, 100, 100, keys(1)).
             cs6 respCluster@NAddr(ProbeID, SAddr, count<*>) :- conRespTable@NAddr(ProbeID, ReqID, SAddr).",
            &[],
        );
        let s = &p.strands[0];
        assert_eq!(
            s.trigger,
            Trigger::TableInsert {
                name: "conRespTable".into()
            }
        );
        // The trigger table appears again as a join.
        assert!(matches!(&s.ops[0], Op::Join { table, .. } if table == "conRespTable"));
        // Trigger match binds only the group vars (NAddr, ProbeID, SAddr);
        // ReqID is ignored.
        let binds = s
            .trigger_match
            .fields
            .iter()
            .filter(|f| matches!(f, FieldMatch::Bind(_)))
            .count();
        assert_eq!(binds, 3);
        assert!(matches!(s.trigger_match.fields[2], FieldMatch::Ignore)); // ReqID
    }

    #[test]
    fn facts_are_collected() {
        let p = compile(r#"node@"n1:0"(42)."#, &[]);
        assert_eq!(p.facts.len(), 1);
        assert_eq!(p.facts[0].name(), "node");
        // Location coerced to an address.
        assert_eq!(p.facts[0].location().unwrap().as_str(), "n1:0");
    }

    #[test]
    fn delete_rule_compiles() {
        let p = compile(
            "materialize(t, 100, 100, keys(1, 2)).
             cs10 delete t@N(P, T2) :- c@N(P), t@N(P, T2).",
            &[],
        );
        let s = &p.strands[0];
        assert!(s.head.delete);
        assert_eq!(s.trigger, Trigger::Event { name: "c".into() });
    }

    #[test]
    fn materialize_keys_are_zero_based() {
        let p = compile("materialize(path, 100, 5, keys(1, 2)).", &[]);
        assert_eq!(p.tables[0].key_fields, vec![0, 1]);
        assert_eq!(p.tables[0].lifetime_secs, Some(100.0));
        assert_eq!(p.tables[0].max_rows, Some(5));
    }

    #[test]
    fn assignment_slots() {
        let p = compile(
            "cs1 conProbe@NAddr(ProbeID, K, T) :- periodic@NAddr(ProbeID, 40), K := f_randID(), T := f_now().",
            &[],
        );
        let s = &p.strands[0];
        assert_eq!(s.ops.len(), 2);
        assert!(matches!(&s.ops[0], Op::Assign { .. }));
        assert_eq!(s.slots, 4); // NAddr, ProbeID, K, T
        assert_eq!(s.head.fields.len(), 4);
    }

    #[test]
    fn min_aggregate_over_assigned_var() {
        let p = compile(
            "materialize(node, 100, 1, keys(1)).
             materialize(finger, 100, 100, keys(1, 2)).
             l2 bestLookupDist@NAddr(K, R, E, min<D>) :- node@NAddr(NID), lookup@NAddr(K, R, E), finger@NAddr(FP, FID, FA), D := K - FID - 1, FID in (NID, K).",
            &[],
        );
        let s = &p.strands[0];
        assert_eq!(
            s.trigger,
            Trigger::Event {
                name: "lookup".into()
            }
        );
        let agg = s.head.agg.as_ref().unwrap();
        assert!(agg.over.is_some());
        assert_eq!(agg.position, 4);
        assert!(agg.group_bound_by_trigger); // K, R, E, NAddr all from trigger
        assert_eq!(s.join_count(), 2); // node + finger
    }

    #[test]
    fn index_requests_cover_join_probe_fields() {
        let p = compile(
            "materialize(pred, 100, 10, keys(1)).
             materialize(succ, 100, 10, keys(1, 2)).
             r1 out@N(PID) :- ev@N(SID, SA), pred@N(PID, SA).
             r2 out2@N(SID) :- ev2@N(X), succ@N(SID, X).",
            &[],
        );
        // r1 probes pred on field 2 (SA, bound by the trigger); r2 probes
        // succ on field 2 (X).
        assert_eq!(
            p.index_requests,
            vec![("pred".to_string(), 2), ("succ".to_string(), 2)]
        );
    }

    #[test]
    fn index_requests_deduplicate_across_strands() {
        let p = compile(
            "materialize(a, 100, 10, keys(1)).
             materialize(b, 100, 10, keys(1)).
             r1 out@N(X, Y) :- a@N(X), b@N(Y).",
            &[],
        );
        // Two strands, each re-joining the other table on the location
        // field only → one request per table, on field 0.
        assert_eq!(
            p.index_requests,
            vec![("a".to_string(), 0), ("b".to_string(), 0)]
        );
    }

    #[test]
    fn source_text_retained_for_introspection() {
        let p = compile("r1 out@N(X) :- ev@N(X).", &[]);
        assert!(p.strands[0].source.contains("out@N(X)"));
    }
}
