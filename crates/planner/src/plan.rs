//! The plan intermediate representation.
//!
//! A [`CompiledProgram`] is everything the node runtime needs to
//! instantiate a program: table declarations, ground facts, timers, and
//! rule strands. Strands are pure data — the dataflow engine walks their
//! [`Op`]s; nothing here executes.

use crate::expr::PExpr;
use p2_overlog::AggFunc;
use p2_types::Value;

/// A fully compiled program, ready to install on a node.
#[derive(Debug, Clone, Default)]
pub struct CompiledProgram {
    /// Tables to register (0-based key fields).
    pub tables: Vec<TableDecl>,
    /// Ground facts to inject at install time.
    pub facts: Vec<p2_types::Tuple>,
    /// Rule strands, in source order (one rule may yield several).
    pub strands: Vec<Strand>,
    /// Secondary indexes the strands' join probes want: `(table, field)`
    /// pairs, deduplicated and sorted. The runtime registers each with
    /// the catalog at install time so every `scan_eq` on these fields is
    /// an index probe from the first firing (tables the program doesn't
    /// declare — e.g. a monitoring query over the base application's
    /// tables — are still covered: registration happens against the
    /// installing node's catalog, which already holds them).
    pub index_requests: Vec<(String, usize)>,
    /// Shared-prefix strand families found by the optimizer (empty at
    /// `OptLevel::Off`). Members are indexes into `strands`; the runtime
    /// instantiates each group as one dataflow strand whose prefix runs
    /// once per trigger and whose member tails fan out per result.
    pub prefix_groups: Vec<PrefixGroup>,
    /// Plan-time warnings (dead rules, never-boolean selections). The
    /// program still installs; these exist so an operator hears about a
    /// rule that silently drops every tuple *before* paying for it at
    /// runtime.
    pub diagnostics: Vec<Diagnostic>,
}

/// A family of strands sharing one dataflow prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixGroup {
    /// Indexes into [`CompiledProgram::strands`], ascending. The first
    /// member is the representative whose prefix ops instantiate the
    /// shared stages.
    pub members: Vec<usize>,
    /// How many leading ops (up to and including the last join) are
    /// shared. Every member's remaining ops are stateless.
    pub shared_ops: usize,
}

/// A plan-time warning attached to one strand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable diagnostic code (`P2W501` dead rule, `P2W502` non-boolean
    /// selection) — the same namespace as the front end's
    /// `p2_overlog::diag` codes, so the two channels merge cleanly.
    pub code: &'static str,
    /// The strand the warning is about.
    pub strand_id: String,
    /// Human-readable message.
    pub message: String,
}

/// Runtime form of a `materialize` declaration (keys shifted to 0-based).
#[derive(Debug, Clone, PartialEq)]
pub struct TableDecl {
    /// Relation name.
    pub name: String,
    /// Lifetime in seconds; `None` = infinity.
    pub lifetime_secs: Option<f64>,
    /// Max row count; `None` = infinity.
    pub max_rows: Option<usize>,
    /// 0-based key field indexes.
    pub key_fields: Vec<usize>,
}

/// What fires a strand.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// A transient event tuple with this relation name arrives.
    Event {
        /// Event relation name.
        name: String,
    },
    /// A tuple was inserted into (or replaced in) this materialized table.
    TableInsert {
        /// Table name.
        name: String,
    },
    /// A private timer fires every `period_secs` (the `periodic@N(E, T)`
    /// built-in; Figure 4 measures exactly these). The runtime
    /// synthesizes the event tuple `(local_addr, nonce, period)`.
    Periodic {
        /// Timer period, seconds.
        period_secs: f64,
    },
}

impl Trigger {
    /// Relation name the runtime dispatches on (`periodic` for timers).
    pub fn dispatch_name(&self) -> &str {
        match self {
            Trigger::Event { name } | Trigger::TableInsert { name } => name,
            Trigger::Periodic { .. } => "periodic",
        }
    }
}

/// How one field of an incoming/probed tuple is treated by a match.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldMatch {
    /// First occurrence of a variable: bind the field value to the slot.
    Bind(usize),
    /// Variable already bound: the field must equal the slot's value.
    EqVar(usize),
    /// The field must equal this constant.
    EqConst(Value),
    /// The field must equal the value of this expression (evaluated
    /// against the current environment).
    EqExpr(PExpr),
    /// Wildcard `_` or a deliberately ignored field.
    Ignore,
}

/// A predicate occurrence compiled to field matches. Matching is strict
/// on arity: a tuple matches only if it has exactly `fields.len()` fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatchSpec {
    /// Per-field treatment, location field first.
    pub fields: Vec<FieldMatch>,
}

impl MatchSpec {
    /// Apply the match to a tuple against an environment. On success the
    /// environment is extended with new bindings and `true` is returned;
    /// on mismatch the environment is left with partial bindings and
    /// `false` is returned (callers clone or re-seed per attempt).
    pub fn apply(
        &self,
        tuple: &p2_types::Tuple,
        env: &mut [Option<Value>],
        ctx: &mut dyn crate::expr::EvalCtx,
    ) -> Result<bool, crate::expr::EvalError> {
        if tuple.arity() != self.fields.len() {
            return Ok(false);
        }
        for (i, fm) in self.fields.iter().enumerate() {
            let Some(v) = tuple.get(i) else {
                return Ok(false);
            };
            match fm {
                FieldMatch::Bind(slot) => env[*slot] = Some(v.clone()),
                FieldMatch::EqVar(slot) => match &env[*slot] {
                    Some(bound) if bound == v => {}
                    _ => return Ok(false),
                },
                FieldMatch::EqConst(c) => {
                    if c != v {
                        return Ok(false);
                    }
                }
                FieldMatch::EqExpr(e) => {
                    let want = crate::expr::eval(e, env, ctx)?;
                    if &want != v {
                        return Ok(false);
                    }
                }
                FieldMatch::Ignore => {}
            }
        }
        Ok(true)
    }

    /// The field to probe on for an indexed scan: the first equality
    /// field **beyond the location** when one exists — field 0 is the
    /// node's own address on every local row, so probing it has zero
    /// selectivity — falling back to the location, then `None` (full
    /// scan) when every field binds or ignores.
    pub fn probe_field(&self) -> Option<usize> {
        let eq = |f: &FieldMatch| matches!(f, FieldMatch::EqVar(_) | FieldMatch::EqConst(_));
        self.fields
            .iter()
            .enumerate()
            .skip(1)
            .find(|(_, f)| eq(f))
            .map(|(i, _)| i)
            .or_else(|| self.fields.first().filter(|f| eq(f)).map(|_| 0))
    }
}

/// Which history a `past()` scan ranges over — the transport-agnostic
/// provider the dataflow engine resolves an [`Op::ArchiveScan`]
/// against. The plan records the *intent*; the runtime supplies the
/// matching `HistorySource` implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistoryProvider {
    /// This node's own epoch-segmented archive (plus its live rows).
    #[default]
    Local,
    /// The union of every known node's history: local tiers plus
    /// segments shipped from other nodes (fetched on demand or
    /// streamed to this node as a collector).
    Deployment,
}

/// A strand operator (one per body term, in execution order).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Probe a materialized table; one output binding per matching row.
    /// This is a **stateful stage boundary** for pipelined execution and
    /// a *precondition tap* for the tracer (§2.1.1).
    Join {
        /// Table to probe.
        table: String,
        /// Field matches.
        match_spec: MatchSpec,
    },
    /// Range over the epoch-segmented archive of `table`: one output
    /// binding per archived (or still-live) row whose validity interval
    /// overlaps `[t0, t1]`. Lowered from a `past@N("rel", T0, T1, ...)`
    /// body predicate. Like [`Op::Join`] this is a **stateful stage
    /// boundary**; unlike a join it never consults the probe cache or
    /// the secondary indexes — segment headers prune the scan instead.
    ArchiveScan {
        /// Archived relation to scan.
        table: String,
        /// Inclusive lower bound of the query interval (virtual time).
        t0: PExpr,
        /// Inclusive upper bound of the query interval.
        t1: PExpr,
        /// Field matches applied to each archived tuple.
        match_spec: MatchSpec,
        /// Which history the scan ranges over (DESIGN.md §2.12): the
        /// node's own frozen tier, or the whole deployment's collected
        /// history. Decided at plan time so strand execution stays
        /// synchronous — any remote fetching happens *before* the
        /// strand fires, never inside it.
        provider: HistoryProvider,
    },
    /// Filter: keep the binding iff the expression is true.
    Select(PExpr),
    /// Bind a slot to the value of an expression.
    Assign {
        /// Target slot.
        slot: usize,
        /// Defining expression.
        expr: PExpr,
    },
}

/// One output field of the head.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldOut {
    /// Copy a slot.
    Slot(usize),
    /// Emit a constant.
    Const(Value),
    /// Evaluate an expression.
    Expr(PExpr),
    /// Placeholder where the aggregate result goes.
    Agg,
}

/// Aggregate plan for aggregate rules.
#[derive(Debug, Clone, PartialEq)]
pub struct AggPlan {
    /// The aggregate function.
    pub func: AggFunc,
    /// Expression aggregated over (None for `count<*>`).
    pub over: Option<PExpr>,
    /// Index of the aggregate in the head fields.
    pub position: usize,
    /// Whether all group-by fields are computable from the trigger
    /// bindings alone — when true, a `count<*>` over an empty match set
    /// emits a zero row (rules `sr8`/`sr9` require this).
    pub group_bound_by_trigger: bool,
}

/// The head of a strand: how to build output tuples from a final binding.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadSpec {
    /// Output relation name.
    pub name: String,
    /// `true` for `delete` rules.
    pub delete: bool,
    /// Output fields, location first.
    pub fields: Vec<FieldOut>,
    /// Aggregate plan, if the rule aggregates.
    pub agg: Option<AggPlan>,
}

/// A compiled rule strand.
#[derive(Debug, Clone, PartialEq)]
pub struct Strand {
    /// The rule's label (generated `rule#N` if the source had none).
    /// This is the ID recorded in `ruleExec` rows and used by the
    /// profiler (§3.2).
    pub rule_label: String,
    /// Unique strand ID (`label~k` when a rule compiles to k>1 strands).
    pub strand_id: String,
    /// What fires the strand.
    pub trigger: Trigger,
    /// Field matches applied to the trigger tuple.
    pub trigger_match: MatchSpec,
    /// Operators after the trigger, in execution order.
    pub ops: Vec<Op>,
    /// Output construction.
    pub head: HeadSpec,
    /// Number of environment slots.
    pub slots: usize,
    /// Source-level variable name per slot (EXPLAIN and introspection;
    /// execution never reads these).
    pub slot_names: Vec<String>,
    /// Original source text of the rule (introspection: `sysRule`).
    pub source: String,
    /// Stratum of the head relation in the aggregation order (DESIGN.md
    /// §2.13): every relation an aggregate ranges over sits in a
    /// strictly lower stratum. 0 for event heads and non-aggregating
    /// programs. Annotation only — execution consults it solely when
    /// `stratified_dispatch` ordering is requested.
    pub stratum: usize,
    /// Worst-case tuples emitted per firing, as stable EXPLAIN text:
    /// `"1"`, `"≤64"`, `"≤1024 = finger≤64 · succ≤16"`, or a factor
    /// list with `×N` (declared-infinity table) / `×?` (table of
    /// unknown size) markers when no finite product exists.
    pub est_fanout: String,
}

impl Strand {
    /// Number of stateful stages (joins and archive scans) — the tracer
    /// sizes its record fields from this (§2.1.2).
    pub fn join_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, Op::Join { .. } | Op::ArchiveScan { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::FixedCtx;
    use p2_types::Tuple;

    #[test]
    fn match_spec_bind_and_eq() {
        let ms = MatchSpec {
            fields: vec![
                FieldMatch::Bind(0),
                FieldMatch::EqConst(Value::Int(7)),
                FieldMatch::Bind(1),
            ],
        };
        let mut ctx = FixedCtx::default();
        let mut env = vec![None, None];
        let t = Tuple::new("x", [Value::addr("a"), Value::Int(7), Value::str("hi")]);
        assert!(ms.apply(&t, &mut env, &mut ctx).unwrap());
        assert_eq!(env[0], Some(Value::addr("a")));
        assert_eq!(env[1], Some(Value::str("hi")));

        let t2 = Tuple::new("x", [Value::addr("a"), Value::Int(8), Value::str("hi")]);
        let mut env2 = vec![None, None];
        assert!(!ms.apply(&t2, &mut env2, &mut ctx).unwrap());
    }

    #[test]
    fn match_spec_eqvar_join_semantics() {
        // Second occurrence of a variable must equal the first.
        let ms = MatchSpec {
            fields: vec![FieldMatch::Bind(0), FieldMatch::EqVar(0)],
        };
        let mut ctx = FixedCtx::default();
        let mut env = vec![None];
        let same = Tuple::new("x", [Value::Int(3), Value::Int(3)]);
        assert!(ms.apply(&same, &mut env, &mut ctx).unwrap());
        let mut env = vec![None];
        let diff = Tuple::new("x", [Value::Int(3), Value::Int(4)]);
        assert!(!ms.apply(&diff, &mut env, &mut ctx).unwrap());
    }

    #[test]
    fn strict_arity() {
        let ms = MatchSpec {
            fields: vec![FieldMatch::Bind(0)],
        };
        let mut ctx = FixedCtx::default();
        let mut env = vec![None];
        let long = Tuple::new("x", [Value::Int(1), Value::Int(2)]);
        assert!(!ms.apply(&long, &mut env, &mut ctx).unwrap());
    }

    #[test]
    fn probe_field_prefers_selective_fields() {
        let ms = MatchSpec {
            fields: vec![
                FieldMatch::Bind(0),
                FieldMatch::EqVar(1),
                FieldMatch::EqConst(Value::Int(1)),
            ],
        };
        assert_eq!(ms.probe_field(), Some(1));
        // Location-only equality still probes field 0...
        let loc_only = MatchSpec {
            fields: vec![FieldMatch::EqVar(0), FieldMatch::Bind(1)],
        };
        assert_eq!(loc_only.probe_field(), Some(0));
        // ...but a later equality wins over the location.
        let better = MatchSpec {
            fields: vec![
                FieldMatch::EqVar(0),
                FieldMatch::Bind(1),
                FieldMatch::EqVar(2),
            ],
        };
        assert_eq!(better.probe_field(), Some(2));
        let all_bind = MatchSpec {
            fields: vec![FieldMatch::Bind(0), FieldMatch::Ignore],
        };
        assert_eq!(all_bind.probe_field(), None);
    }

    #[test]
    fn dispatch_name() {
        assert_eq!(Trigger::Event { name: "x".into() }.dispatch_name(), "x");
        assert_eq!(
            Trigger::TableInsert { name: "t".into() }.dispatch_name(),
            "t"
        );
        assert_eq!(
            Trigger::Periodic { period_secs: 1.0 }.dispatch_name(),
            "periodic"
        );
    }
}
