//! The Chord OverLog program.
//!
//! Structured after the published P2-Chord (Loo et al., SOSP'05), adapted
//! to this dialect (no negation, no `periodic` repeat counts):
//!
//! * **Join** (`j*`): while a node has no successors it periodically asks
//!   its landmark to look up its own ID; the answer seeds `succ`.
//! * **Best successor** (`bs*`): any change to `succ` (and a periodic
//!   sweep, to recover from deletions) recomputes `bestSucc` as the `succ`
//!   row with minimal clockwise distance.
//! * **Stabilization** (`st*`, `sb*`): the paper's §3.1.1 semantics —
//!   `stabilizeRequest` goes to the immediate successor, which answers
//!   with its predecessor (`sendPred`, absorbed by `sb4`) and its
//!   successor list (`returnSucc`, absorbed by `sb7`); `notify` updates
//!   the successor's predecessor.
//! * **Fingers** (`fx*`): a rotating index is fixed each round by looking
//!   up `NID + 2^I`.
//! * **Liveness** (`pg*`, `ft*`): every neighbor in `pingNode` is pinged;
//!   an unanswered ping becomes a `faultyNode`, which deletes the dead
//!   neighbor from the routing tables (and resets `pred`).
//! * **Lookups** (`l1`–`l4`): the paper's three rules verbatim, plus the
//!   standard fall-back to the successor when no finger improves on the
//!   local node.

/// Tunable parameters. Defaults are §4's evaluation settings: *"Nodes fix
/// fingers every 10 sec, stabilize every 5 sec, and ping neighbors for
/// liveness every 5 sec."*
#[derive(Debug, Clone)]
pub struct ChordConfig {
    /// Stabilization period (seconds).
    pub stabilize_secs: u32,
    /// Liveness-ping period (seconds).
    pub ping_secs: u32,
    /// Finger-fix period (seconds).
    pub finger_secs: u32,
    /// Join retry period (seconds).
    pub join_secs: u32,
    /// Ping timeout (seconds) before a neighbor is declared faulty.
    pub ping_timeout_secs: u32,
    /// Maximum successor candidates retained.
    pub succ_size: usize,
    /// Soft-state lifetime for routing rows (seconds). Must exceed the
    /// refresh periods above or the ring dissolves between rounds.
    pub row_lifetime_secs: u32,
    /// Lifetime of finger rows (seconds). Longer than `row_lifetime_secs`
    /// because a finger is only re-fixed when its index comes up in the
    /// rotation (every `finger_secs * 16`); dead fingers are evicted by
    /// ping liveness well before expiry.
    pub finger_lifetime_secs: u32,
}

impl Default for ChordConfig {
    fn default() -> Self {
        ChordConfig {
            stabilize_secs: 5,
            ping_secs: 5,
            finger_secs: 10,
            join_secs: 10,
            ping_timeout_secs: 4,
            succ_size: 16,
            row_lifetime_secs: 60,
            finger_lifetime_secs: 300,
        }
    }
}

/// The Chord rule program (tables + rules, no per-node facts).
pub fn chord_program(cfg: &ChordConfig) -> String {
    let ChordConfig {
        stabilize_secs: t_stab,
        ping_secs: t_ping,
        finger_secs: t_fix,
        join_secs: t_join,
        ping_timeout_secs: t_out,
        succ_size,
        row_lifetime_secs: life,
        finger_lifetime_secs: finger_life,
    } = cfg;
    format!(
        r#"
/* ------------------------------------------------ tables */
materialize(node, infinity, 1, keys(1)).
materialize(landmark, infinity, 1, keys(1)).
materialize(succ, {life}, {succ_size}, keys(1, 3)).
materialize(bestSucc, {life}, 1, keys(1)).
materialize(pred, infinity, 1, keys(1)).
materialize(finger, {finger_life}, 64, keys(1, 2)).
materialize(uniqueFinger, {finger_life}, 64, keys(1, 2)).
materialize(nextFingerFix, infinity, 1, keys(1)).
materialize(fingerLookupPending, 10, 64, keys(1, 2)).
materialize(pingNode, {life}, 64, keys(1, 2)).
materialize(pingPending, 15, 256, keys(1, 2, 3)).
materialize(faultyNode, 30, 64, keys(1, 2)).

/* ------------------------------------------------ join */
j0 joinTick@NAddr(E) :- periodic@NAddr(E, {t_join}).
j1 succCount@NAddr(E, count<*>) :- joinTick@NAddr(E), succ@NAddr(SID, SAddr).
j2 lookup@LAddr(NID, NAddr, E2) :- succCount@NAddr(E, C), C == 0,
     landmark@NAddr(LAddr), node@NAddr(NID), LAddr != "-", LAddr != NAddr,
     E2 := f_rand().
j3 succ@NAddr(SID, SAddr) :- lookupResults@NAddr(K, SID, SAddr, E, RespAddr),
     node@NAddr(NID), K == NID, SAddr != NAddr.
/* A node that is its own successor (standalone or bootstrap) must keep
   that row alive across the soft-state lifetime... */
j4 succ@NAddr(SID, SAddr) :- joinTick@NAddr(E), bestSucc@NAddr(SID, SAddr),
     SAddr == NAddr.
/* ...and a landmark that lost all successors re-seeds itself. */
j5 succ@NAddr(NID, NAddr) :- succCount@NAddr(E, C), C == 0,
     landmark@NAddr(LAddr), node@NAddr(NID), LAddr == "-".

/* ------------------------------------------------ best successor */
bs1 succChange@NAddr() :- succ@NAddr(SID, SAddr).
bs2 succChange@NAddr() :- periodic@NAddr(E, {t_stab}).
bs3 bestSuccDist@NAddr(min<D>) :- succChange@NAddr(), succ@NAddr(SID, SAddr),
     node@NAddr(NID), D := SID - NID - 1.
bs4 bestSucc@NAddr(SID, SAddr) :- bestSuccDist@NAddr(D), succ@NAddr(SID, SAddr),
     node@NAddr(NID), D == SID - NID - 1.

/* ------------------------------------------------ stabilization */
st1 stabTick@NAddr(E) :- periodic@NAddr(E, {t_stab}).
st2 stabilizeRequest@SAddr(NID, NAddr) :- stabTick@NAddr(E),
     bestSucc@NAddr(SID, SAddr), node@NAddr(NID), SAddr != NAddr.
st3 sendPred@ReqAddr(PID, PAddr) :- stabilizeRequest@NAddr(SomeID, ReqAddr),
     pred@NAddr(PID, PAddr), PAddr != "-".
sb4 succ@NAddr(SID, SAddr) :- sendPred@NAddr(SID, SAddr), SAddr != NAddr.
st4 reqSuccList@SAddr(NAddr) :- stabTick@NAddr(E), bestSucc@NAddr(SID, SAddr),
     SAddr != NAddr.
st5 returnSucc@ReqAddr(SID, SAddr, NAddr) :- reqSuccList@NAddr(ReqAddr),
     succ@NAddr(SID, SAddr), SAddr != ReqAddr.
st6 returnSucc@ReqAddr(NID, NAddr, NAddr) :- reqSuccList@NAddr(ReqAddr), node@NAddr(NID).
sb7 succ@NAddr(SID, SAddr) :- returnSucc@NAddr(SID, SAddr, Sender), SAddr != NAddr.
st7 notify@SAddr(NID, NAddr) :- stabTick@NAddr(E), bestSucc@NAddr(SID, SAddr),
     node@NAddr(NID), SAddr != NAddr.
pr1 pred@NAddr(PID, PAddr) :- notify@NAddr(PID, PAddr), pred@NAddr(OldPID, OldPAddr),
     node@NAddr(NID), PAddr != NAddr,
     (OldPAddr == "-") || (PID in (OldPID, NID)).
sb8 succ@NAddr(PID, PAddr) :- pred@NAddr(PID, PAddr), PAddr != "-", PAddr != NAddr.

/* ------------------------------------------------ fingers */
fx1 fixTick@NAddr(E) :- periodic@NAddr(E, {t_fix}).
fx2 fingerLookup@NAddr(E, I) :- fixTick@NAddr(E), nextFingerFix@NAddr(I).
fx3 nextFingerFix@NAddr(I2) :- fingerLookup@NAddr(E, I), I2 := 48 + ((I - 47) % 16).
fx4 fingerLookupPending@NAddr(E, I) :- fingerLookup@NAddr(E, I).
fx5 lookup@NAddr(K, NAddr, E) :- fingerLookup@NAddr(E, I), node@NAddr(NID),
     K := NID + f_pow2(I).
fx6 finger@NAddr(I, SID, SAddr) :- lookupResults@NAddr(K, SID, SAddr, E, RespAddr),
     fingerLookupPending@NAddr(E, I), SAddr != NAddr.
fx7 delete fingerLookupPending@NAddr(E, I) :-
     lookupResults@NAddr(K, SID, SAddr, E, RespAddr),
     fingerLookupPending@NAddr(E, I).
uf1 uniqueFinger@NAddr(FAddr, FID) :- finger@NAddr(I, FID, FAddr).
/* Re-derive periodically as well: steady-state refreshes of finger rows
   produce no deltas, and derived soft state must not silently expire. */
uf2 uniqueFinger@NAddr(FAddr, FID) :- fixTick@NAddr(E), finger@NAddr(I, FID, FAddr).

/* ------------------------------------------------ liveness */
/* Delta-derived for immediacy... */
pn1 pingNode@NAddr(SAddr) :- succ@NAddr(SID, SAddr), SAddr != NAddr.
pn2 pingNode@NAddr(PAddr) :- pred@NAddr(PID, PAddr), PAddr != "-", PAddr != NAddr.
pn3 pingNode@NAddr(FAddr) :- finger@NAddr(I, FID, FAddr), FAddr != NAddr.
/* ...and periodically re-derived, because refreshes of the source rows
   raise no deltas and the ping set must outlive its own soft lifetime. */
pn4 pingNode@NAddr(SAddr) :- pingTick@NAddr(E), succ@NAddr(SID, SAddr), SAddr != NAddr.
pn5 pingNode@NAddr(PAddr) :- pingTick@NAddr(E), pred@NAddr(PID, PAddr), PAddr != "-", PAddr != NAddr.
pn6 pingNode@NAddr(FAddr) :- pingTick@NAddr(E), finger@NAddr(I, FID, FAddr), FAddr != NAddr.
pg1 pingTick@NAddr(E) :- periodic@NAddr(E, {t_ping}).
pg2 pingPending@NAddr(RAddr, E, T) :- pingTick@NAddr(E), pingNode@NAddr(RAddr),
     T := f_now().
pg3 pingReq@RAddr(NAddr, E) :- pingPending@NAddr(RAddr, E, T).
pg4 pingResp@SenderAddr(NAddr, E) :- pingReq@NAddr(SenderAddr, E).
pg5 delete pingPending@NAddr(RAddr, E, T) :- pingResp@NAddr(RAddr, E),
     pingPending@NAddr(RAddr, E, T).
/* Suspicion needs TWO outstanding timed-out pings, not one: a single
   lost datagram must not tear a live neighbor out of the ring. */
pg6a missCount@NAddr(RAddr, count<*>) :- pingTick@NAddr(E),
     pingPending@NAddr(RAddr, E2, T), T < f_now() - {t_out}.
pg6b faultyNode@NAddr(RAddr, T2) :- missCount@NAddr(RAddr, C), C >= 2,
     T2 := f_now().

ft1 delete succ@NAddr(SID, FAddr) :- faultyNode@NAddr(FAddr, T),
     succ@NAddr(SID, FAddr).
ft2 delete finger@NAddr(I, FID, FAddr) :- faultyNode@NAddr(FAddr, T),
     finger@NAddr(I, FID, FAddr).
ft3 delete uniqueFinger@NAddr(FAddr, FID) :- faultyNode@NAddr(FAddr, T),
     uniqueFinger@NAddr(FAddr, FID).
ft4 pred@NAddr(0, "-") :- faultyNode@NAddr(FAddr, T), pred@NAddr(PID, FAddr).
ft5 delete pingNode@NAddr(FAddr) :- faultyNode@NAddr(FAddr, T),
     pingNode@NAddr(FAddr).
ft6 delete pingPending@NAddr(FAddr, E, T2) :- faultyNode@NAddr(FAddr, T),
     pingPending@NAddr(FAddr, E, T2).
ft7 delete bestSucc@NAddr(SID, FAddr) :- faultyNode@NAddr(FAddr, T),
     bestSucc@NAddr(SID, FAddr).

/* ------------------------------------------------ lookups (paper l1-l3) */
l1 lookupResults@ReqAddr(K, SID, SAddr, E, NAddr) :- node@NAddr(NID),
     lookup@NAddr(K, ReqAddr, E), bestSucc@NAddr(SID, SAddr), K in (NID, SID].
l2 bestLookupDist@NAddr(K, ReqAddr, E, min<D>) :- node@NAddr(NID),
     lookup@NAddr(K, ReqAddr, E), finger@NAddr(FPos, FID, FAddr),
     D := K - FID - 1, FID in (NID, K).
l3 lookup@FAddr(K, ReqAddr, E) :- node@NAddr(NID),
     bestLookupDist@NAddr(K, ReqAddr, E, D), finger@NAddr(FPos, FID, FAddr),
     D == K - FID - 1, FID in (NID, K), FAddr != NAddr.
l2b lookupFingerCount@NAddr(K, ReqAddr, E, count<*>) :- node@NAddr(NID),
     lookup@NAddr(K, ReqAddr, E), finger@NAddr(FPos, FID, FAddr), FID in (NID, K).
l4 lookup@SAddr(K, ReqAddr, E) :- lookupFingerCount@NAddr(K, ReqAddr, E, C),
     C == 0, node@NAddr(NID), bestSucc@NAddr(SID, SAddr), K in (SID, NID],
     SAddr != NAddr.
"#
    )
}

/// Per-node bootstrap facts.
///
/// `landmark` is `None` for the bootstrap node, which starts as a
/// one-node ring (its own successor); every other node names a landmark
/// through which it joins.
pub fn node_facts(addr: &str, id: u64, landmark: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str(&format!("node@\"{addr}\"({id:#x}).\n"));
    out.push_str(&format!("pred@\"{addr}\"(0, \"-\").\n"));
    out.push_str(&format!("nextFingerFix@\"{addr}\"(48).\n"));
    match landmark {
        Some(l) => {
            out.push_str(&format!("landmark@\"{addr}\"(\"{l}\").\n"));
        }
        None => {
            out.push_str(&format!("landmark@\"{addr}\"(\"-\").\n"));
            out.push_str(&format!("succ@\"{addr}\"({id:#x}, \"{addr}\").\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn program_compiles_and_plans() {
        let src = chord_program(&ChordConfig::default());
        let prog = p2_overlog::compile(&src).expect("chord program must compile");
        let compiled = p2_planner::compile_program(&prog, &HashSet::new()).expect("must plan");
        assert!(compiled.tables.len() >= 12);
        assert!(
            compiled.strands.len() >= 30,
            "got {}",
            compiled.strands.len()
        );
    }

    #[test]
    fn facts_compile() {
        for facts in [
            node_facts("n1:0", 0x1234, None),
            node_facts("n2:0", 0x9999, Some("n1:0")),
        ] {
            let prog = p2_overlog::compile(&facts).expect("facts must compile");
            let compiled = p2_planner::compile_program(&prog, &HashSet::new()).unwrap();
            assert!(compiled.facts.len() >= 3);
        }
    }

    #[test]
    fn config_periods_appear_in_source() {
        let cfg = ChordConfig {
            stabilize_secs: 7,
            ..Default::default()
        };
        let src = chord_program(&cfg);
        assert!(src.contains("periodic@NAddr(E, 7)"));
    }
}
