//! Convenience builders: a Chord ring on the simulation harness.
//!
//! Reproduces the paper's §4 testbed shape in the simulator: N nodes, the
//! first acting as landmark, stabilizing/pinging/finger-fixing at the
//! configured periods.

use crate::program::{chord_program, node_facts, ChordConfig};
use p2_core::Population;
use p2_types::{Addr, DetRng, RingId, Time, Tuple, Value};
use std::collections::HashMap;

/// A built ring: addresses and their ring IDs.
#[derive(Debug, Clone)]
pub struct ChordRing {
    /// Node addresses in creation order (index 0 is the landmark).
    pub addrs: Vec<Addr>,
    /// Ring identifier per node.
    pub ids: HashMap<Addr, RingId>,
    /// The configuration the ring runs.
    pub config: ChordConfig,
}

impl ChordRing {
    /// The landmark node.
    pub fn landmark(&self) -> &Addr {
        &self.addrs[0]
    }

    /// The ID of a node.
    pub fn id_of(&self, addr: &Addr) -> RingId {
        self.ids[addr]
    }

    /// Live members (skipping crashed nodes) sorted by ring ID.
    pub fn live_sorted<H: Population>(&self, sim: &H) -> Vec<(RingId, Addr)> {
        let mut v: Vec<(RingId, Addr)> = self
            .addrs
            .iter()
            .filter(|a| !sim.is_down(a))
            .map(|a| (self.ids[a], a.clone()))
            .collect();
        v.sort();
        v
    }
}

/// Install an `n`-node Chord ring into `sim`. Node IDs derive
/// deterministically from the harness seed. Returns the ring handle;
/// callers should then `sim.run_for(...)` long enough for stabilization
/// (the paper warms up for 5 virtual minutes).
pub fn build_ring<H: Population>(sim: &mut H, n: usize, config: &ChordConfig) -> ChordRing {
    assert!(n >= 1, "a ring needs at least one node");
    let mut rng = DetRng::derive(sim.seed(), "chord-ids");
    let program = chord_program(config);
    let mut addrs = Vec::with_capacity(n);
    let mut ids = HashMap::new();
    for i in 0..n {
        let name = format!("n{i}");
        let addr = sim.add_node(&name);
        let id = rng.ring_id();
        ids.insert(addr.clone(), id);
        addrs.push(addr);
    }
    let landmark = addrs[0].as_str().to_string();
    for (i, addr) in addrs.clone().into_iter().enumerate() {
        sim.install(&addr, &program)
            .expect("chord program installs");
        let lm = if i == 0 {
            None
        } else {
            Some(landmark.as_str())
        };
        let facts = node_facts(addr.as_str(), ids[&addr].0, lm);
        sim.install(&addr, &facts).expect("chord facts install");
    }
    ChordRing {
        addrs,
        ids,
        config: config.clone(),
    }
}

/// Issue a lookup for `key` starting at `at`, with the answer addressed
/// to `req_addr`. Returns the request ID to match in `lookupResults`.
pub fn issue_lookup<H: Population>(
    sim: &mut H,
    at: &Addr,
    key: RingId,
    req_addr: &Addr,
    req_id: u64,
) -> RingId {
    let e = RingId(req_id);
    sim.inject(
        at,
        Tuple::new(
            "lookup",
            [
                Value::Addr(at.clone()),
                Value::Id(key),
                Value::Addr(req_addr.clone()),
                Value::Id(e),
            ],
        ),
    );
    e
}

/// Collect the answers delivered for a watched `lookupResults` relation,
/// keyed by request ID.
pub fn collect_lookup_results(watched: &[(Time, Tuple)]) -> HashMap<RingId, (RingId, Addr)> {
    let mut out = HashMap::new();
    for (_, t) in watched {
        let (Some(Value::Id(e)), Some(Value::Id(sid)), Some(sa)) =
            (t.get(4), t.get(2), t.get(3).and_then(Value::to_addr))
        else {
            continue;
        };
        out.insert(*e, (*sid, sa));
    }
    out
}
