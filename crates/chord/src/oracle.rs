//! Native invariant oracles.
//!
//! The monitoring rules of §3.1 detect ring malformation *from inside*
//! the system; these Rust-side oracles compute ground truth *from
//! outside* (by reading node tables directly), so tests can check both
//! that the ring actually converges and that the in-band detectors agree
//! with the out-of-band truth.

use crate::testbed::ChordRing;
use p2_core::Population;
use p2_types::{Addr, Interval, RingId, Value};
use std::collections::HashMap;

/// Read each live node's `bestSucc` pointer.
pub fn collect_ring<H: Population>(sim: &mut H, ring: &ChordRing) -> HashMap<Addr, Addr> {
    let now = sim.now();
    let mut out = HashMap::new();
    for addr in ring.addrs.clone() {
        if sim.is_down(&addr) {
            continue;
        }
        let rows = sim.node_mut(&addr).table_scan("bestSucc", now);
        if let Some(s) = rows
            .first()
            .and_then(|row| row.get(2))
            .and_then(Value::to_addr)
        {
            out.insert(addr.clone(), s);
        }
    }
    out
}

/// Ring well-formedness (§3.1.1): starting from any live node and
/// following `bestSucc` pointers visits **every** live node exactly once
/// before returning to the start.
pub fn ring_is_well_formed<H: Population>(sim: &mut H, ring: &ChordRing) -> bool {
    let succ = collect_ring(sim, ring);
    let live: Vec<Addr> = ring
        .addrs
        .iter()
        .filter(|a| !sim.is_down(a))
        .cloned()
        .collect();
    if live.is_empty() {
        return true;
    }
    if succ.len() != live.len() {
        return false; // some live node has no successor pointer
    }
    let start = live[0].clone();
    let mut seen = vec![start.clone()];
    let mut cur = start.clone();
    for _ in 0..live.len() {
        let Some(next) = succ.get(&cur) else {
            return false;
        };
        if *next == start {
            return seen.len() == live.len();
        }
        if seen.contains(next) {
            return false; // sub-cycle not containing all nodes
        }
        seen.push(next.clone());
        cur = next.clone();
    }
    false
}

/// Ring ID ordering (§3.1.2): every live node's successor is the live
/// node with the next higher ID (one wrap-around total).
pub fn ring_is_ordered<H: Population>(sim: &mut H, ring: &ChordRing) -> bool {
    let succ = collect_ring(sim, ring);
    let sorted = ring.live_sorted(sim);
    if sorted.len() <= 1 {
        return true;
    }
    for (i, (_, addr)) in sorted.iter().enumerate() {
        let expected = &sorted[(i + 1) % sorted.len()].1;
        match succ.get(addr) {
            Some(s) if s == expected => {}
            _ => return false,
        }
    }
    true
}

/// The ground-truth successor of `key`: the live node whose ID segment
/// `(pred_id, node_id]` contains the key.
pub fn lookup_oracle<H: Population>(
    sim: &H,
    ring: &ChordRing,
    key: RingId,
) -> Option<(RingId, Addr)> {
    let sorted = ring.live_sorted(sim);
    if sorted.is_empty() {
        return None;
    }
    if sorted.len() == 1 {
        return Some(sorted[0].clone());
    }
    for (i, (id, addr)) in sorted.iter().enumerate() {
        let prev = sorted[(i + sorted.len() - 1) % sorted.len()].0;
        if Interval::open_closed(prev, *id).contains(key) {
            return Some((*id, addr.clone()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ChordConfig;
    use crate::testbed::{build_ring, collect_lookup_results, issue_lookup};
    use p2_core::SimHarness;
    use p2_types::TimeDelta;

    fn warmed_ring(n: usize, seed: u64, warm_secs: u64) -> (SimHarness, ChordRing) {
        let mut sim = SimHarness::with_seed(seed);
        let ring = build_ring(&mut sim, n, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(warm_secs));
        (sim, ring)
    }

    #[test]
    fn single_node_answers_all_lookups() {
        let (mut sim, ring) = warmed_ring(1, 1, 20);
        let a = ring.addrs[0].clone();
        sim.node_mut(&a).watch("lookupResults");
        issue_lookup(&mut sim, &a, RingId(0xDEAD), &a, 1);
        sim.run_for(TimeDelta::from_secs(1));
        let results = collect_lookup_results(sim.node_mut(&a).watched("lookupResults"));
        // Finger-fix lookups also land here; check ours specifically.
        assert_eq!(results[&RingId(1)].1, a);
    }

    #[test]
    fn two_nodes_converge_to_mutual_ring() {
        let (mut sim, ring) = warmed_ring(2, 2, 90);
        assert!(
            ring_is_well_formed(&mut sim, &ring),
            "2-node ring must close"
        );
        assert!(ring_is_ordered(&mut sim, &ring));
        // Each is the other's predecessor.
        let now = sim.now();
        for (i, a) in ring.addrs.clone().iter().enumerate() {
            let other = &ring.addrs[1 - i];
            let pred = sim.node_mut(a).table_scan("pred", now);
            assert_eq!(pred.len(), 1);
            assert_eq!(
                pred[0].get(2),
                Some(&Value::Addr(other.clone())),
                "node {i}"
            );
        }
    }

    #[test]
    fn eight_node_ring_converges_and_orders() {
        let (mut sim, ring) = warmed_ring(8, 3, 180);
        assert!(ring_is_well_formed(&mut sim, &ring), "ring not closed");
        assert!(ring_is_ordered(&mut sim, &ring), "ring not ID-ordered");
    }

    #[test]
    fn lookups_agree_with_oracle() {
        let (mut sim, ring) = warmed_ring(8, 4, 180);
        assert!(ring_is_ordered(&mut sim, &ring), "warmup insufficient");
        let origin = ring.addrs[3].clone();
        sim.node_mut(&origin).watch("lookupResults");
        let mut rng = p2_types::DetRng::new(99);
        let keys: Vec<RingId> = (0..12).map(|_| rng.ring_id()).collect();
        for (i, k) in keys.iter().enumerate() {
            issue_lookup(&mut sim, &origin, *k, &origin, 1_000 + i as u64);
        }
        sim.run_for(TimeDelta::from_secs(2));
        let results = collect_lookup_results(sim.node_mut(&origin).watched("lookupResults"));
        for (i, k) in keys.iter().enumerate() {
            let got = results
                .get(&RingId(1_000 + i as u64))
                .unwrap_or_else(|| panic!("lookup {i} for key {k} unanswered"));
            let want = lookup_oracle(&sim, &ring, *k).expect("oracle");
            assert_eq!(got.1, want.1, "key {k} answered {} want {}", got.1, want.1);
        }
    }

    #[test]
    fn ring_repairs_after_crash() {
        let (mut sim, ring) = warmed_ring(8, 5, 180);
        assert!(ring_is_ordered(&mut sim, &ring));
        // Crash a mid-ring node (not the landmark) and let liveness +
        // stabilization heal around it.
        let victim = ring
            .live_sorted(&sim)
            .into_iter()
            .map(|(_, a)| a)
            .find(|a| a != ring.landmark())
            .expect("non-landmark node exists");
        sim.crash(&victim);
        // The implementation deliberately keeps the paper's
        // recycled-dead-neighbor behaviour (§3.1.3): gossip periodically
        // re-adopts the dead node until liveness re-evicts it, so the
        // ring *oscillates* between healed and poisoned. Assert that it
        // heals at some point within the window (and that the victim is
        // really excluded then), polling across oscillation phases.
        let mut healed = false;
        for _ in 0..30 {
            sim.run_for(TimeDelta::from_secs(10));
            if ring_is_well_formed(&mut sim, &ring) && ring_is_ordered(&mut sim, &ring) {
                healed = true;
                break;
            }
        }
        assert!(healed, "ring never healed after the crash");
    }

    #[test]
    fn late_join_converges() {
        let mut sim = SimHarness::with_seed(6);
        let mut ring = build_ring(&mut sim, 5, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(120));
        assert!(ring_is_ordered(&mut sim, &ring));
        // A sixth node joins through the landmark.
        let addr = sim.add_node("n5");
        let id = p2_types::DetRng::derive(sim.seed(), "late").ring_id();
        ring.ids.insert(addr.clone(), id);
        ring.addrs.push(addr.clone());
        let cfg = ChordConfig::default();
        sim.install(&addr, &crate::program::chord_program(&cfg))
            .unwrap();
        sim.install(
            &addr,
            &crate::program::node_facts(addr.as_str(), id.0, Some(ring.addrs[0].as_str())),
        )
        .unwrap();
        sim.run_for(TimeDelta::from_secs(120));
        assert!(
            ring_is_well_formed(&mut sim, &ring),
            "joined ring not closed"
        );
        assert!(ring_is_ordered(&mut sim, &ring), "joined ring misordered");
    }

    #[test]
    fn faulty_node_detection_populates_table() {
        let (mut sim, ring) = warmed_ring(4, 7, 120);
        let victim = ring.live_sorted(&sim)[2].1.clone();
        sim.crash(&victim);
        sim.run_for(TimeDelta::from_secs(30));
        // Some survivor must have recorded the victim as faulty.
        let now = sim.now();
        let mut hits = 0;
        for a in ring.addrs.clone() {
            if sim.is_down(&a) {
                continue;
            }
            let rows = sim.node_mut(&a).table_scan("faultyNode", now);
            hits += rows
                .iter()
                .filter(|r| r.get(1) == Some(&Value::Addr(victim.clone())))
                .count();
        }
        assert!(hits > 0, "no survivor detected the crash");
    }

    #[test]
    fn aggressive_and_relaxed_configs_both_converge() {
        for (cfg, warm) in [
            (
                ChordConfig {
                    stabilize_secs: 2,
                    ping_secs: 2,
                    finger_secs: 4,
                    join_secs: 4,
                    ping_timeout_secs: 1,
                    row_lifetime_secs: 30,
                    ..Default::default()
                },
                90u64,
            ),
            (
                ChordConfig {
                    stabilize_secs: 10,
                    ping_secs: 10,
                    finger_secs: 20,
                    join_secs: 20,
                    ping_timeout_secs: 8,
                    row_lifetime_secs: 120,
                    ..Default::default()
                },
                400u64,
            ),
        ] {
            let mut sim = SimHarness::with_seed(15);
            let ring = build_ring(&mut sim, 5, &cfg);
            sim.run_for(TimeDelta::from_secs(warm));
            assert!(
                ring_is_ordered(&mut sim, &ring),
                "config {cfg:?} failed to converge in {warm}s"
            );
        }
    }

    #[test]
    fn fingers_populate_after_warmup() {
        let (mut sim, ring) = warmed_ring(8, 8, 300);
        let now = sim.now();
        let mut nodes_with_fingers = 0;
        for a in ring.addrs.clone() {
            if !sim.node_mut(&a).table_scan("finger", now).is_empty() {
                nodes_with_fingers += 1;
            }
        }
        assert!(nodes_with_fingers >= 6, "got {nodes_with_fingers}");
    }
}
