//! # p2-chord — the Chord DHT on the p2ql runtime
//!
//! Every example in Section 3 of the paper runs against a P2
//! implementation of Chord; this crate is that implementation, written
//! entirely in OverLog (see [`program`]) with the message vocabulary the
//! paper's monitoring rules expect:
//!
//! | relation | shape | role |
//! |---|---|---|
//! | `node(N, NID)` | table | own identity |
//! | `succ(N, SID, SAddr)` | table | successor candidates |
//! | `bestSucc(N, SID, SAddr)` | table | immediate successor |
//! | `pred(N, PID, PAddr)` | table | predecessor (`"-"` when unset) |
//! | `finger(N, I, FID, FAddr)` | table | finger entries |
//! | `uniqueFinger(N, FAddr, FID)` | table | dedup'ed fingers (rule `cs2`) |
//! | `pingNode(N, R)` | table | outgoing liveness-ping links (rule `sr7`) |
//! | `faultyNode(N, F, T)` | table | recently dead neighbors (rules `os1`–`os2`) |
//! | `stabilizeRequest@S(NID, NAddr)` | msg | stabilization probe (rule `rp4`) |
//! | `sendPred@R(PID, PAddr)` | msg | successor's predecessor (rule `sb4`) |
//! | `returnSucc@R(SID, SAddr)` | msg | successor-list gossip (rule `sb7`) |
//! | `pingReq@R(NAddr, E)` / `pingResp` | msg | liveness (rule `bp1`) |
//! | `lookup@N(K, ReqAddr, E)` | msg | lookup request (rules `l1`–`l3`) |
//! | `lookupResults@R(K, SID, SAddr, E, Resp)` | msg | lookup answer (rule `ri1`) |
//!
//! Deliberately, the implementation keeps the **recycled-dead-neighbor
//! behaviour** the paper's §3.1.3 detectors hunt: a dead successor
//! gossiped back by a neighbor is re-adopted (rules `sb4`/`sb7` have no
//! `faultyNode` guard — expressing one would need negation, which neither
//! OverLog dialect has). The oscillation monitors exist precisely to
//! catch this pattern on-line.

pub mod oracle;
pub mod program;
pub mod testbed;

pub use oracle::{collect_ring, lookup_oracle, ring_is_ordered, ring_is_well_formed};
pub use program::{chord_program, node_facts, ChordConfig};
pub use testbed::{build_ring, issue_lookup, ChordRing};
