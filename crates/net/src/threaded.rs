//! Real-time transport over crossbeam channels.
//!
//! The production-shaped substrate: one OS thread per node, messages
//! marshaled through the [`crate::wire`] codec on every hop (so the
//! boundary is honest — a corrupted buffer surfaces as a decode error,
//! not shared-memory aliasing). Used by integration tests to show the
//! runtime works off the simulator.

use crate::envelope::Envelope;
use crate::wire::{decode_envelope, encode_envelope, WireError};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use p2_types::Addr;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A shared in-process message hub.
///
/// Cloneable handle; all clones address the same registry.
#[derive(Clone, Default)]
pub struct ThreadedHub {
    inner: Arc<Mutex<HashMap<Addr, Sender<Vec<u8>>>>>,
}

/// A node's receive endpoint.
pub struct Mailbox {
    rx: Receiver<Vec<u8>>,
}

impl Mailbox {
    /// Non-blocking receive: `Ok(None)` when empty, errors only on a
    /// malformed frame.
    pub fn try_recv(&self) -> Result<Option<Envelope>, WireError> {
        match self.rx.try_recv() {
            Ok(bytes) => decode_envelope(&bytes).map(Some),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => Ok(None),
        }
    }

    /// Blocking receive with a timeout. `Ok(None)` on timeout/disconnect.
    pub fn recv_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<Option<Envelope>, WireError> {
        match self.rx.recv_timeout(timeout) {
            Ok(bytes) => decode_envelope(&bytes).map(Some),
            Err(_) => Ok(None),
        }
    }
}

impl ThreadedHub {
    /// New empty hub.
    pub fn new() -> ThreadedHub {
        ThreadedHub::default()
    }

    /// Register a node and get its mailbox. Re-registering replaces the
    /// previous endpoint (a "restarted" node).
    pub fn register(&self, addr: Addr) -> Mailbox {
        let (tx, rx) = unbounded();
        self.inner.lock().insert(addr, tx);
        Mailbox { rx }
    }

    /// Remove a node (its future messages drop).
    pub fn deregister(&self, addr: &Addr) {
        self.inner.lock().remove(addr);
    }

    /// Send an envelope; returns `false` if the destination is unknown or
    /// has shut down (messages to dead nodes drop, as on a real network).
    pub fn send(&self, env: &Envelope) -> bool {
        let bytes = encode_envelope(env);
        let guard = self.inner.lock();
        match guard.get(&env.dst) {
            Some(tx) => tx.send(bytes).is_ok(),
            None => false,
        }
    }

    /// Registered node count.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_types::{Tuple, Value};
    use std::time::Duration;

    fn env(src: &str, dst: &str, x: i64) -> Envelope {
        Envelope::new(
            Tuple::new("m", [Value::addr(dst), Value::Int(x)]),
            Addr::new(src),
            Addr::new(dst),
        )
    }

    #[test]
    fn send_and_receive() {
        let hub = ThreadedHub::new();
        let mb = hub.register(Addr::new("b"));
        assert!(hub.send(&env("a", "b", 7)));
        let got = mb.try_recv().unwrap().unwrap();
        assert_eq!(got.tuples[0].get(1), Some(&Value::Int(7)));
        assert!(mb.try_recv().unwrap().is_none());
    }

    #[test]
    fn unknown_destination_drops() {
        let hub = ThreadedHub::new();
        assert!(!hub.send(&env("a", "ghost", 1)));
    }

    #[test]
    fn deregister_drops() {
        let hub = ThreadedHub::new();
        let _mb = hub.register(Addr::new("b"));
        hub.deregister(&Addr::new("b"));
        assert!(!hub.send(&env("a", "b", 1)));
        assert!(hub.is_empty());
    }

    #[test]
    fn cross_thread_round_trip() {
        let hub = ThreadedHub::new();
        let mb = hub.register(Addr::new("b"));
        let h2 = hub.clone();
        let sender = std::thread::spawn(move || {
            for i in 0..100 {
                assert!(h2.send(&env("a", "b", i)));
            }
        });
        let mut got = 0;
        while got < 100 {
            if let Some(e) = mb.recv_timeout(Duration::from_secs(2)).unwrap() {
                assert_eq!(e.src, Addr::new("a"));
                got += 1;
            } else {
                panic!("timed out after {got} messages");
            }
        }
        sender.join().unwrap();
    }

    #[test]
    fn channel_order_preserved() {
        let hub = ThreadedHub::new();
        let mb = hub.register(Addr::new("b"));
        for i in 0..50 {
            hub.send(&env("a", "b", i));
        }
        for i in 0..50 {
            let e = mb.try_recv().unwrap().unwrap();
            assert_eq!(e.tuples[0].get(1), Some(&Value::Int(i)));
        }
    }
}
