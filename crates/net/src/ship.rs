//! Wire messages for cross-node archive shipping (DESIGN.md §2.12).
//!
//! Distributed forensics moves **sealed segment frames** — the
//! immutable `P2AR` byte frames of `p2-store`'s archive tier — between
//! nodes: a coordinator *pulls* a peer's history for one relation
//! (`SegmentRequest` → chunked `SegmentReply`), and origins *push*
//! sealed history to enrolled collectors (`SegmentAnnounce`). This
//! module defines only the message codec and the chunking/reassembly
//! machinery; the store stays ignorant of transport and the net layer
//! stays ignorant of segment contents (frames ride through here as
//! opaque bytes — `p2-core` validates them against the segment codec
//! on arrival).
//!
//! Ship messages travel **inside ordinary envelopes** as tuples of the
//! reserved relation [`SHIP_RELATION`], so they share the simulated
//! network's per-link FIFO clamp, loss/jitter model, and message
//! accounting with every other tuple — no second transport, and the
//! determinism argument for the sharded harness carries over verbatim.
//!
//! Hostile input never panics: every decode path returns a typed
//! [`ShipError`].

use crate::wire::{decode_value_from, encode_value_into, WireError};
use p2_types::{Addr, Time, Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Reserved relation name carrying ship messages through envelopes.
/// `p2-core` intercepts it on delivery, before tracing — ship frames
/// never appear in traces or tables.
pub const SHIP_RELATION: &str = "sysShip";

/// One archive-shipping protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipMsg {
    /// "Send me your complete history of `relation`." The window is
    /// advisory (the origin ships its full visible history so the
    /// importer can serve later windows too); `req_id` correlates the
    /// chunked reply and is unique per requesting node.
    Request {
        /// Correlation id, unique per requester.
        req_id: u64,
        /// The relation asked about.
        relation: String,
        /// Window lower bound the requester cares about.
        t0: Time,
        /// Window upper bound.
        t1: Time,
    },
    /// One chunk of the requested history: `chunk` of `chunks` slices
    /// of an encoded segment-frame batch (see [`encode_batch`]). An
    /// empty single-chunk reply means "I archive, but hold no history
    /// of that relation" — a *covered* answer, distinct from silence.
    Reply {
        /// Correlation id echoed from the request.
        req_id: u64,
        /// The relation shipped.
        relation: String,
        /// Zero-based chunk index.
        chunk: u32,
        /// Total chunks in this reply.
        chunks: u32,
        /// Epoch-hi of the origin's newest sealed segment in this
        /// snapshot (`u64::MAX` when none are sealed) — the baseline a
        /// later delta announce may extend.
        watermark: u64,
        /// Epoch-lo of the origin's oldest sealed segment (`u64::MAX`
        /// when none).
        oldest_lo: u64,
        /// This chunk's slice of the encoded batch.
        bytes: Vec<u8>,
    },
    /// Subscribe-mode push: one chunk of a history snapshot for
    /// `relation`, streamed to an enrolled collector. `gen` is the
    /// origin's monotonically increasing snapshot generation for the
    /// relation; a collector applies a snapshot only when every chunk
    /// of the generation has arrived and the generation is newer than
    /// what it holds. With `delta` set the payload carries only
    /// segments sealed *after* `prev_hi` (plus the open tail); it
    /// applies only on a collector whose baseline already covers
    /// `prev_hi`, which must otherwise fall back to a pull fetch.
    Announce {
        /// Origin's snapshot generation (monotone per relation).
        gen: u64,
        /// The relation shipped.
        relation: String,
        /// Zero-based chunk index.
        chunk: u32,
        /// Total chunks in this snapshot.
        chunks: u32,
        /// Whether the payload extends a previously-announced baseline
        /// instead of replacing the full history.
        delta: bool,
        /// Baseline epoch-hi this delta extends (0 on full snapshots).
        prev_hi: u64,
        /// Epoch-hi of the newest sealed segment after this snapshot
        /// applies (`u64::MAX` when none are sealed).
        watermark: u64,
        /// Epoch-lo of the oldest sealed segment after this snapshot
        /// applies (`u64::MAX` when none).
        oldest_lo: u64,
        /// This chunk's slice of the encoded batch.
        bytes: Vec<u8>,
    },
    /// "I cannot serve that request" — archiving disabled at the
    /// origin, typically. Lets the requester distinguish a peer that
    /// answered "no history available" from one that never answered.
    Nack {
        /// Correlation id echoed from the request.
        req_id: u64,
        /// The relation asked about.
        relation: String,
        /// Human-readable refusal reason (also lands in `sysDiag`).
        reason: String,
    },
}

/// Typed ship-codec errors. Mirrors [`WireError`]'s philosophy: every
/// malformed frame maps onto one of these, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShipError {
    /// A value failed to decode.
    Wire(WireError),
    /// Unknown message tag byte.
    BadTag(u8),
    /// A field held a value of the wrong type.
    BadField(&'static str),
    /// Input ended mid-frame.
    Truncated,
    /// Bytes remained after the message was decoded.
    TrailingBytes(usize),
    /// A chunk index was out of range, or chunk counts disagreed
    /// across one reassembly.
    BadChunk {
        /// The offending zero-based chunk index.
        chunk: u32,
        /// The total the frame claimed.
        chunks: u32,
    },
}

impl From<WireError> for ShipError {
    fn from(e: WireError) -> ShipError {
        ShipError::Wire(e)
    }
}

impl fmt::Display for ShipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShipError::Wire(e) => write!(f, "ship value: {e}"),
            ShipError::BadTag(t) => write!(f, "unknown ship message tag {t:#x}"),
            ShipError::BadField(what) => write!(f, "ship field '{what}' has wrong type"),
            ShipError::Truncated => write!(f, "ship message truncated"),
            ShipError::TrailingBytes(n) => write!(f, "{n} trailing bytes after ship message"),
            ShipError::BadChunk { chunk, chunks } => {
                write!(f, "bad chunk {chunk} of {chunks}")
            }
        }
    }
}

impl std::error::Error for ShipError {}

const TAG_REQUEST: u8 = 1;
const TAG_REPLY: u8 = 2;
const TAG_ANNOUNCE: u8 = 3;
const TAG_NACK: u8 = 4;

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn take_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>, ShipError> {
    if *pos + 4 > buf.len() {
        return Err(ShipError::Truncated);
    }
    let n = u32::from_le_bytes(
        buf[*pos..*pos + 4]
            .try_into()
            .map_err(|_| ShipError::Truncated)?,
    ) as usize;
    *pos += 4;
    if *pos + n > buf.len() {
        return Err(ShipError::Truncated);
    }
    let out = buf[*pos..*pos + n].to_vec();
    *pos += n;
    Ok(out)
}

// Correlation ids and generations are full u64s; they ride the Int
// value as a lossless two's-complement cast, so any Int is acceptable.
fn get_u64(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, ShipError> {
    match decode_value_from(buf, pos)? {
        Value::Int(n) => Ok(n as u64),
        _ => Err(ShipError::BadField(what)),
    }
}

fn get_u32(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u32, ShipError> {
    match decode_value_from(buf, pos)? {
        Value::Int(n) if n >= 0 => u32::try_from(n as u64).map_err(|_| ShipError::BadField(what)),
        _ => Err(ShipError::BadField(what)),
    }
}

fn get_bool(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<bool, ShipError> {
    match decode_value_from(buf, pos)? {
        Value::Int(0) => Ok(false),
        Value::Int(1) => Ok(true),
        _ => Err(ShipError::BadField(what)),
    }
}

fn get_str(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<String, ShipError> {
    match decode_value_from(buf, pos)? {
        Value::Str(s) => Ok(s.to_string()),
        _ => Err(ShipError::BadField(what)),
    }
}

fn get_time(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<Time, ShipError> {
    match decode_value_from(buf, pos)? {
        Value::Time(t) => Ok(t),
        _ => Err(ShipError::BadField(what)),
    }
}

impl ShipMsg {
    /// Encode to the tag-byte + wire-value frame format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            ShipMsg::Request {
                req_id,
                relation,
                t0,
                t1,
            } => {
                out.push(TAG_REQUEST);
                encode_value_into(&mut out, &Value::Int(*req_id as i64));
                encode_value_into(&mut out, &Value::str(relation));
                encode_value_into(&mut out, &Value::Time(*t0));
                encode_value_into(&mut out, &Value::Time(*t1));
            }
            ShipMsg::Reply {
                req_id,
                relation,
                chunk,
                chunks,
                watermark,
                oldest_lo,
                bytes,
            } => {
                out.push(TAG_REPLY);
                encode_value_into(&mut out, &Value::Int(*req_id as i64));
                encode_value_into(&mut out, &Value::str(relation));
                encode_value_into(&mut out, &Value::Int(*chunk as i64));
                encode_value_into(&mut out, &Value::Int(*chunks as i64));
                encode_value_into(&mut out, &Value::Int(*watermark as i64));
                encode_value_into(&mut out, &Value::Int(*oldest_lo as i64));
                put_bytes(&mut out, bytes);
            }
            ShipMsg::Announce {
                gen,
                relation,
                chunk,
                chunks,
                delta,
                prev_hi,
                watermark,
                oldest_lo,
                bytes,
            } => {
                out.push(TAG_ANNOUNCE);
                encode_value_into(&mut out, &Value::Int(*gen as i64));
                encode_value_into(&mut out, &Value::str(relation));
                encode_value_into(&mut out, &Value::Int(*chunk as i64));
                encode_value_into(&mut out, &Value::Int(*chunks as i64));
                encode_value_into(&mut out, &Value::Int(i64::from(*delta)));
                encode_value_into(&mut out, &Value::Int(*prev_hi as i64));
                encode_value_into(&mut out, &Value::Int(*watermark as i64));
                encode_value_into(&mut out, &Value::Int(*oldest_lo as i64));
                put_bytes(&mut out, bytes);
            }
            ShipMsg::Nack {
                req_id,
                relation,
                reason,
            } => {
                out.push(TAG_NACK);
                encode_value_into(&mut out, &Value::Int(*req_id as i64));
                encode_value_into(&mut out, &Value::str(relation));
                encode_value_into(&mut out, &Value::str(reason));
            }
        }
        out
    }

    /// Decode a frame, validating every byte (chunk bounds included).
    pub fn decode(buf: &[u8]) -> Result<ShipMsg, ShipError> {
        let Some(&tag) = buf.first() else {
            return Err(ShipError::Truncated);
        };
        let mut pos = 1;
        let msg = match tag {
            TAG_REQUEST => ShipMsg::Request {
                req_id: get_u64(buf, &mut pos, "req_id")?,
                relation: get_str(buf, &mut pos, "relation")?,
                t0: get_time(buf, &mut pos, "t0")?,
                t1: get_time(buf, &mut pos, "t1")?,
            },
            TAG_REPLY => {
                let req_id = get_u64(buf, &mut pos, "req_id")?;
                let relation = get_str(buf, &mut pos, "relation")?;
                let chunk = get_u32(buf, &mut pos, "chunk")?;
                let chunks = get_u32(buf, &mut pos, "chunks")?;
                if chunks == 0 || chunk >= chunks {
                    return Err(ShipError::BadChunk { chunk, chunks });
                }
                ShipMsg::Reply {
                    req_id,
                    relation,
                    chunk,
                    chunks,
                    watermark: get_u64(buf, &mut pos, "watermark")?,
                    oldest_lo: get_u64(buf, &mut pos, "oldest_lo")?,
                    bytes: take_bytes(buf, &mut pos)?,
                }
            }
            TAG_ANNOUNCE => {
                let gen = get_u64(buf, &mut pos, "gen")?;
                let relation = get_str(buf, &mut pos, "relation")?;
                let chunk = get_u32(buf, &mut pos, "chunk")?;
                let chunks = get_u32(buf, &mut pos, "chunks")?;
                if chunks == 0 || chunk >= chunks {
                    return Err(ShipError::BadChunk { chunk, chunks });
                }
                ShipMsg::Announce {
                    gen,
                    relation,
                    chunk,
                    chunks,
                    delta: get_bool(buf, &mut pos, "delta")?,
                    prev_hi: get_u64(buf, &mut pos, "prev_hi")?,
                    watermark: get_u64(buf, &mut pos, "watermark")?,
                    oldest_lo: get_u64(buf, &mut pos, "oldest_lo")?,
                    bytes: take_bytes(buf, &mut pos)?,
                }
            }
            TAG_NACK => ShipMsg::Nack {
                req_id: get_u64(buf, &mut pos, "req_id")?,
                relation: get_str(buf, &mut pos, "relation")?,
                reason: get_str(buf, &mut pos, "reason")?,
            },
            t => return Err(ShipError::BadTag(t)),
        };
        if pos != buf.len() {
            return Err(ShipError::TrailingBytes(buf.len() - pos));
        }
        Ok(msg)
    }

    /// Wrap for transport: one tuple of the reserved [`SHIP_RELATION`],
    /// shaped `sysShip(dst, hex-frame)` so it routes like any located
    /// tuple. Hex keeps the payload inside the codec's UTF-8 strings.
    pub fn to_tuple(&self, dst: &Addr) -> Tuple {
        Tuple::new(
            SHIP_RELATION,
            [
                Value::Addr(dst.clone()),
                Value::str(hex_encode(&self.encode())),
            ],
        )
    }

    /// Unwrap a carrier tuple produced by [`ShipMsg::to_tuple`].
    pub fn from_tuple(tuple: &Tuple) -> Result<ShipMsg, ShipError> {
        if tuple.name() != SHIP_RELATION {
            return Err(ShipError::BadField("relation_name"));
        }
        let Some(Value::Str(payload)) = tuple.get(1) else {
            return Err(ShipError::BadField("payload"));
        };
        let bytes = hex_decode(payload).ok_or(ShipError::BadField("payload_hex"))?;
        ShipMsg::decode(&bytes)
    }
}

/// Encode a batch of frames (each an opaque byte string, in practice
/// encoded segments) as one payload: count, then per frame a length
/// prefix and the bytes. Little-endian u32s, like the value codec.
pub fn encode_batch(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + frames.iter().map(|f| 4 + f.len()).sum::<usize>());
    out.extend_from_slice(&(frames.len() as u32).to_le_bytes());
    for f in frames {
        put_bytes(&mut out, f);
    }
    out
}

/// Decode a batch payload back into its frames.
pub fn decode_batch(buf: &[u8]) -> Result<Vec<Vec<u8>>, ShipError> {
    let mut pos = 0;
    if buf.len() < 4 {
        return Err(ShipError::Truncated);
    }
    let count =
        u32::from_le_bytes(buf[0..4].try_into().map_err(|_| ShipError::Truncated)?) as usize;
    pos += 4;
    // Every frame costs at least its 4-byte length prefix.
    if count > buf.len() {
        return Err(ShipError::Truncated);
    }
    let mut frames = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        frames.push(take_bytes(buf, &mut pos)?);
    }
    if pos != buf.len() {
        return Err(ShipError::TrailingBytes(buf.len() - pos));
    }
    Ok(frames)
}

/// Slice a payload into `ceil(len / chunk_bytes)` chunks (at least
/// one: the empty payload ships as a single empty chunk, which is how
/// "I have no history" stays distinguishable from silence).
pub fn chunk_payload(payload: &[u8], chunk_bytes: usize) -> Vec<Vec<u8>> {
    let size = chunk_bytes.max(1);
    if payload.is_empty() {
        return vec![Vec::new()];
    }
    payload.chunks(size).map(|c| c.to_vec()).collect()
}

/// Reassembles one chunked shipment. Chunks may arrive in any order;
/// duplicates overwrite idempotently. Returns the whole payload once
/// every index is present.
#[derive(Debug, Default)]
pub struct Reassembly {
    chunks: BTreeMap<u32, Vec<u8>>,
    total: Option<u32>,
}

impl Reassembly {
    /// Fresh, empty reassembly buffer.
    pub fn new() -> Reassembly {
        Reassembly::default()
    }

    /// Offer one chunk. `Ok(Some(payload))` when complete, `Ok(None)`
    /// while chunks are missing, `Err` if the frame disagrees with the
    /// shipment's established chunk count or index range.
    pub fn offer(
        &mut self,
        chunk: u32,
        chunks: u32,
        bytes: Vec<u8>,
    ) -> Result<Option<Vec<u8>>, ShipError> {
        if chunks == 0 || chunk >= chunks {
            return Err(ShipError::BadChunk { chunk, chunks });
        }
        match self.total {
            Some(t) if t != chunks => {
                return Err(ShipError::BadChunk { chunk, chunks });
            }
            None => self.total = Some(chunks),
            _ => {}
        }
        self.chunks.insert(chunk, bytes);
        if self.chunks.len() as u32 == chunks {
            let mut out = Vec::new();
            for (_, part) in std::mem::take(&mut self.chunks) {
                out.extend_from_slice(&part);
            }
            self.total = None;
            Ok(Some(out))
        } else {
            Ok(None)
        }
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xF) as usize] as char);
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    let b = s.as_bytes();
    if !b.len().is_multiple_of(2) {
        return None;
    }
    let nib = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            _ => None,
        }
    };
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks(2) {
        out.push((nib(pair[0])? << 4) | nib(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_msgs() -> Vec<ShipMsg> {
        vec![
            ShipMsg::Request {
                req_id: 7,
                relation: "bestSucc".into(),
                t0: Time::from_secs(10),
                t1: Time::from_secs(99),
            },
            ShipMsg::Reply {
                req_id: 7,
                relation: "bestSucc".into(),
                chunk: 1,
                chunks: 3,
                watermark: 11,
                oldest_lo: 2,
                bytes: vec![0xDE, 0xAD, 0xBE, 0xEF],
            },
            ShipMsg::Announce {
                gen: 42,
                relation: "ruleExec".into(),
                chunk: 0,
                chunks: 1,
                delta: true,
                prev_hi: 9,
                watermark: 12,
                oldest_lo: u64::MAX,
                bytes: Vec::new(),
            },
            ShipMsg::Nack {
                req_id: 9,
                relation: "seen".into(),
                reason: "archiving disabled".into(),
            },
        ]
    }

    #[test]
    fn round_trip_all_variants() {
        for msg in sample_msgs() {
            let enc = msg.encode();
            assert_eq!(ShipMsg::decode(&enc).unwrap(), msg);
        }
    }

    #[test]
    fn tuple_carrier_round_trips() {
        let dst = Addr::new("collector:1");
        for msg in sample_msgs() {
            let t = msg.to_tuple(&dst);
            assert_eq!(t.name(), SHIP_RELATION);
            assert_eq!(t.get(0), Some(&Value::Addr(dst.clone())));
            assert_eq!(ShipMsg::from_tuple(&t).unwrap(), msg);
        }
    }

    #[test]
    fn truncation_is_error_not_panic() {
        for msg in sample_msgs() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                assert!(
                    ShipMsg::decode(&bytes[..cut]).is_err(),
                    "decoding a {cut}-byte prefix of {msg:?} must fail cleanly"
                );
            }
        }
    }

    #[test]
    fn bad_tag_and_trailing_bytes_are_typed() {
        let mut bytes = sample_msgs()[0].encode();
        bytes[0] = 0x7F;
        assert_eq!(ShipMsg::decode(&bytes), Err(ShipError::BadTag(0x7F)));
        let mut bytes = sample_msgs()[0].encode();
        bytes.push(0);
        assert_eq!(ShipMsg::decode(&bytes), Err(ShipError::TrailingBytes(1)));
    }

    #[test]
    fn zero_or_out_of_range_chunks_rejected() {
        let msg = ShipMsg::Reply {
            req_id: 1,
            relation: "r".into(),
            chunk: 0,
            chunks: 1,
            watermark: 0,
            oldest_lo: 0,
            bytes: vec![1],
        };
        let ok = msg.encode();
        assert!(ShipMsg::decode(&ok).is_ok());
        let bad = ShipMsg::Reply {
            req_id: 1,
            relation: "r".into(),
            chunk: 5,
            chunks: 2,
            watermark: 0,
            oldest_lo: 0,
            bytes: vec![1],
        }
        .encode();
        assert!(matches!(
            ShipMsg::decode(&bad),
            Err(ShipError::BadChunk { .. })
        ));
    }

    #[test]
    fn chunk_and_reassemble_identity() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let chunks = chunk_payload(&payload, 999);
        assert_eq!(chunks.len(), 11);
        let total = chunks.len() as u32;
        let mut r = Reassembly::new();
        // Deliver out of order.
        let mut got = None;
        for (i, c) in chunks.into_iter().enumerate().rev() {
            got = r.offer(i as u32, total, c).unwrap();
        }
        assert_eq!(got.unwrap(), payload);
    }

    #[test]
    fn empty_payload_ships_as_one_chunk() {
        let chunks = chunk_payload(&[], 1024);
        assert_eq!(chunks, vec![Vec::<u8>::new()]);
        let mut r = Reassembly::new();
        assert_eq!(r.offer(0, 1, Vec::new()).unwrap(), Some(Vec::new()));
    }

    #[test]
    fn reassembly_rejects_disagreeing_totals() {
        let mut r = Reassembly::new();
        r.offer(0, 3, vec![1]).unwrap();
        assert!(matches!(
            r.offer(1, 4, vec![2]),
            Err(ShipError::BadChunk { .. })
        ));
    }

    #[test]
    fn batch_round_trip() {
        let frames = vec![vec![1u8, 2, 3], Vec::new(), vec![0xFF; 300]];
        let enc = encode_batch(&frames);
        assert_eq!(decode_batch(&enc).unwrap(), frames);
        assert_eq!(
            decode_batch(&encode_batch(&[])).unwrap(),
            Vec::<Vec<u8>>::new()
        );
    }

    proptest! {
        /// Arbitrary well-formed messages round-trip exactly.
        #[test]
        fn prop_ship_round_trip(
            req_id in any::<u64>(),
            relation in "[a-zA-Z][a-zA-Z0-9]{0,16}",
            t0 in any::<u64>(),
            t1 in any::<u64>(),
            chunk in 0u32..8,
            extra in 0u32..8,
            bytes in proptest::collection::vec(any::<u8>(), 0..512),
            reason in "[ -~]{0,40}",
            which in 0usize..4,
        ) {
            let msg = match which {
                0 => ShipMsg::Request { req_id, relation, t0: Time(t0), t1: Time(t1) },
                1 => ShipMsg::Reply {
                    req_id, relation, chunk, chunks: chunk + extra + 1,
                    watermark: t0, oldest_lo: t1, bytes,
                },
                2 => ShipMsg::Announce {
                    gen: req_id, relation, chunk, chunks: chunk + extra + 1,
                    delta: t0.is_multiple_of(2), prev_hi: t1,
                    watermark: t0, oldest_lo: t1, bytes,
                },
                _ => ShipMsg::Nack { req_id, relation, reason },
            };
            prop_assert_eq!(ShipMsg::decode(&msg.encode()).unwrap(), msg.clone());
            let dst = Addr::new("n1");
            prop_assert_eq!(ShipMsg::from_tuple(&msg.to_tuple(&dst)).unwrap(), msg);
        }

        /// No byte soup panics the decoder.
        #[test]
        fn prop_no_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = ShipMsg::decode(&bytes);
            let _ = decode_batch(&bytes);
        }

        /// Single-byte corruption of a valid frame either still decodes
        /// (the flip hit payload bytes) or fails with a typed error —
        /// never a panic.
        #[test]
        fn prop_bit_flips_never_panic(
            seed in any::<u64>(),
            pos in any::<u64>(),
            flip in 1u8..255,
        ) {
            let msg = ShipMsg::Reply {
                req_id: seed,
                relation: "bestSucc".into(),
                chunk: 0,
                chunks: 1,
                watermark: seed,
                oldest_lo: seed,
                bytes: seed.to_le_bytes().to_vec(),
            };
            let mut bytes = msg.encode();
            let idx = (pos % bytes.len() as u64) as usize;
            bytes[idx] ^= flip;
            let _ = ShipMsg::decode(&bytes);
        }

        /// Chunking then reassembling (any delivery order) is identity.
        #[test]
        fn prop_chunk_reassemble_identity(
            payload in proptest::collection::vec(any::<u8>(), 0..4096),
            chunk_bytes in 1usize..700,
        ) {
            let chunks = chunk_payload(&payload, chunk_bytes);
            let total = chunks.len() as u32;
            let mut r = Reassembly::new();
            let mut done = None;
            for (i, c) in chunks.into_iter().enumerate().rev() {
                prop_assert!(done.is_none());
                done = r.offer(i as u32, total, c).unwrap();
            }
            prop_assert_eq!(done.unwrap(), payload);
        }

        /// Batch framing round-trips arbitrary frame sets.
        #[test]
        fn prop_batch_round_trip(
            frames in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..128),
                0..12,
            ),
        ) {
            prop_assert_eq!(decode_batch(&encode_batch(&frames)).unwrap(), frames);
        }
    }
}
