//! Deterministic discrete-event simulated network.
//!
//! All nodes run in one process over a virtual clock (owned by the
//! simulation harness in `p2-core`); this module is the message fabric:
//!
//! * **Per-link FIFO.** The Chandy–Lamport snapshot implementation of
//!   §3.3 assumes FIFO channels; even with latency jitter enabled, a
//!   message never overtakes an earlier message on the same (src, dst)
//!   link — delivery times are clamped to be non-decreasing per link.
//! * **Fault injection.** Nodes can be crashed/revived and links can be
//!   partitioned or lossy — the oscillation and ring-consistency
//!   detectors of §3.1 are tested against these.
//! * **Exact counters.** Messages sent per node back the *Tx messages*
//!   series of Figures 6 and 7.
//! * **Shardable.** The fabric can be split across population shards for
//!   the conservative-window parallel harness (DESIGN.md §2.10): each
//!   shard owns one `SimNetwork` whose *local* set covers its nodes;
//!   envelopes addressed to other shards land in an outbound mailbox
//!   instead of the delivery heap, already carrying the canonical
//!   [`Stamp`] that makes the merged delivery order independent of the
//!   shard count. Jitter/loss randomness comes from **per-source** RNG
//!   streams derived from the seed, so draws do not depend on how the
//!   population is sharded.
//!
//! Deliveries are ordered by `(deliver_at, stamp)` where the stamp
//! `(sent_at, epoch, src_idx, seq)` is assigned at send time and is
//! *chronological*: any send the simulation performs later in causal
//! order gets a larger stamp. Two harness runs that perform the same
//! sends in the same causal order therefore deliver in the same order —
//! this is the determinism keystone of the parallel harness.

use crate::envelope::Envelope;
use p2_types::{Addr, DetRng, Time, TimeDelta};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Network configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Base one-way latency. Also the conservative-window lookahead of
    /// the parallel harness: no envelope is ever delivered earlier than
    /// `send time + latency`.
    pub latency: TimeDelta,
    /// Uniform extra latency in `[0, jitter]`.
    pub jitter: TimeDelta,
    /// Probability a message is dropped (0.0 = reliable).
    pub loss_rate: f64,
    /// RNG seed for jitter/loss decisions.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: TimeDelta::from_millis(10),
            jitter: TimeDelta::ZERO,
            loss_rate: 0.0,
            seed: 0,
        }
    }
}

/// Per-network counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Envelopes accepted for transmission, per source node.
    pub sent_by: HashMap<Addr, u64>,
    /// Envelopes delivered, per destination node.
    pub delivered_to: HashMap<Addr, u64>,
    /// Envelopes dropped (loss, partitions, dead nodes, unknown dest).
    pub dropped: u64,
}

impl NetStats {
    /// Total envelopes sent.
    pub fn total_sent(&self) -> u64 {
        self.sent_by.values().sum()
    }

    /// Envelopes sent by one node.
    pub fn sent_by(&self, a: &Addr) -> u64 {
        self.sent_by.get(a).copied().unwrap_or(0)
    }

    /// Fold another network's counters into this one (the parallel
    /// harness sums its shard fabrics into one population view).
    pub fn merge(&mut self, other: &NetStats) {
        for (a, n) in &other.sent_by {
            *self.sent_by.entry(a.clone()).or_insert(0) += n;
        }
        for (a, n) in &other.delivered_to {
            *self.delivered_to.entry(a.clone()).or_insert(0) += n;
        }
        self.dropped += other.dropped;
    }
}

/// The canonical send-order stamp carried by every in-flight envelope.
///
/// Ordering is lexicographic over `(sent_at, epoch, src_idx, seq)`:
/// virtual send time, then the settle-wave epoch within that instant,
/// then the sender's registration index (= population insertion order),
/// then the sender's own send counter. Within one run the stamp order of
/// any two sends equals their causal order, so sorting equal-`deliver_at`
/// envelopes by stamp reproduces the sequential harness's delivery order
/// under any sharding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Stamp {
    /// Virtual time of the send.
    pub sent_at: Time,
    /// Settle-wave counter within `sent_at` (see [`SimNetwork::begin_epoch`]).
    pub epoch: u32,
    /// The sender's registration index.
    pub src_idx: u32,
    /// The sender's monotonically increasing send counter.
    pub seq: u64,
}

/// An envelope in flight, with its delivery time and canonical stamp.
/// Public so the parallel harness can move cross-shard traffic between
/// fabrics without re-deriving either.
#[derive(Debug, Clone)]
pub struct StampedEnvelope {
    /// When the fabric will deliver it.
    pub deliver_at: Time,
    /// Canonical send-order stamp.
    pub stamp: Stamp,
    /// The payload.
    pub env: Envelope,
}

impl PartialEq for StampedEnvelope {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.stamp == other.stamp
    }
}
impl Eq for StampedEnvelope {}
impl PartialOrd for StampedEnvelope {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for StampedEnvelope {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.stamp).cmp(&(other.deliver_at, other.stamp))
    }
}

/// Per-source sending state: registration index, send counter, and the
/// jitter/loss RNG stream (derived from seed + address so it is the same
/// no matter which shard the source lives on).
#[derive(Debug)]
struct SrcState {
    idx: u32,
    seq: u64,
    rng: DetRng,
}

/// The simulated fabric.
#[derive(Debug)]
pub struct SimNetwork {
    config: SimConfig,
    queue: BinaryHeap<Reverse<StampedEnvelope>>,
    /// Envelopes addressed to nodes another shard owns, in send order.
    outbound: Vec<StampedEnvelope>,
    /// Last scheduled delivery per (src, dst) link, for the FIFO clamp.
    link_horizon: HashMap<(Addr, Addr), Time>,
    /// Every known address in the population (unknown destinations drop).
    nodes: HashSet<Addr>,
    /// Addresses whose deliveries this fabric handles itself.
    locals: HashSet<Addr>,
    down: HashSet<Addr>,
    /// Severed directed links.
    cut: HashSet<(Addr, Addr)>,
    src_states: HashMap<Addr, SrcState>,
    next_src_idx: u32,
    /// Current stamp position: instant and settle-wave epoch.
    stamp_time: Time,
    stamp_epoch: u32,
    stats: NetStats,
}

impl SimNetwork {
    /// Create a network with the given config.
    pub fn new(config: SimConfig) -> SimNetwork {
        SimNetwork {
            config,
            queue: BinaryHeap::new(),
            outbound: Vec::new(),
            link_horizon: HashMap::new(),
            nodes: HashSet::new(),
            locals: HashSet::new(),
            down: HashSet::new(),
            cut: HashSet::new(),
            src_states: HashMap::new(),
            next_src_idx: 0,
            stamp_time: Time::ZERO,
            stamp_epoch: 0,
            stats: NetStats::default(),
        }
    }

    /// The network configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Register a node address this fabric delivers to itself.
    pub fn register(&mut self, addr: Addr) {
        self.register_at(addr, true);
    }

    /// Register a node address, marking whether its deliveries are
    /// handled locally or routed to the outbound mailbox. Registration
    /// order assigns the stamp's `src_idx`, so every shard fabric must
    /// register the whole population in the same (insertion) order.
    pub fn register_at(&mut self, addr: Addr, local: bool) {
        if self.nodes.insert(addr.clone()) {
            let idx = self.next_src_idx;
            self.next_src_idx += 1;
            let rng = DetRng::derive(self.config.seed ^ 0x006e_6574_776f_726b, addr.as_str());
            self.src_states
                .insert(addr.clone(), SrcState { idx, seq: 0, rng });
        }
        if local {
            self.locals.insert(addr);
        }
    }

    /// Crash a node: its in-flight and future messages drop.
    pub fn set_down(&mut self, addr: &Addr, down: bool) {
        if down {
            self.down.insert(addr.clone());
        } else {
            self.down.remove(addr);
        }
    }

    /// Whether a node is currently marked down.
    pub fn is_down(&self, addr: &Addr) -> bool {
        self.down.contains(addr)
    }

    /// Sever or restore a directed link.
    pub fn set_cut(&mut self, src: &Addr, dst: &Addr, cut: bool) {
        if cut {
            self.cut.insert((src.clone(), dst.clone()));
        } else {
            self.cut.remove(&(src.clone(), dst.clone()));
        }
    }

    /// Change the loss rate on the fly (fault campaigns).
    pub fn set_loss_rate(&mut self, rate: f64) {
        self.config.loss_rate = rate.clamp(0.0, 1.0);
    }

    /// Counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Messages currently in flight (delivery heap plus outbound mailbox).
    pub fn in_flight(&self) -> usize {
        self.queue.len() + self.outbound.len()
    }

    /// Open the next settle-wave epoch at `now`: epoch 0 at a fresh
    /// instant, otherwise the next wave of the current instant. The
    /// sequential harness calls this once per settle wave; sends in later
    /// waves of the same instant then carry larger stamps, preserving
    /// causal order among same-instant sends.
    pub fn begin_epoch(&mut self, now: Time) {
        if self.stamp_time != now {
            self.stamp_time = now;
            self.stamp_epoch = 0;
        } else {
            self.stamp_epoch += 1;
        }
    }

    /// Position the stamp clock explicitly (the parallel harness drives
    /// epochs from its window coordinator so every shard fabric stamps
    /// identically).
    pub fn set_stamp(&mut self, now: Time, epoch: u32) {
        self.stamp_time = now;
        self.stamp_epoch = epoch;
    }

    /// Accept an envelope for transmission at virtual time `now`.
    pub fn send(&mut self, env: Envelope, now: Time) {
        *self.stats.sent_by.entry(env.src.clone()).or_insert(0) += 1;
        if !self.nodes.contains(&env.dst)
            || self.down.contains(&env.dst)
            || self.down.contains(&env.src)
            || self.cut.contains(&(env.src.clone(), env.dst.clone()))
        {
            self.stats.dropped += 1;
            return;
        }
        let loss_rate = self.config.loss_rate;
        let jitter_max = self.config.jitter.micros();
        let src = match self.src_states.get_mut(&env.src) {
            Some(s) => s,
            None => {
                // Unregistered sender (never the case under a harness):
                // give it a stream and an index after all registered ones.
                let idx = self.next_src_idx;
                self.next_src_idx += 1;
                let rng =
                    DetRng::derive(self.config.seed ^ 0x006e_6574_776f_726b, env.src.as_str());
                self.src_states
                    .entry(env.src.clone())
                    .or_insert(SrcState { idx, seq: 0, rng })
            }
        };
        if loss_rate > 0.0 && src.rng.unit_f64() < loss_rate {
            self.stats.dropped += 1;
            return;
        }
        let jitter = if jitter_max > 0 {
            TimeDelta::from_micros(src.rng.below(jitter_max + 1))
        } else {
            TimeDelta::ZERO
        };
        src.seq += 1;
        let stamp = Stamp {
            sent_at: now,
            epoch: if self.stamp_time == now {
                self.stamp_epoch
            } else {
                // Bare caller that never positions the stamp clock:
                // fresh instants start at epoch 0.
                self.stamp_time = now;
                self.stamp_epoch = 0;
                0
            },
            src_idx: src.idx,
            seq: src.seq,
        };
        let mut deliver_at = now + self.config.latency + jitter;
        // FIFO clamp: never overtake an earlier message on the same link.
        let key = (env.src.clone(), env.dst.clone());
        if let Some(h) = self.link_horizon.get(&key) {
            if deliver_at < *h {
                deliver_at = *h;
            }
        }
        self.link_horizon.insert(key, deliver_at);
        let se = StampedEnvelope {
            deliver_at,
            stamp,
            env,
        };
        if self.locals.contains(&se.env.dst) {
            self.queue.push(Reverse(se));
        } else {
            self.outbound.push(se);
        }
    }

    /// Take every cross-shard envelope sent since the last call, in send
    /// order. The caller (the window coordinator) routes each to the
    /// fabric owning its destination via [`SimNetwork::accept`].
    pub fn take_outbound(&mut self) -> Vec<StampedEnvelope> {
        std::mem::take(&mut self.outbound)
    }

    /// Admit an envelope stamped by another shard's fabric. The
    /// destination must be local here; send-side checks (loss, cuts,
    /// down-at-send) already happened on the sending fabric, and the
    /// died-in-flight check happens at [`SimNetwork::pop_due`] like any
    /// other delivery.
    pub fn accept(&mut self, se: StampedEnvelope) {
        debug_assert!(self.locals.contains(&se.env.dst), "accept of non-local dst");
        self.queue.push(Reverse(se));
    }

    /// The virtual time of the earliest pending local delivery. (The
    /// outbound mailbox is not consulted — routing it is the window
    /// coordinator's job.)
    pub fn next_delivery(&self) -> Option<Time> {
        self.queue.peek().map(|Reverse(m)| m.deliver_at)
    }

    /// Pop every envelope due at or before `now` (in delivery order).
    /// Envelopes addressed to nodes that died while the message was in
    /// flight are dropped here.
    pub fn pop_due(&mut self, now: Time) -> Vec<Envelope> {
        let mut out = Vec::new();
        while let Some(Reverse(m)) = self.queue.peek() {
            if m.deliver_at > now {
                break;
            }
            let Some(Reverse(m)) = self.queue.pop() else {
                break;
            };
            if self.down.contains(&m.env.dst) {
                self.stats.dropped += 1;
                continue;
            }
            *self
                .stats
                .delivered_to
                .entry(m.env.dst.clone())
                .or_insert(0) += 1;
            out.push(m.env);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_types::{Tuple, Value};
    use proptest::prelude::*;

    fn env(src: &str, dst: &str, x: i64) -> Envelope {
        Envelope::new(
            Tuple::new("m", [Value::addr(dst), Value::Int(x)]),
            Addr::new(src),
            Addr::new(dst),
        )
    }

    fn net() -> SimNetwork {
        let mut n = SimNetwork::new(SimConfig::default());
        for a in ["a", "b", "c"] {
            n.register(Addr::new(a));
        }
        n
    }

    #[test]
    fn delivers_after_latency() {
        let mut n = net();
        n.send(env("a", "b", 1), Time::ZERO);
        assert_eq!(n.next_delivery(), Some(Time::from_millis(10)));
        assert!(n.pop_due(Time::from_millis(9)).is_empty());
        let got = n.pop_due(Time::from_millis(10));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].tuples[0].get(1), Some(&Value::Int(1)));
        assert_eq!(n.stats().sent_by(&Addr::new("a")), 1);
    }

    #[test]
    fn fifo_per_link_even_with_jitter() {
        let mut n = SimNetwork::new(SimConfig {
            jitter: TimeDelta::from_millis(50),
            ..Default::default()
        });
        n.register(Addr::new("a"));
        n.register(Addr::new("b"));
        for i in 0..50 {
            n.send(env("a", "b", i), Time::from_millis(i as u64));
        }
        let got = n.pop_due(Time::from_secs(10));
        assert_eq!(got.len(), 50);
        let xs: Vec<i64> = got
            .iter()
            .map(|e| match e.tuples[0].get(1) {
                Some(Value::Int(n)) => *n,
                _ => panic!(),
            })
            .collect();
        let mut sorted = xs.clone();
        sorted.sort();
        assert_eq!(xs, sorted, "per-link delivery must be FIFO");
    }

    #[test]
    fn unknown_destination_drops() {
        let mut n = net();
        n.send(env("a", "ghost", 1), Time::ZERO);
        assert_eq!(n.stats().dropped, 1);
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn down_node_drops_current_and_in_flight() {
        let mut n = net();
        n.send(env("a", "b", 1), Time::ZERO);
        n.set_down(&Addr::new("b"), true);
        // New sends drop immediately; in-flight drop at delivery.
        n.send(env("a", "b", 2), Time::ZERO);
        assert!(n.pop_due(Time::from_secs(1)).is_empty());
        assert_eq!(n.stats().dropped, 2);
        // Revive: traffic flows again.
        n.set_down(&Addr::new("b"), false);
        n.send(env("a", "b", 3), Time::from_secs(1));
        assert_eq!(n.pop_due(Time::from_secs(2)).len(), 1);
    }

    #[test]
    fn cut_link_is_directional() {
        let mut n = net();
        n.set_cut(&Addr::new("a"), &Addr::new("b"), true);
        n.send(env("a", "b", 1), Time::ZERO);
        n.send(env("b", "a", 2), Time::ZERO);
        let got = n.pop_due(Time::from_secs(1));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].dst, Addr::new("a"));
    }

    #[test]
    fn loss_rate_drops_roughly_proportionally() {
        let mut n = SimNetwork::new(SimConfig {
            loss_rate: 0.5,
            ..Default::default()
        });
        n.register(Addr::new("a"));
        n.register(Addr::new("b"));
        for i in 0..1000 {
            n.send(env("a", "b", i), Time::ZERO);
        }
        let delivered = n.pop_due(Time::from_secs(1)).len();
        assert!((300..700).contains(&delivered), "got {delivered}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut n = SimNetwork::new(SimConfig {
                jitter: TimeDelta::from_millis(5),
                loss_rate: 0.2,
                seed: 7,
                ..Default::default()
            });
            n.register(Addr::new("a"));
            n.register(Addr::new("b"));
            for i in 0..100 {
                n.send(env("a", "b", i), Time::from_millis(i as u64));
            }
            n.pop_due(Time::from_secs(5))
                .iter()
                .map(|e| format!("{}", e.tuples[0]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    /// Splitting the population across two fabrics and routing the
    /// mailbox by hand delivers exactly what one fabric would, in the
    /// same order — the unit-level statement of the sharding theorem.
    #[test]
    fn split_fabrics_match_single_fabric() {
        let config = SimConfig {
            jitter: TimeDelta::from_millis(3),
            seed: 11,
            ..Default::default()
        };
        let addrs: Vec<Addr> = ["a", "b", "c", "d"].iter().map(|s| Addr::new(s)).collect();
        // One fabric owning everyone.
        let mut whole = SimNetwork::new(config.clone());
        for a in &addrs {
            whole.register(a.clone());
        }
        // Two fabrics, each owning half, both registering all.
        let mut left = SimNetwork::new(config.clone());
        let mut right = SimNetwork::new(config.clone());
        for (i, a) in addrs.iter().enumerate() {
            left.register_at(a.clone(), i % 2 == 0);
            right.register_at(a.clone(), i % 2 == 1);
        }
        // Everyone sends to everyone at two instants with two epochs.
        let mut x = 0;
        for t in [Time::ZERO, Time::from_millis(2)] {
            for epoch in 0..2 {
                whole.set_stamp(t, epoch);
                left.set_stamp(t, epoch);
                right.set_stamp(t, epoch);
                for (i, src) in addrs.iter().enumerate() {
                    for dst in &addrs {
                        if src == dst {
                            continue;
                        }
                        whole.send(env(src.as_str(), dst.as_str(), x), t);
                        let shard = if i % 2 == 0 { &mut left } else { &mut right };
                        shard.send(env(src.as_str(), dst.as_str(), x), t);
                        x += 1;
                    }
                }
            }
        }
        // Route the mailboxes.
        for se in left.take_outbound() {
            right.accept(se);
        }
        for se in right.take_outbound() {
            left.accept(se);
        }
        // What each destination observes must be identical (same
        // envelopes, same per-destination order) however the fabric is
        // sharded.
        let by_dst = |envs: Vec<Envelope>| {
            let mut m: HashMap<Addr, Vec<String>> = HashMap::new();
            for e in envs {
                m.entry(e.dst.clone())
                    .or_default()
                    .push(format!("{}->{} {}", e.src, e.dst, e.tuples[0]));
            }
            m
        };
        let deadline = Time::from_secs(1);
        let whole_view = by_dst(whole.pop_due(deadline));
        let mut shard_view = by_dst(left.pop_due(deadline));
        for (dst, lines) in by_dst(right.pop_due(deadline)) {
            assert!(
                shard_view.insert(dst, lines).is_none(),
                "a destination was delivered to by both shards"
            );
        }
        assert_eq!(shard_view, whole_view);
    }

    proptest! {
        /// Deliveries never reorder within a link, for any send schedule.
        #[test]
        fn prop_fifo(times in proptest::collection::vec(0u64..1000, 1..60), seed: u64) {
            let mut n = SimNetwork::new(SimConfig {
                jitter: TimeDelta::from_millis(20),
                seed,
                ..Default::default()
            });
            n.register(Addr::new("a"));
            n.register(Addr::new("b"));
            let mut sorted_times = times.clone();
            sorted_times.sort();
            for (i, t) in sorted_times.iter().enumerate() {
                n.send(env("a", "b", i as i64), Time::from_millis(*t));
            }
            let got = n.pop_due(Time::from_secs(100));
            let xs: Vec<i64> = got.iter().map(|e| match e.tuples[0].get(1) {
                Some(Value::Int(v)) => *v,
                _ => unreachable!(),
            }).collect();
            let mut s = xs.clone();
            s.sort();
            prop_assert_eq!(xs, s);
        }
    }
}
