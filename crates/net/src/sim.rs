//! Deterministic discrete-event simulated network.
//!
//! All nodes run in one process over a virtual clock (owned by the
//! simulation harness in `p2-core`); this module is the message fabric:
//!
//! * **Per-link FIFO.** The Chandy–Lamport snapshot implementation of
//!   §3.3 assumes FIFO channels; even with latency jitter enabled, a
//!   message never overtakes an earlier message on the same (src, dst)
//!   link — delivery times are clamped to be non-decreasing per link.
//! * **Fault injection.** Nodes can be crashed/revived and links can be
//!   partitioned or lossy — the oscillation and ring-consistency
//!   detectors of §3.1 are tested against these.
//! * **Exact counters.** Messages sent per node back the *Tx messages*
//!   series of Figures 6 and 7.

use crate::envelope::Envelope;
use p2_types::{Addr, DetRng, Time, TimeDelta};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Network configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Base one-way latency.
    pub latency: TimeDelta,
    /// Uniform extra latency in `[0, jitter]`.
    pub jitter: TimeDelta,
    /// Probability a message is dropped (0.0 = reliable).
    pub loss_rate: f64,
    /// RNG seed for jitter/loss decisions.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: TimeDelta::from_millis(10),
            jitter: TimeDelta::ZERO,
            loss_rate: 0.0,
            seed: 0,
        }
    }
}

/// Per-network counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Envelopes accepted for transmission, per source node.
    pub sent_by: HashMap<Addr, u64>,
    /// Envelopes delivered, per destination node.
    pub delivered_to: HashMap<Addr, u64>,
    /// Envelopes dropped (loss, partitions, dead nodes, unknown dest).
    pub dropped: u64,
}

impl NetStats {
    /// Total envelopes sent.
    pub fn total_sent(&self) -> u64 {
        self.sent_by.values().sum()
    }

    /// Envelopes sent by one node.
    pub fn sent_by(&self, a: &Addr) -> u64 {
        self.sent_by.get(a).copied().unwrap_or(0)
    }
}

#[derive(Debug)]
struct InFlight {
    deliver_at: Time,
    seq: u64,
    env: Envelope,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// The simulated fabric.
#[derive(Debug)]
pub struct SimNetwork {
    config: SimConfig,
    rng: DetRng,
    queue: BinaryHeap<Reverse<InFlight>>,
    /// Last scheduled delivery per (src, dst) link, for the FIFO clamp.
    link_horizon: HashMap<(Addr, Addr), Time>,
    nodes: HashSet<Addr>,
    down: HashSet<Addr>,
    /// Severed directed links.
    cut: HashSet<(Addr, Addr)>,
    seq: u64,
    stats: NetStats,
}

impl SimNetwork {
    /// Create a network with the given config.
    pub fn new(config: SimConfig) -> SimNetwork {
        let rng = DetRng::new(config.seed ^ 0x006e_6574_776f_726b);
        SimNetwork {
            config,
            rng,
            queue: BinaryHeap::new(),
            link_horizon: HashMap::new(),
            nodes: HashSet::new(),
            down: HashSet::new(),
            cut: HashSet::new(),
            seq: 0,
            stats: NetStats::default(),
        }
    }

    /// Register a node address (unknown destinations drop).
    pub fn register(&mut self, addr: Addr) {
        self.nodes.insert(addr);
    }

    /// Crash a node: its in-flight and future messages drop.
    pub fn set_down(&mut self, addr: &Addr, down: bool) {
        if down {
            self.down.insert(addr.clone());
        } else {
            self.down.remove(addr);
        }
    }

    /// Whether a node is currently marked down.
    pub fn is_down(&self, addr: &Addr) -> bool {
        self.down.contains(addr)
    }

    /// Sever or restore a directed link.
    pub fn set_cut(&mut self, src: &Addr, dst: &Addr, cut: bool) {
        if cut {
            self.cut.insert((src.clone(), dst.clone()));
        } else {
            self.cut.remove(&(src.clone(), dst.clone()));
        }
    }

    /// Change the loss rate on the fly (fault campaigns).
    pub fn set_loss_rate(&mut self, rate: f64) {
        self.config.loss_rate = rate.clamp(0.0, 1.0);
    }

    /// Counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Accept an envelope for transmission at virtual time `now`.
    pub fn send(&mut self, env: Envelope, now: Time) {
        *self.stats.sent_by.entry(env.src.clone()).or_insert(0) += 1;
        if !self.nodes.contains(&env.dst)
            || self.down.contains(&env.dst)
            || self.down.contains(&env.src)
            || self.cut.contains(&(env.src.clone(), env.dst.clone()))
        {
            self.stats.dropped += 1;
            return;
        }
        if self.config.loss_rate > 0.0 && self.rng.unit_f64() < self.config.loss_rate {
            self.stats.dropped += 1;
            return;
        }
        let jitter = if self.config.jitter.micros() > 0 {
            TimeDelta::from_micros(self.rng.below(self.config.jitter.micros() + 1))
        } else {
            TimeDelta::ZERO
        };
        let mut deliver_at = now + self.config.latency + jitter;
        // FIFO clamp: never overtake an earlier message on the same link.
        let key = (env.src.clone(), env.dst.clone());
        if let Some(h) = self.link_horizon.get(&key) {
            if deliver_at < *h {
                deliver_at = *h;
            }
        }
        self.link_horizon.insert(key, deliver_at);
        self.seq += 1;
        self.queue.push(Reverse(InFlight {
            deliver_at,
            seq: self.seq,
            env,
        }));
    }

    /// The virtual time of the earliest pending delivery.
    pub fn next_delivery(&self) -> Option<Time> {
        self.queue.peek().map(|Reverse(m)| m.deliver_at)
    }

    /// Pop every envelope due at or before `now` (in delivery order).
    /// Envelopes addressed to nodes that died while the message was in
    /// flight are dropped here.
    pub fn pop_due(&mut self, now: Time) -> Vec<Envelope> {
        let mut out = Vec::new();
        while let Some(Reverse(m)) = self.queue.peek() {
            if m.deliver_at > now {
                break;
            }
            let Some(Reverse(m)) = self.queue.pop() else {
                break;
            };
            if self.down.contains(&m.env.dst) {
                self.stats.dropped += 1;
                continue;
            }
            *self
                .stats
                .delivered_to
                .entry(m.env.dst.clone())
                .or_insert(0) += 1;
            out.push(m.env);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_types::{Tuple, Value};
    use proptest::prelude::*;

    fn env(src: &str, dst: &str, x: i64) -> Envelope {
        Envelope::new(
            Tuple::new("m", [Value::addr(dst), Value::Int(x)]),
            Addr::new(src),
            Addr::new(dst),
        )
    }

    fn net() -> SimNetwork {
        let mut n = SimNetwork::new(SimConfig::default());
        for a in ["a", "b", "c"] {
            n.register(Addr::new(a));
        }
        n
    }

    #[test]
    fn delivers_after_latency() {
        let mut n = net();
        n.send(env("a", "b", 1), Time::ZERO);
        assert_eq!(n.next_delivery(), Some(Time::from_millis(10)));
        assert!(n.pop_due(Time::from_millis(9)).is_empty());
        let got = n.pop_due(Time::from_millis(10));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].tuples[0].get(1), Some(&Value::Int(1)));
        assert_eq!(n.stats().sent_by(&Addr::new("a")), 1);
    }

    #[test]
    fn fifo_per_link_even_with_jitter() {
        let mut n = SimNetwork::new(SimConfig {
            jitter: TimeDelta::from_millis(50),
            ..Default::default()
        });
        n.register(Addr::new("a"));
        n.register(Addr::new("b"));
        for i in 0..50 {
            n.send(env("a", "b", i), Time::from_millis(i as u64));
        }
        let got = n.pop_due(Time::from_secs(10));
        assert_eq!(got.len(), 50);
        let xs: Vec<i64> = got
            .iter()
            .map(|e| match e.tuples[0].get(1) {
                Some(Value::Int(n)) => *n,
                _ => panic!(),
            })
            .collect();
        let mut sorted = xs.clone();
        sorted.sort();
        assert_eq!(xs, sorted, "per-link delivery must be FIFO");
    }

    #[test]
    fn unknown_destination_drops() {
        let mut n = net();
        n.send(env("a", "ghost", 1), Time::ZERO);
        assert_eq!(n.stats().dropped, 1);
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn down_node_drops_current_and_in_flight() {
        let mut n = net();
        n.send(env("a", "b", 1), Time::ZERO);
        n.set_down(&Addr::new("b"), true);
        // New sends drop immediately; in-flight drop at delivery.
        n.send(env("a", "b", 2), Time::ZERO);
        assert!(n.pop_due(Time::from_secs(1)).is_empty());
        assert_eq!(n.stats().dropped, 2);
        // Revive: traffic flows again.
        n.set_down(&Addr::new("b"), false);
        n.send(env("a", "b", 3), Time::from_secs(1));
        assert_eq!(n.pop_due(Time::from_secs(2)).len(), 1);
    }

    #[test]
    fn cut_link_is_directional() {
        let mut n = net();
        n.set_cut(&Addr::new("a"), &Addr::new("b"), true);
        n.send(env("a", "b", 1), Time::ZERO);
        n.send(env("b", "a", 2), Time::ZERO);
        let got = n.pop_due(Time::from_secs(1));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].dst, Addr::new("a"));
    }

    #[test]
    fn loss_rate_drops_roughly_proportionally() {
        let mut n = SimNetwork::new(SimConfig {
            loss_rate: 0.5,
            ..Default::default()
        });
        n.register(Addr::new("a"));
        n.register(Addr::new("b"));
        for i in 0..1000 {
            n.send(env("a", "b", i), Time::ZERO);
        }
        let delivered = n.pop_due(Time::from_secs(1)).len();
        assert!((300..700).contains(&delivered), "got {delivered}");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut n = SimNetwork::new(SimConfig {
                jitter: TimeDelta::from_millis(5),
                loss_rate: 0.2,
                seed: 7,
                ..Default::default()
            });
            n.register(Addr::new("a"));
            n.register(Addr::new("b"));
            for i in 0..100 {
                n.send(env("a", "b", i), Time::from_millis(i as u64));
            }
            n.pop_due(Time::from_secs(5))
                .iter()
                .map(|e| format!("{}", e.tuples[0]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    proptest! {
        /// Deliveries never reorder within a link, for any send schedule.
        #[test]
        fn prop_fifo(times in proptest::collection::vec(0u64..1000, 1..60), seed: u64) {
            let mut n = SimNetwork::new(SimConfig {
                jitter: TimeDelta::from_millis(20),
                seed,
                ..Default::default()
            });
            n.register(Addr::new("a"));
            n.register(Addr::new("b"));
            let mut sorted_times = times.clone();
            sorted_times.sort();
            for (i, t) in sorted_times.iter().enumerate() {
                n.send(env("a", "b", i as i64), Time::from_millis(*t));
            }
            let got = n.pop_due(Time::from_secs(100));
            let xs: Vec<i64> = got.iter().map(|e| match e.tuples[0].get(1) {
                Some(Value::Int(v)) => *v,
                _ => unreachable!(),
            }).collect();
            let mut s = xs.clone();
            s.sort();
            prop_assert_eq!(xs, s);
        }
    }
}
