// Library code must justify every panic path: unwrap/expect are
// clippy-warned outside tests (see scripts/tier1.sh, which denies
// warnings). Fix the call or carry an #[allow] with a reason.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! # p2-net — network substrates
//!
//! The paper evaluates on 21 virtual nodes running as OS processes over a
//! LAN. We substitute (DESIGN.md §2.4) a **deterministic discrete-event
//! simulated network** — [`sim::SimNetwork`] — as the primary substrate:
//! per-link FIFO delivery (required by the Chandy–Lamport snapshot
//! algorithm of §3.3), configurable latency/jitter/loss, node crash and
//! link partition injection, and exact message counters (the *Tx
//! messages* series of Figures 6–7).
//!
//! Two real-time substrates demonstrate that the runtime is not
//! simulator-only: [`threaded::ThreadedHub`] over crossbeam channels,
//! and [`udp::UdpTransport`] over actual sockets — the paper's own wire
//! protocol (one marshaled tuple per datagram, unreliable and
//! unordered). Both pass every message through the [`wire`] codec;
//! integration tests run small overlays on each.

pub mod envelope;
pub mod ship;
pub mod sim;
pub mod threaded;
pub mod udp;
pub mod wire;

pub use envelope::Envelope;
pub use ship::{ShipError, ShipMsg, SHIP_RELATION};
pub use sim::{NetStats, SimConfig, SimNetwork, Stamp, StampedEnvelope};
pub use threaded::ThreadedHub;
pub use udp::{UdpRecv, UdpTransport};
pub use wire::WireError;
