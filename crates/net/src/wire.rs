//! Binary marshaling for tuples and envelopes.
//!
//! The dataflow's network preamble/postamble (Figure 1) marshal and
//! unmarshal tuples. The simulated network passes envelopes by value, but
//! the threaded transport round-trips every message through this codec so
//! that crossing a node boundary is honest — and so that the "malformed
//! remote input must never panic a node" property is actually exercised:
//! decoding returns typed [`WireError`]s for every truncation and tag
//! corruption.
//!
//! Format: little-endian, length-prefixed. One byte of tag per value.

use crate::envelope::Envelope;
use p2_types::{Addr, RingId, Time, Tuple, TupleId, Value};
use std::fmt;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended mid-field.
    Truncated,
    /// Unknown value tag byte.
    BadTag(u8),
    /// A string field was not UTF-8.
    BadUtf8,
    /// Nesting deeper than the decoder permits (stack safety on hostile
    /// input).
    TooDeep,
    /// An envelope batch mixed tuples of different relations; batches
    /// are dispatched as one same-relation run, so this frame is invalid.
    MixedBatch,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown value tag {t:#x}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::TooDeep => write!(f, "value nesting too deep"),
            WireError::MixedBatch => {
                write!(f, "envelope batch mixes tuples of different relations")
            }
        }
    }
}

impl std::error::Error for WireError {}

const MAX_DEPTH: usize = 16;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?.try_into().map_err(|_| WireError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Bool(b) => {
            out.push(0);
            out.push(*b as u8);
        }
        Value::Int(n) => {
            out.push(1);
            put_u64(out, *n as u64);
        }
        Value::Float(x) => {
            out.push(2);
            put_u64(out, x.to_bits());
        }
        Value::Id(i) => {
            out.push(3);
            put_u64(out, i.0);
        }
        Value::Time(t) => {
            out.push(4);
            put_u64(out, t.0);
        }
        Value::Str(s) => {
            out.push(5);
            put_str(out, s);
        }
        Value::Addr(a) => {
            out.push(6);
            put_str(out, a.as_str());
        }
        Value::List(items) => {
            out.push(7);
            put_u32(out, items.len() as u32);
            for i in items.iter() {
                encode_value(out, i);
            }
        }
    }
}

fn decode_value(r: &mut Reader<'_>, depth: usize) -> Result<Value, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::TooDeep);
    }
    Ok(match r.u8()? {
        0 => Value::Bool(r.u8()? != 0),
        1 => Value::Int(r.u64()? as i64),
        2 => Value::Float(f64::from_bits(r.u64()?)),
        3 => Value::Id(RingId(r.u64()?)),
        4 => Value::Time(Time(r.u64()?)),
        5 => Value::Str(r.str()?.into()),
        6 => Value::Addr(Addr::new(r.str()?)),
        7 => {
            let n = r.u32()? as usize;
            // Guard against absurd length prefixes on hostile input.
            if n > r.buf.len() {
                return Err(WireError::Truncated);
            }
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_value(r, depth + 1)?);
            }
            Value::list(items)
        }
        t => return Err(WireError::BadTag(t)),
    })
}

/// Encode one value into `out` (the tag-per-value format above).
///
/// Public so other storage layers — notably the archive's segment
/// codec in `p2-store` — reuse the one binary value format instead of
/// inventing a second, with the same hostile-input guarantees.
pub fn encode_value_into(out: &mut Vec<u8>, v: &Value) {
    encode_value(out, v);
}

/// Decode one value from `buf` starting at `*pos`, advancing `*pos`
/// past it. Returns the same typed [`WireError`]s as the envelope
/// decoder: truncation, bad tags, bad UTF-8, and over-deep nesting are
/// errors, never panics.
pub fn decode_value_from(buf: &[u8], pos: &mut usize) -> Result<Value, WireError> {
    let mut r = Reader { buf, pos: *pos };
    let v = decode_value(&mut r, 0)?;
    *pos = r.pos;
    Ok(v)
}

/// Encode a tuple.
pub fn encode_tuple(t: &Tuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_str(&mut out, t.name());
    put_u32(&mut out, t.arity() as u32);
    for v in t.values() {
        encode_value(&mut out, v);
    }
    out
}

/// Decode a tuple.
pub fn decode_tuple(buf: &[u8]) -> Result<Tuple, WireError> {
    let mut r = Reader { buf, pos: 0 };
    let t = decode_tuple_inner(&mut r)?;
    Ok(t)
}

fn decode_tuple_inner(r: &mut Reader<'_>) -> Result<Tuple, WireError> {
    let name = r.str()?;
    let n = r.u32()? as usize;
    if n > r.buf.len() {
        return Err(WireError::Truncated);
    }
    let mut vals = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        vals.push(decode_value(r, 0)?);
    }
    Ok(Tuple::new(name, vals))
}

/// Encode an envelope (a same-relation tuple batch + routing/tracing
/// metadata). Frame layout: src, dst, delete flag, tuple count, then per
/// tuple an ID-presence flag (plus the 8-byte ID when present) and the
/// tuple itself.
pub fn encode_envelope(e: &Envelope) -> Vec<u8> {
    debug_assert!(
        e.tuples.windows(2).all(|w| w[0].name() == w[1].name()),
        "envelope batches must be same-relation runs"
    );
    let mut out = Vec::with_capacity(96);
    put_str(&mut out, e.src.as_str());
    put_str(&mut out, e.dst.as_str());
    out.push(e.delete as u8);
    put_u32(&mut out, e.tuples.len() as u32);
    for (i, t) in e.tuples.iter().enumerate() {
        match e.tuple_id(i) {
            Some(id) => {
                out.push(1);
                put_u64(&mut out, id.0);
            }
            None => out.push(0),
        }
        out.extend_from_slice(&encode_tuple(t));
    }
    out
}

/// Decode an envelope. Rejects batches that mix relations
/// ([`WireError::MixedBatch`]); an untraced batch (no IDs at all) decodes
/// to the canonical empty `src_tuple_ids`.
pub fn decode_envelope(buf: &[u8]) -> Result<Envelope, WireError> {
    let mut r = Reader { buf, pos: 0 };
    let src = Addr::new(r.str()?);
    let dst = Addr::new(r.str()?);
    let delete = r.u8()? != 0;
    let count = r.u32()? as usize;
    // Guard against absurd count prefixes on hostile input: every tuple
    // costs at least one ID-flag byte.
    if count > buf.len() {
        return Err(WireError::Truncated);
    }
    let mut tuples = Vec::with_capacity(count.min(1024));
    let mut ids = Vec::with_capacity(count.min(1024));
    let mut any_id = false;
    for _ in 0..count {
        let id = match r.u8()? {
            0 => None,
            _ => {
                any_id = true;
                Some(TupleId(r.u64()?))
            }
        };
        let tuple = decode_tuple_inner(&mut r)?;
        if let Some(first) = tuples.first() {
            let first: &Tuple = first;
            if first.name() != tuple.name() {
                return Err(WireError::MixedBatch);
            }
        }
        ids.push(id);
        tuples.push(tuple);
    }
    let src_tuple_ids = if any_id { ids } else { Vec::new() };
    Ok(Envelope {
        tuples,
        src,
        dst,
        src_tuple_ids,
        delete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rt(t: &Tuple) -> Tuple {
        decode_tuple(&encode_tuple(t)).unwrap()
    }

    #[test]
    fn tuple_round_trip_all_types() {
        let t = Tuple::new(
            "mix",
            [
                Value::addr("n1:7"),
                Value::Bool(true),
                Value::Int(-17),
                Value::Float(0.5),
                Value::id(u64::MAX),
                Value::Time(Time(123)),
                Value::str("hello \u{1F980}"),
                Value::list([Value::Int(1), Value::list([Value::str("x")])]),
            ],
        );
        assert_eq!(rt(&t), t);
    }

    #[test]
    fn envelope_round_trip() {
        let e = Envelope {
            tuples: vec![Tuple::new("m", [Value::addr("b"), Value::Int(9)])],
            src: Addr::new("a"),
            dst: Addr::new("b"),
            src_tuple_ids: vec![Some(TupleId(42))],
            delete: true,
        };
        let got = decode_envelope(&encode_envelope(&e)).unwrap();
        assert_eq!(got, e);
    }

    #[test]
    fn batched_envelope_round_trip_mixed_ids() {
        // Some tuples traced, some not: per-tuple flags must survive.
        let e = Envelope {
            tuples: (0..5)
                .map(|i| Tuple::new("m", [Value::addr("b"), Value::Int(i)]))
                .collect(),
            src: Addr::new("a"),
            dst: Addr::new("b"),
            src_tuple_ids: vec![Some(TupleId(1)), None, Some(TupleId(3)), None, None],
            delete: false,
        };
        let got = decode_envelope(&encode_envelope(&e)).unwrap();
        assert_eq!(got, e);
    }

    #[test]
    fn empty_envelope_round_trips() {
        let e = Envelope {
            tuples: Vec::new(),
            src: Addr::new("a"),
            dst: Addr::new("b"),
            src_tuple_ids: Vec::new(),
            delete: false,
        };
        let got = decode_envelope(&encode_envelope(&e)).unwrap();
        assert_eq!(got, e);
    }

    #[test]
    fn mixed_relation_batch_rejected() {
        // Hand-craft a frame that splices two different relations into
        // one batch (the encoder refuses to build one).
        let a = Envelope::new(
            Tuple::new("m", [Value::addr("b")]),
            Addr::new("a"),
            Addr::new("b"),
        );
        let mut bytes = encode_envelope(&a);
        // Bump the count to 2 and append a second (different-relation)
        // id-flag + tuple.
        let count_pos = (4 + 1) + (4 + 1) + 1; // "a", "b", delete flag
        bytes[count_pos..count_pos + 4].copy_from_slice(&2u32.to_le_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&encode_tuple(&Tuple::new("other", [Value::Int(1)])));
        assert_eq!(decode_envelope(&bytes), Err(WireError::MixedBatch));
    }

    #[test]
    fn hostile_envelope_count_rejected() {
        let e = Envelope::new(
            Tuple::new("m", [Value::addr("b")]),
            Addr::new("a"),
            Addr::new("b"),
        );
        let mut bytes = encode_envelope(&e);
        let count_pos = (4 + 1) + (4 + 1) + 1;
        bytes[count_pos..count_pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_envelope(&bytes).is_err());
    }

    #[test]
    fn envelope_truncation_is_error_not_panic() {
        let e = Envelope {
            tuples: (0..3)
                .map(|i| Tuple::new("m", [Value::addr("b"), Value::Int(i)]))
                .collect(),
            src: Addr::new("a"),
            dst: Addr::new("b"),
            src_tuple_ids: vec![Some(TupleId(9)), None, None],
            delete: false,
        };
        let bytes = encode_envelope(&e);
        for cut in 0..bytes.len() {
            assert!(
                decode_envelope(&bytes[..cut]).is_err(),
                "decoding a {cut}-byte prefix must fail cleanly"
            );
        }
    }

    #[test]
    fn truncation_is_error_not_panic() {
        let t = Tuple::new("m", [Value::addr("b"), Value::str("payload")]);
        let bytes = encode_tuple(&t);
        for cut in 0..bytes.len() {
            let r = decode_tuple(&bytes[..cut]);
            assert!(r.is_err(), "decoding a {cut}-byte prefix must fail cleanly");
        }
    }

    #[test]
    fn bad_tag_is_error() {
        let t = Tuple::new("m", [Value::Int(1)]);
        let mut bytes = encode_tuple(&t);
        // Corrupt the value tag (after name len+name and arity).
        let tag_pos = 4 + 1 + 4;
        bytes[tag_pos] = 0xFF;
        assert_eq!(decode_tuple(&bytes), Err(WireError::BadTag(0xFF)));
    }

    #[test]
    fn bad_utf8_is_error() {
        let t = Tuple::new("m", [Value::str("abcd")]);
        let mut bytes = encode_tuple(&t);
        let len = bytes.len();
        bytes[len - 2] = 0xFF; // corrupt a UTF-8 byte inside the string
        assert_eq!(decode_tuple(&bytes), Err(WireError::BadUtf8));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let t = Tuple::new("m", [Value::list([Value::Int(1)])]);
        let mut bytes = encode_tuple(&t);
        // Blow up the list length prefix.
        let pos = 4 + 1 + 4 + 1; // name, arity, list tag
        bytes[pos..pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_tuple(&bytes).is_err());
    }

    #[test]
    fn deep_nesting_rejected() {
        let mut v = Value::Int(0);
        for _ in 0..40 {
            v = Value::list([v]);
        }
        let t = Tuple::new("deep", [v]);
        let bytes = encode_tuple(&t);
        assert_eq!(decode_tuple(&bytes), Err(WireError::TooDeep));
    }

    proptest! {
        /// Arbitrary flat tuples round-trip.
        #[test]
        fn prop_round_trip(
            name in "[a-z]{1,12}",
            ints in proptest::collection::vec(any::<i64>(), 0..8),
            strs in proptest::collection::vec("[ -~]{0,20}", 0..4),
        ) {
            let vals: Vec<Value> = ints
                .into_iter()
                .map(Value::Int)
                .chain(strs.into_iter().map(Value::str))
                .collect();
            let t = Tuple::new(&name, vals);
            prop_assert_eq!(rt(&t), t);
        }

        /// No byte soup panics the decoder.
        #[test]
        fn prop_no_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_tuple(&bytes);
            let _ = decode_envelope(&bytes);
        }

        /// Arbitrary same-relation batches — including the empty batch
        /// and batches at the coalescing cap — round-trip exactly,
        /// per-tuple trace IDs included.
        #[test]
        fn prop_envelope_batch_round_trip(
            name in "[a-z]{1,12}",
            rows in proptest::collection::vec(
                (any::<i64>(), any::<u64>(), any::<bool>()),
                0..65,
            ),
            delete in any::<bool>(),
        ) {
            let tuples: Vec<Tuple> = rows
                .iter()
                .map(|(x, _, _)| Tuple::new(&name, [Value::addr("b"), Value::Int(*x)]))
                .collect();
            let mut e = Envelope {
                tuples,
                src: Addr::new("a"),
                dst: Addr::new("b"),
                src_tuple_ids: Vec::new(),
                delete,
            };
            e.set_tuple_ids(
                rows.iter()
                    .map(|(_, id, traced)| traced.then_some(TupleId(*id)))
                    .collect(),
            );
            let got = decode_envelope(&encode_envelope(&e)).unwrap();
            prop_assert_eq!(got, e);
        }

        /// A frame spliced together from two different relations is
        /// always rejected as a mixed batch, never mis-dispatched.
        #[test]
        fn prop_mixed_relations_rejected(
            n1 in "[a-z]{1,8}",
            n2 in "[A-Z]{1,8}", // disjoint alphabet: always a different name
            vals in proptest::collection::vec(any::<i64>(), 1..8),
        ) {
            let mut e = Envelope::new(
                Tuple::new(&n1, [Value::addr("b"), Value::Int(0)]),
                Addr::new("a"),
                Addr::new("b"),
            );
            for v in &vals {
                e.tuples.push(Tuple::new(&n2, [Value::addr("b"), Value::Int(*v)]));
            }
            // Bypass the encoder's same-relation debug_assert by
            // splicing frames manually.
            let count_pos = (4 + 1) + (4 + 1) + 1;
            let mut bytes = encode_envelope(&Envelope::new(
                e.tuples[0].clone(),
                e.src.clone(),
                e.dst.clone(),
            ));
            bytes[count_pos..count_pos + 4]
                .copy_from_slice(&(1 + vals.len() as u32).to_le_bytes());
            for t in &e.tuples[1..] {
                bytes.push(0);
                bytes.extend_from_slice(&encode_tuple(t));
            }
            prop_assert_eq!(decode_envelope(&bytes), Err(WireError::MixedBatch));
        }
    }
}
