//! Binary marshaling for tuples and envelopes.
//!
//! The dataflow's network preamble/postamble (Figure 1) marshal and
//! unmarshal tuples. The simulated network passes envelopes by value, but
//! the threaded transport round-trips every message through this codec so
//! that crossing a node boundary is honest — and so that the "malformed
//! remote input must never panic a node" property is actually exercised:
//! decoding returns typed [`WireError`]s for every truncation and tag
//! corruption.
//!
//! Format: little-endian, length-prefixed. One byte of tag per value.

use crate::envelope::Envelope;
use p2_types::{Addr, RingId, Time, Tuple, TupleId, Value};
use std::fmt;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended mid-field.
    Truncated,
    /// Unknown value tag byte.
    BadTag(u8),
    /// A string field was not UTF-8.
    BadUtf8,
    /// Nesting deeper than the decoder permits (stack safety on hostile
    /// input).
    TooDeep,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown value tag {t:#x}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::TooDeep => write!(f, "value nesting too deep"),
        }
    }
}

impl std::error::Error for WireError {}

const MAX_DEPTH: usize = 16;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Bool(b) => {
            out.push(0);
            out.push(*b as u8);
        }
        Value::Int(n) => {
            out.push(1);
            put_u64(out, *n as u64);
        }
        Value::Float(x) => {
            out.push(2);
            put_u64(out, x.to_bits());
        }
        Value::Id(i) => {
            out.push(3);
            put_u64(out, i.0);
        }
        Value::Time(t) => {
            out.push(4);
            put_u64(out, t.0);
        }
        Value::Str(s) => {
            out.push(5);
            put_str(out, s);
        }
        Value::Addr(a) => {
            out.push(6);
            put_str(out, a.as_str());
        }
        Value::List(items) => {
            out.push(7);
            put_u32(out, items.len() as u32);
            for i in items.iter() {
                encode_value(out, i);
            }
        }
    }
}

fn decode_value(r: &mut Reader<'_>, depth: usize) -> Result<Value, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::TooDeep);
    }
    Ok(match r.u8()? {
        0 => Value::Bool(r.u8()? != 0),
        1 => Value::Int(r.u64()? as i64),
        2 => Value::Float(f64::from_bits(r.u64()?)),
        3 => Value::Id(RingId(r.u64()?)),
        4 => Value::Time(Time(r.u64()?)),
        5 => Value::Str(r.str()?.into()),
        6 => Value::Addr(Addr::new(r.str()?)),
        7 => {
            let n = r.u32()? as usize;
            // Guard against absurd length prefixes on hostile input.
            if n > r.buf.len() {
                return Err(WireError::Truncated);
            }
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_value(r, depth + 1)?);
            }
            Value::list(items)
        }
        t => return Err(WireError::BadTag(t)),
    })
}

/// Encode a tuple.
pub fn encode_tuple(t: &Tuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_str(&mut out, t.name());
    put_u32(&mut out, t.arity() as u32);
    for v in t.values() {
        encode_value(&mut out, v);
    }
    out
}

/// Decode a tuple.
pub fn decode_tuple(buf: &[u8]) -> Result<Tuple, WireError> {
    let mut r = Reader { buf, pos: 0 };
    let t = decode_tuple_inner(&mut r)?;
    Ok(t)
}

fn decode_tuple_inner(r: &mut Reader<'_>) -> Result<Tuple, WireError> {
    let name = r.str()?;
    let n = r.u32()? as usize;
    if n > r.buf.len() {
        return Err(WireError::Truncated);
    }
    let mut vals = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        vals.push(decode_value(r, 0)?);
    }
    Ok(Tuple::new(name, vals))
}

/// Encode an envelope (tuple + routing/tracing metadata).
pub fn encode_envelope(e: &Envelope) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    put_str(&mut out, e.src.as_str());
    put_str(&mut out, e.dst.as_str());
    out.push(e.delete as u8);
    match e.src_tuple_id {
        Some(id) => {
            out.push(1);
            put_u64(&mut out, id.0);
        }
        None => out.push(0),
    }
    out.extend_from_slice(&encode_tuple(&e.tuple));
    out
}

/// Decode an envelope.
pub fn decode_envelope(buf: &[u8]) -> Result<Envelope, WireError> {
    let mut r = Reader { buf, pos: 0 };
    let src = Addr::new(r.str()?);
    let dst = Addr::new(r.str()?);
    let delete = r.u8()? != 0;
    let src_tuple_id = match r.u8()? {
        0 => None,
        _ => Some(TupleId(r.u64()?)),
    };
    let tuple = decode_tuple_inner(&mut r)?;
    Ok(Envelope { tuple, src, dst, src_tuple_id, delete })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rt(t: &Tuple) -> Tuple {
        decode_tuple(&encode_tuple(t)).unwrap()
    }

    #[test]
    fn tuple_round_trip_all_types() {
        let t = Tuple::new(
            "mix",
            [
                Value::addr("n1:7"),
                Value::Bool(true),
                Value::Int(-17),
                Value::Float(0.5),
                Value::id(u64::MAX),
                Value::Time(Time(123)),
                Value::str("hello \u{1F980}"),
                Value::list([Value::Int(1), Value::list([Value::str("x")])]),
            ],
        );
        assert_eq!(rt(&t), t);
    }

    #[test]
    fn envelope_round_trip() {
        let e = Envelope {
            tuple: Tuple::new("m", [Value::addr("b"), Value::Int(9)]),
            src: Addr::new("a"),
            dst: Addr::new("b"),
            src_tuple_id: Some(TupleId(42)),
            delete: true,
        };
        let got = decode_envelope(&encode_envelope(&e)).unwrap();
        assert_eq!(got, e);
    }

    #[test]
    fn truncation_is_error_not_panic() {
        let t = Tuple::new("m", [Value::addr("b"), Value::str("payload")]);
        let bytes = encode_tuple(&t);
        for cut in 0..bytes.len() {
            let r = decode_tuple(&bytes[..cut]);
            assert!(r.is_err(), "decoding a {cut}-byte prefix must fail cleanly");
        }
    }

    #[test]
    fn bad_tag_is_error() {
        let t = Tuple::new("m", [Value::Int(1)]);
        let mut bytes = encode_tuple(&t);
        // Corrupt the value tag (after name len+name and arity).
        let tag_pos = 4 + 1 + 4;
        bytes[tag_pos] = 0xFF;
        assert_eq!(decode_tuple(&bytes), Err(WireError::BadTag(0xFF)));
    }

    #[test]
    fn bad_utf8_is_error() {
        let t = Tuple::new("m", [Value::str("abcd")]);
        let mut bytes = encode_tuple(&t);
        let len = bytes.len();
        bytes[len - 2] = 0xFF; // corrupt a UTF-8 byte inside the string
        assert_eq!(decode_tuple(&bytes), Err(WireError::BadUtf8));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let t = Tuple::new("m", [Value::list([Value::Int(1)])]);
        let mut bytes = encode_tuple(&t);
        // Blow up the list length prefix.
        let pos = 4 + 1 + 4 + 1; // name, arity, list tag
        bytes[pos..pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_tuple(&bytes).is_err());
    }

    #[test]
    fn deep_nesting_rejected() {
        let mut v = Value::Int(0);
        for _ in 0..40 {
            v = Value::list([v]);
        }
        let t = Tuple::new("deep", [v]);
        let bytes = encode_tuple(&t);
        assert_eq!(decode_tuple(&bytes), Err(WireError::TooDeep));
    }

    proptest! {
        /// Arbitrary flat tuples round-trip.
        #[test]
        fn prop_round_trip(
            name in "[a-z]{1,12}",
            ints in proptest::collection::vec(any::<i64>(), 0..8),
            strs in proptest::collection::vec("[ -~]{0,20}", 0..4),
        ) {
            let vals: Vec<Value> = ints
                .into_iter()
                .map(Value::Int)
                .chain(strs.into_iter().map(Value::str))
                .collect();
            let t = Tuple::new(&name, vals);
            prop_assert_eq!(rt(&t), t);
        }

        /// No byte soup panics the decoder.
        #[test]
        fn prop_no_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_tuple(&bytes);
            let _ = decode_envelope(&bytes);
        }
    }
}
