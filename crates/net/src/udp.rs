//! UDP transport.
//!
//! The paper's prototype runs its 21 virtual nodes as OS processes
//! exchanging tuples over UDP; this module is that substrate: node
//! addresses are `ip:port` strings, envelopes are marshaled through the
//! [`crate::wire`] codec, one datagram per envelope. Delivery is
//! unreliable and unordered exactly as real UDP is — which is what the
//! soft-state protocol stack upstairs is built to tolerate (and what the
//! simulator's loss/jitter knobs model deterministically).

use crate::envelope::Envelope;
use crate::wire::{decode_envelope, encode_envelope};
use p2_types::Addr;
use std::io;
use std::net::UdpSocket;
use std::time::Duration;

/// Largest datagram we attempt to receive. Chord control tuples are tens
/// of bytes; anything near this size indicates a runaway program.
const MAX_DATAGRAM: usize = 64 * 1024;

/// A UDP endpoint for one node.
///
/// The node's [`Addr`] must parse as a socket address
/// (e.g. `"127.0.0.1:9001"`).
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    local: Addr,
}

/// Receive outcome: decoded envelope, nothing pending, or a frame that
/// failed to decode (reported, not fatal — hostile or corrupt peers must
/// not wedge a node).
#[derive(Debug)]
pub enum UdpRecv {
    /// A well-formed envelope.
    Envelope(Envelope),
    /// Nothing waiting.
    Empty,
    /// An undecodable datagram arrived (and was dropped).
    Malformed {
        /// Decode failure description.
        error: String,
    },
}

impl UdpTransport {
    /// Bind the node's socket. The address must be a valid `ip:port`.
    pub fn bind(local: &Addr) -> io::Result<UdpTransport> {
        let socket = UdpSocket::bind(local.as_str())?;
        socket.set_nonblocking(true)?;
        Ok(UdpTransport {
            socket,
            local: local.clone(),
        })
    }

    /// The bound address (useful with port 0: the OS assigns one).
    pub fn local_addr(&self) -> io::Result<Addr> {
        Ok(Addr::new(self.socket.local_addr()?.to_string()))
    }

    /// The node address this transport was created for.
    pub fn node_addr(&self) -> &Addr {
        &self.local
    }

    /// Send one envelope as one datagram to `env.dst` (an `ip:port`
    /// address). Returns the datagram size.
    pub fn send(&self, env: &Envelope) -> io::Result<usize> {
        let bytes = encode_envelope(env);
        self.socket.send_to(&bytes, env.dst.as_str())
    }

    /// Non-blocking receive of one datagram.
    pub fn try_recv(&self) -> io::Result<UdpRecv> {
        let mut buf = vec![0u8; MAX_DATAGRAM];
        match self.socket.recv_from(&mut buf) {
            Ok((n, _peer)) => match decode_envelope(&buf[..n]) {
                Ok(env) => Ok(UdpRecv::Envelope(env)),
                Err(e) => Ok(UdpRecv::Malformed {
                    error: e.to_string(),
                }),
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(UdpRecv::Empty),
            Err(e) => Err(e),
        }
    }

    /// Blocking receive with a timeout. `Ok(UdpRecv::Empty)` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> io::Result<UdpRecv> {
        self.socket.set_nonblocking(false)?;
        self.socket.set_read_timeout(Some(timeout))?;
        let mut buf = vec![0u8; MAX_DATAGRAM];
        let r = self.socket.recv_from(&mut buf);
        // Restore non-blocking mode for try_recv callers.
        self.socket.set_nonblocking(true)?;
        match r {
            Ok((n, _peer)) => match decode_envelope(&buf[..n]) {
                Ok(env) => Ok(UdpRecv::Envelope(env)),
                Err(e) => Ok(UdpRecv::Malformed {
                    error: e.to_string(),
                }),
            },
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(UdpRecv::Empty)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_types::{Tuple, Value};

    fn bind_ephemeral() -> UdpTransport {
        UdpTransport::bind(&Addr::new("127.0.0.1:0")).expect("bind")
    }

    fn env_to(dst: &Addr, x: i64) -> Envelope {
        Envelope::new(
            Tuple::new("m", [Value::Addr(dst.clone()), Value::Int(x)]),
            Addr::new("127.0.0.1:1"),
            dst.clone(),
        )
    }

    #[test]
    fn datagram_round_trip() {
        let a = bind_ephemeral();
        let b = bind_ephemeral();
        let b_addr = b.local_addr().unwrap();
        a.send(&env_to(&b_addr, 42)).unwrap();
        match b.recv_timeout(Duration::from_secs(2)).unwrap() {
            UdpRecv::Envelope(e) => {
                assert_eq!(e.tuples[0].get(1), Some(&Value::Int(42)));
                assert_eq!(e.dst, b_addr);
            }
            other => panic!("expected envelope, got {other:?}"),
        }
    }

    #[test]
    fn empty_when_nothing_pending() {
        let a = bind_ephemeral();
        assert!(matches!(a.try_recv().unwrap(), UdpRecv::Empty));
    }

    #[test]
    fn malformed_datagram_is_reported_not_fatal() {
        let a = bind_ephemeral();
        let b = bind_ephemeral();
        let b_addr = b.local_addr().unwrap();
        // Raw garbage straight onto the socket.
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
        raw.send_to(&[0xFF, 0x00, 0x13, 0x37], b_addr.as_str())
            .unwrap();
        match b.recv_timeout(Duration::from_secs(2)).unwrap() {
            UdpRecv::Malformed { error } => assert!(!error.is_empty()),
            other => panic!("expected malformed, got {other:?}"),
        }
        // The transport keeps working afterwards.
        a.send(&env_to(&b_addr, 7)).unwrap();
        assert!(matches!(
            b.recv_timeout(Duration::from_secs(2)).unwrap(),
            UdpRecv::Envelope(_)
        ));
    }

    #[test]
    fn bad_bind_address_is_io_error() {
        assert!(UdpTransport::bind(&Addr::new("not-an-address")).is_err());
    }

    #[test]
    fn many_datagrams_in_order_locally() {
        // Loopback UDP practically preserves order; the test only asserts
        // that all arrive and decode.
        let a = bind_ephemeral();
        let b = bind_ephemeral();
        let b_addr = b.local_addr().unwrap();
        for i in 0..50 {
            a.send(&env_to(&b_addr, i)).unwrap();
        }
        let mut got = 0;
        while got < 50 {
            match b.recv_timeout(Duration::from_secs(2)).unwrap() {
                UdpRecv::Envelope(_) => got += 1,
                UdpRecv::Empty => break,
                UdpRecv::Malformed { error } => panic!("{error}"),
            }
        }
        assert_eq!(got, 50);
    }
}
