//! Message envelopes.

use p2_types::{Addr, Tuple, TupleId};

/// A tuple in flight between nodes.
///
/// The envelope is the "network postamble" output of Figure 1: the tuple
/// itself plus the routing and tracing metadata the paper's §2.1.3
/// correlation requires — the sender's node-local tuple ID rides along so
/// the receiver's `tupleTable` row can name it.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The payload tuple (its field 0 names `dst` by convention).
    pub tuple: Tuple,
    /// Sending node.
    pub src: Addr,
    /// Destination node.
    pub dst: Addr,
    /// The sender's tuple ID (present when the sender traces execution).
    pub src_tuple_id: Option<TupleId>,
    /// `true` when this is a remote `delete`: the receiver removes the
    /// matching row instead of raising an insertion/event.
    pub delete: bool,
}

impl Envelope {
    /// Convenience constructor for a plain (non-delete, untraced) send.
    pub fn new(tuple: Tuple, src: Addr, dst: Addr) -> Envelope {
        Envelope { tuple, src, dst, src_tuple_id: None, delete: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_types::Value;

    #[test]
    fn construction() {
        let t = Tuple::new("m", [Value::addr("b"), Value::Int(1)]);
        let e = Envelope::new(t.clone(), Addr::new("a"), Addr::new("b"));
        assert_eq!(e.tuple, t);
        assert!(!e.delete);
        assert!(e.src_tuple_id.is_none());
    }
}
