//! Message envelopes.

use p2_types::{Addr, Tuple, TupleId};

/// A same-relation run of tuples in flight between two nodes.
///
/// The envelope is the "network postamble" output of Figure 1: the
/// payload plus the routing and tracing metadata the paper's §2.1.3
/// correlation requires — the sender's node-local tuple IDs ride along so
/// the receiver's `tupleTable` rows can name them.
///
/// A batched runtime coalesces consecutive same-destination,
/// same-relation outputs of one pump into a single envelope. Mixing
/// relations in one envelope is not allowed: the receiver dispatches an
/// envelope as one run, and the wire codec rejects mixed batches
/// ([`crate::wire::WireError::MixedBatch`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The payload tuples, all of the same relation (field 0 of each
    /// names `dst` by convention).
    pub tuples: Vec<Tuple>,
    /// Sending node.
    pub src: Addr,
    /// Destination node.
    pub dst: Addr,
    /// The sender's per-tuple IDs (parallel to `tuples`) when the sender
    /// traces execution. The canonical *untraced* form is an **empty**
    /// vector, never a vector of `None`s — [`Envelope::set_tuple_ids`]
    /// normalizes, and the codec round-trips the canonical form exactly.
    pub src_tuple_ids: Vec<Option<TupleId>>,
    /// `true` when this is a remote `delete`: the receiver removes the
    /// matching rows instead of raising insertions/events.
    pub delete: bool,
}

impl Envelope {
    /// Convenience constructor for a plain single-tuple (non-delete,
    /// untraced) send.
    pub fn new(tuple: Tuple, src: Addr, dst: Addr) -> Envelope {
        Envelope {
            tuples: vec![tuple],
            src,
            dst,
            src_tuple_ids: Vec::new(),
            delete: false,
        }
    }

    /// Number of payload tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the envelope carries no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The shared relation name (`None` for an empty envelope).
    pub fn relation(&self) -> Option<&str> {
        self.tuples.first().map(|t| t.name())
    }

    /// The sender-side ID of tuple `i` (`None` when untraced).
    pub fn tuple_id(&self, i: usize) -> Option<TupleId> {
        self.src_tuple_ids.get(i).copied().flatten()
    }

    /// Install per-tuple IDs, normalizing the all-`None` case to the
    /// canonical empty vector.
    pub fn set_tuple_ids(&mut self, ids: Vec<Option<TupleId>>) {
        if ids.iter().all(Option::is_none) {
            self.src_tuple_ids.clear();
        } else {
            self.src_tuple_ids = ids;
        }
    }

    /// Append one tuple (and its optional trace ID) to the batch,
    /// keeping the ID vector canonical: it stays empty until the first
    /// `Some` ID arrives, at which point it is back-filled with `None`s.
    pub fn push(&mut self, tuple: Tuple, id: Option<TupleId>) {
        debug_assert!(
            self.relation().is_none_or(|r| r == tuple.name()),
            "envelope batches must be same-relation runs"
        );
        if id.is_some() && self.src_tuple_ids.is_empty() {
            self.src_tuple_ids = vec![None; self.tuples.len()];
        }
        self.tuples.push(tuple);
        if id.is_some() || !self.src_tuple_ids.is_empty() {
            self.src_tuple_ids.push(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_types::Value;

    #[test]
    fn construction() {
        let t = Tuple::new("m", [Value::addr("b"), Value::Int(1)]);
        let e = Envelope::new(t.clone(), Addr::new("a"), Addr::new("b"));
        assert_eq!(e.tuples, vec![t]);
        assert_eq!(e.len(), 1);
        assert_eq!(e.relation(), Some("m"));
        assert!(!e.delete);
        assert!(e.tuple_id(0).is_none());
    }

    #[test]
    fn tuple_ids_normalize() {
        let t = Tuple::new("m", [Value::addr("b")]);
        let mut e = Envelope::new(t, Addr::new("a"), Addr::new("b"));
        e.set_tuple_ids(vec![None]);
        assert!(e.src_tuple_ids.is_empty(), "all-None normalizes to empty");
        e.set_tuple_ids(vec![Some(TupleId(7))]);
        assert_eq!(e.tuple_id(0), Some(TupleId(7)));
        // Out-of-range lookups are just None.
        assert_eq!(e.tuple_id(5), None);
    }

    #[test]
    fn push_keeps_ids_parallel() {
        let t = |i| Tuple::new("m", [Value::addr("b"), Value::Int(i)]);
        // First pushed tuple already traced: the ID must survive.
        let mut e = Envelope {
            tuples: Vec::new(),
            src: Addr::new("a"),
            dst: Addr::new("b"),
            src_tuple_ids: Vec::new(),
            delete: false,
        };
        e.push(t(0), Some(TupleId(10)));
        assert_eq!(e.tuple_id(0), Some(TupleId(10)));
        e.push(t(1), None);
        e.push(t(2), Some(TupleId(12)));
        assert_eq!(e.src_tuple_ids.len(), e.tuples.len());
        assert_eq!(e.tuple_id(1), None);
        assert_eq!(e.tuple_id(2), Some(TupleId(12)));
        // Untraced prefix back-fills when the first Some arrives late.
        let mut u = Envelope::new(t(0), Addr::new("a"), Addr::new("b"));
        u.push(t(1), None);
        assert!(u.src_tuple_ids.is_empty(), "all-untraced stays canonical");
        u.push(t(2), Some(TupleId(5)));
        assert_eq!(u.src_tuple_ids, vec![None, None, Some(TupleId(5))]);
    }
}
