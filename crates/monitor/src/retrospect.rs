//! Retrospective detectors: §3.1's questions, answered after the fact.
//!
//! The [`ring`](crate::ring)/[`ordering`](crate::ordering)/
//! [`oscillation`](crate::oscillation) monitors must be installed
//! *before* the misbehavior they catch. These detectors instead run
//! against the **archive tier** (DESIGN.md §2.11): on forensic-mode
//! nodes every dropped `bestSucc`/`pred` version spills into
//! epoch-segmented history, so the overlay's state at any past instant
//! can be reconstructed — and the §3.1 invariants re-checked — long
//! after the live soft state expired and nobody was watching.
//!
//! Reconstruction picks, per node, the row version whose validity
//! interval `[inserted_at, dropped_at)` contains the probe instant
//! ([`p2_store::ArchivedRow::valid_at`]); `bestSucc` is keyed by
//! location with one live row, so at most one version is valid at a
//! time.
//!
//! Each detector comes in two forms sharing one judgment: the
//! node-by-node form walks every member's own archive, and the
//! `*_collected` form (DESIGN.md §2.12) reads a **single collector
//! node's** deployment-wide history — every member's segments shipped
//! there in pull or subscribe mode — so the whole investigation runs
//! against one node even after the origins are gone.

use p2_chord::ChordRing;
use p2_core::Population;
use p2_types::{Addr, Time, Value};
use std::collections::HashMap;

/// An ordering violation found retrospectively: at the probe instant,
/// `node` pointed at `actual` while the ID order demanded `expected`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderingViolation {
    /// The node holding the bad pointer.
    pub node: Addr,
    /// Where its `bestSucc` pointed.
    pub actual: Addr,
    /// The live node with the next-higher ring ID.
    pub expected: Addr,
}

/// A node's successor pointer as of instant `t`, reconstructed from its
/// archived (and still-live) `bestSucc` history. `None` when no version
/// was valid at `t` — the node had no successor yet, or its history was
/// dropped by the retention budget.
pub fn successor_at<H: Population>(sim: &mut H, addr: &Addr, t: Time) -> Option<Addr> {
    let now = sim.now();
    let rows = sim
        .node_mut(addr)
        .history_scan("bestSucc", t, t, now)
        .ok()?;
    rows.iter()
        .filter(|r| r.valid_at(t))
        .max_by_key(|r| r.inserted_at)
        .and_then(|r| r.tuple.get(2).and_then(Value::to_addr))
}

/// Reconstruct every ring member's successor pointer as of instant `t`.
/// Nodes with no valid version at `t` are absent from the map.
pub fn ring_at<H: Population>(sim: &mut H, ring: &ChordRing, t: Time) -> HashMap<Addr, Addr> {
    let mut out = HashMap::new();
    for addr in ring.addrs.clone() {
        if let Some(s) = successor_at(sim, &addr, t) {
            out.insert(addr, s);
        }
    }
    out
}

/// Reconstruct every ring member's successor pointer as of instant
/// `t` from a **collector's** deployment-wide history: one scan over
/// the union of every shipped origin, instead of one archive walk per
/// member. Members whose shipped history holds no valid version at
/// `t` are absent from the map.
pub fn ring_at_collected<H: Population>(
    sim: &mut H,
    collector: &Addr,
    ring: &ChordRing,
    t: Time,
) -> HashMap<Addr, Addr> {
    let now = sim.now();
    let Ok(rows) = sim
        .node_mut(collector)
        .deployment_history_scan("bestSucc", t, t, now)
    else {
        return HashMap::new();
    };
    let mut best: HashMap<Addr, (Time, Addr)> = HashMap::new();
    for r in rows.iter().filter(|r| r.valid_at(t)) {
        let Some(node) = r.tuple.get(0).and_then(Value::to_addr) else {
            continue;
        };
        if !ring.addrs.contains(&node) {
            continue;
        }
        let Some(succ) = r.tuple.get(2).and_then(Value::to_addr) else {
            continue;
        };
        match best.get(&node) {
            Some((at, _)) if *at >= r.inserted_at => {}
            _ => {
                best.insert(node, (r.inserted_at, succ));
            }
        }
    }
    best.into_iter().map(|(k, (_, v))| (k, v)).collect()
}

/// The §3.1.1 judgment, over any reconstructed pointer map: following
/// `bestSucc` pointers from any member must visit every member with a
/// pointer exactly once before closing.
fn pointers_form_ring(succ: &HashMap<Addr, Addr>) -> bool {
    let members: Vec<&Addr> = succ.keys().collect();
    let Some(&start) = members.first() else {
        return true; // no history at all: vacuously well-formed
    };
    let mut seen = vec![start.clone()];
    let mut cur = start.clone();
    for _ in 0..members.len() {
        let Some(next) = succ.get(&cur) else {
            return false; // pointer leads outside the reconstruction
        };
        if *next == *start {
            return seen.len() == members.len();
        }
        if seen.contains(next) {
            return false; // sub-cycle excluding some members
        }
        seen.push(next.clone());
        cur = next.clone();
    }
    false
}

/// §3.1.1 after the fact: was the ring well-formed at instant `t`?
pub fn ring_was_well_formed_at<H: Population>(sim: &mut H, ring: &ChordRing, t: Time) -> bool {
    pointers_form_ring(&ring_at(sim, ring, t))
}

/// §3.1.1 from a collector: the same judgment, reconstructed entirely
/// from history shipped to `collector`.
pub fn ring_was_well_formed_at_collected<H: Population>(
    sim: &mut H,
    collector: &Addr,
    ring: &ChordRing,
    t: Time,
) -> bool {
    pointers_form_ring(&ring_at_collected(sim, collector, ring, t))
}

/// §3.1.2 after the fact: which nodes violated ring ID ordering at
/// instant `t`? Empty means every reconstructed pointer aimed at the
/// member with the next-higher ID.
pub fn ordering_violations_at<H: Population>(
    sim: &mut H,
    ring: &ChordRing,
    t: Time,
) -> Vec<OrderingViolation> {
    let succ = ring_at(sim, ring, t);
    judge_ordering(ring, &succ)
}

/// §3.1.2 from a collector: the same judgment, reconstructed entirely
/// from history shipped to `collector`.
pub fn ordering_violations_at_collected<H: Population>(
    sim: &mut H,
    collector: &Addr,
    ring: &ChordRing,
    t: Time,
) -> Vec<OrderingViolation> {
    let succ = ring_at_collected(sim, collector, ring, t);
    judge_ordering(ring, &succ)
}

fn judge_ordering(ring: &ChordRing, succ: &HashMap<Addr, Addr>) -> Vec<OrderingViolation> {
    // Order the *reconstructed* membership by ring ID: a node with no
    // valid pointer at `t` (e.g. not yet joined) is not part of the
    // ring we are judging.
    let mut sorted: Vec<(p2_types::RingId, Addr)> =
        succ.keys().map(|a| (ring.id_of(a), a.clone())).collect();
    sorted.sort();
    if sorted.len() <= 1 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, (_, addr)) in sorted.iter().enumerate() {
        let expected = sorted[(i + 1) % sorted.len()].1.clone();
        if let Some(actual) = succ.get(addr) {
            if *actual != expected {
                out.push(OrderingViolation {
                    node: addr.clone(),
                    actual: actual.clone(),
                    expected,
                });
            }
        }
    }
    out
}

/// §3.1.3 after the fact: nodes whose successor pointer *changed value*
/// at least `threshold` times inside the window `[t0, t1]`, with the
/// number of changes counted. Distinct archived versions are replayed
/// in insertion order and only actual flips count, so periodic
/// re-derivations of the same successor stay silent.
pub fn oscillators_in<H: Population>(
    sim: &mut H,
    ring: &ChordRing,
    t0: Time,
    t1: Time,
    threshold: usize,
) -> Vec<(Addr, usize)> {
    let now = sim.now();
    let mut out = Vec::new();
    for addr in ring.addrs.clone() {
        let Ok(mut rows) = sim.node_mut(&addr).history_scan("bestSucc", t0, t1, now) else {
            continue;
        };
        rows.sort_by_key(|r| r.inserted_at);
        let succs: Vec<Addr> = rows
            .iter()
            .filter_map(|r| r.tuple.get(2).and_then(Value::to_addr))
            .collect();
        let flips = succs.windows(2).filter(|w| w[0] != w[1]).count();
        if flips >= threshold {
            out.push((addr, flips));
        }
    }
    out.sort();
    out
}

/// §3.1.3 from a collector: oscillators found in one deployment-wide
/// scan of shipped history, grouped back per origin node.
pub fn oscillators_in_collected<H: Population>(
    sim: &mut H,
    collector: &Addr,
    ring: &ChordRing,
    t0: Time,
    t1: Time,
    threshold: usize,
) -> Vec<(Addr, usize)> {
    let now = sim.now();
    let Ok(rows) = sim
        .node_mut(collector)
        .deployment_history_scan("bestSucc", t0, t1, now)
    else {
        return Vec::new();
    };
    let mut per_node: HashMap<Addr, Vec<(Time, Addr)>> = HashMap::new();
    for r in &rows {
        let Some(node) = r.tuple.get(0).and_then(Value::to_addr) else {
            continue;
        };
        if !ring.addrs.contains(&node) {
            continue;
        }
        if let Some(succ) = r.tuple.get(2).and_then(Value::to_addr) {
            per_node
                .entry(node)
                .or_default()
                .push((r.inserted_at, succ));
        }
    }
    let mut out = Vec::new();
    for (addr, mut versions) in per_node {
        versions.sort_by_key(|(at, _)| *at);
        let flips = versions.windows(2).filter(|w| w[0].1 != w[1].1).count();
        if flips >= threshold {
            out.push((addr, flips));
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_chord::{build_ring, ChordConfig};
    use p2_core::{NodeConfig, SimHarness};
    use p2_types::{TimeDelta, Tuple};

    fn forensic_sim(seed: u64) -> SimHarness {
        SimHarness::new(p2_net::SimConfig::default(), NodeConfig::forensic(), seed)
    }

    #[test]
    fn healthy_ring_reconstructs_clean_at_a_past_instant() {
        let mut sim = forensic_sim(21);
        let ring = build_ring(&mut sim, 5, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(180));
        let probe = sim.now();
        assert!(p2_chord::ring_is_ordered(&mut sim, &ring));
        // Run on: by the probe instant + table lifetime, the versions
        // valid at `probe` have expired out of the live tier.
        sim.run_for(TimeDelta::from_secs(120));
        assert!(ring_was_well_formed_at(&mut sim, &ring, probe));
        assert!(ordering_violations_at(&mut sim, &ring, probe).is_empty());
    }

    #[test]
    fn corrupted_pointer_shows_up_at_the_right_instants_only() {
        let mut sim = forensic_sim(22);
        let ring = build_ring(&mut sim, 5, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(180));
        let before = sim.now();
        // Injection happens at a strictly later instant than `before`
        // (validity intervals are half-open at the drop end).
        sim.run_for(TimeDelta::from_secs(1));
        // Corrupt one successor pointer; Chord's stabilization will
        // heal it, so only a window of history is malformed.
        let sorted = ring.live_sorted(&sim);
        let victim = sorted[0].1.clone();
        let wrong = sorted[2].1.clone();
        sim.inject(
            &victim,
            Tuple::new(
                "bestSucc",
                [
                    Value::Addr(victim.clone()),
                    Value::Id(ring.id_of(&wrong)),
                    Value::Addr(wrong.clone()),
                ],
            ),
        );
        let during = sim.now();
        sim.run_for(TimeDelta::from_secs(120));

        assert!(
            ring_was_well_formed_at(&mut sim, &ring, before),
            "pre-corruption instant must reconstruct healthy"
        );
        let viols = ordering_violations_at(&mut sim, &ring, during);
        assert!(
            viols.iter().any(|v| v.node == victim && v.actual == wrong),
            "corruption window must show the bad pointer: {viols:?}"
        );
        // The flip out and back registers as successor changes.
        let end = sim.now();
        let osc = oscillators_in(&mut sim, &ring, before, end, 2);
        assert!(
            osc.iter().any(|(a, _)| *a == victim),
            "victim oscillated: {osc:?}"
        );
    }

    #[test]
    fn collector_answers_identically_to_per_node_walks() {
        // Subscribe a collector to every ring member; after the GC
        // sweeps have streamed each member's history across, the
        // deployment-wide detectors must agree with walking each
        // origin's own archive (DESIGN.md §2.12 determinism contract).
        let mut sim = forensic_sim(24);
        let ring = build_ring(&mut sim, 4, &ChordConfig::default());
        let collector = sim.add_node("collector");
        for addr in ring.addrs.clone() {
            sim.node_mut(&addr).ship_subscribe(collector.clone());
        }
        // 181s: the 180s GC sweep's announce chunks land within the run.
        sim.run_for(TimeDelta::from_secs(181));
        for addr in &ring.addrs {
            assert!(
                sim.node(&collector).ship_covered(addr, "bestSucc"),
                "collector must have imported {addr}'s bestSucc history"
            );
        }
        let probe = Time::from_secs(120);
        assert_eq!(
            ring_at(&mut sim, &ring, probe),
            ring_at_collected(&mut sim, &collector, &ring, probe),
            "collected reconstruction must match per-node walks"
        );
        assert_eq!(
            ring_was_well_formed_at(&mut sim, &ring, probe),
            ring_was_well_formed_at_collected(&mut sim, &collector, &ring, probe)
        );
        assert_eq!(
            ordering_violations_at(&mut sim, &ring, probe),
            ordering_violations_at_collected(&mut sim, &collector, &ring, probe)
        );
        assert_eq!(
            oscillators_in(&mut sim, &ring, Time::from_secs(30), probe, 1),
            oscillators_in_collected(&mut sim, &collector, &ring, Time::from_secs(30), probe, 1)
        );
    }

    #[test]
    fn live_only_nodes_reconstruct_nothing() {
        // Without the archive the detectors return "no history", not
        // wrong answers.
        let mut sim = SimHarness::with_seed(23);
        let ring = build_ring(&mut sim, 3, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(120));
        let past = Time::from_secs(60);
        assert!(ring_at(&mut sim, &ring, past).is_empty());
        assert!(ring_was_well_formed_at(&mut sim, &ring, past));
    }
}
