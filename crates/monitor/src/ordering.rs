//! §3.1.2 — ring ID-ordering detectors.
//!
//! Even a topologically closed ring can be wrong if nodes are not
//! arranged by ID. Two detectors:
//!
//! * **Opportunistic** (`ri1`): flag any lookup response whose node ID
//!   falls strictly between the local predecessor and successor IDs —
//!   such a node should *be* one of our neighbors.
//! * **Traversal** (`ri2`–`ri6`): a token walks the ring along
//!   `bestSucc` pointers counting ID wrap-arounds; a full traversal must
//!   see exactly one. `ri7` (ours) reports the healthy completion too, so
//!   operators can distinguish "no problem" from "traversal lost".

use p2_types::{Addr, RingId, Time, Tuple, Value};

/// Problem report relation for the traversal detector.
pub const PROBLEM: &str = "orderingProblem";
/// Healthy-completion relation (extension).
pub const OK: &str = "orderingOk";
/// Opportunistic alarm relation.
pub const CLOSER: &str = "closerID";

/// The opportunistic check (`ri1`). Installs on any node; fires on every
/// incoming `lookupResults`.
pub fn opportunistic_program() -> String {
    r#"
ri1 closerID@NAddr(ResltNodeID, ResltNodeAddr) :-
     lookupResults@NAddr(Key, ResltNodeID, ResltNodeAddr, ReqNo, RespAddr),
     pred@NAddr(PID, PAddr), bestSucc@NAddr(SID, SAddr), node@NAddr(NID),
     PAddr != "-", ResltNodeID != NID, ResltNodeID in (PID, SID).
"#
    .to_string()
}

/// The traversal rules (`ri2`–`ri6`, plus `ri7`). Install on **every**
/// node; traversals start wherever an `orderingEvent` appears (injected
/// by [`start_traversal`], or raised by any rule — e.g. a periodic one on
/// a chosen initiator, which the paper leaves as an orthogonal choice).
pub fn traversal_program() -> String {
    r#"
ri2 ordering@NAddr(E, NAddr, NID, 0) :- orderingEvent@NAddr(E), node@NAddr(NID).
ri3 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps) :-
     ordering@NAddr(E, SrcAddr, MyID, Wraps), bestSucc@NAddr(SID, SAddr),
     MyID < SID.
ri4 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps + 1) :-
     ordering@NAddr(E, SrcAddr, MyID, Wraps), bestSucc@NAddr(SID, SAddr),
     MyID >= SID.
ri5 ordering@SAddr(E, SrcAddr, SID, Wraps) :-
     countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps), SAddr != SrcAddr.
ri6 orderingProblem@SrcAddr(E, NAddr, Wraps) :-
     countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps), SAddr == SrcAddr,
     Wraps != 1.
ri7 orderingOk@SrcAddr(E, NAddr) :-
     countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps), SAddr == SrcAddr,
     Wraps == 1.
"#
    .to_string()
}

/// A periodic initiator rule for continuous traversal checking (left in
/// place as an "on-line regression test", §1.3). Install on one node.
pub fn periodic_initiator_program(period_secs: u32) -> String {
    format!("rit orderingEvent@NAddr(E) :- periodic@NAddr(E, {period_secs}).\n")
}

/// Kick off one traversal from `initiator` with token nonce `e`.
pub fn start_traversal<H: p2_core::Population>(sim: &mut H, initiator: &Addr, e: u64) {
    sim.inject(
        initiator,
        Tuple::new(
            "orderingEvent",
            [Value::Addr(initiator.clone()), Value::id(e)],
        ),
    );
}

/// Wrap counts reported by completed problem traversals: (when, wraps).
pub fn problems(watched: &[(Time, Tuple)]) -> Vec<(Time, i64)> {
    watched
        .iter()
        .filter_map(|(t, tup)| match tup.get(3) {
            Some(Value::Int(w)) => Some((*t, *w)),
            _ => None,
        })
        .collect()
}

/// IDs flagged by the opportunistic check.
pub fn closer_ids(watched: &[(Time, Tuple)]) -> Vec<RingId> {
    watched
        .iter()
        .filter_map(|(_, tup)| match tup.get(1) {
            Some(Value::Id(i)) => Some(*i),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_core::{NodeConfig, SimHarness};
    use p2_types::TimeDelta;

    /// A hand-built "ring" without live Chord underneath: lets tests set
    /// arbitrary (including mis-ordered) bestSucc graphs that Chord's own
    /// stabilization would immediately repair.
    fn static_ring(succs: &[(&str, u64, &str, u64)]) -> (SimHarness, Vec<Addr>) {
        let mut sim = SimHarness::new(
            Default::default(),
            NodeConfig {
                stagger_timers: false,
                ..Default::default()
            },
            77,
        );
        let mut addrs = Vec::new();
        for (name, id, succ, succ_id) in succs {
            let a = sim.add_node(name);
            sim.install(
                &a,
                &format!(
                    r#"materialize(node, infinity, 1, keys(1)).
                       materialize(bestSucc, infinity, 1, keys(1)).
                       node@"{name}"({id:#x}).
                       bestSucc@"{name}"({succ_id:#x}, "{succ}")."#
                ),
            )
            .unwrap();
            sim.install(&a, &traversal_program()).unwrap();
            sim.node_mut(&a).watch(PROBLEM);
            sim.node_mut(&a).watch(OK);
            addrs.push(a);
        }
        (sim, addrs)
    }

    #[test]
    fn ordered_static_ring_reports_ok() {
        // IDs ascending along the successor chain: exactly one wrap.
        let (mut sim, addrs) =
            static_ring(&[("a", 10, "b", 20), ("b", 20, "c", 30), ("c", 30, "a", 10)]);
        start_traversal(&mut sim, &addrs[0].clone(), 1);
        sim.run_for(TimeDelta::from_millis(200));
        assert!(sim.node_mut(&addrs[0]).watched(PROBLEM).is_empty());
        assert_eq!(sim.node_mut(&addrs[0]).watched(OK).len(), 1);
    }

    #[test]
    fn misordered_ring_reports_problem() {
        // Topologically a cycle, but IDs are permuted: a(10) -> c(30) ->
        // b(20) -> a. Wraps: a->c none, c->b one, b->a one = 2.
        let (mut sim, addrs) =
            static_ring(&[("a", 10, "c", 30), ("b", 20, "a", 10), ("c", 30, "b", 20)]);
        start_traversal(&mut sim, &addrs[0].clone(), 2);
        sim.run_for(TimeDelta::from_millis(200));
        let probs = problems(sim.node_mut(&addrs[0]).watched(PROBLEM));
        assert_eq!(probs.len(), 1, "mis-ordering must be reported");
        assert_eq!(probs[0].1, 2);
        assert!(sim.node_mut(&addrs[0]).watched(OK).is_empty());
    }

    #[test]
    fn multiple_concurrent_traversals_by_nonce() {
        let (mut sim, addrs) =
            static_ring(&[("a", 10, "b", 20), ("b", 20, "c", 30), ("c", 30, "a", 10)]);
        // Two tokens at once, from different initiators.
        start_traversal(&mut sim, &addrs[0].clone(), 100);
        start_traversal(&mut sim, &addrs[1].clone(), 200);
        sim.run_for(TimeDelta::from_millis(300));
        assert_eq!(sim.node_mut(&addrs[0]).watched(OK).len(), 1);
        assert_eq!(sim.node_mut(&addrs[1]).watched(OK).len(), 1);
    }

    #[test]
    fn live_chord_traversal_completes_ok() {
        let mut sim = SimHarness::with_seed(21);
        let ring = p2_chord::build_ring(&mut sim, 6, &p2_chord::ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(180));
        assert!(p2_chord::ring_is_ordered(&mut sim, &ring));
        for a in ring.addrs.clone() {
            sim.install(&a, &traversal_program()).unwrap();
        }
        let init = ring.addrs[2].clone();
        sim.node_mut(&init).watch(OK);
        sim.node_mut(&init).watch(PROBLEM);
        start_traversal(&mut sim, &init, 7);
        sim.run_for(TimeDelta::from_secs(2));
        assert_eq!(sim.node_mut(&init).watched(OK).len(), 1, "traversal lost");
        assert!(sim.node_mut(&init).watched(PROBLEM).is_empty());
    }

    #[test]
    fn periodic_initiator_drives_continuous_traversals() {
        // §1.3: the traversal left in place as an on-line regression test.
        let mut sim = SimHarness::with_seed(23);
        let ring = p2_chord::build_ring(&mut sim, 5, &p2_chord::ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(180));
        assert!(p2_chord::ring_is_ordered(&mut sim, &ring));
        for a in ring.addrs.clone() {
            sim.install(&a, &traversal_program()).unwrap();
        }
        let init = ring.addrs[0].clone();
        sim.install(&init, &periodic_initiator_program(20)).unwrap();
        sim.node_mut(&init).watch(OK);
        sim.node_mut(&init).watch(PROBLEM);
        sim.run_for(TimeDelta::from_secs(100));
        let oks = sim.node_mut(&init).watched(OK).len();
        assert!(oks >= 4, "expected ~5 clean traversals, got {oks}");
        assert!(sim.node_mut(&init).watched(PROBLEM).is_empty());
    }

    #[test]
    fn opportunistic_check_flags_closer_node() {
        let mut sim = SimHarness::with_seed(22);
        let ring = p2_chord::build_ring(&mut sim, 6, &p2_chord::ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(180));
        assert!(p2_chord::ring_is_ordered(&mut sim, &ring));
        let sorted = ring.live_sorted(&sim);
        let node = sorted[2].1.clone();
        sim.install(&node, &opportunistic_program()).unwrap();
        sim.node_mut(&node).watch(CLOSER);
        // Deliver a fabricated lookup response naming a node whose ID
        // lies strictly between `node`'s predecessor and successor — the
        // signature of a neighbor it should know but doesn't.
        let pid = sorted[1].0;
        let fake_id = RingId(pid.0.wrapping_add(1));
        sim.inject(
            &node,
            Tuple::new(
                "lookupResults",
                [
                    Value::Addr(node.clone()),
                    Value::Id(RingId(42)),
                    Value::Id(fake_id),
                    Value::addr("ghost"),
                    Value::id(9),
                    Value::addr("ghost"),
                ],
            ),
        );
        sim.run_for(TimeDelta::from_secs(1));
        let flagged = closer_ids(sim.node_mut(&node).watched(CLOSER));
        assert_eq!(flagged, vec![fake_id]);
        // A response naming the successor itself is NOT flagged (interval
        // is open).
        let succ_id = sorted[3].0;
        sim.inject(
            &node,
            Tuple::new(
                "lookupResults",
                [
                    Value::Addr(node.clone()),
                    Value::Id(RingId(43)),
                    Value::Id(succ_id),
                    Value::addr("s"),
                    Value::id(10),
                    Value::addr("s"),
                ],
            ),
        );
        sim.run_for(TimeDelta::from_secs(1));
        assert_eq!(closer_ids(sim.node_mut(&node).watched(CLOSER)).len(), 1);
    }
}
