//! §3.1.3 — state-oscillation detectors (the recycled-dead-neighbor
//! problem).
//!
//! A node removes an unresponsive successor, but neighbors gossip the
//! dead node back, so routing state oscillates between removal and
//! re-insertion. Our Chord implementation exhibits exactly this pattern
//! after a crash (see `p2-chord` docs) — deliberately, because these
//! detectors are the paper's remedy. Three granularities:
//!
//! * **Single oscillation** (`os1`–`os2`): a `sendPred`/`returnSucc`
//!   message carrying a recently deceased neighbor (still in
//!   `faultyNode`) is the signature of one oscillation.
//! * **Repeat oscillations** (`os3`–`os4`): ≥ 3 oscillations for the
//!   same address within the 120-second `oscill` history.
//! * **Collaborative detection** (`os5`–`os9`): nodes share repeat
//!   reports with their ring neighborhood; > 3 neighborhood reports mark
//!   the offender `chaotic` — high-confidence evidence the system is
//!   prone to state oscillation.

use p2_types::{Addr, Time, Tuple, Value};

/// One oscillation observed.
pub const OSCILL: &str = "oscill";
/// Repeat-oscillator verdict.
pub const REPEAT: &str = "repeatOscill";
/// Neighborhood-confirmed verdict.
pub const CHAOTIC: &str = "chaotic";

/// Single-oscillation detector (`os1`–`os2`), plus the `oscill` history
/// table used by the repeat detector.
pub fn single_program() -> String {
    r#"
materialize(oscill, 120, infinity, keys(2, 3)).
os1 oscill@NAddr(SAddr, T) :- sendPred@NAddr(SID, SAddr),
     faultyNode@NAddr(SAddr, T1), T := f_now().
os2 oscill@NAddr(SAddr, T) :- returnSucc@NAddr(SID, SAddr, Sender),
     faultyNode@NAddr(SAddr, T1), T := f_now().
"#
    .to_string()
}

/// Repeat-oscillation detector (`os3`–`os4`): counts the `oscill`
/// history every `check_secs` and flags addresses with ≥ `threshold`
/// entries.
pub fn repeat_program(check_secs: u32, threshold: u32) -> String {
    format!(
        r#"
os3 countOscill@NAddr(OscillAddr, count<*>) :- periodic@NAddr(E, {check_secs}),
     oscill@NAddr(OscillAddr, Time).
os4 repeatOscill@NAddr(OscillAddr) :- countOscill@NAddr(OscillAddr, Count),
     Count >= {threshold}.
"#
    )
}

/// Collaborative detection (`os5`–`os9`): repeat reports are shared with
/// successors and the predecessor; more than `quorum` distinct reporters
/// mark the offender chaotic.
pub fn collaborative_program(quorum: u32) -> String {
    format!(
        r#"
materialize(nbrOscill, 120, infinity, keys(2, 3)).
os5 nbrOscill@NAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr).
os6 nbrOscill@SAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr),
     succ@NAddr(SID, SAddr).
os7 nbrOscill@PAddr(OscillAddr, NAddr) :- repeatOscill@NAddr(OscillAddr),
     pred@NAddr(PID, PAddr), PAddr != "-".
os8 nbrOscillCount@NAddr(OscillAddr, count<*>) :- nbrOscill@NAddr(OscillAddr, ReporterAddr).
os9 chaotic@NAddr(OscillAddr) :- nbrOscillCount@NAddr(OscillAddr, Count),
     Count > {quorum}.
"#
    )
}

/// All three layers with the paper's thresholds (60 s checks, 3
/// oscillations, quorum 3).
pub fn full_program() -> String {
    format!(
        "{}{}{}",
        single_program(),
        repeat_program(60, 3),
        collaborative_program(3)
    )
}

/// Addresses named by watched verdict tuples (`oscill`, `repeatOscill`,
/// or `chaotic` — all carry the offender in field 1).
pub fn offenders(watched: &[(Time, Tuple)]) -> Vec<Addr> {
    watched
        .iter()
        .filter_map(|(_, t)| t.get(1).and_then(Value::to_addr))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_chord::{build_ring, ChordConfig};
    use p2_core::{NodeConfig, SimHarness};
    use p2_types::TimeDelta;

    #[test]
    fn crash_triggers_oscillation_detection() {
        let mut sim = SimHarness::with_seed(31);
        let ring = build_ring(&mut sim, 8, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(180));
        assert!(p2_chord::ring_is_ordered(&mut sim, &ring));
        // Deploy detectors on-line, then kill a node. The repeat
        // threshold is an operator knob; in this small, fast-healing ring
        // oscillations reach a given node about once a minute, so two in
        // the 120-second history already marks a repeat offender (the
        // paper's default of three suits its 20-node testbed).
        let program = format!(
            "{}{}{}",
            single_program(),
            repeat_program(60, 2),
            collaborative_program(3)
        );
        for a in ring.addrs.clone() {
            sim.install(&a, &program).unwrap();
            sim.node_mut(&a).watch(OSCILL);
            sim.node_mut(&a).watch(REPEAT);
        }
        // A *flapping* node — §3.1.3's "transient connectivity
        // disruptions", repeated: each down-phase gets it declared
        // faulty, each up-phase has gossip legitimately re-announcing it
        // while the faultyNode verdict is still fresh -> one oscillation
        // per flap, accumulating into a repeat-oscillator verdict.
        let victim = ring
            .live_sorted(&sim)
            .into_iter()
            .map(|(_, a)| a)
            .find(|a| a != ring.landmark())
            .unwrap();
        for _ in 0..14 {
            sim.crash(&victim);
            sim.run_for(TimeDelta::from_secs(16));
            sim.revive(&victim);
            sim.run_for(TimeDelta::from_secs(8));
        }
        sim.run_for(TimeDelta::from_secs(120));
        // Some survivor must observe single oscillations of the victim...
        let mut oscills = 0usize;
        let mut repeats = 0usize;
        for a in ring.addrs.clone() {
            if sim.is_down(&a) {
                continue;
            }
            oscills += offenders(sim.node_mut(&a).watched(OSCILL))
                .iter()
                .filter(|o| **o == victim)
                .count();
            repeats += offenders(sim.node_mut(&a).watched(REPEAT))
                .iter()
                .filter(|o| **o == victim)
                .count();
        }
        assert!(oscills > 0, "no single oscillations detected");
        assert!(repeats > 0, "no repeat oscillator flagged");
    }

    #[test]
    fn healthy_ring_raises_no_oscillation() {
        let mut sim = SimHarness::with_seed(32);
        let ring = build_ring(&mut sim, 6, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(120));
        for a in ring.addrs.clone() {
            sim.install(&a, &full_program()).unwrap();
            sim.node_mut(&a).watch(OSCILL);
        }
        sim.run_for(TimeDelta::from_secs(180));
        for a in ring.addrs.clone() {
            assert!(
                sim.node_mut(&a).watched(OSCILL).is_empty(),
                "false oscillation at {a}"
            );
        }
    }

    /// Unit-level check of the collaborative layer: feed `nbrOscill`
    /// reports directly and verify the quorum logic of `os8`/`os9`.
    #[test]
    fn chaotic_verdict_needs_quorum() {
        let mut sim = SimHarness::new(
            Default::default(),
            NodeConfig {
                stagger_timers: false,
                ..Default::default()
            },
            33,
        );
        let a = sim.add_node("a");
        // Minimal substrate: the tables the collaborative rules join.
        sim.install(
            &a,
            "materialize(succ, infinity, 16, keys(1, 3)).
             materialize(pred, infinity, 1, keys(1)).",
        )
        .unwrap();
        sim.install(&a, &collaborative_program(3)).unwrap();
        sim.node_mut(&a).watch(CHAOTIC);
        // Three distinct reporters: not enough (> 3 required).
        for i in 0..3 {
            sim.inject(
                &a,
                Tuple::new(
                    "nbrOscill",
                    [
                        Value::addr("a"),
                        Value::addr("dead"),
                        Value::addr(format!("r{i}")),
                    ],
                ),
            );
        }
        sim.run_for(TimeDelta::from_millis(100));
        assert!(sim.node_mut(&a).watched(CHAOTIC).is_empty());
        // Fourth distinct reporter crosses the quorum.
        sim.inject(
            &a,
            Tuple::new(
                "nbrOscill",
                [Value::addr("a"), Value::addr("dead"), Value::addr("r3")],
            ),
        );
        sim.run_for(TimeDelta::from_millis(100));
        let verdicts = offenders(sim.node_mut(&a).watched(CHAOTIC));
        assert_eq!(verdicts, vec![Addr::new("dead")]);
        // Duplicate reports from the same reporter do not double-count.
        sim.node_mut(&a).take_watched(CHAOTIC);
        sim.inject(
            &a,
            Tuple::new(
                "nbrOscill",
                [Value::addr("a"), Value::addr("dead2"), Value::addr("r0")],
            ),
        );
        sim.inject(
            &a,
            Tuple::new(
                "nbrOscill",
                [Value::addr("a"), Value::addr("dead2"), Value::addr("r0")],
            ),
        );
        sim.run_for(TimeDelta::from_millis(100));
        assert!(sim.node_mut(&a).watched(CHAOTIC).is_empty());
    }
}
