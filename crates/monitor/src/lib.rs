//! # p2-monitor — the paper's monitoring and forensics applications
//!
//! Every Section 3 example, as installable OverLog programs plus Rust
//! helpers to drive and read them:
//!
//! * [`ring`] — §3.1.1 ring well-formedness: active probing (`rp1`–`rp3`)
//!   and the passive `stabilizeRequest` check (`rp4`);
//! * [`ordering`] — §3.1.2 ring ID ordering: the opportunistic check on
//!   lookup responses (`ri1`) and the wrap-counting token traversal
//!   (`ri2`–`ri6`);
//! * [`oscillation`] — §3.1.3 state-oscillation detectors: single
//!   (`os1`–`os2`), repeated (`os3`–`os4`), and collaborative
//!   (`os5`–`os9`);
//! * [`consistency`] — §3.1.4 proactive routing-consistency probes
//!   (`cs1`–`cs12`);
//! * [`profiling`] — §3.2 execution profiling: walking `ruleExec` /
//!   `tupleTable` backwards from a lookup response, splitting latency
//!   into rule, local-queue, and network time (`ep1`–`ep6`);
//! * [`snapshot`] — §3.3 Chandy–Lamport consistent snapshots adapted to
//!   unknown incoming links (`bp1`–`bp2`, `sr1`–`sr16`) and lookups over
//!   a snapshot (`l1s`–`l4s`);
//! * [`watchpoints`] — §1.3's persistent watchpoints: the passive
//!   detectors bundled as an always-on regression suite with a periodic
//!   alarm roll-up;
//! * [`retrospect`] — the §3.1 invariants re-checked **after the
//!   fact** from archived history (DESIGN.md §2.11): reconstruct the
//!   ring at a past instant and ask whether it was well-formed,
//!   ordered, or oscillating — no monitor needed to have been
//!   installed at the time.
//!
//! All of these install **on-line** onto running nodes (the paper's
//! "deployed piecemeal" model) — the tests in each module start a live
//! Chord ring first and add the monitors afterwards.

pub mod consistency;
pub mod ordering;
pub mod oscillation;
pub mod profiling;
pub mod retrospect;
pub mod ring;
pub mod snapshot;
pub mod watchpoints;
