//! §1.3 — persistent watchpoints: the always-on regression suite.
//!
//! *"Watchpoints installed during debugging can be left permanently in
//! the system as an evolving set of on-line regression tests."*
//!
//! This module bundles the **cheap, passive** detectors — the ones that
//! ride existing traffic and cost no messages of their own — into one
//! installable suite, and adds a periodic roll-up so an operator (or an
//! outer autonomic loop, see `examples/autonomic.rs`) can poll a single
//! relation instead of five:
//!
//! * `rp4` — ring-link inconsistency from stabilization traffic;
//! * `ri1` — ID-ordering violations from lookup responses;
//! * `os1`/`os2` — single state oscillations from gossip;
//! * `wp*` — every alarm is logged into a bounded `alarmLog` table and
//!   counted per kind into `alarmCount` every `rollup_secs`.

use p2_types::{Time, Tuple, Value};

/// The per-kind roll-up relation: `alarmCount(N, Kind, Count)`.
pub const ALARM_COUNT: &str = "alarmCount";
/// The bounded alarm log: `alarmLog(N, Kind, Detail, T)`.
pub const ALARM_LOG: &str = "alarmLog";

/// The passive watchpoint suite. Installs on a node already running
/// Chord; generates no probe traffic.
pub fn suite_program(rollup_secs: u32) -> String {
    format!(
        r#"
materialize(alarmLog, 300, 1000, keys(1, 2, 3, 4)).
materialize(alarmCount, 300, 64, keys(1, 2)).

/* ---- the detectors (paper rules rp4, ri1, os1, os2) ---- */
wrp4 inconsistentPred@NAddr(SomeAddr, SomeAddr) :- stabilizeRequest@NAddr(SomeID, SomeAddr),
     pred@NAddr(PID, PAddr), SomeAddr != PAddr, PAddr != "-".
wri1 closerID@NAddr(ResltNodeID, ResltNodeAddr) :-
     lookupResults@NAddr(Key, ResltNodeID, ResltNodeAddr, ReqNo, RespAddr),
     pred@NAddr(PID, PAddr), bestSucc@NAddr(SID, SAddr), node@NAddr(NID),
     PAddr != "-", ResltNodeID != NID, ResltNodeID in (PID, SID).
wos1 oscillW@NAddr(SAddr, T) :- sendPred@NAddr(SID, SAddr),
     faultyNode@NAddr(SAddr, T1), T := f_now().
wos2 oscillW@NAddr(SAddr, T) :- returnSucc@NAddr(SID, SAddr, Sender),
     faultyNode@NAddr(SAddr, T1), T := f_now().

/* ---- funnel every alarm into the log ---- */
wl1 alarmLog@NAddr("inconsistentPred", Detail, T) :- inconsistentPred@NAddr(Detail, D2),
     T := f_now().
wl2 alarmLog@NAddr("closerID", Detail, T) :- closerID@NAddr(ID, Detail), T := f_now().
wl3 alarmLog@NAddr("oscillation", Detail, T) :- oscillW@NAddr(Detail, T0), T := f_now().

/* ---- periodic roll-up per kind ---- */
wr1 rollupTick@NAddr(E) :- periodic@NAddr(E, {rollup_secs}).
wr2 alarmCount@NAddr(Kind, count<*>) :- rollupTick@NAddr(E),
     alarmLog@NAddr(Kind, Detail, T).
"#
    )
}

/// Read the latest roll-up as (kind, count) pairs.
pub fn counts<H: p2_core::Population>(sim: &mut H, node: &p2_types::Addr) -> Vec<(String, i64)> {
    let now = sim.now();
    sim.node_mut(node)
        .table_scan(ALARM_COUNT, now)
        .into_iter()
        .filter_map(|r| match (r.get(1), r.get(2)) {
            (Some(k), Some(Value::Int(c))) => Some((k.to_string(), *c)),
            _ => None,
        })
        .collect()
}

/// Alarm-log entries as (kind, detail) pairs.
pub fn log_entries(watched: &[(Time, Tuple)]) -> Vec<(String, String)> {
    watched
        .iter()
        .filter_map(|(_, t)| Some((t.get(1)?.to_string(), t.get(2)?.to_string())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_chord::{build_ring, ChordConfig};
    use p2_core::SimHarness;
    use p2_types::TimeDelta;

    #[test]
    fn suite_is_silent_on_health_and_free_on_the_wire() {
        let mut sim = SimHarness::with_seed(81);
        let ring = build_ring(&mut sim, 6, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(180));
        let sent_before: u64 = ring
            .addrs
            .iter()
            .map(|a| sim.net().stats().sent_by(a))
            .sum();

        // Install the suite everywhere; run a comparison window.
        for a in ring.addrs.clone() {
            sim.install(&a, &suite_program(15)).unwrap();
        }
        let t0: u64 = ring
            .addrs
            .iter()
            .map(|a| sim.net().stats().sent_by(a))
            .sum();
        assert_eq!(sent_before, t0);
        sim.run_for(TimeDelta::from_secs(120));
        for a in ring.addrs.clone() {
            for (kind, count) in counts(&mut sim, &a) {
                assert_eq!(count, 0, "false {kind} alarms at {a}");
            }
        }

        // Free on the wire: the identical seed without the suite sends
        // exactly the same number of messages over the same window.
        let mut sim2 = SimHarness::with_seed(81);
        let ring2 = build_ring(&mut sim2, 6, &ChordConfig::default());
        sim2.run_for(TimeDelta::from_secs(300));
        let with: u64 = ring
            .addrs
            .iter()
            .map(|a| sim.net().stats().sent_by(a))
            .sum();
        let without: u64 = ring2
            .addrs
            .iter()
            .map(|a| sim2.net().stats().sent_by(a))
            .sum();
        assert_eq!(with, without, "passive suite must cost zero messages");
    }

    #[test]
    fn suite_rolls_up_alarms_under_faults() {
        let mut sim = SimHarness::with_seed(82);
        let ring = build_ring(&mut sim, 8, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(180));
        for a in ring.addrs.clone() {
            sim.install(&a, &suite_program(15)).unwrap();
        }
        // Flap a node: rp4-style inconsistencies and oscillations follow.
        let victim = ring
            .live_sorted(&sim)
            .into_iter()
            .map(|(_, a)| a)
            .find(|a| a != ring.landmark())
            .unwrap();
        for _ in 0..6 {
            sim.crash(&victim);
            sim.run_for(TimeDelta::from_secs(16));
            sim.revive(&victim);
            sim.run_for(TimeDelta::from_secs(8));
        }
        sim.run_for(TimeDelta::from_secs(30));
        let mut total = 0i64;
        for a in ring.addrs.clone() {
            if sim.is_down(&a) {
                continue;
            }
            total += counts(&mut sim, &a).iter().map(|(_, c)| *c).sum::<i64>();
        }
        assert!(total > 0, "the flapping node left no trace in the roll-up");
    }
}
