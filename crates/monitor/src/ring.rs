//! §3.1.1 — ring well-formedness detectors.
//!
//! *"The Chord DHT relies for its correctness on the correct maintenance
//! of a ring ... If the ring is incorrect, then depending on where a
//! lookup starts, it may return a different response."*
//!
//! Two detectors, exactly as in the paper:
//!
//! * **Active probing** (`rp1`–`rp3`): a node periodically asks its
//!   predecessor for *its* immediate successor; if the answer is not the
//!   asking node, the link between them is flawed.
//! * **Passive checking** (`rp4`): `stabilizeRequest` messages are sent
//!   by nodes to their immediate successors, so a recipient whose
//!   predecessor differs from the sender has an inconsistent ring link —
//!   no extra messages, but detection runs at the stabilization rate
//!   rather than a chosen probe rate (the trade-off §3.1.1 discusses).

use p2_types::{Time, Tuple, Value};

/// Alarm relation raised by both detectors.
pub const ALARM: &str = "inconsistentPred";

/// The active-probing program (`rp1`–`rp3`), probing every
/// `probe_secs`. The alarm tuple carries the suspected predecessor and
/// the successor it reported.
pub fn active_probe_program(probe_secs: u32) -> String {
    format!(
        r#"
rp1 reqBestSucc@PAddr(NAddr) :- periodic@NAddr(E, {probe_secs}),
     pred@NAddr(PID, PAddr), PAddr != "-".
rp2 respBestSucc@ReqAddr(NAddr, SAddr) :- reqBestSucc@NAddr(ReqAddr),
     bestSucc@NAddr(SID, SAddr).
rp3 inconsistentPred@NAddr(PAddr, Successor) :- respBestSucc@NAddr(PAddr, Successor),
     pred@NAddr(PID, PAddr), Successor != NAddr.
"#
    )
}

/// The passive check (`rp4`): piggy-backs on Chord's own stabilization
/// traffic, generating no messages of its own.
pub fn passive_check_program() -> String {
    r#"
rp4 inconsistentPred@NAddr(SomeAddr, SomeAddr) :- stabilizeRequest@NAddr(SomeID, SomeAddr),
     pred@NAddr(PID, PAddr), SomeAddr != PAddr, PAddr != "-".
"#
    .to_string()
}

/// Extract (when, suspected-predecessor) pairs from a watched alarm log.
pub fn alarms(watched: &[(Time, Tuple)]) -> Vec<(Time, String)> {
    watched
        .iter()
        .filter_map(|(t, tup)| {
            tup.get(1)
                .and_then(Value::to_addr)
                .map(|a| (*t, a.to_string()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_chord::{build_ring, ChordConfig};
    use p2_core::SimHarness;
    use p2_types::{Addr, TimeDelta};

    fn stable_ring(seed: u64) -> (SimHarness, p2_chord::ChordRing) {
        let mut sim = SimHarness::with_seed(seed);
        let ring = build_ring(&mut sim, 6, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(180));
        (sim, ring)
    }

    #[test]
    fn active_probe_silent_on_healthy_ring() {
        let (mut sim, ring) = stable_ring(11);
        assert!(p2_chord::ring_is_ordered(&mut sim, &ring));
        for a in ring.addrs.clone() {
            sim.install(&a, &active_probe_program(7)).unwrap();
            sim.node_mut(&a).watch(ALARM);
        }
        sim.run_for(TimeDelta::from_secs(60));
        for a in ring.addrs.clone() {
            let got = alarms(sim.node_mut(&a).watched(ALARM));
            assert!(got.is_empty(), "false alarm at {a}: {got:?}");
        }
    }

    #[test]
    fn active_probe_detects_broken_pred_link() {
        let (mut sim, ring) = stable_ring(12);
        assert!(p2_chord::ring_is_ordered(&mut sim, &ring));
        for a in ring.addrs.clone() {
            sim.install(&a, &active_probe_program(7)).unwrap();
            sim.node_mut(&a).watch(ALARM);
        }
        // Corrupt one node's predecessor pointer: point it at a node that
        // is NOT actually behind it. Its probe will ask the wrong node,
        // whose bestSucc won't be the prober -> alarm at the prober.
        let sorted = ring.live_sorted(&sim);
        let victim = sorted[0].1.clone();
        let wrong_pred = sorted[2].1.clone(); // two positions away
        let wrong_id = ring.id_of(&wrong_pred);
        sim.inject(
            &victim,
            Tuple::new(
                "pred",
                [
                    Value::Addr(victim.clone()),
                    Value::Id(wrong_id),
                    Value::Addr(wrong_pred.clone()),
                ],
            ),
        );
        sim.run_for(TimeDelta::from_secs(20));
        let got = alarms(sim.node_mut(&victim).watched(ALARM));
        assert!(!got.is_empty(), "active probe missed the broken link");
        assert_eq!(got[0].1, wrong_pred.to_string());
    }

    #[test]
    fn passive_check_detects_stale_pred() {
        let (mut sim, ring) = stable_ring(13);
        for a in ring.addrs.clone() {
            sim.install(&a, &passive_check_program()).unwrap();
            sim.node_mut(&a).watch(ALARM);
        }
        // Healthy window first: no alarms.
        sim.run_for(TimeDelta::from_secs(30));
        for a in ring.addrs.clone() {
            assert!(
                sim.node_mut(&a).watched(ALARM).is_empty(),
                "false alarm on healthy ring at {a}"
            );
        }
        // Corrupt a node's pred; its real predecessor keeps stabilizing
        // to it, and rp4 at the corrupted node flags the mismatch.
        let sorted = ring.live_sorted(&sim);
        let victim = sorted[1].1.clone();
        let real_pred = sorted[0].1.clone();
        let wrong = sorted[3].1.clone();
        sim.inject(
            &victim,
            Tuple::new(
                "pred",
                [
                    Value::Addr(victim.clone()),
                    Value::Id(ring.id_of(&wrong)),
                    Value::Addr(wrong.clone()),
                ],
            ),
        );
        sim.run_for(TimeDelta::from_secs(15));
        let got = alarms(sim.node_mut(&victim).watched(ALARM));
        assert!(!got.is_empty(), "passive check missed the stale pred");
        assert_eq!(
            got[0].1,
            real_pred.to_string(),
            "alarm names the true sender"
        );
    }

    #[test]
    fn passive_check_sends_no_messages() {
        // §3.1.1's stated advantage: rp4 generates no traffic of its own.
        let (mut sim, ring) = stable_ring(14);
        let base: u64 = ring
            .addrs
            .iter()
            .map(|a| sim.net().stats().sent_by(a))
            .sum();
        let mut sim2 = SimHarness::with_seed(14);
        let ring2 = build_ring(&mut sim2, 6, &ChordConfig::default());
        sim2.run_for(TimeDelta::from_secs(180));
        for a in ring2.addrs.clone() {
            sim2.install(&a, &passive_check_program()).unwrap();
        }
        // Same duration again on both; message deltas must match.
        let t0: u64 = ring2
            .addrs
            .iter()
            .map(|a| sim2.net().stats().sent_by(a))
            .sum();
        assert_eq!(base, t0, "identical seeds diverged before the check");
        sim.run_for(TimeDelta::from_secs(60));
        sim2.run_for(TimeDelta::from_secs(60));
        let after1: u64 = ring
            .addrs
            .iter()
            .map(|a| sim.net().stats().sent_by(a))
            .sum();
        let after2: u64 = ring2
            .addrs
            .iter()
            .map(|a| sim2.net().stats().sent_by(a))
            .sum();
        assert_eq!(after1, after2, "passive check altered message counts");
        let _ = Addr::new("x");
    }
}
