//! §3.3 — Chandy–Lamport consistent distributed snapshots.
//!
//! The classic algorithm assumes FIFO channels (our simulated network
//! guarantees per-link FIFO) and known incoming links. Chord nodes know
//! their *outgoing* links (`pingNode`) but not their incoming ones, so —
//! exactly as the paper does — `bp1`/`bp2` reconstruct a `backPointer`
//! view of incoming links from the liveness pings every neighbor sends.
//!
//! The snapshot rules `sr1`–`sr15`:
//!
//! * a designated initiator starts snapshot `I+1` periodically (`sr1`);
//! * starting a snapshot records `bestSucc`/`finger`/`pred` into
//!   ID-indexed `snap*` tables (`sr4`–`sr6`) and sends `marker`s on all
//!   outgoing links (`sr7`);
//! * a first marker for an unseen ID starts the snapshot at the receiver
//!   (`sr8` counts existing state — the zero-count path — and `sr9`
//!   snaps); channel recording starts for every incoming link except the
//!   marker's sender (`sr10`), and completes per link on its marker
//!   (`sr11`);
//! * `returnSucc` gossip arriving on a recording channel is dumped into
//!   `channelSuccDump` (`sr15`, the paper's example message type);
//! * when every incoming link is done, the node's snapshot phase flips
//!   to `"Done"` (`sr12`/`sr13`).
//!
//! [`snapshot_lookup_program`] adds the paper's `l1s`–`l3s`: Chord
//! lookups evaluated **over the frozen snapshot tables** instead of live
//! state — the fix for the §3.1.4 probes' false positives — while regular
//! lookups keep running on live state, no restart required.
//!
//! Deviations (documented in DESIGN.md): the paper's `sr14` treats
//! lookup responses from "the future" of a snapshot as markers; like the
//! paper itself, we assume overlay structure does not change during a
//! snapshot, and our `sLookup` traffic carries its snapshot ID
//! explicitly, so `sr14` is unnecessary for the properties we check.

use p2_types::{Addr, Tuple, Value};

/// Per-snapshot node phase: `snapState(N, I, Phase)`.
pub const SNAP_STATE: &str = "snapState";
/// Snapshotted successor pointers: `snapBestSucc(N, I, SID, SAddr)`.
pub const SNAP_BEST_SUCC: &str = "snapBestSucc";

/// The back-pointer maintenance rules (`bp1`–`bp2`).
pub fn backpointer_program() -> String {
    r#"
/* Lifetime just over two ping periods: the incoming-link view must track
   *current* pingers closely, or snapshots wait on channels whose source
   no longer links to us. */
materialize(backPointer, 12, 128, keys(1, 2)).
materialize(numBackPointers, 60, 1, keys(1)).
bp1 backPointer@NAddr(Remote) :- pingReq@NAddr(Remote, E).
/* Recount on delta AND periodically: refreshes of existing rows produce
   no delta, and the count row itself is soft state. */
bp2 numBackPointers@NAddr(count<*>) :- backPointer@NAddr(Remote).
bp3 bpTick@NAddr(E) :- periodic@NAddr(E, 10).
bp4 numBackPointers@NAddr(count<*>) :- bpTick@NAddr(E), backPointer@NAddr(Remote).
"#
    .to_string()
}

/// The snapshot protocol rules, installed on **every** node.
pub fn snapshot_program() -> String {
    r#"
/* Bounds follow the paper's §3.3 listings: 100-second lifetimes, with
   per-table caps of the same order (snapState 100, snapBestSucc 50,
   snapFinger 1600, snapPred 10, channel state/dumps 1600/100). */
materialize(snapState, 100, 100, keys(1, 2)).
materialize(currentSnap, 100, 1, keys(1)).
materialize(snapBestSucc, 100, 50, keys(1, 2)).
materialize(snapFinger, 100, 1600, keys(1, 2, 3)).
materialize(snapPred, 100, 10, keys(1, 2)).
materialize(channelState, 100, 1600, keys(1, 2, 3)).
materialize(channelSuccDump, 100, 100, keys(1, 2, 3, 4)).

sr2 snapState@NAddr(I, "Snapping") :- snap@NAddr(I).
sr3 currentSnap@NAddr(I) :- snap@NAddr(I).
sr4 snapBestSucc@NAddr(I, SID, SAddr) :- snap@NAddr(I), bestSucc@NAddr(SID, SAddr).
sr5 snapFinger@NAddr(I, FPos, FID, FAddr) :- snap@NAddr(I), finger@NAddr(FPos, FID, FAddr).
sr6 snapPred@NAddr(I, PID, PAddr) :- snap@NAddr(I), pred@NAddr(PID, PAddr).
sr7 marker@RemoteAddr(NAddr, I) :- snap@NAddr(I), pingNode@NAddr(RemoteAddr).

sr8 haveSnap@NAddr(SrcAddr, I, count<*>) :- snapState@NAddr(I, State),
     marker@NAddr(SrcAddr, I).
sr9 snap@NAddr(I) :- haveSnap@NAddr(Src, I, 0).
sr10 channelState@NAddr(Remote, I, "Start") :- haveSnap@NAddr(Src, I, 0),
     backPointer@NAddr(Remote), Remote != Src.
/* The paper writes sr11 as one rule with `(C > 0) || (Src == Remote)`
   over a backPointer join; the join multiplies every already-snapped
   marker by the whole backpointer set for nothing. Split the
   disjunction: the C>0 arm needs no join at all, and the first-marker
   arm probes backPointer on Src directly. */
sr11a channelState@NAddr(Src, I, "Done") :- haveSnap@NAddr(Src, I, C), C > 0.
sr11b channelState@NAddr(Src, I, "Done") :- haveSnap@NAddr(Src, I, 0),
     backPointer@NAddr(Src).

/* Termination: a marker has arrived on every channel of the set frozen
   at snap time — compare Done rows against ALL channelState rows for I,
   not against the live (churning) back-pointer count. */
materialize(channelDoneCount, 100, 100, keys(1, 2)).
materialize(channelTotalCount, 100, 100, keys(1, 2)).
sr12a channelDoneCount@NAddr(I, count<*>) :- channelState@NAddr(Remote, I, "Done").
sr12b channelTotalCount@NAddr(I, count<*>) :- channelState@NAddr(Remote, I, State).
sr13 snapState@NAddr(I, "Done") :- channelDoneCount@NAddr(I, C),
     channelTotalCount@NAddr(I, C), snapState@NAddr(I, "Snapping").
/* A node that snaps with no incoming links at all terminates at once. */
sr13b bpAtSnap@NAddr(I, count<*>) :- snap@NAddr(I), backPointer@NAddr(Remote).
sr13c snapState@NAddr(I, "Done") :- bpAtSnap@NAddr(I, C), C == 0.

sr15 channelSuccDump@NAddr(I, Sender, SID, SAddr, T) :-
     returnSucc@NAddr(SID, SAddr, Sender), channelState@NAddr(Sender, I, "Start"),
     T := f_now().
"#
    .to_string()
}

/// The initiator's periodic driver (`sr1`), plus the seed row it ratchets.
/// Install on exactly one node.
pub fn initiator_program(addr: &Addr, period_secs: f64) -> String {
    format!(
        r#"
sr0 snapState@"{addr}"(0, "Done").
sr1a snapTick@NAddr(E) :- periodic@NAddr(E, {period_secs}).
sr1b curSnapId@NAddr(max<I>) :- snapTick@NAddr(E), snapState@NAddr(I, State).
sr1c snap@NAddr(I + 1) :- curSnapId@NAddr(I).
"#
    )
}

/// Lookups over a frozen snapshot (`l1s`–`l3s` + the successor
/// fall-back, mirroring the live rules).
pub fn snapshot_lookup_program() -> String {
    r#"
l1s sLookupResults@ReqAddr(SnapID, K, SID, SAddr, E, NAddr) :- node@NAddr(NID),
     sLookup@NAddr(SnapID, K, ReqAddr, E), snapBestSucc@NAddr(SnapID, SID, SAddr),
     K in (NID, SID].
l2s sBestLookupDist@NAddr(SnapID, K, ReqAddr, E, min<D>) :- node@NAddr(NID),
     sLookup@NAddr(SnapID, K, ReqAddr, E), snapFinger@NAddr(SnapID, FPos, FID, FAddr),
     D := K - FID - 1, FID in (NID, K).
l3s sLookup@FAddr(SnapID, K, ReqAddr, E) :- node@NAddr(NID),
     sBestLookupDist@NAddr(SnapID, K, ReqAddr, E, D),
     snapFinger@NAddr(SnapID, FPos, FID, FAddr), D == K - FID - 1, FID in (NID, K),
     FAddr != NAddr.
l2sb sFingerCount@NAddr(SnapID, K, ReqAddr, E, count<*>) :- node@NAddr(NID),
     sLookup@NAddr(SnapID, K, ReqAddr, E), snapFinger@NAddr(SnapID, FPos, FID, FAddr),
     FID in (NID, K).
l4s sLookup@SAddr(SnapID, K, ReqAddr, E) :- sFingerCount@NAddr(SnapID, K, ReqAddr, E, C),
     C == 0, node@NAddr(NID), snapBestSucc@NAddr(SnapID, SID, SAddr), K in (SID, NID],
     SAddr != NAddr.
"#
    .to_string()
}

/// §3.3 "Routing Consistency Revisited": the §3.1.4 consistency probe
/// re-targeted at a **frozen snapshot** (the paper's `cs4s`/`cs5s`
/// rewrite). Live probes can report false inconsistencies when
/// concurrent lookups race overlay churn; snapshot probes cannot — every
/// probe lookup is evaluated against the same consistent global state,
/// while regular traffic keeps using live tables. The snapshot ID is
/// pinned from the initiator's `currentSnap` at probe time.
///
/// Emits `sConsistency(N, ProbeID, Metric)`; requires
/// [`snapshot_program`] and [`snapshot_lookup_program`] everywhere.
pub fn snapshot_probe_program(probe_secs: f64, tally_secs: u32, wait_secs: u32) -> String {
    format!(
        r#"
materialize(sConLookupTable, 100, 1000, keys(1, 3)).
materialize(sConRespTable, 100, 1000, keys(1, 3)).
materialize(sRespCluster, 100, 1000, keys(1, 2, 3)).
materialize(sMaxCluster, 100, 1000, keys(1, 2)).
materialize(sLookupCluster, 100, 1000, keys(1, 2)).

scs1 sConProbe@NAddr(ProbeID, K, T) :- periodic@NAddr(ProbeID, {probe_secs}),
     K := f_randID(), T := f_now().
scs2 sConLookup@NAddr(ProbeID, K, FAddr, ReqID, T) :- sConProbe@NAddr(ProbeID, K, T),
     uniqueFinger@NAddr(FAddr, FID), ReqID := f_rand().
scs3 sConLookupTable@NAddr(ProbeID, ReqID, T) :-
     sConLookup@NAddr(ProbeID, K, FAddr, ReqID, T).
/* cs4s: the probe lookups run over the frozen snapshot. */
scs4 sLookup@FAddr(SnapID, K, NAddr, ReqID) :-
     sConLookup@NAddr(ProbeID, K, FAddr, ReqID, T), currentSnap@NAddr(SnapID).
/* cs5s: responses carry the snapshot ID back. */
scs5 sConRespTable@NAddr(ProbeID, ReqID, SAddr) :-
     sLookupResults@NAddr(SnapID, K, SID, SAddr, ReqID, Responder),
     sConLookupTable@NAddr(ProbeID, ReqID, T).
scs6 sRespCluster@NAddr(ProbeID, SAddr, count<*>) :-
     sConRespTable@NAddr(ProbeID, ReqID, SAddr).
scs7 sMaxCluster@NAddr(ProbeID, max<Count>) :- sRespCluster@NAddr(ProbeID, SAddr, Count).
scs8 sLookupCluster@NAddr(ProbeID, T, count<*>) :- sConLookupTable@NAddr(ProbeID, ReqID, T).
scs9 sConsistency@NAddr(ProbeID, RespCount / LookupCount) :- periodic@NAddr(E, {tally_secs}),
     sLookupCluster@NAddr(ProbeID, T, LookupCount), T < f_now() - {wait_secs},
     sMaxCluster@NAddr(ProbeID, RespCount).
scs10 delete sLookupCluster@NAddr(ProbeID, T, Count) :-
     sConsistency@NAddr(ProbeID, C), sLookupCluster@NAddr(ProbeID, T, Count).
scs11 delete sConLookupTable@NAddr(ProbeID, ReqID, T) :-
     sConsistency@NAddr(ProbeID, C), sConLookupTable@NAddr(ProbeID, ReqID, T).
"#
    )
}

/// Issue a lookup over snapshot `snap_id` starting at `at`.
pub fn issue_snapshot_lookup<H: p2_core::Population>(
    sim: &mut H,
    at: &Addr,
    snap_id: i64,
    key: p2_types::RingId,
    req_addr: &Addr,
    req_id: u64,
) {
    sim.inject(
        at,
        Tuple::new(
            "sLookup",
            [
                Value::Addr(at.clone()),
                Value::Int(snap_id),
                Value::Id(key),
                Value::Addr(req_addr.clone()),
                Value::id(req_id),
            ],
        ),
    );
}

/// Read a node's phase for snapshot `id` (`None` if it never saw it).
pub fn phase_of<H: p2_core::Population>(sim: &mut H, node: &Addr, id: i64) -> Option<String> {
    let now = sim.now();
    sim.node_mut(node)
        .table_scan(SNAP_STATE, now)
        .into_iter()
        .find(|r| r.get(1) == Some(&Value::Int(id)))
        .and_then(|r| r.get(2).map(|v| v.to_string()))
}

/// The snapped `bestSucc` pointer of a node for snapshot `id`.
pub fn snapped_succ<H: p2_core::Population>(sim: &mut H, node: &Addr, id: i64) -> Option<Addr> {
    let now = sim.now();
    sim.node_mut(node)
        .table_scan(SNAP_BEST_SUCC, now)
        .into_iter()
        .find(|r| r.get(1) == Some(&Value::Int(id)))
        .and_then(|r| r.get(3).and_then(Value::to_addr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_chord::{build_ring, ChordConfig, ChordRing};
    use p2_core::SimHarness;
    use p2_types::{RingId, TimeDelta};
    use std::collections::HashMap;

    fn snapshotting_ring(seed: u64, n: usize) -> (SimHarness, ChordRing) {
        let mut sim = SimHarness::with_seed(seed);
        let ring = build_ring(&mut sim, n, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(240));
        // Back-pointers need a few ping rounds before the first snapshot.
        for a in ring.addrs.clone() {
            sim.install(&a, &backpointer_program()).unwrap();
            sim.install(&a, &snapshot_program()).unwrap();
        }
        sim.run_for(TimeDelta::from_secs(30));
        let init = ring.addrs[0].clone();
        sim.install(&init, &initiator_program(&init, 60.0)).unwrap();
        (sim, ring)
    }

    #[test]
    fn snapshot_reaches_every_node_and_terminates() {
        let (mut sim, ring) = snapshotting_ring(61, 6);
        sim.run_for(TimeDelta::from_secs(120)); // ≥ one snapshot round
                                                // Snapshot rows are 100 s soft state; judge the freshest snapshot
                                                // the initiator completed.
        let now = sim.now();
        let latest = sim
            .node_mut(&ring.addrs[0])
            .table_scan(SNAP_STATE, now)
            .iter()
            .filter_map(|r| match (r.get(1), r.get(2)) {
                (Some(Value::Int(i)), Some(s)) if s.to_string() == "Done" => Some(*i),
                _ => None,
            })
            .max()
            .expect("initiator completed a snapshot");
        assert!(latest >= 1);
        let mut done = 0;
        for a in ring.addrs.clone() {
            match phase_of(&mut sim, &a, latest) {
                Some(p) if p == "Done" => done += 1,
                other => panic!("node {a}: snapshot {latest} state {other:?}"),
            }
        }
        assert_eq!(
            done,
            ring.addrs.len(),
            "all nodes must terminate snapshot {latest}"
        );
    }

    #[test]
    fn snapshot_ids_ratchet() {
        let (mut sim, ring) = snapshotting_ring(62, 4);
        // Read within the 100 s soft-state window: snapshot 1 fires
        // within the first initiator period, snapshot 2 one period later.
        sim.run_for(TimeDelta::from_secs(130));
        // At least snapshots 1 and 2 exist on the initiator, distinct.
        let now = sim.now();
        let states = sim.node_mut(&ring.addrs[0]).table_scan(SNAP_STATE, now);
        let ids: Vec<i64> = states
            .iter()
            .filter_map(|r| match r.get(1) {
                Some(Value::Int(i)) => Some(*i),
                _ => None,
            })
            .collect();
        // Older generations age out of the 100 s window; what must hold
        // is a ratchet: at least two *consecutive* generations live.
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert!(
            sorted.windows(2).any(|w| w[1] == w[0] + 1),
            "ids seen: {ids:?}"
        );
    }

    #[test]
    fn snapped_ring_is_consistent() {
        // The headline property: the union of per-node snapped bestSucc
        // pointers for one snapshot ID forms a well-formed ring — a
        // *consistent* global state, even though nodes snapped at
        // different wall-clock instants.
        let (mut sim, ring) = snapshotting_ring(63, 6);
        sim.run_for(TimeDelta::from_secs(70));
        let mut succ: HashMap<Addr, Addr> = HashMap::new();
        for a in ring.addrs.clone() {
            let s = snapped_succ(&mut sim, &a, 1)
                .unwrap_or_else(|| panic!("{a} has no snapped bestSucc"));
            succ.insert(a, s);
        }
        // Walk the snapped ring.
        let start = ring.addrs[0].clone();
        let mut cur = start.clone();
        let mut seen = 0;
        loop {
            cur = succ[&cur].clone();
            seen += 1;
            if cur == start {
                break;
            }
            assert!(seen <= ring.addrs.len(), "snapped ring does not close");
        }
        assert_eq!(seen, ring.addrs.len(), "snapped ring skipped nodes");
    }

    #[test]
    fn snapshot_lookups_agree_with_snapped_state() {
        let (mut sim, ring) = snapshotting_ring(64, 6);
        for a in ring.addrs.clone() {
            sim.install(&a, &snapshot_lookup_program()).unwrap();
        }
        sim.run_for(TimeDelta::from_secs(70));
        // Issue several snapshot lookups for random keys; answers must
        // match the oracle computed over the *snapped* pointers.
        let origin = ring.addrs[1].clone();
        sim.node_mut(&origin).watch("sLookupResults");
        let mut rng = p2_types::DetRng::new(7);
        let keys: Vec<RingId> = (0..6).map(|_| rng.ring_id()).collect();
        for (i, k) in keys.iter().enumerate() {
            issue_snapshot_lookup(&mut sim, &origin, 1, *k, &origin, 500 + i as u64);
        }
        sim.run_for(TimeDelta::from_secs(3));
        let got = sim.node_mut(&origin).take_watched("sLookupResults");
        assert!(
            got.len() >= keys.len(),
            "snapshot lookups unanswered: {} of {}",
            got.len(),
            keys.len()
        );
        // Every answer names a live ring member and carries snapshot ID 1.
        for (_, t) in &got {
            assert_eq!(t.get(1), Some(&Value::Int(1)));
            let ans = t.get(4).and_then(Value::to_addr).expect("addr answer");
            assert!(ring.addrs.contains(&ans), "unknown answer {ans}");
        }
    }

    #[test]
    fn snapshot_probes_are_consistent_despite_churn() {
        // §3.3 "Routing Consistency Revisited": probe lookups over the
        // frozen snapshot agree with each other even while the live
        // overlay is churning (a node joining mid-probe).
        let (mut sim, ring) = snapshotting_ring(67, 6);
        for a in ring.addrs.clone() {
            sim.install(&a, &snapshot_lookup_program()).unwrap();
        }
        sim.run_for(TimeDelta::from_secs(90)); // first snapshot completes
        let prober = ring.addrs[2].clone();
        sim.install(&prober, &snapshot_probe_program(6.0, 5, 5))
            .unwrap();
        sim.node_mut(&prober).watch("sConsistency");
        // Churn the live overlay: a new node joins through the landmark.
        sim.run_for(TimeDelta::from_secs(15));
        let newcomer = sim.add_node("late");
        let id = p2_types::DetRng::derive(sim.seed(), "late-join").ring_id();
        sim.install(&newcomer, &p2_chord::chord_program(&ChordConfig::default()))
            .unwrap();
        sim.install(
            &newcomer,
            &p2_chord::node_facts(newcomer.as_str(), id.0, Some(ring.addrs[0].as_str())),
        )
        .unwrap();
        sim.run_for(TimeDelta::from_secs(60));
        let ms: Vec<f64> = sim
            .node_mut(&prober)
            .watched("sConsistency")
            .iter()
            .filter_map(|(_, t)| match t.get(2) {
                Some(Value::Float(m)) => Some(*m),
                Some(Value::Int(m)) => Some(*m as f64),
                _ => None,
            })
            .collect();
        assert!(!ms.is_empty(), "snapshot probe produced no metric");
        for m in &ms {
            assert!(
                (*m - 1.0).abs() < 1e-9,
                "snapshot probes must agree: {ms:?}"
            );
        }
    }

    #[test]
    fn channel_recording_captures_gossip_deterministically() {
        // Unit-style drive of sr10/sr15: make a node snap via an injected
        // marker, keep one incoming channel recording, then deliver
        // gossip on it.
        let (mut sim, ring) = snapshotting_ring(65, 4);
        sim.run_for(TimeDelta::from_secs(90));
        let node = ring.addrs[2].clone();
        let now = sim.now();
        let bps: Vec<_> = sim
            .node_mut(&node)
            .table_scan("backPointer", now)
            .into_iter()
            .filter_map(|r| r.get(1).and_then(Value::to_addr))
            .collect();
        assert!(!bps.is_empty(), "node has no back pointers");
        let recording_from = bps[0].clone();
        // Marker for a fresh snapshot id from a *different* sender, so
        // the channel from `recording_from` starts recording.
        let marker_src = Addr::new("outside");
        sim.inject(
            &node,
            Tuple::new(
                "marker",
                [
                    Value::Addr(node.clone()),
                    Value::Addr(marker_src),
                    Value::Int(99),
                ],
            ),
        );
        // Still within the same virtual instant (markers from neighbors
        // need a network round-trip), gossip arrives from the recording
        // channel.
        assert_eq!(phase_of(&mut sim, &node, 99).as_deref(), Some("Snapping"));
        sim.inject(
            &node,
            Tuple::new(
                "returnSucc",
                [
                    Value::Addr(node.clone()),
                    Value::id(0xBEEF),
                    Value::addr("whoever"),
                    Value::Addr(recording_from.clone()),
                ],
            ),
        );
        sim.run_for(TimeDelta::from_millis(50));
        let now = sim.now();
        let dumps = sim.node_mut(&node).table_scan("channelSuccDump", now);
        let hit = dumps.iter().any(|r| {
            r.get(1) == Some(&Value::Int(99))
                && r.get(2).and_then(Value::to_addr) == Some(recording_from.clone())
        });
        assert!(
            hit,
            "gossip on a recording channel was not dumped: {dumps:?}"
        );
    }

    #[test]
    fn channel_recording_captures_gossip_in_vivo() {
        // Integration flavour: slow links widen the recording windows
        // enough that live stabilization gossip lands in them.
        let mut sim = SimHarness::new(
            p2_net::SimConfig {
                latency: TimeDelta::from_millis(400),
                jitter: TimeDelta::from_millis(300),
                ..Default::default()
            },
            Default::default(),
            66,
        );
        let ring = build_ring(&mut sim, 6, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(240));
        for a in ring.addrs.clone() {
            sim.install(&a, &backpointer_program()).unwrap();
            sim.install(&a, &snapshot_program()).unwrap();
        }
        sim.run_for(TimeDelta::from_secs(30));
        let init = ring.addrs[0].clone();
        sim.install(&init, &initiator_program(&init, 20.0)).unwrap();
        sim.run_for(TimeDelta::from_secs(900));
        let now = sim.now();
        let mut dumped = 0usize;
        for a in ring.addrs.clone() {
            dumped += sim.node_mut(&a).table_scan("channelSuccDump", now).len();
        }
        assert!(dumped > 0, "no channel messages recorded during snapshots");
    }
}
