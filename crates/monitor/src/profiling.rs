//! §3.2 — execution profiling over the trace tables.
//!
//! *"Here we demonstrate the use of execution tracing to split lookup
//! latencies into time spent executing rules, time spent traversing the
//! network, and time spent in the dataflow between rules."*
//!
//! The walk starts from a traced response tuple (`traceResp`) and follows
//! the `ruleExec` causality chain **backwards**, hopping across nodes via
//! `tupleTable` correlation (§2.1.3), accumulating three bins:
//!
//! * `RuleT` — inside rule strands (`t_out - t_in` per `ruleExec` row);
//! * `LocalT` — between rules on the same node (queueing);
//! * `NetT` — between rules on different nodes (network).
//!
//! Our rules restructure the paper's `ep1`–`ep6` (whose listings elide
//! the cross-node hop mechanics) into the same walk with explicit local
//! vs. remote resolution, and terminate where the chain has **no
//! producer** — the injected origin request — rather than at a
//! hard-coded rule label (the paper stops at `cs2`; a zero-count
//! aggregate expresses "no producer" without negation). All times are in
//! microseconds (`Time - Time` subtraction).
//!
//! Install [`profiling_program`] on **every** node (the walk migrates),
//! with tracing enabled everywhere.

use p2_types::{Addr, Time, Tuple, TupleId, Value};

/// Report relation: `profileReport(Origin, WalkID, RuleT, NetT, LocalT)`.
pub const REPORT: &str = "profileReport";

/// The walk rules.
pub fn profiling_program() -> String {
    r#"
ep1 trav@NAddr(WalkID, Origin, Curr, LastT, 0, 0, 0) :-
     traceResp@NAddr(WalkID, Origin, Curr, LastT).
ep2 resolveLocal@NAddr(WalkID, Origin, Curr, LastT, RuleT, NetT, LocalT) :-
     trav@NAddr(WalkID, Origin, Curr, LastT, RuleT, NetT, LocalT),
     tupleTable@NAddr(Curr, Src, SrcTID, Dst), Src == NAddr.
ep3 travRemote@Src(WalkID, Origin, SrcTID, LastT, RuleT, NetT, LocalT) :-
     trav@NAddr(WalkID, Origin, Curr, LastT, RuleT, NetT, LocalT),
     tupleTable@NAddr(Curr, Src, SrcTID, Dst), Src != NAddr.
ep4 resolveNet@NAddr(WalkID, Origin, Curr, LastT, RuleT, NetT, LocalT) :-
     travRemote@NAddr(WalkID, Origin, Curr, LastT, RuleT, NetT, LocalT).

/* A producing rule exists: accumulate and continue from its input. */
ep5 step@NAddr(WalkID, Origin, In, InT, RuleT + (OutT - InT), NetT,
     LocalT + (LastT - OutT)) :-
     resolveLocal@NAddr(WalkID, Origin, Curr, LastT, RuleT, NetT, LocalT),
     ruleExec@NAddr(Rule, In, Curr, InT, OutT, true).
ep6 step@NAddr(WalkID, Origin, In, InT, RuleT + (OutT - InT),
     NetT + (LastT - OutT), LocalT) :-
     resolveNet@NAddr(WalkID, Origin, Curr, LastT, RuleT, NetT, LocalT),
     ruleExec@NAddr(Rule, In, Curr, InT, OutT, true).
ep7 trav@NAddr(WalkID, Origin, In, InT, RuleT, NetT, LocalT) :-
     step@NAddr(WalkID, Origin, In, InT, RuleT, NetT, LocalT).

/* No producer: the chain's origin — report back to the walk's owner. */
ep8 prodCountL@NAddr(WalkID, Origin, RuleT, NetT, LocalT, count<*>) :-
     resolveLocal@NAddr(WalkID, Origin, Curr, LastT, RuleT, NetT, LocalT),
     ruleExec@NAddr(Rule, In, Curr, InT, OutT, true).
ep9 prodCountN@NAddr(WalkID, Origin, RuleT, NetT, LocalT, count<*>) :-
     resolveNet@NAddr(WalkID, Origin, Curr, LastT, RuleT, NetT, LocalT),
     ruleExec@NAddr(Rule, In, Curr, InT, OutT, true).
ep10 profileReport@Origin(WalkID, RuleT, NetT, LocalT) :-
     prodCountL@NAddr(WalkID, Origin, RuleT, NetT, LocalT, C), C == 0.
ep11 profileReport@Origin(WalkID, RuleT, NetT, LocalT) :-
     prodCountN@NAddr(WalkID, Origin, RuleT, NetT, LocalT, C), C == 0.
"#
    .to_string()
}

/// Start a walk at `node` for the traced tuple `id`, observed at
/// `observed`. Reports arrive at `origin` as [`REPORT`] tuples.
pub fn start_walk<H: p2_core::Population>(
    sim: &mut H,
    node: &Addr,
    origin: &Addr,
    walk_id: u64,
    id: TupleId,
    observed: Time,
) {
    sim.inject(
        node,
        Tuple::new(
            "traceResp",
            [
                Value::Addr(node.clone()),
                Value::id(walk_id),
                Value::Addr(origin.clone()),
                Value::id(id.0),
                Value::Time(observed),
            ],
        ),
    );
}

/// A parsed profile report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Walk identifier.
    pub walk_id: u64,
    /// Microseconds inside rule strands.
    pub rule_us: i64,
    /// Microseconds crossing the network.
    pub net_us: i64,
    /// Microseconds queued locally between rules.
    pub local_us: i64,
}

/// Parse watched [`REPORT`] tuples.
pub fn reports(watched: &[(Time, Tuple)]) -> Vec<Profile> {
    watched
        .iter()
        .filter_map(|(_, t)| {
            let walk_id = match t.get(1) {
                Some(Value::Id(i)) => i.0,
                _ => return None,
            };
            let int = |i: usize| match t.get(i) {
                Some(Value::Int(v)) => Some(*v),
                _ => None,
            };
            Some(Profile {
                walk_id,
                rule_us: int(2)?,
                net_us: int(3)?,
                local_us: int(4)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_chord::{build_ring, issue_lookup, ChordConfig};
    use p2_core::{NodeConfig, SimHarness};
    use p2_types::{RingId, TimeDelta};

    fn traced_sim(seed: u64, n: usize) -> (SimHarness, p2_chord::ChordRing) {
        let mut sim = SimHarness::new(
            Default::default(),
            NodeConfig {
                tracing: true,
                ..Default::default()
            },
            seed,
        );
        let ring = build_ring(&mut sim, n, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(300));
        (sim, ring)
    }

    #[test]
    fn walk_profiles_a_multi_hop_lookup() {
        let (mut sim, ring) = traced_sim(51, 8);
        assert!(p2_chord::ring_is_ordered(&mut sim, &ring));
        for a in ring.addrs.clone() {
            sim.install(&a, &profiling_program()).unwrap();
        }
        let origin = ring.addrs[0].clone();
        sim.node_mut(&origin).watch("lookupResults");
        sim.node_mut(&origin).watch(REPORT);

        // Pick a key owned far from the origin so the lookup hops.
        let owner_gap_key = {
            let sorted = ring.live_sorted(&sim);
            let my_pos = sorted.iter().position(|(_, a)| *a == origin).unwrap();
            let far = &sorted[(my_pos + sorted.len() / 2) % sorted.len()];
            RingId(far.0 .0.wrapping_sub(1))
        };
        issue_lookup(&mut sim, &origin, owner_gap_key, &origin, 777);
        sim.run_for(TimeDelta::from_secs(2));
        let watched = sim.node_mut(&origin).take_watched("lookupResults");
        let (observed_at, resp) = watched
            .iter()
            .find(|(_, t)| t.get(4) == Some(&Value::id(777)))
            .cloned()
            .expect("lookup answered");

        // Find the response tuple's trace ID at the origin and walk it.
        let id = sim
            .node_mut(&origin)
            .trace_id_of(&resp)
            .expect("response memoized by tracer");
        start_walk(
            &mut sim,
            &origin.clone(),
            &origin.clone(),
            9001,
            id,
            observed_at,
        );
        sim.run_for(TimeDelta::from_secs(2));

        let profs = reports(sim.node_mut(&origin).watched(REPORT));
        assert!(!profs.is_empty(), "walk produced no report");
        let p = profs[0];
        assert_eq!(p.walk_id, 9001);
        // The lookup crossed the network (10 ms per hop, ≥ 2 hops
        // including the response): NetT must dominate and reflect the
        // simulated latency.
        assert!(p.net_us >= 20_000, "net time too small: {p:?}");
        assert!(p.rule_us >= 0 && p.local_us >= 0);
    }

    #[test]
    fn local_lookup_has_no_net_time() {
        let (mut sim, ring) = traced_sim(52, 1);
        let a = ring.addrs[0].clone();
        sim.install(&a, &profiling_program()).unwrap();
        sim.node_mut(&a).watch("lookupResults");
        sim.node_mut(&a).watch(REPORT);
        issue_lookup(&mut sim, &a, RingId(5), &a, 99);
        sim.run_for(TimeDelta::from_secs(1));
        let watched = sim.node_mut(&a).take_watched("lookupResults");
        let (at, resp) = watched
            .iter()
            .find(|(_, t)| t.get(4) == Some(&Value::id(99)))
            .cloned()
            .expect("answered");
        let id = sim.node_mut(&a).trace_id_of(&resp).unwrap();
        start_walk(&mut sim, &a.clone(), &a.clone(), 1, id, at);
        sim.run_for(TimeDelta::from_secs(1));
        let profs = reports(sim.node_mut(&a).watched(REPORT));
        assert_eq!(profs.len(), 1);
        assert_eq!(profs[0].net_us, 0, "single-node lookup crossed no wire");
    }
}
