//! §3.1.4 — proactive routing-consistency probes.
//!
//! The first-order symptom of a damaged overlay is *inconsistent
//! routing*: the same key, looked up at the same time from different
//! places, resolves to different owners. The probe (`cs1`–`cs11`)
//! periodically picks a random key, launches one lookup through **every
//! unique finger**, clusters the answers, and reports
//! `largest-agreeing-cluster / lookups-issued` as the consistency metric
//! (1.0 = perfect). `cs12` turns low metrics into alarms.
//!
//! This is also the workload of **Figure 6** in the evaluation: the
//! probe's cost is measured at initiation rates from 1/32 to 1 per
//! second.

use p2_types::{Time, Tuple, Value};

/// Metric relation: `consistency(N, ProbeID, Metric)`.
pub const CONSISTENCY: &str = "consistency";
/// Alarm relation from `cs12`.
pub const ALARM: &str = "consAlarm";

/// Probe parameters.
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// Seconds between probes (`tProbe`; Figure 6 sweeps 1–32).
    pub probe_secs: f64,
    /// Seconds between tally rounds (paper: 20).
    pub tally_secs: u32,
    /// Minimum probe age before tallying (paper: 20).
    pub wait_secs: u32,
    /// Alarm threshold (paper: 0.5).
    pub alarm_below: f64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            probe_secs: 40.0,
            tally_secs: 20,
            wait_secs: 20,
            alarm_below: 0.5,
        }
    }
}

/// The probe program (`cs1`–`cs12`), installed on the probing node.
pub fn probe_program(cfg: &ProbeConfig) -> String {
    let ProbeConfig {
        probe_secs,
        tally_secs,
        wait_secs,
        alarm_below,
    } = cfg;
    format!(
        r#"
materialize(conLookupTable, 100, 1000, keys(1, 3)).
materialize(conRespTable, 100, 1000, keys(1, 3)).
materialize(respCluster, 100, 1000, keys(1, 2, 3)).
materialize(maxCluster, 100, 1000, keys(1, 2)).
materialize(lookupCluster, 100, 1000, keys(1, 2)).

cs1 conProbe@NAddr(ProbeID, K, T) :- periodic@NAddr(ProbeID, {probe_secs}),
     K := f_randID(), T := f_now().
cs2 conLookup@NAddr(ProbeID, K, FAddr, ReqID, T) :- conProbe@NAddr(ProbeID, K, T),
     uniqueFinger@NAddr(FAddr, FID), ReqID := f_rand().
cs3 conLookupTable@NAddr(ProbeID, ReqID, T) :- conLookup@NAddr(ProbeID, K, FAddr, ReqID, T).
cs4 lookup@FAddr(K, NAddr, ReqID) :- conLookup@NAddr(ProbeID, K, FAddr, ReqID, T).
cs5 conRespTable@NAddr(ProbeID, ReqID, SAddr) :-
     lookupResults@NAddr(K, SID, SAddr, ReqID, Responder),
     conLookupTable@NAddr(ProbeID, ReqID, T).
cs6 respCluster@NAddr(ProbeID, SAddr, count<*>) :- conRespTable@NAddr(ProbeID, ReqID, SAddr).
cs7 maxCluster@NAddr(ProbeID, max<Count>) :- respCluster@NAddr(ProbeID, SAddr, Count).
cs8 lookupCluster@NAddr(ProbeID, T, count<*>) :- conLookupTable@NAddr(ProbeID, ReqID, T).
cs9 consistency@NAddr(ProbeID, RespCount / LookupCount) :- periodic@NAddr(E, {tally_secs}),
     lookupCluster@NAddr(ProbeID, T, LookupCount), T < f_now() - {wait_secs},
     maxCluster@NAddr(ProbeID, RespCount).
cs10 delete lookupCluster@NAddr(ProbeID, T, Count) :-
     consistency@NAddr(ProbeID, Consistency), lookupCluster@NAddr(ProbeID, T, Count).
cs11 delete conLookupTable@NAddr(ProbeID, ReqID, T) :-
     consistency@NAddr(ProbeID, Consistency), conLookupTable@NAddr(ProbeID, ReqID, T).
cs12 consAlarm@NAddr(ProbeID) :- consistency@NAddr(ProbeID, Cons), Cons < {alarm_below}.
"#
    )
}

/// Extract (when, metric) pairs from a watched `consistency` log.
pub fn metrics(watched: &[(Time, Tuple)]) -> Vec<(Time, f64)> {
    watched
        .iter()
        .filter_map(|(t, tup)| match tup.get(2) {
            Some(Value::Float(m)) => Some((*t, *m)),
            Some(Value::Int(m)) => Some((*t, *m as f64)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_chord::{build_ring, ChordConfig};
    use p2_core::SimHarness;
    use p2_types::TimeDelta;

    #[test]
    fn stable_ring_measures_full_consistency() {
        let mut sim = SimHarness::with_seed(41);
        let ring = build_ring(&mut sim, 8, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(300)); // fingers need a few fix rounds
        assert!(p2_chord::ring_is_ordered(&mut sim, &ring));
        let prober = ring.addrs[2].clone();
        sim.install(&prober, &probe_program(&ProbeConfig::default()))
            .unwrap();
        sim.node_mut(&prober).watch(CONSISTENCY);
        sim.node_mut(&prober).watch(ALARM);
        sim.run_for(TimeDelta::from_secs(180));
        let ms = metrics(sim.node_mut(&prober).watched(CONSISTENCY));
        assert!(!ms.is_empty(), "no consistency metric produced");
        for (t, m) in &ms {
            assert!(
                (*m - 1.0).abs() < 1e-9,
                "stable ring must be fully consistent, got {m} at {t}"
            );
        }
        assert!(sim.node_mut(&prober).watched(ALARM).is_empty());
    }

    #[test]
    fn crash_during_probes_degrades_metric() {
        let mut sim = SimHarness::with_seed(42);
        let ring = build_ring(&mut sim, 8, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(300));
        let prober = ring.addrs[1].clone();
        // Aggressive probing so several probes straddle the crash.
        let cfg = ProbeConfig {
            probe_secs: 4.0,
            tally_secs: 5,
            wait_secs: 5,
            ..Default::default()
        };
        sim.install(&prober, &probe_program(&cfg)).unwrap();
        sim.node_mut(&prober).watch(CONSISTENCY);
        sim.run_for(TimeDelta::from_secs(30));
        // Kill a non-prober, non-landmark node; in-flight consistency
        // lookups through it go unanswered, shrinking the agreeing
        // cluster relative to lookups issued.
        let victim = ring
            .live_sorted(&sim)
            .into_iter()
            .map(|(_, a)| a)
            .find(|a| *a != prober && a != ring.landmark())
            .unwrap();
        sim.crash(&victim);
        sim.run_for(TimeDelta::from_secs(120));
        let ms = metrics(sim.node_mut(&prober).watched(CONSISTENCY));
        assert!(!ms.is_empty());
        let min = ms.iter().map(|(_, m)| *m).fold(f64::INFINITY, f64::min);
        assert!(min < 1.0, "metric never dipped despite the crash: {ms:?}");
    }

    #[test]
    fn probe_state_is_cleaned_up() {
        // cs10/cs11 must delete tallied probe state so the tables do not
        // accumulate (Figure 6 measures exactly this memory behaviour).
        let mut sim = SimHarness::with_seed(43);
        let ring = build_ring(&mut sim, 6, &ChordConfig::default());
        sim.run_for(TimeDelta::from_secs(300));
        let prober = ring.addrs[0].clone();
        let cfg = ProbeConfig {
            probe_secs: 4.0,
            tally_secs: 5,
            wait_secs: 5,
            ..Default::default()
        };
        sim.install(&prober, &probe_program(&cfg)).unwrap();
        sim.run_for(TimeDelta::from_secs(120));
        let now = sim.now();
        let pending = sim
            .node_mut(&prober)
            .table_scan("conLookupTable", now)
            .len();
        // Only untallied probes (< wait_secs + tally period old) linger.
        assert!(pending < 60, "probe state leaking: {pending} rows");
    }
}
