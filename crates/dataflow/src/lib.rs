// Library code must justify every panic path: unwrap/expect are
// clippy-warned outside tests (see scripts/tier1.sh, which denies
// warnings). Fix the call or carry an #[allow] with a reason.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! # p2-dataflow — the rule-strand execution engine
//!
//! P2 executes OverLog by instantiating a Click-like software dataflow
//! graph on every node (Figure 1 of the paper): a network preamble feeds
//! a demultiplexer that routes tuples into **rule strands**, whose
//! elements are relational operators, and whose outputs flow to a network
//! postamble. This crate implements the strand half of that graph; the
//! preamble/postamble (routing, marshaling) live in `p2-core` and
//! `p2-net`.
//!
//! Two properties of the paper's engine are load-bearing for its tracing
//! story and are reproduced here faithfully:
//!
//! * **Tappable arcs** (§2.1.1): every hand-off inside a strand can be
//!   copied to a [`tap::TapSink`]. The planner marks three tap points —
//!   strand input, each join's match emission (*precondition fetch*), and
//!   strand output — plus the *stage completion* signal of §2.1.2.
//! * **Pipelined execution** (§2.1.2): each join is a stateful stage with
//!   its own input queue that yields matches one at a time, so the
//!   processing of consecutive trigger events genuinely interleaves
//!   inside one strand. The tracer must (and does, in `p2-trace`)
//!   disentangle these interleavings.

pub mod strand;
pub mod tap;

pub use strand::{Action, Env, StrandRuntime, StrandStats};
pub use tap::{NullSink, TapEvent, TapKind, TapSink};
