//! Strand execution: stateful join stages, pipelining, aggregation.

use crate::tap::{TapEvent, TapKind, TapSink};
use p2_overlog::AggFunc;
use p2_planner::expr::{eval, truthy, EvalCtx, PExpr};
use p2_planner::plan::{AggPlan, FieldMatch, FieldOut, HistoryProvider, MatchSpec, Op, Strand};
use p2_store::{Catalog, HistorySource};
use p2_types::{Addr, Time, Tuple, Value};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// A variable environment: one optional value per planner slot.
pub type Env = Vec<Option<Value>>;

/// An output produced by a strand, to be routed by the node runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct Action {
    /// The head tuple (location in field 0).
    pub tuple: Tuple,
    /// `true` if this is a `delete` rule output: remove the matching row
    /// from the destination table instead of inserting/raising it.
    pub delete: bool,
}

/// Execution counters for one strand (reflected into `sysRule`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StrandStats {
    /// Trigger tuples that matched and entered the strand.
    pub fired: u64,
    /// Output tuples produced.
    pub outputs: u64,
    /// Bindings dropped because an expression failed to evaluate
    /// (division by zero, type mismatch on wire data, ...).
    pub eval_errors: u64,
    /// Join probes answered from the strand's probe cache instead of the
    /// store (batched same-key triggers; see [`ProbeCache`]).
    pub probe_cache_hits: u64,
}

/// The last equality-probe result, memoized per strand.
///
/// Batched delta dispatch tends to feed a strand runs of triggers probing
/// the same key (`step_batch` over a same-relation run). The cache is
/// keyed on `(stage, field, value, table-version, now)`: the store bumps
/// a table's version on *every* observable mutation (including refreshes,
/// which reorder scans) and expiry is a pure function of `now`, so a key
/// hit guarantees the cached candidate rows are bit-identical to what a
/// fresh probe would return — the trace stays exact.
#[derive(Debug)]
struct ProbeCache {
    stage: usize,
    field: usize,
    value: Value,
    version: u64,
    now: Time,
    rows: Vec<Tuple>,
}

/// One stateful stage: a join (or archive scan) plus the stateless
/// operators that follow it up to the next stateful op.
#[derive(Debug, Clone)]
struct StageDef {
    table: String,
    match_spec: MatchSpec,
    /// `Some(..)` makes this an **archive-scan** stage: instead of
    /// probing the live table, it ranges over the epoch-segmented
    /// archive of `table` for rows whose validity interval overlaps the
    /// evaluated `[t0, t1]`, through the planned [`HistoryProvider`]
    /// (node-local archive, or deployment-wide imported history).
    /// Archive stages never use the probe cache or the secondary
    /// indexes.
    archive: Option<ArchiveStage>,
    post: Vec<Op>,
}

/// The archive half of a [`StageDef`]: evaluated interval bounds plus
/// the provider that resolves them. Remote fetching (when `provider`
/// is [`HistoryProvider::Deployment`]) happens *before* the strand
/// fires — by the time this stage runs, every reachable peer's history
/// is already imported, so the scan itself stays synchronous.
#[derive(Debug, Clone)]
struct ArchiveStage {
    t0: PExpr,
    t1: PExpr,
    provider: HistoryProvider,
}

#[derive(Debug, Default)]
struct StageState {
    input: VecDeque<StageInput>,
    active: Option<ActiveJoin>,
}

/// A queued unit of work for a stage. `trigger` is present only on
/// stage-0 entries: the Input tap fires when the trigger *enters the
/// first stateful element* (activation), not when it is merely queued —
/// this is what lets a subsequent event's Input be observed while a prior
/// event still occupies later stages (the Figure 3 scenario).
#[derive(Debug)]
struct StageInput {
    env: Env,
    trigger: Option<Tuple>,
}

/// An in-progress join: precomputed `(extended-env, matched-tuple)` pairs
/// that are emitted **one per scheduler step**, which is what produces
/// genuine pipelining across consecutive trigger events (§2.1.2).
#[derive(Debug)]
struct ActiveJoin {
    /// Owning iterator so each match is moved out exactly once — a
    /// result is never revisited, so cloning it per emission would be
    /// pure allocation overhead.
    results: std::vec::IntoIter<(Env, Tuple)>,
}

/// One member of a strand family: the rule's own identity, its private
/// stateless tail (ops after the shared prefix), and its counters. A
/// plain single-rule strand is a family of one whose tail is empty.
struct Branch {
    plan: Arc<Strand>,
    strand_id: Arc<str>,
    rule_label: Arc<str>,
    /// Stateless ops applied per-branch at finalize time, after the
    /// shared prefix produced a binding.
    tail: Vec<Op>,
    stats: StrandStats,
}

/// The runtime instantiation of one compiled strand — or of a
/// **shared-prefix family** of strands (`CompiledProgram::prefix_groups`):
/// the common trigger match, pre-ops, and join pipeline run **once** per
/// trigger, and each member branch applies its own stateless tail and
/// head per result.
///
/// Observability is per branch: every Input/Precondition/StageComplete/
/// Output tap is emitted once per member under the member's own strand
/// id, so the tracer's per-rule records are identical to running the
/// members unshared. Work counters attributable to the shared region
/// (eval errors in shared ops, probe-cache hits) land on the first
/// branch.
pub struct StrandRuntime {
    branches: Vec<Branch>,
    /// Stateless operators before the first join (shared).
    pre_ops: Vec<Op>,
    stage_defs: Vec<StageDef>,
    stages: Vec<StageState>,
    /// Environment width: the max over member plans (prefix slots are
    /// identical across members; tails may extend differently).
    slots: usize,
    /// Round-robin scheduling cursor over stages. Round-robin (rather
    /// than drain-downstream-first) is what produces the genuine
    /// pipelined interleavings of §2.1.2.
    cursor: usize,
    probe_cache: Option<ProbeCache>,
}

impl StrandRuntime {
    /// Instantiate a single compiled strand (a family of one: the whole
    /// op list is the "shared" region and the tail is empty, which makes
    /// execution — taps included — bit-identical to the pre-family
    /// runtime).
    pub fn new(plan: Arc<Strand>) -> StrandRuntime {
        let shared = plan.ops.len();
        StrandRuntime::family(vec![plan], shared)
    }

    /// Instantiate a shared-prefix family. All members must agree on the
    /// trigger, the trigger match, and the first `shared_ops` ops (the
    /// planner's `PrefixGroup` guarantees this, along with purity of
    /// every member — sharing evaluates the prefix once instead of once
    /// per member); with more than one member no member may aggregate.
    pub fn family(plans: Vec<Arc<Strand>>, shared_ops: usize) -> StrandRuntime {
        assert!(!plans.is_empty(), "a family needs at least one member");
        let rep = plans[0].clone();
        debug_assert!(plans.iter().all(|p| {
            p.trigger == rep.trigger
                && p.trigger_match == rep.trigger_match
                && p.ops[..shared_ops] == rep.ops[..shared_ops]
        }));
        debug_assert!(plans.len() == 1 || plans.iter().all(|p| p.head.agg.is_none()));
        let mut pre_ops = Vec::new();
        let mut stage_defs: Vec<StageDef> = Vec::new();
        for op in &rep.ops[..shared_ops] {
            match op {
                Op::Join { table, match_spec } => {
                    stage_defs.push(StageDef {
                        table: table.clone(),
                        match_spec: match_spec.clone(),
                        archive: None,
                        post: Vec::new(),
                    });
                }
                Op::ArchiveScan {
                    table,
                    t0,
                    t1,
                    match_spec,
                    provider,
                } => {
                    stage_defs.push(StageDef {
                        table: table.clone(),
                        match_spec: match_spec.clone(),
                        archive: Some(ArchiveStage {
                            t0: t0.clone(),
                            t1: t1.clone(),
                            provider: *provider,
                        }),
                        post: Vec::new(),
                    });
                }
                other => {
                    if let Some(last) = stage_defs.last_mut() {
                        last.post.push(other.clone());
                    } else {
                        pre_ops.push(other.clone());
                    }
                }
            }
        }
        let stages = (0..stage_defs.len())
            .map(|_| StageState::default())
            .collect();
        let slots = plans.iter().map(|p| p.slots).max().unwrap_or(0);
        let branches = plans
            .into_iter()
            .map(|p| Branch {
                strand_id: Arc::from(p.strand_id.as_str()),
                rule_label: Arc::from(p.rule_label.as_str()),
                tail: p.ops[shared_ops..].to_vec(),
                stats: StrandStats::default(),
                plan: p,
            })
            .collect();
        StrandRuntime {
            branches,
            pre_ops,
            stage_defs,
            stages,
            slots,
            cursor: 0,
            probe_cache: None,
        }
    }

    /// The compiled plan of the first (representative) member.
    pub fn plan(&self) -> &Strand {
        &self.branches[0].plan
    }

    /// Number of member strands sharing this runtime.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Per-member plans and counters, in member order.
    pub fn branches(&self) -> impl Iterator<Item = (&Strand, StrandStats)> + '_ {
        self.branches.iter().map(|b| (&*b.plan, b.stats))
    }

    /// Execution counters, summed across members (identical to the
    /// single strand's counters for a family of one).
    pub fn stats(&self) -> StrandStats {
        let mut total = StrandStats::default();
        for b in &self.branches {
            total.fired += b.stats.fired;
            total.outputs += b.stats.outputs;
            total.eval_errors += b.stats.eval_errors;
            total.probe_cache_hits += b.stats.probe_cache_hits;
        }
        total
    }

    /// Whether any stage still holds queued or in-progress work.
    pub fn has_work(&self) -> bool {
        self.stages
            .iter()
            .any(|s| !s.input.is_empty() || s.active.is_some())
    }

    /// Relations this strand scans through the **deployment-wide**
    /// history provider. The node runtime consults this before firing
    /// the strand: any peer history these relations need must be
    /// fetched and imported first, so the scan itself never blocks.
    pub fn remote_history_relations(&self) -> Vec<&str> {
        self.stage_defs
            .iter()
            .filter(|d| {
                matches!(
                    &d.archive,
                    Some(a) if a.provider == HistoryProvider::Deployment
                )
            })
            .map(|d| d.table.as_str())
            .collect()
    }

    /// Emit a tap once per member branch (under each member's identity).
    fn tap_all(&self, sink: &mut dyn TapSink, at: Time, kind: &TapKind) {
        if !sink.enabled() {
            return;
        }
        let stage_count = self.stage_defs.len();
        for b in &self.branches {
            sink.tap(TapEvent {
                strand_id: b.strand_id.clone(),
                rule_label: b.rule_label.clone(),
                stage_count,
                kind: kind.clone(),
                at,
            });
        }
    }

    /// Offer a trigger tuple to the strand. If it matches, the strand
    /// either queues work into its first stage or (for strands with no
    /// joins, and for aggregates, which run atomically) completes
    /// immediately, appending outputs to `actions`.
    ///
    /// Returns `true` if the trigger matched.
    #[allow(clippy::too_many_arguments)]
    pub fn fire(
        &mut self,
        trigger: &Tuple,
        store: &mut Catalog,
        ctx: &mut dyn EvalCtx,
        sink: &mut dyn TapSink,
        now: Time,
        actions: &mut Vec<Action>,
    ) -> bool {
        let mut env: Env = vec![None; self.slots];
        match self.branches[0]
            .plan
            .trigger_match
            .apply(trigger, &mut env, ctx)
        {
            Ok(true) => {}
            Ok(false) => return false,
            Err(_) => {
                self.branches[0].stats.eval_errors += 1;
                return false;
            }
        }
        for b in &mut self.branches {
            b.stats.fired += 1;
        }

        if self.branches[0].plan.head.agg.is_some() {
            self.tap_all(
                sink,
                now,
                &TapKind::Input {
                    tuple: trigger.clone(),
                },
            );
            self.fire_aggregate(env, store, ctx, sink, now, actions);
            return true;
        }

        let env = match apply_stateless(&self.pre_ops, env, ctx, &mut self.branches[0].stats) {
            Some(e) => e,
            None => {
                // The trigger matched but a pre-join condition filtered
                // it; the rule never "enters" the strand, so no Input tap.
                return true;
            }
        };
        if self.stage_defs.is_empty() {
            self.tap_all(
                sink,
                now,
                &TapKind::Input {
                    tuple: trigger.clone(),
                },
            );
            self.finalize(env, ctx, sink, now, actions);
        } else {
            self.stages[0].input.push_back(StageInput {
                env,
                trigger: Some(trigger.clone()),
            });
        }
        true
    }

    /// Advance the strand by one scheduler step: the **highest** stage
    /// with available work emits one match (downstream-first scheduling,
    /// the classic pipeline discipline). Returns `true` if work was done.
    pub fn step(
        &mut self,
        store: &mut Catalog,
        ctx: &mut dyn EvalCtx,
        sink: &mut dyn TapSink,
        now: Time,
        actions: &mut Vec<Action>,
    ) -> bool {
        let n = self.stages.len();
        for k in 0..n {
            let i = (self.cursor + k) % n;
            // Emit one pending match from an active join.
            if self.stages[i].active.is_some() {
                let (emit, done): (Option<(Env, Tuple)>, bool) = {
                    // `if let` would hold the borrow across the strand
                    // methods below; the narrow block keeps it local.
                    #[expect(clippy::expect_used, reason = "is_some checked just above")]
                    let active = self.stages[i].active.as_mut().expect("checked");
                    match active.results.next() {
                        Some(r) => (Some(r), false),
                        None => (None, true),
                    }
                };
                if let Some((env, tuple)) = emit {
                    self.tap_all(sink, now, &TapKind::Precondition { stage: i, tuple });
                    if let Some(env) = apply_stateless(
                        &self.stage_defs[i].post,
                        env,
                        ctx,
                        &mut self.branches[0].stats,
                    ) {
                        if i + 1 < self.stages.len() {
                            self.stages[i + 1]
                                .input
                                .push_back(StageInput { env, trigger: None });
                        } else {
                            self.finalize(env, ctx, sink, now, actions);
                        }
                    }
                } else if done {
                    // Exhausted: signal completion (the element "seeks a
                    // new input", §2.1.2) and free the stage.
                    self.stages[i].active = None;
                    self.tap_all(sink, now, &TapKind::StageComplete { stage: i });
                }
                self.cursor = (i + 1) % n;
                return true;
            }
            // Activate the next queued input (its own scheduler step; the
            // first match is emitted on the stage's next visit).
            if let Some(item) = self.stages[i].input.pop_front() {
                if let Some(trigger) = item.trigger {
                    self.tap_all(sink, now, &TapKind::Input { tuple: trigger });
                }
                let results = probe_stage(
                    &self.stage_defs[i],
                    i,
                    &item.env,
                    store,
                    ctx,
                    now,
                    &mut self.branches[0].stats,
                    &mut self.probe_cache,
                );
                self.stages[i].active = Some(ActiveJoin {
                    results: results.into_iter(),
                });
                self.cursor = (i + 1) % n;
                return true;
            }
        }
        false
    }

    /// Advance the strand by up to `max_steps` scheduler steps — the
    /// batched form of [`StrandRuntime::step`]. Each unit of work is the
    /// same one `step` would do (taps included), so the emitted tap
    /// stream is identical; only the per-call overhead is amortized.
    /// Returns the number of steps actually taken (less than `max_steps`
    /// iff the strand drained).
    #[allow(clippy::too_many_arguments)]
    pub fn step_batch(
        &mut self,
        max_steps: u64,
        store: &mut Catalog,
        ctx: &mut dyn EvalCtx,
        sink: &mut dyn TapSink,
        now: Time,
        actions: &mut Vec<Action>,
    ) -> u64 {
        let mut done = 0;
        while done < max_steps && self.step(store, ctx, sink, now, actions) {
            done += 1;
        }
        done
    }

    /// Discard all queued and in-progress pipeline work (the scheduler's
    /// budget-exhaustion path). Returns the number of work units dropped:
    /// queued stage inputs, un-emitted join matches, and in-progress
    /// joins themselves.
    pub fn abandon_work(&mut self) -> u64 {
        let mut dropped = 0;
        for s in &mut self.stages {
            dropped += s.input.len() as u64;
            s.input.clear();
            if let Some(a) = s.active.take() {
                dropped += 1 + a.results.len() as u64;
            }
        }
        self.cursor = 0;
        dropped
    }

    /// Drive the strand until no stage has work left.
    pub fn run_to_quiescence(
        &mut self,
        store: &mut Catalog,
        ctx: &mut dyn EvalCtx,
        sink: &mut dyn TapSink,
        now: Time,
        actions: &mut Vec<Action>,
    ) {
        while self.step(store, ctx, sink, now, actions) {}
    }

    /// Finish one binding produced by the shared region: each member
    /// branch applies its own stateless tail over its own copy of the
    /// environment (tails may write disjoint slot ranges; copying makes
    /// collisions impossible) and emits its own head tuple and Output
    /// tap. For a family of one the tail is empty and this is exactly
    /// the old single-strand finalize.
    fn finalize(
        &mut self,
        mut env: Env,
        ctx: &mut dyn EvalCtx,
        sink: &mut dyn TapSink,
        now: Time,
        actions: &mut Vec<Action>,
    ) {
        let stage_count = self.stage_defs.len();
        let n = self.branches.len();
        for (i, b) in self.branches.iter_mut().enumerate() {
            let benv = if i + 1 == n {
                std::mem::take(&mut env)
            } else {
                env.clone()
            };
            let Some(benv) = apply_stateless(&b.tail, benv, ctx, &mut b.stats) else {
                continue;
            };
            match head_tuple(&b.plan, &benv, ctx, None) {
                Ok(tuple) => {
                    if sink.enabled() {
                        sink.tap(TapEvent {
                            strand_id: b.strand_id.clone(),
                            rule_label: b.rule_label.clone(),
                            stage_count,
                            kind: TapKind::Output {
                                tuple: tuple.clone(),
                            },
                            at: now,
                        });
                    }
                    b.stats.outputs += 1;
                    actions.push(Action {
                        tuple,
                        delete: b.plan.head.delete,
                    });
                }
                Err(()) => {
                    b.stats.eval_errors += 1;
                }
            }
        }
    }

    /// Aggregate strands run atomically per trigger: evaluate the whole
    /// body, group the result multiset by the non-aggregate head fields,
    /// and emit one output per group (plus the zero-count row when the
    /// plan allows it — rule `sr8`/`sr9`). Aggregates never share a
    /// prefix, so this always runs on a family of one.
    fn fire_aggregate(
        &mut self,
        env0: Env,
        store: &mut Catalog,
        ctx: &mut dyn EvalCtx,
        sink: &mut dyn TapSink,
        now: Time,
        actions: &mut Vec<Action>,
    ) {
        debug_assert_eq!(self.branches.len(), 1, "aggregates are never shared");
        let plan = self.branches[0].plan.clone();
        #[expect(
            clippy::expect_used,
            reason = "only strands planned with an aggregate head reach this path"
        )]
        let agg: AggPlan = plan.head.agg.clone().expect("agg strand");
        let mut envs = match apply_stateless(
            &self.pre_ops,
            env0.clone(),
            ctx,
            &mut self.branches[0].stats,
        ) {
            Some(e) => vec![e],
            None => Vec::new(),
        };
        for i in 0..self.stage_defs.len() {
            let mut next_envs = Vec::new();
            for env in envs {
                for (e2, t) in probe_stage(
                    &self.stage_defs[i],
                    i,
                    &env,
                    store,
                    ctx,
                    now,
                    &mut self.branches[0].stats,
                    &mut self.probe_cache,
                ) {
                    self.tap_all(sink, now, &TapKind::Precondition { stage: i, tuple: t });
                    if let Some(e3) = apply_stateless(
                        &self.stage_defs[i].post,
                        e2,
                        ctx,
                        &mut self.branches[0].stats,
                    ) {
                        next_envs.push(e3);
                    }
                }
            }
            envs = next_envs;
        }

        // Group by the evaluated non-aggregate head fields.
        let mut groups: BTreeMap<Vec<Value>, AggState> = BTreeMap::new();
        for env in &envs {
            let key = match group_key(&plan, env, ctx, &agg) {
                Ok(k) => k,
                Err(()) => {
                    self.branches[0].stats.eval_errors += 1;
                    continue;
                }
            };
            let input = match &agg.over {
                Some(e) => match eval(e, env, ctx) {
                    Ok(v) => Some(v),
                    Err(_) => {
                        self.branches[0].stats.eval_errors += 1;
                        continue;
                    }
                },
                None => None,
            };
            groups
                .entry(key)
                .or_insert_with(|| AggState::new(agg.func))
                .feed(input);
        }

        // Zero-count emission for an empty match set.
        if groups.is_empty() && agg.func == AggFunc::Count && agg.group_bound_by_trigger {
            if let Ok(key) = group_key(&plan, &env0, ctx, &agg) {
                groups.insert(key, AggState::new(AggFunc::Count));
            }
        }

        for (key, state) in groups {
            let Some(agg_value) = state.result() else {
                continue;
            };
            // Rebuild the tuple: key fields in order with the aggregate
            // value spliced at its position.
            let mut vals = Vec::with_capacity(plan.head.fields.len());
            let mut key_iter = key.into_iter();
            for (pos, _) in plan.head.fields.iter().enumerate() {
                if pos == agg.position {
                    vals.push(agg_value.clone());
                } else {
                    #[expect(
                        clippy::expect_used,
                        reason = "group keys carry one value per non-aggregate head field"
                    )]
                    vals.push(key_iter.next().expect("group key arity"));
                }
            }
            if let Some(Value::Str(s)) = vals.first() {
                vals[0] = Value::Addr(Addr::new(&**s));
            }
            let tuple = Tuple::new(&plan.head.name, vals);
            self.tap_all(
                sink,
                now,
                &TapKind::Output {
                    tuple: tuple.clone(),
                },
            );
            self.branches[0].stats.outputs += 1;
            actions.push(Action {
                tuple,
                delete: plan.head.delete,
            });
        }
        // Aggregate strands run atomically, so every stage has completed
        // by now; signal the completions in stage order for the tracer.
        for i in 0..self.stage_defs.len() {
            self.tap_all(sink, now, &TapKind::StageComplete { stage: i });
        }
    }
}

/// Apply stateless operators; `None` means the binding was filtered out
/// (or errored, which is counted against `stats` and treated as
/// filtered).
fn apply_stateless(
    ops: &[Op],
    mut env: Env,
    ctx: &mut dyn EvalCtx,
    stats: &mut StrandStats,
) -> Option<Env> {
    for op in ops {
        match op {
            Op::Select(e) => match eval(e, &env, ctx).and_then(|v| truthy(&v)) {
                Ok(true) => {}
                Ok(false) => return None,
                Err(_) => {
                    stats.eval_errors += 1;
                    return None;
                }
            },
            Op::Assign { slot, expr } => match eval(expr, &env, ctx) {
                Ok(v) => env[*slot] = Some(v),
                Err(_) => {
                    stats.eval_errors += 1;
                    return None;
                }
            },
            Op::Join { .. } | Op::ArchiveScan { .. } => {
                unreachable!("stateful ops are stage boundaries")
            }
        }
    }
    Some(env)
}

/// Evaluate a plan's head fields over `env`; `agg_value` fills the
/// aggregate position if present.
fn head_tuple(
    plan: &Strand,
    env: &Env,
    ctx: &mut dyn EvalCtx,
    agg_value: Option<Value>,
) -> Result<Tuple, ()> {
    let mut vals = Vec::with_capacity(plan.head.fields.len());
    for f in &plan.head.fields {
        let v = match f {
            FieldOut::Slot(s) => env.get(*s).and_then(|v| v.clone()).ok_or(())?,
            FieldOut::Const(c) => c.clone(),
            FieldOut::Expr(e) => eval(e, env, ctx).map_err(|_| ())?,
            FieldOut::Agg => agg_value.clone().ok_or(())?,
        };
        vals.push(v);
    }
    // Coerce a string location to an address so heads like
    // `marker@RemoteAddr(...)` route even when the binding came off a
    // string-valued field.
    if let Some(Value::Str(s)) = vals.first() {
        vals[0] = Value::Addr(Addr::new(&**s));
    }
    Ok(Tuple::new(&plan.head.name, vals))
}

/// Evaluate the non-aggregate head fields as the group key.
fn group_key(
    plan: &Strand,
    env: &Env,
    ctx: &mut dyn EvalCtx,
    agg: &AggPlan,
) -> Result<Vec<Value>, ()> {
    let mut key = Vec::new();
    for (pos, f) in plan.head.fields.iter().enumerate() {
        if pos == agg.position {
            continue;
        }
        let v = match f {
            FieldOut::Slot(s) => env.get(*s).and_then(|v| v.clone()).ok_or(())?,
            FieldOut::Const(c) => c.clone(),
            FieldOut::Expr(e) => eval(e, env, ctx).map_err(|_| ())?,
            FieldOut::Agg => unreachable!("skipped"),
        };
        key.push(v);
    }
    Ok(key)
}

/// Compute the join results for one stage against the current store.
///
/// The probe strategy mirrors the planner's index requests: when the
/// stage's [`MatchSpec::probe_field`] names an equality field whose value
/// is known (a constant, or an already-bound variable), the probe goes
/// through [`Catalog::scan_eq`] — an index lookup once the catalog has
/// registered the `(table, field)` index, a counted linear fallback
/// otherwise. Everything else falls back to a full scan.
///
/// A free function (rather than a method) so callers can hold a borrow of
/// one stage definition while lending out the stats counters.
///
/// Equality probes consult the strand's [`ProbeCache`] first: a batched
/// run of same-key triggers probes the store once and replays the cached
/// candidates, which the `(version, now)` key proves bit-identical.
#[allow(clippy::too_many_arguments)]
fn probe_stage(
    def: &StageDef,
    stage: usize,
    env: &Env,
    store: &mut Catalog,
    ctx: &mut dyn EvalCtx,
    now: Time,
    stats: &mut StrandStats,
    cache: &mut Option<ProbeCache>,
) -> Vec<(Env, Tuple)> {
    if let Some(arch) = &def.archive {
        return archive_stage(def, arch, env, store, ctx, now, stats);
    }
    let candidates = match def.match_spec.probe_field() {
        Some(field) => {
            let want = match &def.match_spec.fields[field] {
                FieldMatch::EqConst(c) => Some(c.clone()),
                FieldMatch::EqVar(slot) => env[*slot].clone(),
                _ => None,
            };
            match want {
                Some(v) => {
                    let version = store.version_of(&def.table);
                    let cached = cache.as_ref().filter(|c| {
                        c.stage == stage
                            && c.field == field
                            && c.now == now
                            && c.version == version
                            && c.value == v
                    });
                    if let Some(c) = cached {
                        stats.probe_cache_hits += 1;
                        c.rows.clone()
                    } else {
                        let rows = store.scan_eq(&def.table, field, &v, now);
                        // Version is read *after* the scan: the scan's own
                        // lazy expiry may bump it, and the cache must key
                        // on the post-expiry state it captured.
                        *cache = Some(ProbeCache {
                            stage,
                            field,
                            value: v,
                            version: store.version_of(&def.table),
                            now,
                            rows: rows.clone(),
                        });
                        rows
                    }
                }
                None => store.scan(&def.table, now),
            }
        }
        None => store.scan(&def.table, now),
    };
    let mut results = Vec::new();
    for t in candidates {
        let mut e2 = env.clone();
        match def.match_spec.apply(&t, &mut e2, ctx) {
            Ok(true) => results.push((e2, t)),
            Ok(false) => {}
            Err(_) => stats.eval_errors += 1,
        }
    }
    results
}

/// Compute the results of an archive-scan stage: evaluate the interval
/// bounds over the current binding, range over the relation's archived
/// (and still-live) history through the stage's [`HistoryProvider`],
/// and apply the field match to each row.
///
/// Equality fields whose value is already known — a constant, or a
/// variable bound by an earlier stage — are handed to the store as
/// **pushdown hints**: the archive uses its per-segment column min/max
/// summaries to skip whole sealed segments that cannot contain a
/// matching row. The full match spec still runs on every surviving
/// row, so the hints are purely an optimization.
///
/// Failure is never fatal: an unevaluable bound, a bound that is not a
/// time-like value, or a segment that fails to decode (hostile or
/// truncated bytes surface as typed [`p2_store::SegmentError`]s) all
/// count one eval error and produce zero matches — exactly how a join
/// treats a binding whose expressions misbehave.
fn archive_stage(
    def: &StageDef,
    arch: &ArchiveStage,
    env: &Env,
    store: &mut Catalog,
    ctx: &mut dyn EvalCtx,
    now: Time,
    stats: &mut StrandStats,
) -> Vec<(Env, Tuple)> {
    let mut bound = |e: &PExpr, stats: &mut StrandStats| -> Option<Time> {
        match eval(e, env, ctx).ok().as_ref().and_then(value_to_time) {
            Some(t) => Some(t),
            None => {
                stats.eval_errors += 1;
                None
            }
        }
    };
    let Some(t0) = bound(&arch.t0, stats) else {
        return Vec::new();
    };
    let Some(t1) = bound(&arch.t1, stats) else {
        return Vec::new();
    };
    let eqs = eq_hints(&def.match_spec, env);
    let scanned = match arch.provider {
        HistoryProvider::Local => store.local_history(&def.table, t0, t1, now, &eqs),
        HistoryProvider::Deployment => {
            let local = ctx.local_addr();
            store.deployment_history(local.as_str(), &def.table, t0, t1, now, &eqs)
        }
    };
    let rows = match scanned {
        Ok(rows) => rows,
        Err(_) => {
            stats.eval_errors += 1;
            return Vec::new();
        }
    };
    let mut results = Vec::new();
    for r in rows {
        let mut e2 = env.clone();
        match def.match_spec.apply(&r.tuple, &mut e2, ctx) {
            Ok(true) => results.push((e2, r.tuple)),
            Ok(false) => {}
            Err(_) => stats.eval_errors += 1,
        }
    }
    results
}

/// Extract the equality predicates of a match spec whose values are
/// known before the scan runs: `EqConst` directly, `EqVar` when the
/// referenced slot is bound in the current environment. `EqExpr` is
/// skipped — expressions may consult `f_rand()`, so pre-evaluating
/// them for a hint would perturb the deterministic RNG stream.
fn eq_hints(ms: &MatchSpec, env: &Env) -> Vec<(usize, Value)> {
    let mut eqs = Vec::new();
    for (i, f) in ms.fields.iter().enumerate() {
        match f {
            FieldMatch::EqConst(c) => eqs.push((i, c.clone())),
            FieldMatch::EqVar(slot) => {
                if let Some(v) = &env[*slot] {
                    eqs.push((i, v.clone()));
                }
            }
            _ => {}
        }
    }
    eqs
}

/// Interpret a value as a point in virtual time: `Time` directly,
/// non-negative integers and floats as *seconds* (the unit every other
/// OverLog surface uses — lifetimes, periods).
fn value_to_time(v: &Value) -> Option<Time> {
    match v {
        Value::Time(t) => Some(*t),
        Value::Int(n) => u64::try_from(*n).ok().map(Time::from_secs),
        Value::Float(x) if *x >= 0.0 && x.is_finite() => {
            Some(Time(p2_types::TimeDelta::from_secs_f64(*x).micros()))
        }
        _ => None,
    }
}

/// Incremental aggregate state.
#[derive(Debug)]
enum AggState {
    Count(u64),
    Min(Option<Value>),
    Max(Option<Value>),
    Sum(Option<Value>),
    Avg { sum: f64, n: u64 },
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Sum => AggState::Sum(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
        }
    }

    fn feed(&mut self, input: Option<Value>) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Min(cur) => {
                if let Some(v) = input {
                    let better = cur.as_ref().map(|c| v < *c).unwrap_or(true);
                    if better {
                        *cur = Some(v);
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(v) = input {
                    let better = cur.as_ref().map(|c| v > *c).unwrap_or(true);
                    if better {
                        *cur = Some(v);
                    }
                }
            }
            AggState::Sum(cur) => {
                if let Some(v) = input {
                    *cur = Some(match cur.take() {
                        Some(acc) => acc.add(&v).unwrap_or(v),
                        None => v,
                    });
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(v) = input {
                    let x = match v {
                        Value::Int(i) => i as f64,
                        Value::Float(f) => f,
                        Value::Time(t) => t.0 as f64,
                        Value::Id(i) => i.0 as f64,
                        _ => return,
                    };
                    *sum += x;
                    *n += 1;
                }
            }
        }
    }

    fn result(self) -> Option<Value> {
        match self {
            AggState::Count(n) => Some(Value::Int(n as i64)),
            AggState::Min(v) | AggState::Max(v) | AggState::Sum(v) => v,
            AggState::Avg { sum, n } => {
                if n == 0 {
                    None
                } else {
                    Some(Value::Float(sum / n as f64))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tap::VecSink;
    use p2_planner::compile_program;
    use p2_planner::expr::FixedCtx;
    use p2_store::TableSpec;
    use p2_types::TimeDelta;
    use std::collections::HashSet;

    /// Build runtimes + a catalog from a program source.
    fn setup(src: &str) -> (Vec<StrandRuntime>, Catalog) {
        let prog = p2_overlog::parse_program(src).unwrap();
        let compiled = compile_program(&prog, &HashSet::new()).unwrap();
        let mut cat = Catalog::new();
        for t in &compiled.tables {
            cat.register(TableSpec::new(
                &t.name,
                t.lifetime_secs.map(TimeDelta::from_secs_f64),
                t.max_rows,
                t.key_fields.clone(),
            ))
            .unwrap();
        }
        let strands = compiled
            .strands
            .into_iter()
            .map(|s| StrandRuntime::new(Arc::new(s)))
            .collect();
        (strands, cat)
    }

    fn drive(s: &mut StrandRuntime, trigger: &Tuple, cat: &mut Catalog) -> (Vec<Action>, VecSink) {
        let mut ctx = FixedCtx::default();
        let mut sink = VecSink::default();
        let mut actions = Vec::new();
        s.fire(trigger, cat, &mut ctx, &mut sink, Time::ZERO, &mut actions);
        s.run_to_quiescence(cat, &mut ctx, &mut sink, Time::ZERO, &mut actions);
        (actions, sink)
    }

    #[test]
    fn event_join_produces_output() {
        let (mut strands, mut cat) = setup(
            "materialize(pred, 100, 10, keys(1)).
             rp4 inconsistentPred@NAddr(PAddr) :- stabilizeRequest@NAddr(SomeID, SomeAddr), pred@NAddr(PID, PAddr), SomeAddr != PAddr.",
        );
        // pred(n1, 5, n9): n1's predecessor is n9.
        cat.insert(
            Tuple::new("pred", [Value::addr("n1"), Value::id(5), Value::addr("n9")]),
            Time::ZERO,
        )
        .unwrap();
        // Stabilize request from n7 (not the predecessor) → inconsistency.
        let trig = Tuple::new(
            "stabilizeRequest",
            [Value::addr("n1"), Value::id(7), Value::addr("n7")],
        );
        let (actions, sink) = drive(&mut strands[0], &trig, &mut cat);
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].tuple.name(), "inconsistentPred");
        assert_eq!(actions[0].tuple.get(1), Some(&Value::addr("n9")));
        // Taps: input, precondition, output, stage-complete.
        let kinds: Vec<_> = sink
            .0
            .iter()
            .map(|e| std::mem::discriminant(&e.kind))
            .collect();
        assert_eq!(kinds.len(), 4);

        // From the predecessor itself → no alarm.
        let ok = Tuple::new(
            "stabilizeRequest",
            [Value::addr("n1"), Value::id(5), Value::addr("n9")],
        );
        let (actions, _) = drive(&mut strands[0], &ok, &mut cat);
        assert!(actions.is_empty());
    }

    #[test]
    fn assignments_and_builtins() {
        let (mut strands, mut cat) =
            setup("cs1 conProbe@NAddr(ProbeID, K, T) :- periodic@NAddr(ProbeID, 40), K := f_randID(), T := f_now().");
        let trig = Tuple::new(
            "periodic",
            [Value::addr("n1"), Value::id(9), Value::Int(40)],
        );
        let (actions, _) = drive(&mut strands[0], &trig, &mut cat);
        assert_eq!(actions.len(), 1);
        let t = &actions[0].tuple;
        assert_eq!(t.name(), "conProbe");
        assert_eq!(t.get(1), Some(&Value::id(9)));
        assert!(matches!(t.get(2), Some(Value::Id(_))));
        assert!(matches!(t.get(3), Some(Value::Time(_))));
    }

    #[test]
    fn archive_scan_reads_expired_history() {
        // succ rows live 5s; the forensic rule ranges over [T0, T1]
        // long after every live row has expired.
        let (mut strands, mut cat) = setup(
            "materialize(succ, 5, 10, keys(1, 2)).
             f1 wasSucc@N(S) :- probe@N(T0, T1), past@N(\"succ\", T0, T1, N, S).",
        );
        cat.enable_archive(p2_store::ArchiveConfig::default());
        cat.enroll_archive("succ").unwrap();
        cat.insert(
            Tuple::new("succ", [Value::addr("n1"), Value::id(7)]),
            Time::from_secs(1),
        )
        .unwrap();
        let now = Time::from_secs(30);
        assert!(cat.scan("succ", now).is_empty(), "live row expired");

        let trig = Tuple::new("probe", [Value::addr("n1"), Value::Int(0), Value::Int(10)]);
        let mut ctx = FixedCtx::default();
        let mut sink = VecSink::default();
        let mut actions = Vec::new();
        strands[0].fire(&trig, &mut cat, &mut ctx, &mut sink, now, &mut actions);
        strands[0].run_to_quiescence(&mut cat, &mut ctx, &mut sink, now, &mut actions);
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].tuple.name(), "wasSucc");
        assert_eq!(actions[0].tuple.get(1), Some(&Value::id(7)));

        // An interval that predates the row finds nothing, and a scan
        // with archiving off (a fresh catalog) is empty, not an error.
        let early = Tuple::new("probe", [Value::addr("n1"), Value::Int(0), Value::Int(0)]);
        let mut actions = Vec::new();
        strands[0].fire(&early, &mut cat, &mut ctx, &mut sink, now, &mut actions);
        strands[0].run_to_quiescence(&mut cat, &mut ctx, &mut sink, now, &mut actions);
        assert!(actions.is_empty());
        assert_eq!(strands[0].stats().eval_errors, 0);
    }

    #[test]
    fn multi_join_cross_product() {
        let (mut strands, mut cat) = setup(
            "materialize(prec1, 100, 10, keys(1, 2, 3)).
             materialize(prec2, 100, 10, keys(1, 2, 3)).
             r2 head@Z(Y) :- event@N(X), prec1@N(X, Y), prec2@N(Y, Z).",
        );
        let n = Value::addr("n");
        cat.insert(
            Tuple::new("prec1", [n.clone(), Value::Int(1), Value::Int(10)]),
            Time::ZERO,
        )
        .unwrap();
        cat.insert(
            Tuple::new("prec1", [n.clone(), Value::Int(1), Value::Int(20)]),
            Time::ZERO,
        )
        .unwrap();
        cat.insert(
            Tuple::new("prec2", [n.clone(), Value::Int(10), Value::str("za")]),
            Time::ZERO,
        )
        .unwrap();
        cat.insert(
            Tuple::new("prec2", [n.clone(), Value::Int(20), Value::str("zb")]),
            Time::ZERO,
        )
        .unwrap();
        cat.insert(
            Tuple::new("prec2", [n.clone(), Value::Int(20), Value::str("zc")]),
            Time::ZERO,
        )
        .unwrap();
        let trig = Tuple::new("event", [n.clone(), Value::Int(1)]);
        let (actions, sink) = drive(&mut strands[0], &trig, &mut cat);
        // Y=10 → za; Y=20 → zb, zc.
        assert_eq!(actions.len(), 3);
        // Outputs carry Y; locations are the prec2 Z values coerced to addrs.
        let locs: Vec<_> = actions
            .iter()
            .map(|a| a.tuple.location().unwrap().to_string())
            .collect();
        assert!(locs.contains(&"za".to_string()));
        assert!(locs.contains(&"zc".to_string()));
        // Preconditions were tapped at both stages.
        let pre0 = sink
            .0
            .iter()
            .filter(|e| matches!(e.kind, TapKind::Precondition { stage: 0, .. }))
            .count();
        let pre1 = sink
            .0
            .iter()
            .filter(|e| matches!(e.kind, TapKind::Precondition { stage: 1, .. }))
            .count();
        assert_eq!(pre0, 2);
        assert_eq!(pre1, 3);
    }

    #[test]
    fn pipelined_interleaving_across_events() {
        // Two events enter a two-join strand; with downstream-first
        // stepping the second event's stage-0 work interleaves with the
        // first event's stage-1 work once stage 0 completes for event 1.
        let (mut strands, mut cat) = setup(
            "materialize(p1, 100, 10, keys(1, 2)).
             materialize(p2, 100, 10, keys(1, 2)).
             r head@N(Y, Z) :- ev@N(X), p1@N(X, Y), p2@N(Y, Z).",
        );
        let n = Value::addr("n");
        cat.insert(
            Tuple::new("p1", [n.clone(), Value::Int(1), Value::Int(5)]),
            Time::ZERO,
        )
        .unwrap();
        cat.insert(
            Tuple::new("p2", [n.clone(), Value::Int(5), Value::Int(7)]),
            Time::ZERO,
        )
        .unwrap();
        let mut ctx = FixedCtx::default();
        let mut sink = VecSink::default();
        let mut actions = Vec::new();
        let s = &mut strands[0];
        let e1 = Tuple::new("ev", [n.clone(), Value::Int(1)]);
        let e2 = Tuple::new("ev", [n.clone(), Value::Int(1)]);
        assert!(s.fire(&e1, &mut cat, &mut ctx, &mut sink, Time::ZERO, &mut actions));
        assert!(s.fire(&e2, &mut cat, &mut ctx, &mut sink, Time::ZERO, &mut actions));
        s.run_to_quiescence(&mut cat, &mut ctx, &mut sink, Time::ZERO, &mut actions);
        assert_eq!(actions.len(), 2);
        // Both events produced stage-complete signals for both stages.
        let completes = sink
            .0
            .iter()
            .filter(|e| matches!(e.kind, TapKind::StageComplete { .. }))
            .count();
        assert_eq!(completes, 4);
    }

    #[test]
    fn count_aggregate_over_event_trigger() {
        // sr8-like: count table rows matching the event; zero allowed.
        let (mut strands, mut cat) = setup(
            "materialize(snapState, 100, 100, keys(1, 2)).
             sr8 haveSnap@NAddr(SrcAddr, I, count<*>) :- snapState@NAddr(I, State), marker@NAddr(SrcAddr, I).",
        );
        let trig = Tuple::new(
            "marker",
            [Value::addr("n1"), Value::addr("n5"), Value::Int(3)],
        );
        // No snapState rows yet → count must be 0 (sr9 depends on this).
        let (actions, _) = drive(&mut strands[0], &trig, &mut cat);
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].tuple.get(3), Some(&Value::Int(0)));

        cat.insert(
            Tuple::new(
                "snapState",
                [Value::addr("n1"), Value::Int(3), Value::str("Snapping")],
            ),
            Time::ZERO,
        )
        .unwrap();
        let (actions, _) = drive(&mut strands[0], &trig, &mut cat);
        assert_eq!(actions[0].tuple.get(3), Some(&Value::Int(1)));
    }

    #[test]
    fn count_aggregate_recomputes_on_table_trigger() {
        // cs6-like: the count must be the table total for the group, not 1.
        let (mut strands, mut cat) = setup(
            "materialize(conRespTable, 100, 100, keys(1, 3)).
             cs6 respCluster@NAddr(ProbeID, SAddr, count<*>) :- conRespTable@NAddr(ProbeID, ReqID, SAddr).",
        );
        let n = Value::addr("n1");
        for req in 0..3 {
            cat.insert(
                Tuple::new(
                    "conRespTable",
                    [n.clone(), Value::Int(7), Value::Int(req), Value::addr("s1")],
                ),
                Time::ZERO,
            )
            .unwrap();
        }
        // Delta: the third insertion (replay it as the trigger).
        let delta = Tuple::new(
            "conRespTable",
            [n.clone(), Value::Int(7), Value::Int(2), Value::addr("s1")],
        );
        let (actions, _) = drive(&mut strands[0], &delta, &mut cat);
        assert_eq!(actions.len(), 1);
        let t = &actions[0].tuple;
        assert_eq!(t.name(), "respCluster");
        assert_eq!(t.get(1), Some(&Value::Int(7)));
        assert_eq!(t.get(3), Some(&Value::Int(3)), "count over whole group");
    }

    #[test]
    fn min_aggregate() {
        let (mut strands, mut cat) = setup(
            "materialize(finger, 100, 100, keys(1, 2)).
             l2 best@NAddr(K, min<D>) :- lookup@NAddr(K), finger@NAddr(FPos, FID), D := K - FID - 1.",
        );
        let n = Value::addr("n1");
        for (pos, fid) in [(0i64, 10u64), (1, 90), (2, 40)] {
            cat.insert(
                Tuple::new("finger", [n.clone(), Value::Int(pos), Value::id(fid)]),
                Time::ZERO,
            )
            .unwrap();
        }
        let trig = Tuple::new("lookup", [n.clone(), Value::id(100)]);
        let (actions, _) = drive(&mut strands[0], &trig, &mut cat);
        assert_eq!(actions.len(), 1);
        // min D = 100 - 90 - 1 = 9.
        assert_eq!(actions[0].tuple.get(2), Some(&Value::id(9)));
    }

    #[test]
    fn min_aggregate_empty_emits_nothing() {
        let (mut strands, mut cat) = setup(
            "materialize(finger, 100, 100, keys(1, 2)).
             l2 best@NAddr(K, min<D>) :- lookup@NAddr(K), finger@NAddr(FPos, FID), D := K - FID - 1.",
        );
        let trig = Tuple::new("lookup", [Value::addr("n1"), Value::id(100)]);
        let (actions, _) = drive(&mut strands[0], &trig, &mut cat);
        assert!(actions.is_empty());
    }

    #[test]
    fn sum_and_avg_extensions() {
        let (mut strands, mut cat) = setup(
            "materialize(score, 100, 100, keys(1, 2)).
             s total@N(sum<V>) :- tally@N(), score@N(K, V).
             a mean@N(avg<V>) :- tally@N(), score@N(K, V).",
        );
        let n = Value::addr("n1");
        for (k, v) in [(1i64, 10i64), (2, 20), (3, 3)] {
            cat.insert(
                Tuple::new("score", [n.clone(), Value::Int(k), Value::Int(v)]),
                Time::ZERO,
            )
            .unwrap();
        }
        let trig = Tuple::new("tally", [n.clone()]);
        let (actions, _) = drive(&mut strands[0], &trig, &mut cat);
        assert_eq!(actions[0].tuple.get(1), Some(&Value::Int(33)));
        let (actions, _) = drive(&mut strands[1], &trig, &mut cat);
        assert_eq!(actions[0].tuple.get(1), Some(&Value::Float(11.0)));
    }

    #[test]
    fn delete_action_flag() {
        let (mut strands, mut cat) = setup(
            "materialize(t, 100, 100, keys(1, 2)).
             d delete t@N(P, T2) :- c@N(P), t@N(P, T2).",
        );
        cat.insert(
            Tuple::new("t", [Value::addr("n1"), Value::Int(1), Value::Int(99)]),
            Time::ZERO,
        )
        .unwrap();
        let trig = Tuple::new("c", [Value::addr("n1"), Value::Int(1)]);
        let (actions, _) = drive(&mut strands[0], &trig, &mut cat);
        assert_eq!(actions.len(), 1);
        assert!(actions[0].delete);
        assert_eq!(actions[0].tuple.name(), "t");
    }

    #[test]
    fn eval_errors_counted_not_fatal() {
        let (mut strands, mut cat) = setup("r out@N(X) :- ev@N(X), X / 0 == 1.");
        let trig = Tuple::new("ev", [Value::addr("n1"), Value::Int(4)]);
        let (actions, _) = drive(&mut strands[0], &trig, &mut cat);
        assert!(actions.is_empty());
        assert_eq!(strands[0].stats().eval_errors, 1);
        assert_eq!(strands[0].stats().fired, 1);
    }

    #[test]
    fn interval_select_in_strand() {
        let (mut strands, mut cat) = setup(
            "materialize(node, 100, 1, keys(1)).
             materialize(bestSucc, 100, 1, keys(1)).
             l1 res@ReqAddr(K, SID) :- lookup@NAddr(K, ReqAddr), node@NAddr(NID), bestSucc@NAddr(SID), K in (NID, SID].",
        );
        let n = Value::addr("n1");
        cat.insert(Tuple::new("node", [n.clone(), Value::id(10)]), Time::ZERO)
            .unwrap();
        cat.insert(
            Tuple::new("bestSucc", [n.clone(), Value::id(20)]),
            Time::ZERO,
        )
        .unwrap();
        let hit = Tuple::new("lookup", [n.clone(), Value::id(15), Value::addr("req")]);
        let (actions, _) = drive(&mut strands[0], &hit, &mut cat);
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].tuple.location().unwrap().as_str(), "req");
        let miss = Tuple::new("lookup", [n.clone(), Value::id(25), Value::addr("req")]);
        let (actions, _) = drive(&mut strands[0], &miss, &mut cat);
        assert!(actions.is_empty());
    }

    #[test]
    fn expression_args_in_body_predicates() {
        // `t@N(X + 1)` compiles to an EqExpr field match: the probe keeps
        // only rows whose field equals the evaluated expression.
        let (mut strands, mut cat) = setup(
            "materialize(t, 100, 10, keys(1, 2)).
             r out@N(X) :- ev@N(X), t@N(X + 1).",
        );
        cat.insert(
            Tuple::new("t", [Value::addr("n"), Value::Int(6)]),
            Time::ZERO,
        )
        .unwrap();
        cat.insert(
            Tuple::new("t", [Value::addr("n"), Value::Int(7)]),
            Time::ZERO,
        )
        .unwrap();
        let hit = Tuple::new("ev", [Value::addr("n"), Value::Int(5)]);
        let (actions, _) = drive(&mut strands[0], &hit, &mut cat);
        assert_eq!(actions.len(), 1, "only t(6) == 5+1 matches");
        let miss = Tuple::new("ev", [Value::addr("n"), Value::Int(9)]);
        let (actions, _) = drive(&mut strands[0], &miss, &mut cat);
        assert!(actions.is_empty());
    }

    #[test]
    fn repeated_variable_in_trigger() {
        // ev@N(X, X): both fields must be equal for the strand to fire.
        let (mut strands, mut cat) = setup("r out@N(X) :- ev@N(X, X).");
        let eq = Tuple::new("ev", [Value::addr("n"), Value::Int(3), Value::Int(3)]);
        let (actions, _) = drive(&mut strands[0], &eq, &mut cat);
        assert_eq!(actions.len(), 1);
        let ne = Tuple::new("ev", [Value::addr("n"), Value::Int(3), Value::Int(4)]);
        let (actions, _) = drive(&mut strands[0], &ne, &mut cat);
        assert!(actions.is_empty());
    }

    #[test]
    fn probe_cache_hits_on_repeated_keys_and_invalidates_on_mutation() {
        let (mut strands, mut cat) = setup(
            "materialize(pred, 100, 10, keys(1)).
             r out@N(P) :- ev@N(X), pred@N(X, P).",
        );
        let n = Value::addr("n1");
        cat.insert(
            Tuple::new("pred", [n.clone(), Value::Int(1), Value::Int(10)]),
            Time::ZERO,
        )
        .unwrap();
        let trig = Tuple::new("ev", [n.clone(), Value::Int(1)]);
        let s = &mut strands[0];
        let (a1, _) = drive(s, &trig, &mut cat);
        assert_eq!(a1.len(), 1);
        assert_eq!(s.stats().probe_cache_hits, 0, "first probe fills the cache");
        // Same key, unchanged table: the probe is answered from cache with
        // identical output.
        let (a2, _) = drive(s, &trig, &mut cat);
        assert_eq!(a2, a1);
        assert_eq!(s.stats().probe_cache_hits, 1);
        // Any table mutation invalidates: results must reflect the new row.
        cat.insert(
            Tuple::new("pred", [n.clone(), Value::Int(1), Value::Int(20)]),
            Time::ZERO,
        )
        .unwrap();
        let (a3, _) = drive(s, &trig, &mut cat);
        assert_eq!(
            s.stats().probe_cache_hits,
            1,
            "version bump forces a real probe"
        );
        assert_eq!(a3.len(), 1);
        assert_eq!(a3[0].tuple.get(1), Some(&Value::Int(20)));
    }

    #[test]
    fn step_batch_emits_the_same_taps_as_single_steps() {
        // keys are 1-based including the location field: (2, 3) = (X, Y).
        let src = "materialize(p1, 100, 10, keys(2, 3)).
             r head@N(Y) :- ev@N(X), p1@N(X, Y).";
        let run = |batched: bool| {
            let (mut strands, mut cat) = setup(src);
            let n = Value::addr("n");
            for y in 0..5 {
                cat.insert(
                    Tuple::new("p1", [n.clone(), Value::Int(1), Value::Int(y)]),
                    Time::ZERO,
                )
                .unwrap();
            }
            let mut ctx = FixedCtx::default();
            let mut sink = VecSink::default();
            let mut actions = Vec::new();
            let s = &mut strands[0];
            for _ in 0..3 {
                let e = Tuple::new("ev", [n.clone(), Value::Int(1)]);
                s.fire(&e, &mut cat, &mut ctx, &mut sink, Time::ZERO, &mut actions);
            }
            if batched {
                while s.step_batch(4, &mut cat, &mut ctx, &mut sink, Time::ZERO, &mut actions) > 0 {
                }
            } else {
                s.run_to_quiescence(&mut cat, &mut ctx, &mut sink, Time::ZERO, &mut actions);
            }
            let taps: Vec<String> = sink.0.iter().map(|e| format!("{:?}", e.kind)).collect();
            (actions, taps)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn abandon_work_drops_everything_and_counts_it() {
        // keys (2, 3) = (X, Y), so all ten rows below are distinct.
        let (mut strands, mut cat) = setup(
            "materialize(p1, 100, 100, keys(2, 3)).
             r head@N(Y) :- ev@N(X), p1@N(X, Y).",
        );
        let n = Value::addr("n");
        for y in 0..10 {
            cat.insert(
                Tuple::new("p1", [n.clone(), Value::Int(1), Value::Int(y)]),
                Time::ZERO,
            )
            .unwrap();
        }
        let mut ctx = FixedCtx::default();
        let mut sink = VecSink::default();
        let mut actions = Vec::new();
        let s = &mut strands[0];
        for _ in 0..3 {
            let e = Tuple::new("ev", [n.clone(), Value::Int(1)]);
            s.fire(&e, &mut cat, &mut ctx, &mut sink, Time::ZERO, &mut actions);
        }
        // Activate the first input and emit a couple of matches, leaving
        // an in-progress join plus two queued inputs.
        for _ in 0..3 {
            s.step(&mut cat, &mut ctx, &mut sink, Time::ZERO, &mut actions);
        }
        assert!(s.has_work());
        let dropped = s.abandon_work();
        // 2 queued inputs + 1 active join + 8 un-emitted matches.
        assert_eq!(dropped, 11);
        assert!(!s.has_work());
        // The strand still accepts new work afterwards.
        let e = Tuple::new("ev", [n.clone(), Value::Int(1)]);
        let before = actions.len();
        s.fire(&e, &mut cat, &mut ctx, &mut sink, Time::ZERO, &mut actions);
        s.run_to_quiescence(&mut cat, &mut ctx, &mut sink, Time::ZERO, &mut actions);
        assert_eq!(actions.len() - before, 10);
    }

    /// Build one family runtime from a program whose planner found a
    /// shared-prefix group covering all strands.
    fn setup_family(src: &str) -> (StrandRuntime, Catalog) {
        let prog = p2_overlog::parse_program(src).unwrap();
        let compiled = compile_program(&prog, &HashSet::new()).unwrap();
        let mut cat = Catalog::new();
        for t in &compiled.tables {
            cat.register(TableSpec::new(
                &t.name,
                t.lifetime_secs.map(TimeDelta::from_secs_f64),
                t.max_rows,
                t.key_fields.clone(),
            ))
            .unwrap();
        }
        assert_eq!(compiled.prefix_groups.len(), 1, "test wants one family");
        let group = compiled.prefix_groups[0].clone();
        let plans: Vec<Arc<Strand>> = compiled.strands.into_iter().map(Arc::new).collect();
        let members: Vec<Arc<Strand>> = group.members.iter().map(|&i| plans[i].clone()).collect();
        (StrandRuntime::family(members, group.shared_ops), cat)
    }

    #[test]
    fn family_shares_prefix_and_fans_out_tails() {
        let (mut fam, mut cat) = setup_family(
            "materialize(t, 100, 10, keys(1, 2, 3)).
             r1 a@N(X, Y) :- ev@N(X), t@N(X, Y).
             r2 b@N(X, Z) :- ev@N(X), t@N(X, Y), Z := Y + 1.",
        );
        assert_eq!(fam.branch_count(), 2);
        let n = Value::addr("n");
        for y in [10i64, 20] {
            cat.insert(
                Tuple::new("t", [n.clone(), Value::Int(1), Value::Int(y)]),
                Time::ZERO,
            )
            .unwrap();
        }
        let trig = Tuple::new("ev", [n.clone(), Value::Int(1)]);
        let (actions, sink) = drive(&mut fam, &trig, &mut cat);
        // Two matches × two members = four outputs.
        assert_eq!(actions.len(), 4);
        let a_outs: Vec<i64> = actions
            .iter()
            .filter(|a| a.tuple.name() == "a")
            .map(|a| match a.tuple.get(2) {
                Some(Value::Int(v)) => *v,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        let b_outs: Vec<i64> = actions
            .iter()
            .filter(|a| a.tuple.name() == "b")
            .map(|a| match a.tuple.get(2) {
                Some(Value::Int(v)) => *v,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(a_outs, vec![10, 20]);
        assert_eq!(b_outs, vec![11, 21], "r2's private tail ran per member");
        // Observability is per member: each tap kind appears once per
        // branch, under the branch's own strand id.
        let inputs_r1 = sink
            .0
            .iter()
            .filter(|e| matches!(e.kind, TapKind::Input { .. }) && e.strand_id.as_ref() == "r1")
            .count();
        let inputs_r2 = sink
            .0
            .iter()
            .filter(|e| matches!(e.kind, TapKind::Input { .. }) && e.strand_id.as_ref() == "r2")
            .count();
        assert_eq!((inputs_r1, inputs_r2), (1, 1));
        let pre_r2 = sink
            .0
            .iter()
            .filter(|e| {
                matches!(e.kind, TapKind::Precondition { .. }) && e.strand_id.as_ref() == "r2"
            })
            .count();
        assert_eq!(pre_r2, 2, "both join matches tapped for the second member");
        // Per-branch stats: both fired once; outputs counted separately.
        let per_branch: Vec<(String, StrandStats)> = fam
            .branches()
            .map(|(p, s)| (p.strand_id.clone(), s))
            .collect();
        assert_eq!(per_branch[0].1.fired, 1);
        assert_eq!(per_branch[1].1.fired, 1);
        assert_eq!(per_branch[0].1.outputs, 2);
        assert_eq!(per_branch[1].1.outputs, 2);
    }

    #[test]
    fn family_output_multiset_matches_unshared_execution() {
        let src = "materialize(t, 100, 10, keys(1, 2, 3)).
             r1 a@N(X, Y) :- ev@N(X), t@N(X, Y), Y > 10.
             r2 b@N(X, Y) :- ev@N(X), t@N(X, Y), Y < 15.";
        let fill = |cat: &mut Catalog| {
            let n = Value::addr("n");
            for y in [5i64, 12, 30] {
                cat.insert(
                    Tuple::new("t", [n.clone(), Value::Int(1), Value::Int(y)]),
                    Time::ZERO,
                )
                .unwrap();
            }
        };
        // Shared execution.
        let (mut fam, mut cat) = setup_family(src);
        fill(&mut cat);
        let trig = Tuple::new("ev", [Value::addr("n"), Value::Int(1)]);
        let (mut shared, _) = drive(&mut fam, &trig, &mut cat);
        // Unshared execution: one runtime per strand.
        let (mut singles, mut cat2) = setup(src);
        fill(&mut cat2);
        let mut unshared = Vec::new();
        for s in &mut singles {
            let (a, _) = drive(s, &trig, &mut cat2);
            unshared.extend(a);
        }
        let key = |a: &Action| format!("{}|{}", a.tuple, a.delete);
        shared.sort_by_key(key);
        unshared.sort_by_key(key);
        assert_eq!(shared, unshared);
    }

    #[test]
    fn trigger_mismatch_does_not_fire() {
        let (mut strands, mut cat) = setup("r out@N() :- ev@N(X, 7).");
        let wrong = Tuple::new("ev", [Value::addr("n1"), Value::Int(1), Value::Int(8)]);
        let (actions, sink) = drive(&mut strands[0], &wrong, &mut cat);
        assert!(actions.is_empty());
        assert!(sink.0.is_empty(), "no Input tap for non-matching trigger");
        assert_eq!(strands[0].stats().fired, 0);
    }
}
