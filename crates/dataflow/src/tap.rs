//! Dataflow taps.
//!
//! §2.1.1 of the paper: *"All dataflow element classes in P2 are
//! 'tappable': any element can be made to copy the tuples it sends along
//! a particular dataflow arc to an additional element."* The tap points
//! the planner inserts are exactly the three the paper names (strand
//! input, precondition fetch, strand output), plus the stage-completion
//! signal that §2.1.2's pipelined record matching requires.

use p2_types::{Time, Tuple};
use std::sync::Arc;

/// What a tap observed.
#[derive(Debug, Clone, PartialEq)]
pub enum TapKind {
    /// A trigger tuple entered the strand (rule execution begins).
    Input {
        /// The trigger tuple.
        tuple: Tuple,
    },
    /// A join at stage `stage` fetched a matching precondition tuple.
    Precondition {
        /// 0-based stage index within the strand.
        stage: usize,
        /// The matched table tuple.
        tuple: Tuple,
    },
    /// The strand produced an output tuple (rule execution completed).
    Output {
        /// The produced tuple.
        tuple: Tuple,
    },
    /// The stateful element at stage `stage` finished its current input
    /// and is seeking a new one (§2.1.2's completion signal).
    StageComplete {
        /// 0-based stage index.
        stage: usize,
    },
}

/// A tap observation, stamped with the strand it came from and the time.
#[derive(Debug, Clone, PartialEq)]
pub struct TapEvent {
    /// Unique strand ID.
    pub strand_id: Arc<str>,
    /// The rule label (what `ruleExec` records).
    pub rule_label: Arc<str>,
    /// Total number of join stages in the strand (sizes tracer records).
    pub stage_count: usize,
    /// Observation.
    pub kind: TapKind,
    /// Observation time.
    pub at: Time,
}

/// Consumer of tap events — implemented by the execution tracer.
pub trait TapSink {
    /// Receive one observation.
    fn tap(&mut self, event: TapEvent);

    /// Whether this sink observes anything at all. Producers may skip
    /// constructing [`TapEvent`]s entirely when `false` — the dominant
    /// case on untraced nodes, where tap assembly (per-branch `Arc`
    /// bumps and tuple clones) would be pure overhead.
    fn enabled(&self) -> bool {
        true
    }
}

/// A sink that drops everything (tracing disabled — the baseline
/// configuration of the §4 logging-cost experiment).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TapSink for NullSink {
    fn tap(&mut self, _event: TapEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A sink that records everything (tests).
#[derive(Debug, Default)]
pub struct VecSink(pub Vec<TapEvent>);

impl TapSink for VecSink {
    fn tap(&mut self, event: TapEvent) {
        self.0.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_types::Value;

    #[test]
    fn vec_sink_collects() {
        let mut s = VecSink::default();
        let t = Tuple::new("e", [Value::addr("a")]);
        s.tap(TapEvent {
            strand_id: Arc::from("r1"),
            rule_label: Arc::from("r1"),
            stage_count: 0,
            kind: TapKind::Input { tuple: t.clone() },
            at: Time::ZERO,
        });
        assert_eq!(s.0.len(), 1);
        assert_eq!(s.0[0].kind, TapKind::Input { tuple: t });
    }

    #[test]
    fn null_sink_is_silent() {
        let mut s = NullSink;
        s.tap(TapEvent {
            strand_id: Arc::from("r1"),
            rule_label: Arc::from("r1"),
            stage_count: 0,
            kind: TapKind::StageComplete { stage: 0 },
            at: Time::ZERO,
        });
    }
}
