//! End-to-end check of the planner → catalog index-registration contract.
//!
//! Installing a program must leave the catalog with a secondary index on
//! **every** `(table, field)` a join probe of any compiled strand wants —
//! so the dataflow hot path never takes the linear-scan fallback for
//! statically known probes. The programs exercised here are the real
//! workload: Chord plus the full §3 monitoring suite, installed in the
//! paper's piecemeal order (application first, monitors after).

use p2_core::{Node, NodeConfig};
use p2_monitor::{consistency, ordering, oscillation, profiling, ring, snapshot, watchpoints};
use p2_planner::compile_program;
use p2_planner::plan::Op;
use p2_types::{Addr, Time};
use std::collections::HashSet;

/// The install sequence: Chord, then every §3 monitoring program.
fn programs() -> Vec<(&'static str, String)> {
    vec![
        (
            "chord",
            p2_chord::chord_program(&p2_chord::ChordConfig::default()),
        ),
        ("ring-passive", ring::passive_check_program()),
        ("ring-active", ring::active_probe_program(5)),
        (
            "consistency",
            consistency::probe_program(&consistency::ProbeConfig::default()),
        ),
        ("ordering-opportunistic", ordering::opportunistic_program()),
        ("ordering-traversal", ordering::traversal_program()),
        ("oscillation", oscillation::full_program()),
        ("snapshot-backpointer", snapshot::backpointer_program()),
        ("snapshot", snapshot::snapshot_program()),
        ("watchpoints", watchpoints::suite_program(10)),
        ("profiling", profiling::profiling_program()),
    ]
}

fn tracing_node() -> Node {
    // Tracing on (with the event log) so the trace tables the profiling
    // and watchpoint queries join against are materialized.
    let mut cfg = NodeConfig {
        tracing: true,
        stagger_timers: false,
        ..Default::default()
    };
    cfg.trace.log_events = true;
    Node::new(Addr::new("n0"), cfg)
}

#[test]
fn install_indexes_every_join_probe_field() {
    let mut node = tracing_node();
    // (program, table, field) triples the planner should have registered.
    let mut expected: Vec<(&'static str, String, usize)> = Vec::new();

    for (label, src) in programs() {
        // Re-derive the compiled form against the catalog as it stands
        // right now — predicate classification depends on install order,
        // exactly as Node::install sees it.
        let parsed = p2_overlog::compile(&src).unwrap_or_else(|e| panic!("{label}: {e}"));
        let known: HashSet<String> = node
            .catalog_mut()
            .table_stats()
            .into_iter()
            .map(|(name, _, _)| name)
            .collect();
        let compiled = compile_program(&parsed, &known).unwrap_or_else(|e| panic!("{label}: {e}"));

        // Walk the strands directly (not index_requests) so this test
        // fails if the planner's request list ever drops a join.
        for strand in &compiled.strands {
            for op in &strand.ops {
                if let Op::Join { table, match_spec } = op {
                    if let Some(field) = match_spec.probe_field() {
                        expected.push((label, table.clone(), field));
                    }
                }
            }
        }

        node.install(&src, Time::ZERO)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }

    assert!(
        expected.iter().any(|(p, ..)| *p == "chord"),
        "Chord must contribute join probes"
    );
    assert!(
        expected.iter().any(|(p, ..)| *p != "chord"),
        "the monitoring suite must contribute join probes"
    );

    for (program, table, field) in &expected {
        let fields = node.catalog_mut().indexed_fields(table);
        assert!(
            fields.contains(field),
            "{program}: join probe on {table}[{field}] has no index (indexed: {fields:?})"
        );
    }
}

#[test]
fn index_requests_match_strand_joins() {
    // The planner's deduplicated request list is exactly the set of
    // probe fields its own strands use — no misses, no extras.
    let mut node = tracing_node();
    for (label, src) in programs() {
        let parsed = p2_overlog::compile(&src).unwrap();
        let known: HashSet<String> = node
            .catalog_mut()
            .table_stats()
            .into_iter()
            .map(|(name, _, _)| name)
            .collect();
        let compiled = compile_program(&parsed, &known).unwrap();

        let mut from_strands: Vec<(String, usize)> = compiled
            .strands
            .iter()
            .flat_map(|s| s.ops.iter())
            .filter_map(|op| match op {
                Op::Join { table, match_spec } => {
                    match_spec.probe_field().map(|f| (table.clone(), f))
                }
                _ => None,
            })
            .collect();
        from_strands.sort();
        from_strands.dedup();
        assert_eq!(compiled.index_requests, from_strands, "{label}");

        node.install(&src, Time::ZERO).unwrap();
    }
}
