//! Criterion wall-clock comparison of the two population engines.
//!
//! Small populations so one iteration stays in the tens of
//! milliseconds: the full 21/256/1024-node sweep lives in
//! `figures -- scale` (ScaleParams::full), which writes
//! `BENCH_scale.json`; this bench keeps the engine comparison under the
//! tier-1 `--test` smoke gate so a regression in either engine's hot
//! loop is caught by CI.

use criterion::{criterion_group, criterion_main, Criterion};
use p2_bench::ScaleParams;
use p2_core::{NodeConfig, ParallelHarness, Population, SimHarness};
use p2_net::SimConfig;
use p2_types::TimeDelta;
use std::hint::black_box;

const NODES: usize = 24;
const SEED: u64 = 7_777;

/// Build a Chord ring and run it for a minute of virtual time.
fn chord_minute<H: Population>(mut sim: H) -> u64 {
    let ring = p2_chord::build_ring(&mut sim, NODES, &p2_chord::ChordConfig::default());
    sim.run_for(TimeDelta::from_secs(60));
    black_box(ring.addrs.len());
    sim.net_stats().total_sent()
}

fn bench_population_engines(c: &mut Criterion) {
    c.bench_function("population_sequential_24n", |b| {
        b.iter(|| chord_minute(SimHarness::with_seed(SEED)))
    });
    for shards in [1usize, 4] {
        c.bench_function(&format!("population_sharded_24n_{shards}s"), |b| {
            b.iter(|| {
                chord_minute(ParallelHarness::new(
                    SimConfig::default(),
                    NodeConfig::default(),
                    SEED,
                    shards,
                ))
            })
        });
    }
    // The quick scale sweep end to end (what tier1 exports as
    // BENCH_scale.json), so the exporter path itself stays exercised.
    c.bench_function("population_scale_quick_sweep", |b| {
        b.iter(|| {
            let params = ScaleParams {
                nodes: vec![12],
                shards: vec![2],
                seed: SEED,
                warm_secs: 5,
                window_secs: 10,
            };
            p2_bench::population_scale(black_box(&params))
        })
    });
}

criterion_group!(benches, bench_population_engines);
criterion_main!(benches);
