//! File-backend recovery throughput (DESIGN.md §2.14).
//!
//! A crashed node's boot cost is dominated by replaying its durable
//! segment logs: scanning `[len][checksum][frame]` records, verifying
//! each checksum, and decoding every frame back into a sealed segment.
//! The numbers that matter are bytes-per-second through
//! [`FileDurable::recover`]:
//!
//! * `durable_recover/file_clean`: a cleanly-shut-down log — the pure
//!   scan + verify + decode path, no rewrite;
//! * `durable_recover/file_torn`: the same log with a torn tail (the
//!   crash landed mid-append) — recovery truncates the partial record
//!   and rewrites the log clean, so this pays the write-back too;
//! * `durable_recover/mem`: the in-memory backend the simulator uses,
//!   as the no-I/O baseline.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use p2_store::{DurableStore, FileDurable, MemDurable, Segment, SpilledRow};
use p2_types::{Time, Tuple, Value};

const SEGMENTS: usize = 256;
const ROWS_PER_SEG: usize = 48;

fn seg(epoch: usize) -> Segment {
    let rows: Vec<SpilledRow> = (0..ROWS_PER_SEG)
        .map(|j| {
            let at = Time::from_secs((epoch * 30 + j) as u64);
            SpilledRow {
                tuple: Tuple::new(
                    "bestSucc",
                    [Value::addr("n1"), Value::Int(j as i64), Value::str("v")],
                ),
                inserted_at: at,
                dropped_at: Time::from_secs((epoch * 30 + j + 30) as u64),
            }
        })
        .collect();
    Segment::build("bestSucc", epoch as u64, epoch as u64, &rows)
}

/// A freshly-written log of [`SEGMENTS`] sealed segments on disk.
/// Returns the directory and the total log size in bytes.
fn seeded_dir(tag: &str) -> (std::path::PathBuf, u64) {
    let dir = std::env::temp_dir().join(format!("p2-bench-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = FileDurable::new(&dir, false);
    for i in 0..SEGMENTS {
        store.append("bestSucc", seg(i).as_bytes());
    }
    store.barrier();
    (dir, store.log_len("bestSucc") as u64)
}

fn bench_durable_recover(c: &mut Criterion) {
    let (clean_dir, bytes) = seeded_dir("clean");
    // Printed once so the wall-clock numbers convert to MB/s.
    eprintln!("durable_recover: log is {bytes} bytes ({SEGMENTS} segments x {ROWS_PER_SEG} rows)");

    c.bench_function("durable_recover_file_clean", |b| {
        b.iter(|| {
            let mut store = FileDurable::new(&clean_dir, false);
            let rec = store.recover();
            black_box(rec.relations.iter().map(|(_, s)| s.len()).sum::<usize>())
        })
    });

    // Torn tail: each iteration recovers a fresh copy of the log with
    // its final record cut short, so the rewrite-clean path runs every
    // time (a second recovery of the same dir would be the clean path).
    let (torn_src, _) = seeded_dir("torn-src");
    let torn_dir =
        std::env::temp_dir().join(format!("p2-bench-durable-torn-{}", std::process::id()));
    c.bench_function("durable_recover_file_torn", |b| {
        b.iter_batched(
            || {
                let _ = std::fs::remove_dir_all(&torn_dir);
                std::fs::create_dir_all(&torn_dir).expect("scratch dir");
                for entry in std::fs::read_dir(&torn_src).expect("seed dir") {
                    let entry = entry.expect("seed entry");
                    std::fs::copy(entry.path(), torn_dir.join(entry.file_name()))
                        .expect("copy seed log");
                }
                let log = torn_dir.join("rel-0.seglog");
                let len = std::fs::metadata(&log).expect("log metadata").len();
                let file = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&log)
                    .expect("open log");
                file.set_len(len - 7).expect("tear the tail");
            },
            |()| {
                let mut store = FileDurable::new(&torn_dir, false);
                let rec = store.recover();
                black_box((rec.truncated_tail_bytes, rec.quarantined))
            },
            BatchSize::PerIteration,
        )
    });

    // In-memory baseline: same frames, no filesystem.
    let mut mem = MemDurable::new();
    for i in 0..SEGMENTS {
        mem.append("bestSucc", seg(i).as_bytes());
    }
    mem.barrier();
    c.bench_function("durable_recover_mem", |b| {
        b.iter(|| {
            let rec = mem.recover();
            black_box(rec.relations.iter().map(|(_, s)| s.len()).sum::<usize>())
        })
    });

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&torn_src);
    let _ = std::fs::remove_dir_all(&torn_dir);
}

criterion_group!(benches, bench_durable_recover);
criterion_main!(benches);
