//! Strand evaluation: unoptimized (`PlanOpts::off()`) vs optimized
//! (Full) plans for the same program, driven through identical stores.
//!
//! Three fixtures isolate the optimizer's three runtime wins:
//!
//! * `reorder` — the source order joins a large table with nothing but
//!   the location bound (a near-full scan per firing); the optimizer
//!   reorders a selective indexed join in front of it.
//! * `pushdown` — a selective filter written at the end of the rule
//!   body; the optimizer evaluates it before the join, killing most
//!   triggers in one comparison.
//! * `shared_prefix` — four rules with the same trigger and join
//!   prefix; the optimizer runs the prefix once per trigger and fans
//!   out per-rule tails.
//!
//! Measured ratios are recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use p2_dataflow::{NullSink, StrandRuntime};
use p2_planner::expr::FixedCtx;
use p2_planner::{compile_program_with, PlanOpts, Strand};
use p2_store::{Catalog, TableSpec};
use p2_types::{Time, TimeDelta, Tuple, Value};
use std::collections::HashSet;
use std::hint::black_box;
use std::sync::Arc;

/// Compile `src` at the given level and instantiate runtimes the way
/// the installer does (shared-prefix families under one runtime).
fn build(src: &str, opts: &PlanOpts) -> (Vec<StrandRuntime>, Catalog) {
    let prog = p2_overlog::parse_program(src).unwrap();
    let compiled = compile_program_with(&prog, &HashSet::new(), opts).unwrap();
    let mut cat = Catalog::new();
    for t in &compiled.tables {
        cat.register(TableSpec::new(
            &t.name,
            t.lifetime_secs.map(TimeDelta::from_secs_f64),
            t.max_rows,
            t.key_fields.clone(),
        ))
        .unwrap();
    }
    for (table, field) in &compiled.index_requests {
        let _ = cat.ensure_index(table, *field);
    }
    let plans: Vec<Arc<Strand>> = compiled.strands.into_iter().map(Arc::new).collect();
    let mut group_of: Vec<Option<usize>> = vec![None; plans.len()];
    for (g, pg) in compiled.prefix_groups.iter().enumerate() {
        for &m in &pg.members {
            group_of[m] = Some(g);
        }
    }
    let mut runtimes = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        match group_of[i] {
            Some(g) => {
                let pg = &compiled.prefix_groups[g];
                if pg.members[0] != i {
                    continue;
                }
                let members: Vec<_> = pg.members.iter().map(|&m| plans[m].clone()).collect();
                runtimes.push(StrandRuntime::family(members, pg.shared_ops));
            }
            None => runtimes.push(StrandRuntime::new(plan.clone())),
        }
    }
    (runtimes, cat)
}

fn drive(runtimes: &mut [StrandRuntime], cat: &mut Catalog, trig: &Tuple) -> usize {
    let mut ctx = FixedCtx::default();
    let mut sink = NullSink;
    let mut actions = Vec::new();
    for rt in runtimes.iter_mut() {
        rt.fire(trig, cat, &mut ctx, &mut sink, Time::ZERO, &mut actions);
        rt.run_to_quiescence(cat, &mut ctx, &mut sink, Time::ZERO, &mut actions);
    }
    actions.len()
}

/// Source order scans `big` (location-only probe) before the selective
/// `small` join; the optimizer reorders `small` first.
const REORDER: &str = "materialize(big, 1000, 100000, keys(1, 2)).
     materialize(small, 1000, 1000, keys(1, 2)).
     r1 out@N(X, Z) :- ev@N(X), big@N(Y, Z), small@N(X, Y).";

/// The `K == 3` filter is written last; the optimizer pushes it ahead
/// of the join, so non-matching triggers die in one comparison.
const PUSHDOWN: &str = "materialize(big, 1000, 100000, keys(1, 2)).
     r1 out@N(X, Z) :- ev@N(X, K), big@N(X, Z), Z > -1, K == 3.";

/// Four rules share trigger + join prefix; Full runs the prefix once.
const SHARED: &str = "materialize(big, 1000, 100000, keys(1, 2)).
     r1 outa@N(X, Z) :- ev@N(X, K), big@N(X, Z), K > 0.
     r2 outb@N(X, Z) :- ev@N(X, K), big@N(X, Z), K > 1.
     r3 outc@N(X, Z) :- ev@N(X, K), big@N(X, Z), K > 2.
     r4 outd@N(X, Z) :- ev@N(X, K), big@N(X, Z), K > 3.";

fn fill(cat: &mut Catalog, big_rows: usize, small_rows: usize) {
    let n = Value::addr("n1");
    for i in 0..big_rows {
        cat.insert(
            Tuple::new(
                "big",
                [n.clone(), Value::Int(i as i64), Value::Int(i as i64 * 7)],
            ),
            Time::ZERO,
        )
        .unwrap();
    }
    for i in 0..small_rows {
        let _ = cat.insert(
            Tuple::new(
                "small",
                [n.clone(), Value::Int(i as i64), Value::Int(i as i64)],
            ),
            Time::ZERO,
        );
    }
}

fn bench_levels(c: &mut Criterion, tag: &str, src: &str, small_rows: usize, trig: &Tuple) {
    for (level, opts) in [("off", PlanOpts::off()), ("full", PlanOpts::default())] {
        c.bench_function(&format!("strand_eval_{tag}_{level}"), |b| {
            let (mut runtimes, mut cat) = build(src, &opts);
            fill(&mut cat, 4096, small_rows);
            b.iter(|| black_box(drive(&mut runtimes, &mut cat, trig)))
        });
    }
}

fn bench_strand_eval(c: &mut Criterion) {
    let n = Value::addr("n1");
    bench_levels(
        c,
        "reorder",
        REORDER,
        64,
        &Tuple::new("ev", [n.clone(), Value::Int(3)]),
    );
    bench_levels(
        c,
        "pushdown",
        PUSHDOWN,
        0,
        &Tuple::new("ev", [n.clone(), Value::Int(2), Value::Int(9)]),
    );
    bench_levels(
        c,
        "shared_prefix",
        SHARED,
        0,
        &Tuple::new("ev", [n.clone(), Value::Int(2), Value::Int(2)]),
    );
}

criterion_group!(benches, bench_strand_eval);
criterion_main!(benches);
