//! Dispatch throughput through the batched pump.
//!
//! Three workloads, all runs of materialized tuples with **no
//! subscribing strand** unless stated (trace rows, event-log appends,
//! reflection refreshes all look like this). `max_delta_batch = 1`
//! degenerates the engine to the per-tuple schedule — one store call,
//! one budget charge, one queue pop per tuple — and is the before/after
//! baseline recorded in EXPERIMENTS.md; 16 and 256 exercise the
//! wholesale `insert_batch` path.
//!
//! * `refresh`: 4096 tuples cycling over 64 primary keys — soft-state
//!   refresh, the dominant table traffic in the paper's programs
//!   (periodic pings, tupleTable refcounts, reflection rows). The store
//!   core is a hash-hit re-stamp, so per-tuple engine overhead is the
//!   cost that batching amortizes.
//! * `silent_insert`: 4096 distinct-key inserts — store-growth bound,
//!   the worst case for batching (the insert itself dominates).
//! * `subscribed_insert`: an event rule fires per tuple, where batching
//!   legally cannot skip the per-tuple interleave — the price of the
//!   §2.1.2 trace-equivalence guarantee.
//! * `archive_churn`: the soft-state hot path with archiving off versus
//!   enrolled (DESIGN.md §2.11) — 4096 tuples over 64 keys where every
//!   8th visit to a key carries a new payload, so 12.5 % of the traffic
//!   drops a version that must spill. The off/on delta is the archive
//!   write-through overhead recorded in EXPERIMENTS.md (acceptance
//!   bar: ≤5 %).
//! * `archive_saturated`: the stress ceiling — every tuple replaces, so
//!   every tuple spills. The off/on delta here is the *marginal* cost
//!   of archiving one dropped version (clone two `Arc`s, buffer, epoch
//!   bucket), not a rate any paper workload sustains.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use p2_core::{ArchiveEnroll, ArchiveMode, Node, NodeConfig};
use p2_types::{Addr, Time, Tuple, Value};

const RUN: usize = 4096;

fn silent_node(max_delta_batch: usize) -> Node {
    let mut n = Node::new(
        Addr::new("n1"),
        NodeConfig {
            stagger_timers: false,
            max_delta_batch,
            ..Default::default()
        },
    );
    n.install(
        "materialize(sample, infinity, infinity, keys(1, 2)).",
        Time::ZERO,
    )
    .unwrap();
    n
}

fn subscribed_node(max_delta_batch: usize) -> Node {
    let mut n = Node::new(
        Addr::new("n1"),
        NodeConfig {
            stagger_timers: false,
            max_delta_batch,
            ..Default::default()
        },
    );
    n.install(
        "materialize(sample, infinity, infinity, keys(1, 2)).
         d1 hit@N(X) :- sample@N(X).",
        Time::ZERO,
    )
    .unwrap();
    n
}

fn archive_node(archived: bool) -> Node {
    let mut n = Node::new(
        Addr::new("n1"),
        NodeConfig {
            stagger_timers: false,
            max_delta_batch: 256,
            archive: archived.then(|| ArchiveMode {
                enroll: ArchiveEnroll::Named(vec!["sample".into()]),
                ..ArchiveMode::default()
            }),
            ..Default::default()
        },
    );
    n.install(
        "materialize(sample, infinity, infinity, keys(1, 2)).",
        Time::ZERO,
    )
    .unwrap();
    n
}

fn bench_node_pump(c: &mut Criterion) {
    let tuples: Vec<Tuple> = (0..RUN as i64)
        .map(|i| Tuple::new("sample", [Value::addr("n1"), Value::Int(i)]))
        .collect();
    let refreshes: Vec<Tuple> = (0..RUN as i64)
        .map(|i| Tuple::new("sample", [Value::addr("n1"), Value::Int(i % 64)]))
        .collect();

    for batch in [1usize, 16, 256] {
        c.bench_function(&format!("node_pump_refresh_batch_{batch}"), |b| {
            b.iter_batched(
                || {
                    let mut node = silent_node(batch);
                    for t in &refreshes {
                        node.inject(t.clone());
                    }
                    node
                },
                |mut node| {
                    node.pump(Time::ZERO);
                    black_box(node.metrics().tuples_dispatched);
                    node // dropped outside the timing window
                },
                BatchSize::SmallInput,
            )
        });
    }
    for batch in [1usize, 16, 256] {
        c.bench_function(&format!("node_pump_silent_insert_batch_{batch}"), |b| {
            b.iter_batched(
                || {
                    let mut node = silent_node(batch);
                    for t in &tuples {
                        node.inject(t.clone());
                    }
                    node
                },
                |mut node| {
                    node.pump(Time::ZERO);
                    black_box(node.metrics().tuples_dispatched);
                    node // dropped outside the timing window
                },
                BatchSize::SmallInput,
            )
        });
    }
    // Soft-state churn: 64 keys, payload advances every 8th visit to a
    // key, so each pump refreshes 7/8 of the traffic and replaces (and,
    // when enrolled, spills) the other 1/8 — the deployed shape of
    // `bestSucc`/ping-style tables. The saturated variant advances the
    // payload on every visit: 4032 replacements, 4032 spills.
    let churn: Vec<Tuple> = (0..RUN as i64)
        .map(|i| {
            Tuple::new(
                "sample",
                [Value::addr("n1"), Value::Int(i % 64), Value::Int(i / 512)],
            )
        })
        .collect();
    let saturated: Vec<Tuple> = (0..RUN as i64)
        .map(|i| {
            Tuple::new(
                "sample",
                [Value::addr("n1"), Value::Int(i % 64), Value::Int(i)],
            )
        })
        .collect();
    for (workload, tuples) in [("churn", &churn), ("saturated", &saturated)] {
        for archived in [false, true] {
            let name = format!(
                "node_pump_archive_{workload}_{}",
                if archived { "on" } else { "off" }
            );
            c.bench_function(&name, |b| {
                b.iter_batched(
                    || {
                        let mut node = archive_node(archived);
                        for t in tuples {
                            node.inject(t.clone());
                        }
                        node
                    },
                    |mut node| {
                        node.pump(Time::ZERO);
                        // Drain spilled versions into epoch buckets —
                        // the deployed write-through path runs this
                        // with GC.
                        node.trace_gc(Time::ZERO);
                        black_box(node.metrics().tuples_dispatched);
                        node
                    },
                    BatchSize::SmallInput,
                )
            });
        }
    }
    for batch in [1usize, 256] {
        c.bench_function(&format!("node_pump_subscribed_insert_batch_{batch}"), |b| {
            b.iter_batched(
                || {
                    let mut node = subscribed_node(batch);
                    for t in &tuples {
                        node.inject(t.clone());
                    }
                    node
                },
                |mut node| {
                    node.pump(Time::ZERO);
                    black_box(node.metrics().strand_firings);
                    node
                },
                BatchSize::SmallInput,
            )
        });
    }
}

criterion_group!(benches, bench_node_pump);
criterion_main!(benches);
