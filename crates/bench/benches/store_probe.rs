//! Indexed vs linear equality probes on a soft-state table.
//!
//! The satellite ablation for the store indexing work: one table of
//! `10^2..10^5` rows, probed with an equality on a non-key field that
//! matches 1% or 50% of the rows. The indexed path (`scan_eq` after
//! `ensure_index`) should cost O(hits); the linear oracle
//! (`scan_eq_linear`) walks every live row regardless of selectivity.
//! The headline acceptance number is the 10^4-row / 1%-hit pair, where
//! the index must win by at least 5x.

use criterion::{criterion_group, criterion_main, Criterion};
use p2_store::{Table, TableSpec};
use p2_types::{Time, Tuple, Value};
use std::hint::black_box;

/// Build a table of `n` rows where exactly `hits` of them carry group 0
/// in field 1 (the probed field); the rest get distinct negative groups.
/// Field 2 is a unique payload and the primary key.
fn fixture(n: usize, hits: usize) -> Table {
    let mut t = Table::new(TableSpec::new("probe", None, None, vec![2]));
    t.ensure_index(1);
    for i in 0..n {
        let group = if i < hits { 0 } else { -(i as i64) };
        t.insert(
            Tuple::new(
                "probe",
                [Value::addr("n1"), Value::Int(group), Value::Int(i as i64)],
            ),
            Time::ZERO,
        );
    }
    t
}

fn bench_store_probe(c: &mut Criterion) {
    let want = Value::Int(0);
    for n in [100usize, 1_000, 10_000, 100_000] {
        for pct in [1usize, 50] {
            let hits = (n * pct / 100).max(1);
            let mut indexed = fixture(n, hits);
            c.bench_function(&format!("store_probe_indexed_{n}_hit{pct}"), |b| {
                b.iter(|| black_box(indexed.scan_eq(1, black_box(&want), Time::ZERO)))
            });
            let mut linear = fixture(n, hits);
            c.bench_function(&format!("store_probe_linear_{n}_hit{pct}"), |b| {
                b.iter(|| black_box(linear.scan_eq_linear(1, black_box(&want), Time::ZERO)))
            });
        }
    }
}

criterion_group!(benches, bench_store_probe);
criterion_main!(benches);
