//! Segment-scan throughput for the archive tier (DESIGN.md §2.11).
//!
//! Forensic queries decode history out of immutable epoch segments, so
//! the number that matters is rows-per-second through
//! [`Archive::scan_range`] — including the header-bounds pruning that
//! lets a narrow probe skip segments without decoding them.
//!
//! * `archive_scan_full`: one relation, 16,384 archived versions spread
//!   over ~64 epochs, probe window covering everything — the worst-case
//!   full decode.
//! * `archive_scan_window`: same archive, probe window covering one
//!   epoch — measures how much the per-segment `[min_inserted,
//!   max_dropped]` bounds save when the question is narrow.
//! * `archive_seal`: freezing 4,096 spilled rows into sealed segments —
//!   the write-side cost the maintenance drain pays per epoch rollover.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use p2_store::{Archive, ArchiveConfig, SpilledRow};
use p2_types::{Time, Tuple, Value};

const ROWS: usize = 16 * 1024;

fn spilled(i: usize) -> SpilledRow {
    // One version per second, 30 s lifetime: with the default 30 s
    // epoch this spreads the run over ~ROWS/30 epochs.
    let at = Time::from_secs(i as u64);
    SpilledRow {
        tuple: Tuple::new(
            "bestSucc",
            [Value::addr("n1"), Value::Int(i as i64), Value::str("v")],
        ),
        inserted_at: at,
        dropped_at: Time::from_secs(i as u64 + 30),
    }
}

fn sealed_archive(rows: usize) -> Archive {
    let mut a = Archive::new(ArchiveConfig::default());
    a.spill("bestSucc", (0..rows).map(spilled));
    a.seal_all();
    a
}

fn bench_archive_scan(c: &mut Criterion) {
    let mut full = sealed_archive(ROWS);
    c.bench_function("archive_scan_full", |b| {
        b.iter(|| {
            let rows = full
                .scan_range(
                    "bestSucc",
                    Time::ZERO,
                    Time::from_secs(ROWS as u64 + 30),
                    &[],
                )
                .expect("own segments decode");
            black_box(rows.len())
        })
    });

    let mut windowed = sealed_archive(ROWS);
    c.bench_function("archive_scan_window", |b| {
        b.iter(|| {
            let rows = windowed
                .scan_range(
                    "bestSucc",
                    Time::from_secs(1000),
                    Time::from_secs(1030),
                    &[],
                )
                .expect("own segments decode");
            black_box(rows.len())
        })
    });

    // All in one epoch, so sealing happens inside the timed region
    // rather than incrementally during the setup spill.
    let spill_run: Vec<SpilledRow> = (0..4096)
        .map(|i| SpilledRow {
            dropped_at: Time::from_secs(10),
            ..spilled(i % 8)
        })
        .collect();
    c.bench_function("archive_seal", |b| {
        b.iter_batched(
            || {
                let mut a = Archive::new(ArchiveConfig::default());
                a.spill("bestSucc", spill_run.iter().cloned());
                a
            },
            |mut a| {
                a.seal_all();
                black_box(a.stats().len());
                a
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_archive_scan);
criterion_main!(benches);
