//! Segment-shipping costs (DESIGN.md §2.12).
//!
//! Shipping moves sealed history between nodes; the numbers that
//! matter are the per-hop stage costs and the end-to-end fetch:
//!
//! * `ship_export`: snapshotting one relation's history as encoded
//!   frames — the pure read an origin pays per request or announce.
//!   Sealed segments clone their already-encoded frames; the live tier
//!   is frozen into one synthetic frame per call.
//! * `ship_wire_roundtrip`: batch-encode, chunk, reassemble, decode,
//!   and re-validate the frames — both endpoints' codec work for one
//!   shipped relation, excluding the network itself.
//! * `ship_import_scan`: install validated frames under an origin key
//!   and run the deployment-wide scan a `past()` strand performs —
//!   the collector's read path.
//! * `ship_fetch_e2e`: a full pull-mode round trip under the simulated
//!   harness — trigger stages, request, reply chunks, import, release,
//!   strand fires — the wall the first deployment-wide `past()` hits.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use p2_core::{NodeConfig, SimHarness};
use p2_net::ship::{chunk_payload, decode_batch, encode_batch, Reassembly};
use p2_net::SimConfig;
use p2_planner::{HistoryProvider, PlanOpts};
use p2_store::{Archive, ArchiveConfig, Segment, SpilledRow};
use p2_types::{Time, TimeDelta, Tuple, Value};

const ROWS: usize = 8 * 1024;
const CHUNK: usize = 48 * 1024;

fn spilled(i: usize) -> SpilledRow {
    let at = Time::from_secs(i as u64);
    SpilledRow {
        tuple: Tuple::new(
            "bestSucc",
            [Value::addr("n1"), Value::Int(i as i64), Value::str("v")],
        ),
        inserted_at: at,
        dropped_at: Time::from_secs(i as u64 + 30),
    }
}

fn sealed_archive(rows: usize) -> Archive {
    let mut a = Archive::new(ArchiveConfig {
        retention_bytes: usize::MAX,
        ..ArchiveConfig::default()
    });
    a.spill("bestSucc", (0..rows).map(spilled));
    a.seal_all();
    a
}

fn bench_segment_ship(c: &mut Criterion) {
    let archive = sealed_archive(ROWS);
    c.bench_function("ship_export", |b| {
        b.iter(|| black_box(archive.export_frames("bestSucc").len()))
    });

    let frames = archive.export_frames("bestSucc");
    c.bench_function("ship_wire_roundtrip", |b| {
        b.iter(|| {
            let encoded: Vec<Vec<u8>> = frames.iter().map(|s| s.as_bytes().to_vec()).collect();
            let batch = encode_batch(&encoded);
            let parts = chunk_payload(&batch, CHUNK);
            let chunks = parts.len() as u32;
            let mut rx = Reassembly::new();
            let mut payload = None;
            for (i, part) in parts.into_iter().enumerate() {
                if let Some(done) = rx.offer(i as u32, chunks, part).expect("in-order") {
                    payload = Some(done);
                }
            }
            let segs: Vec<Segment> = decode_batch(&payload.expect("complete"))
                .expect("batch decodes")
                .iter()
                .map(|b| Segment::from_bytes(b).expect("frame decodes"))
                .collect();
            black_box(segs.len())
        })
    });

    let shipped: Vec<Segment> = frames.clone();
    c.bench_function("ship_import_scan", |b| {
        b.iter_batched(
            || (p2_store::ImportedHistory::default(), shipped.clone()),
            |(mut imported, segs)| {
                imported.replace("n1", "bestSucc", segs, None);
                let rows = imported
                    .scan(
                        "n1",
                        "bestSucc",
                        Time::ZERO,
                        Time::from_secs(ROWS as u64 + 30),
                        &[],
                    )
                    .expect("imported frames decode");
                black_box(rows.len())
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("ship_fetch_e2e", |b| {
        b.iter_batched(
            staged_fetch_population,
            |(mut sim, coll)| {
                sim.inject(
                    &coll,
                    Tuple::new(
                        "probe",
                        [Value::Addr(coll.clone()), Value::Int(0), Value::Int(600)],
                    ),
                );
                sim.run_for(TimeDelta::from_secs(1));
                let got = sim.node_mut(&coll).take_watched("hist");
                assert!(!got.is_empty(), "fetch must complete and fire the strand");
                black_box(got.len())
            },
            BatchSize::SmallInput,
        )
    });
}

/// A two-node population with archived history on the origin and a
/// deployment-provider query staged on the collector, ready to probe.
fn staged_fetch_population() -> (SimHarness, p2_types::Addr) {
    let forensic = NodeConfig {
        stagger_timers: false,
        ..NodeConfig::forensic()
    };
    let mut sim = SimHarness::new(SimConfig::default(), forensic.clone(), 42);
    let origin = sim.add_node("a");
    sim.install(
        &origin,
        "materialize(seen, 5, 512, keys(1, 2)).\nr1 seen@N(X) :- ping@N(X).",
    )
    .expect("app installs");
    for i in 0..256u64 {
        sim.run_until(Time::from_millis(10 + i * 100));
        sim.inject(
            &origin,
            Tuple::new("ping", [Value::Addr(origin.clone()), Value::Int(i as i64)]),
        );
    }
    sim.run_until(Time::from_secs(60));
    sim.node_mut(&origin).trace_gc(Time::from_secs(60));
    let coll = sim.add_node_with(
        "coll",
        NodeConfig {
            plan: PlanOpts {
                history: HistoryProvider::Deployment,
                ..PlanOpts::default()
            },
            ..forensic
        },
    );
    sim.install(
        &coll,
        "materialize(seen, 5, 512, keys(1, 2)).\nf1 hist@N(O, S) :- probe@N(T0, T1), past@N(\"seen\", T0, T1, O, S).",
    )
    .expect("query installs");
    sim.node_mut(&coll).ship_add_peer(origin.clone());
    sim.node_mut(&coll).watch("hist");
    (sim, coll)
}

criterion_group!(benches, bench_segment_ship);
criterion_main!(benches);
