//! Criterion micro-benchmarks of the engine hot paths.
//!
//! The figures harness (`bin/figures.rs`) measures system-level cost;
//! these isolate the per-operation costs underneath: parsing, planning,
//! strand execution (trigger + join + select), aggregate recomputation,
//! tracer record matching (§2.1.2), the wire codec, and ring-interval
//! membership. They also carry two ablations the DESIGN.md calls out:
//! tracer record matching under pipelined vs sequential tap streams, and
//! table probe via the indexed path vs full scan.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use p2_chord::{chord_program, ChordConfig};
use p2_core::{Node, NodeConfig};
use p2_dataflow::{NullSink, StrandRuntime, TapEvent, TapKind, TapSink};
use p2_planner::compile_program;
use p2_planner::expr::FixedCtx;
use p2_store::{Catalog, TableSpec};
use p2_trace::{TraceConfig, Tracer};
use p2_types::{Addr, Interval, RingId, Time, TimeDelta, Tuple, Value};
use std::collections::HashSet;
use std::hint::black_box;
use std::sync::Arc;

fn bench_frontend(c: &mut Criterion) {
    let chord_src = chord_program(&ChordConfig::default());
    c.bench_function("parse_chord_program", |b| {
        b.iter(|| p2_overlog::parse_program(black_box(&chord_src)).unwrap())
    });
    let parsed = p2_overlog::compile(&chord_src).unwrap();
    c.bench_function("plan_chord_program", |b| {
        b.iter(|| compile_program(black_box(&parsed), &HashSet::new()).unwrap())
    });
    let printed = p2_overlog::pretty::program_to_string(&parsed);
    c.bench_function("pretty_print_chord", |b| {
        b.iter(|| p2_overlog::pretty::program_to_string(black_box(&parsed)));
        black_box(&printed);
    });
}

fn strand_fixture(rows: usize) -> (StrandRuntime, Catalog, Tuple) {
    let prog = p2_overlog::parse_program(
        "materialize(pred, 1000, 100000, keys(1, 3)).
         rp4 out@NAddr(PAddr) :- ev@NAddr(SomeID, SomeAddr), pred@NAddr(PID, PAddr), SomeAddr != PAddr.",
    )
    .unwrap();
    let compiled = compile_program(&prog, &HashSet::new()).unwrap();
    let mut cat = Catalog::new();
    for t in &compiled.tables {
        cat.register(TableSpec::new(
            &t.name,
            t.lifetime_secs.map(TimeDelta::from_secs_f64),
            t.max_rows,
            t.key_fields.clone(),
        ))
        .unwrap();
    }
    for i in 0..rows {
        cat.insert(
            Tuple::new(
                "pred",
                [
                    Value::addr("n1"),
                    Value::id(i as u64),
                    Value::addr(format!("p{i}")),
                ],
            ),
            Time::ZERO,
        )
        .unwrap();
    }
    let strand = StrandRuntime::new(Arc::new(compiled.strands[0].clone()));
    let trig = Tuple::new("ev", [Value::addr("n1"), Value::id(7), Value::addr("x")]);
    (strand, cat, trig)
}

fn bench_strand(c: &mut Criterion) {
    for rows in [1usize, 64, 1024] {
        c.bench_function(&format!("strand_fire_join_{rows}_rows"), |b| {
            let (mut strand, mut cat, trig) = strand_fixture(rows);
            let mut ctx = FixedCtx::default();
            let mut sink = NullSink;
            b.iter(|| {
                let mut actions = Vec::new();
                strand.fire(
                    &trig,
                    &mut cat,
                    &mut ctx,
                    &mut sink,
                    Time::ZERO,
                    &mut actions,
                );
                strand.run_to_quiescence(&mut cat, &mut ctx, &mut sink, Time::ZERO, &mut actions);
                black_box(actions)
            })
        });
    }

    // Aggregate recomputation (the cs6-style table-trigger path).
    c.bench_function("aggregate_recount_256_rows", |b| {
        let prog = p2_overlog::parse_program(
            "materialize(resp, 1000, 100000, keys(1, 3)).
             cs6 cluster@N(P, S, count<*>) :- resp@N(P, R, S).",
        )
        .unwrap();
        let compiled = compile_program(&prog, &HashSet::new()).unwrap();
        let mut cat = Catalog::new();
        let t = &compiled.tables[0];
        cat.register(TableSpec::new(
            &t.name,
            None,
            t.max_rows,
            t.key_fields.clone(),
        ))
        .unwrap();
        for i in 0..256 {
            cat.insert(
                Tuple::new(
                    "resp",
                    [
                        Value::addr("n"),
                        Value::Int(1),
                        Value::id(i),
                        Value::addr("s"),
                    ],
                ),
                Time::ZERO,
            )
            .unwrap();
        }
        let mut strand = StrandRuntime::new(Arc::new(compiled.strands[0].clone()));
        let delta = Tuple::new(
            "resp",
            [
                Value::addr("n"),
                Value::Int(1),
                Value::id(0),
                Value::addr("s"),
            ],
        );
        let mut ctx = FixedCtx::default();
        let mut sink = NullSink;
        b.iter(|| {
            let mut actions = Vec::new();
            strand.fire(
                &delta,
                &mut cat,
                &mut ctx,
                &mut sink,
                Time::ZERO,
                &mut actions,
            );
            black_box(actions)
        })
    });
}

fn bench_tracer(c: &mut Criterion) {
    // Ablation: record matching cost for sequential vs pipelined tap
    // streams (§2.1.2). Both process the same number of events.
    let seq_stream: Vec<TapKind> = (0..8)
        .flat_map(|i| {
            vec![
                TapKind::Input {
                    tuple: Tuple::new("ev", [Value::Int(i)]),
                },
                TapKind::Precondition {
                    stage: 0,
                    tuple: Tuple::new("p1", [Value::Int(i)]),
                },
                TapKind::Precondition {
                    stage: 1,
                    tuple: Tuple::new("p2", [Value::Int(i)]),
                },
                TapKind::Output {
                    tuple: Tuple::new("h", [Value::Int(i)]),
                },
                TapKind::StageComplete { stage: 0 },
                TapKind::StageComplete { stage: 1 },
            ]
        })
        .collect();
    let mut pipelined: Vec<TapKind> = Vec::new();
    for i in 0..8i64 {
        pipelined.push(TapKind::Input {
            tuple: Tuple::new("ev", [Value::Int(i)]),
        });
        pipelined.push(TapKind::Precondition {
            stage: 0,
            tuple: Tuple::new("p1", [Value::Int(i)]),
        });
        pipelined.push(TapKind::StageComplete { stage: 0 });
        if i > 0 {
            pipelined.push(TapKind::Precondition {
                stage: 1,
                tuple: Tuple::new("p2", [Value::Int(i - 1)]),
            });
            pipelined.push(TapKind::Output {
                tuple: Tuple::new("h", [Value::Int(i - 1)]),
            });
            pipelined.push(TapKind::StageComplete { stage: 1 });
        }
    }
    for (name, stream) in [
        ("tracer_sequential_taps", &seq_stream),
        ("tracer_pipelined_taps", &pipelined),
    ] {
        c.bench_function(name, |b| {
            b.iter_batched(
                || Tracer::new(Addr::new("n"), TraceConfig::default()),
                |mut tr| {
                    for (i, kind) in stream.iter().enumerate() {
                        tr.tap(TapEvent {
                            strand_id: Arc::from("r2"),
                            rule_label: Arc::from("r2"),
                            stage_count: 2,
                            kind: kind.clone(),
                            at: Time(i as u64),
                        });
                    }
                    black_box(tr.drain_rows())
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_substrate(c: &mut Criterion) {
    c.bench_function("wire_roundtrip_envelope", |b| {
        let env = p2_net::Envelope {
            tuples: vec![Tuple::new(
                "lookupResults",
                [
                    Value::addr("n1"),
                    Value::id(0xDEAD),
                    Value::id(0xBEEF),
                    Value::addr("n2"),
                    Value::id(42),
                    Value::addr("n3"),
                ],
            )],
            src: Addr::new("n3"),
            dst: Addr::new("n1"),
            src_tuple_ids: vec![Some(p2_types::TupleId(9))],
            delete: false,
        };
        b.iter(|| {
            let bytes = p2_net::wire::encode_envelope(black_box(&env));
            black_box(p2_net::wire::decode_envelope(&bytes).unwrap())
        })
    });

    c.bench_function("interval_membership", |b| {
        let iv = Interval::open_closed(RingId(100), RingId(50)); // wraps
        b.iter(|| {
            let mut hits = 0u32;
            for x in 0..1000u64 {
                if iv.contains(RingId(x.wrapping_mul(0x9E3779B97F4A7C15))) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });

    // Ablation: indexed probe vs full scan on the join path.
    let mut table_cat = Catalog::new();
    table_cat
        .register(TableSpec::new("t", None, None, vec![0, 1]))
        .unwrap();
    for i in 0..4096u64 {
        table_cat
            .insert(
                Tuple::new("t", [Value::addr(format!("n{}", i % 64)), Value::id(i)]),
                Time::ZERO,
            )
            .unwrap();
    }
    // Index up front (as the planner would at install) rather than letting
    // the auto-index fallback flip mid-measurement.
    table_cat.ensure_index("t", 0).unwrap();
    c.bench_function("table_scan_eq_4096", |b| {
        b.iter(|| black_box(table_cat.scan_eq("t", 0, &Value::addr("n7"), Time::ZERO)))
    });
    c.bench_function("table_full_scan_4096", |b| {
        b.iter(|| black_box(table_cat.scan("t", Time::ZERO)))
    });
}

fn bench_node(c: &mut Criterion) {
    c.bench_function("node_install_chord", |b| {
        let src = chord_program(&ChordConfig::default());
        b.iter_batched(
            || Node::new(Addr::new("n"), NodeConfig::default()),
            |mut node| {
                node.install(black_box(&src), Time::ZERO).unwrap();
                black_box(node)
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("node_event_dispatch", |b| {
        let mut node = Node::new(Addr::new("n"), NodeConfig::default());
        node.install(
            "materialize(s, 1000, 1000, keys(1, 2)).
             r1 s@N(X) :- ev@N(X).
             r2 out@N(X) :- s@N(X).",
            Time::ZERO,
        )
        .unwrap();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            node.inject(Tuple::new("ev", [Value::addr("n"), Value::Int(i % 500)]));
            black_box(node.pump(Time::ZERO));
        })
    });
}

criterion_group!(
    benches,
    bench_frontend,
    bench_strand,
    bench_tracer,
    bench_substrate,
    bench_node
);
criterion_main!(benches);
