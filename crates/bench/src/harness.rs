//! Measurement scaffolding shared by all experiments.

use p2_chord::{build_ring, ChordConfig, ChordRing};
use p2_core::{NodeConfig, Population, SimHarness};
use p2_types::{Addr, Time, TimeDelta};

/// Population / protocol parameters (§4's setup in full mode).
#[derive(Debug, Clone)]
pub struct BenchParams {
    /// Number of nodes (paper: 21).
    pub nodes: usize,
    /// Warm-up before measuring, virtual seconds (paper: 5 min).
    pub warmup_secs: u64,
    /// Steady-state measurement window, virtual seconds.
    pub window_secs: u64,
    /// Seeds per datapoint (paper: three runs).
    pub seeds: Vec<u64>,
    /// Chord protocol periods.
    pub chord: ChordConfig,
}

impl BenchParams {
    /// The paper's configuration: 21 nodes, 5-minute warm-up, three runs.
    pub fn full() -> BenchParams {
        BenchParams {
            nodes: 21,
            warmup_secs: 300,
            window_secs: 240,
            seeds: vec![101, 202, 303],
            chord: ChordConfig::default(),
        }
    }

    /// A small configuration for smoke tests and CI.
    pub fn quick() -> BenchParams {
        BenchParams {
            nodes: 8,
            warmup_secs: 180,
            window_secs: 90,
            seeds: vec![101],
            chord: ChordConfig::default(),
        }
    }
}

/// One steady-state sample of the measured node.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeSample {
    /// CPU utilization, percent (busy wall time / virtual window).
    pub cpu_percent: f64,
    /// Live-tuple bytes (tables + tracer state) at window end.
    pub mem_bytes: f64,
    /// Live tuples at window end.
    pub live_tuples: f64,
    /// Envelopes transmitted by the measured node during the window.
    pub tx_messages: f64,
    /// Tuples dispatched through the demux during the window — a
    /// deterministic work counter that backs the CPU trend without
    /// wall-clock noise.
    pub dispatches: f64,
    /// CPU utilization summed over the whole population, percent.
    /// Captures systemic load the initiator-only sample misses (the
    /// paper's probes tax *every* node with parallel lookups).
    pub pop_cpu_percent: f64,
    /// Dispatches summed over the whole population.
    pub pop_dispatches: f64,
}

/// A prepared testbed: warmed ring plus the designated measured node
/// (the last to join, as in §4's "then the 21st virtual node starts").
/// Generic over the harness so the same rig measures the sequential and
/// the sharded engine.
pub struct Testbed<H: Population = SimHarness> {
    /// The simulation.
    pub sim: H,
    /// Ring metadata.
    pub ring: ChordRing,
    /// The measured node's address.
    pub measured: Addr,
}

/// Build a warmed testbed on the sequential harness. `measured_config`
/// configures only the measured node (e.g. tracing on) — the rest of the
/// population runs the default, exactly like the paper's two-machine
/// split.
pub fn build_testbed(params: &BenchParams, seed: u64, measured_config: NodeConfig) -> Testbed {
    let sim = SimHarness::new(Default::default(), NodeConfig::default(), seed);
    prepare_testbed(sim, params, measured_config)
}

/// Warm a ring and join the measured node on any population harness.
pub fn prepare_testbed<H: Population>(
    mut sim: H,
    params: &BenchParams,
    measured_config: NodeConfig,
) -> Testbed<H> {
    let seed = sim.seed();
    // n-1 nodes start and stabilize first...
    let mut ring = build_ring(&mut sim, params.nodes - 1, &params.chord);
    sim.run_for(TimeDelta::from_secs(params.warmup_secs));
    // ...then the measured node joins and stabilizes.
    let name = format!("n{}", params.nodes - 1);
    let measured = sim.add_node_with(&name, measured_config);
    let id = p2_types::DetRng::derive(seed, "measured-node").ring_id();
    ring.ids.insert(measured.clone(), id);
    ring.addrs.push(measured.clone());
    sim.install(&measured, &p2_chord::chord_program(&params.chord))
        .expect("install chord");
    sim.install(
        &measured,
        &p2_chord::node_facts(measured.as_str(), id.0, Some(ring.addrs[0].as_str())),
    )
    .expect("install facts");
    sim.run_for(TimeDelta::from_secs(params.warmup_secs));
    Testbed {
        sim,
        ring,
        measured,
    }
}

/// Run the measurement window over a prepared testbed and sample the
/// measured node (deltas for counters, end-of-window for gauges).
pub fn measure_window<H: Population>(testbed: &mut Testbed<H>, window_secs: u64) -> NodeSample {
    let Testbed {
        sim,
        measured,
        ring,
    } = testbed;
    let pop_busy = |sim: &H| -> std::time::Duration {
        ring.addrs.iter().map(|a| sim.node(a).metrics().busy).sum()
    };
    let pop_disp = |sim: &H| -> u64 {
        ring.addrs
            .iter()
            .map(|a| sim.node(a).metrics().tuples_dispatched)
            .sum()
    };
    let busy0 = sim.node(measured).metrics().busy;
    let disp0 = sim.node(measured).metrics().tuples_dispatched;
    let sent0 = sim.net_stats().sent_by(measured);
    let pbusy0 = pop_busy(sim);
    let pdisp0 = pop_disp(sim);
    let t0: Time = sim.now();
    sim.run_for(TimeDelta::from_secs(window_secs));
    let busy1 = sim.node(measured).metrics().busy;
    let disp1 = sim.node(measured).metrics().tuples_dispatched;
    let sent1 = sim.net_stats().sent_by(measured);
    let elapsed = (sim.now() - t0).as_secs_f64();
    NodeSample {
        cpu_percent: 100.0 * (busy1 - busy0).as_secs_f64() / elapsed,
        mem_bytes: sim.node(measured).approx_bytes() as f64,
        live_tuples: sim.node(measured).live_tuples() as f64,
        tx_messages: (sent1 - sent0) as f64,
        dispatches: (disp1 - disp0) as f64,
        pop_cpu_percent: 100.0 * (pop_busy(sim) - pbusy0).as_secs_f64() / elapsed,
        pop_dispatches: (pop_disp(sim) - pdisp0) as f64,
    }
}

/// Mean and standard deviation of a set of samples, per field.
pub fn aggregate(samples: &[NodeSample]) -> (NodeSample, NodeSample) {
    let n = samples.len().max(1) as f64;
    let mut mean = NodeSample::default();
    for s in samples {
        mean.cpu_percent += s.cpu_percent / n;
        mean.mem_bytes += s.mem_bytes / n;
        mean.live_tuples += s.live_tuples / n;
        mean.tx_messages += s.tx_messages / n;
        mean.dispatches += s.dispatches / n;
        mean.pop_cpu_percent += s.pop_cpu_percent / n;
        mean.pop_dispatches += s.pop_dispatches / n;
    }
    let mut var = NodeSample::default();
    for s in samples {
        var.cpu_percent += (s.cpu_percent - mean.cpu_percent).powi(2) / n;
        var.mem_bytes += (s.mem_bytes - mean.mem_bytes).powi(2) / n;
        var.live_tuples += (s.live_tuples - mean.live_tuples).powi(2) / n;
        var.tx_messages += (s.tx_messages - mean.tx_messages).powi(2) / n;
        var.dispatches += (s.dispatches - mean.dispatches).powi(2) / n;
        var.pop_cpu_percent += (s.pop_cpu_percent - mean.pop_cpu_percent).powi(2) / n;
        var.pop_dispatches += (s.pop_dispatches - mean.pop_dispatches).powi(2) / n;
    }
    let std = NodeSample {
        cpu_percent: var.cpu_percent.sqrt(),
        mem_bytes: var.mem_bytes.sqrt(),
        live_tuples: var.live_tuples.sqrt(),
        tx_messages: var.tx_messages.sqrt(),
        dispatches: var.dispatches.sqrt(),
        pop_cpu_percent: var.pop_cpu_percent.sqrt(),
        pop_dispatches: var.pop_dispatches.sqrt(),
    };
    (mean, std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_mean_and_std() {
        let samples = [
            NodeSample {
                cpu_percent: 1.0,
                mem_bytes: 10.0,
                live_tuples: 5.0,
                ..Default::default()
            },
            NodeSample {
                cpu_percent: 3.0,
                mem_bytes: 30.0,
                live_tuples: 5.0,
                ..Default::default()
            },
        ];
        let (mean, std) = aggregate(&samples);
        assert!((mean.cpu_percent - 2.0).abs() < 1e-9);
        assert!((mean.mem_bytes - 20.0).abs() < 1e-9);
        assert!((std.cpu_percent - 1.0).abs() < 1e-9);
        assert!((std.live_tuples - 0.0).abs() < 1e-9);
    }

    #[test]
    fn quick_testbed_builds_and_measures() {
        let params = BenchParams {
            nodes: 4,
            warmup_secs: 60,
            window_secs: 30,
            seeds: vec![1],
            chord: ChordConfig::default(),
        };
        let mut tb = build_testbed(&params, 1, NodeConfig::default());
        let s = measure_window(&mut tb, params.window_secs);
        assert!(s.cpu_percent >= 0.0);
        assert!(s.live_tuples > 0.0, "measured node must hold state");
        assert!(s.tx_messages > 0.0, "measured node must participate");
    }
}
