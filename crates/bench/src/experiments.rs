//! The experiments of Section 4.

use crate::harness::{aggregate, build_testbed, measure_window, BenchParams};
use crate::report::Row;
use p2_core::NodeConfig;
use p2_monitor::{consistency, ring, snapshot};

/// §4, text: the cost of execution logging on a running Chord node.
/// Paper: CPU +40% (0.98 → 1.38), memory +66% (8 MB → 13 MB) — small in
/// absolute terms. We report the same comparison (tracing off vs on) and
/// the measured ratios.
pub fn e1_logging_cost(params: &BenchParams) -> Vec<Row> {
    let mut rows = Vec::new();
    for (label, tracing) in [("tracing off", false), ("tracing on", true)] {
        let mut samples = Vec::new();
        for &seed in &params.seeds {
            let cfg = NodeConfig {
                tracing,
                ..Default::default()
            };
            let mut tb = build_testbed(params, seed, cfg);
            samples.push(measure_window(&mut tb, params.window_secs));
        }
        let (mean, std) = aggregate(&samples);
        rows.push(Row::from_samples("e1", label, mean, std));
    }
    rows
}

/// The ratios E1 reports against the paper's +40% CPU / +66% memory.
pub fn e1_ratios(rows: &[Row]) -> (f64, f64) {
    let off = &rows[0];
    let on = &rows[1];
    let cpu = if off.cpu_percent > 0.0 {
        on.cpu_percent / off.cpu_percent
    } else {
        f64::NAN
    };
    let mem = if off.mem_bytes > 0.0 {
        on.mem_bytes / off.mem_bytes
    } else {
        f64::NAN
    };
    (cpu, mem)
}

fn periodic_rules_program(n: usize) -> String {
    // N copies of: result@NAddr() :- periodic@NAddr(E, 1).
    // Each copy installs its own timer — that is the point of Figure 4.
    (0..n)
        .map(|i| format!("fig4r{i} result@NAddr() :- periodic@NAddr(E, 1).\n"))
        .collect()
}

/// Figure 4: CPU and memory vs number of periodic rules with period 1 s.
/// Paper shape: CPU grows roughly linearly with the rule count (to ~4.5%
/// at 250 rules from a ~1% baseline); memory plateaus above baseline.
pub fn fig4_periodic_rules(params: &BenchParams, counts: &[usize]) -> Vec<Row> {
    sweep_rule_counts(params, counts, "fig4", periodic_rules_program)
}

fn piggyback_rules_program(n: usize) -> String {
    // One shared 1 s timer feeds N rules that each perform a bestSucc
    // table lookup (Figure 5's "piggy-backed" rules).
    let mut out = String::from("fig5drv fig5ev@NAddr() :- periodic@NAddr(E, 1).\n");
    for i in 0..n {
        out.push_str(&format!(
            "fig5r{i} result@NAddr() :- fig5ev@NAddr(), bestSucc@NAddr(SID, SAddr).\n"
        ));
    }
    out
}

/// Figure 5: CPU and memory vs number of piggy-backed rules sharing one
/// timer, each with a state lookup. Paper shape: linear CPU growth,
/// steeper than Figure 4 ("state lookups are costlier than private
/// timers"); memory similar to Figure 4.
pub fn fig5_piggyback_rules(params: &BenchParams, counts: &[usize]) -> Vec<Row> {
    sweep_rule_counts(params, counts, "fig5", piggyback_rules_program)
}

fn sweep_rule_counts(
    params: &BenchParams,
    counts: &[usize],
    name: &str,
    program: fn(usize) -> String,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in counts {
        let mut samples = Vec::new();
        for &seed in &params.seeds {
            let mut tb = build_testbed(params, seed, NodeConfig::default());
            if n > 0 {
                let measured = tb.measured.clone();
                tb.sim
                    .install(&measured, &program(n))
                    .expect("install bench rules");
            }
            samples.push(measure_window(&mut tb, params.window_secs));
        }
        let (mean, std) = aggregate(&samples);
        rows.push(Row::from_samples(name, format!("{n} rules"), mean, std));
    }
    rows
}

/// The probe/snapshot rates of Figures 6 and 7: none, then 1/32 … 1 per
/// second. Returns (label, period-in-seconds); `None` period = feature
/// disabled.
pub fn figure_rates() -> Vec<(&'static str, Option<f64>)> {
    vec![
        ("none", None),
        ("1/32", Some(32.0)),
        ("1/4", Some(4.0)),
        ("1/2", Some(2.0)),
        ("3/4", Some(4.0 / 3.0)),
        ("1", Some(1.0)),
    ]
}

/// Figure 6: cost of proactive consistency probes vs initiation rate.
/// Paper shape: memory and messages grow ~linearly with the rate; CPU
/// grows superlinearly (frequent probes' parallel lookups contend).
pub fn fig6_consistency_probes(params: &BenchParams) -> Vec<Row> {
    let mut rows = Vec::new();
    for (label, period) in figure_rates() {
        let mut samples = Vec::new();
        for &seed in &params.seeds {
            let mut tb = build_testbed(params, seed, NodeConfig::default());
            if let Some(p) = period {
                let cfg = consistency::ProbeConfig {
                    probe_secs: p,
                    tally_secs: 20,
                    wait_secs: 20,
                    ..Default::default()
                };
                let measured = tb.measured.clone();
                tb.sim
                    .install(&measured, &consistency::probe_program(&cfg))
                    .expect("install probes");
            }
            samples.push(measure_window(&mut tb, params.window_secs));
        }
        let (mean, std) = aggregate(&samples);
        rows.push(Row::from_samples("fig6", label, mean, std));
    }
    rows
}

/// Figure 7: cost of consistent snapshots vs initiation rate. Paper
/// shape: same trends as Figure 6 but markedly cheaper at equal rates —
/// snapshots tax the system much less than the probes' parallel lookups.
pub fn fig7_snapshots(params: &BenchParams) -> Vec<Row> {
    let mut rows = Vec::new();
    for (label, period) in figure_rates() {
        let mut samples = Vec::new();
        for &seed in &params.seeds {
            let mut tb = build_testbed(params, seed, NodeConfig::default());
            if let Some(p) = period {
                for a in tb.ring.addrs.clone() {
                    tb.sim
                        .install(&a, &snapshot::backpointer_program())
                        .expect("install bp");
                    tb.sim
                        .install(&a, &snapshot::snapshot_program())
                        .expect("install snapshot");
                }
                let measured = tb.measured.clone();
                tb.sim
                    .install(&measured, &snapshot::initiator_program(&measured, p))
                    .expect("install initiator");
            }
            samples.push(measure_window(&mut tb, params.window_secs));
        }
        let (mean, std) = aggregate(&samples);
        rows.push(Row::from_samples("fig7", label, mean, std));
    }
    rows
}

/// Ablation (§3.1.1's stated trade-off): the active ring probe
/// (`rp1`–`rp3`) pays messages for a chosen detection rate; the passive
/// check (`rp4`) is free but detects only at the stabilization rate.
/// Reports the population-wide message cost of each.
pub fn ablation_ring_checks(params: &BenchParams) -> Vec<Row> {
    let mut rows = Vec::new();
    for (label, which) in [("no check", 0), ("passive rp4", 1), ("active rp1-3 @5s", 2)] {
        let mut samples = Vec::new();
        for &seed in &params.seeds {
            let mut tb = build_testbed(params, seed, NodeConfig::default());
            for a in tb.ring.addrs.clone() {
                match which {
                    1 => {
                        tb.sim
                            .install(&a, &ring::passive_check_program())
                            .expect("install");
                    }
                    2 => {
                        tb.sim
                            .install(&a, &ring::active_probe_program(5))
                            .expect("install");
                    }
                    _ => {}
                }
            }
            // Measure population-wide message delta.
            let sent0 = tb.sim.net().stats().total_sent();
            let mut s = measure_window(&mut tb, params.window_secs);
            s.tx_messages = (tb.sim.net().stats().total_sent() - sent0) as f64;
            samples.push(s);
        }
        let (mean, std) = aggregate(&samples);
        rows.push(Row::from_samples("ablation-ring", label, mean, std));
    }
    rows
}

/// Ablation (§3.4 optimization): tracer record budget per strand. The
/// fixed budget bounds tracer memory with negligible effect on CPU.
pub fn ablation_record_budget(params: &BenchParams, budgets: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &b in budgets {
        let mut samples = Vec::new();
        for &seed in &params.seeds {
            let cfg = NodeConfig {
                tracing: true,
                trace: p2_trace::TraceConfig {
                    records_per_strand: b,
                    ..Default::default()
                },
                ..Default::default()
            };
            let mut tb = build_testbed(params, seed, cfg);
            samples.push(measure_window(&mut tb, params.window_secs));
        }
        let (mean, std) = aggregate(&samples);
        rows.push(Row::from_samples(
            "ablation-records",
            format!("{b} records"),
            mean,
            std,
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchParams {
        BenchParams {
            nodes: 4,
            warmup_secs: 60,
            window_secs: 40,
            seeds: vec![7],
            chord: Default::default(),
        }
    }

    #[test]
    fn fig4_rows_scale_with_rule_count() {
        let rows = fig4_periodic_rules(&tiny(), &[0, 40]);
        assert_eq!(rows.len(), 2);
        // More periodic rules must cost more CPU.
        assert!(
            rows[1].cpu_percent > rows[0].cpu_percent,
            "{} !> {}",
            rows[1].cpu_percent,
            rows[0].cpu_percent
        );
    }

    #[test]
    fn e1_tracing_costs_more() {
        let rows = e1_logging_cost(&tiny());
        let (cpu_ratio, mem_ratio) = e1_ratios(&rows);
        assert!(cpu_ratio > 1.0, "tracing must cost CPU, ratio {cpu_ratio}");
        assert!(
            mem_ratio > 1.0,
            "tracing must cost memory, ratio {mem_ratio}"
        );
    }

    #[test]
    fn fig6_probes_cost_messages() {
        let params = tiny();
        let rows = fig6_consistency_probes(&params);
        let none = &rows[0];
        let fast = rows.last().unwrap();
        assert!(
            fast.tx_messages > none.tx_messages,
            "probes must send messages: {} !> {}",
            fast.tx_messages,
            none.tx_messages
        );
    }
}
