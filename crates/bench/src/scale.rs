//! Population scaling: the parallel engine versus the sequential loop.
//!
//! The paper's testbed stops at 21 processes; the sharded
//! conservative-window engine (`ParallelHarness`, DESIGN.md §2.10) is
//! what lets the reproduction push the same Chord + monitoring workload
//! to 1,000+ virtual nodes. This experiment runs an identical Chord
//! population — same seed, same protocol periods — on the sequential
//! harness and on 1/2/4/8 shards, wall-clocks the measured window, and
//! cross-checks that every engine sent **exactly** the same number of
//! envelopes (the determinism contract, enforced, not assumed).
//!
//! The win is algorithmic, not just parallel: the sequential loop pays
//! an O(population) next-event scan and pumps every live node at every
//! event instant, while a shard only scans and pumps its own slice for
//! the instants its slice owns. The speedup therefore survives even on
//! a single-core host (CI), and compounds with real cores.

use p2_chord::build_ring;
use p2_core::{NodeConfig, ParallelHarness, Population, SimHarness};
use p2_net::SimConfig;
use p2_types::TimeDelta;
use std::time::Instant;

/// One engine × population datapoint of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Population size.
    pub nodes: usize,
    /// `"sequential"` or `"sharded"`.
    pub engine: &'static str,
    /// Shard count (1 for the sequential engine).
    pub shards: usize,
    /// Wall-clock milliseconds to build + warm the ring.
    pub build_ms: f64,
    /// Wall-clock milliseconds for the measured window.
    pub run_ms: f64,
    /// Speedup of the measured window vs the sequential engine at the
    /// same population (1.0 for the baseline itself).
    pub speedup: f64,
    /// Envelopes sent population-wide over the whole run — must be
    /// identical across engines at the same population and seed.
    pub total_sent: u64,
    /// Event instants executed across all shards (0 for sequential,
    /// which does not count them).
    pub events: u64,
    /// Conservative-window barriers crossed, summed over shards.
    pub barrier_waits: u64,
    /// Envelopes routed through the cross-shard mailbox.
    pub mailbox_envelopes: u64,
}

/// Parameters of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScaleParams {
    /// Population sizes to sweep.
    pub nodes: Vec<usize>,
    /// Shard counts to sweep (the sequential baseline always runs).
    pub shards: Vec<usize>,
    /// Seed shared by every engine (the determinism cross-check needs
    /// identical inputs).
    pub seed: u64,
    /// Ring build + warm-up, virtual seconds.
    pub warm_secs: u64,
    /// Measured window, virtual seconds.
    pub window_secs: u64,
}

impl ScaleParams {
    /// The ISSUE's sweep: 21 / 256 / 1024 nodes × 1 / 2 / 4 / 8 shards.
    pub fn full() -> ScaleParams {
        ScaleParams {
            nodes: vec![21, 256, 1024],
            shards: vec![1, 2, 4, 8],
            seed: 7_777,
            warm_secs: 30,
            window_secs: 60,
        }
    }

    /// A CI-sized sweep.
    pub fn quick() -> ScaleParams {
        ScaleParams {
            nodes: vec![21, 64],
            shards: vec![1, 4],
            seed: 7_777,
            warm_secs: 10,
            window_secs: 20,
        }
    }
}

/// Build a Chord ring with the paper's monitoring stack on every node
/// (§3.1.1 active ring probes plus the §1.3 passive watchpoint suite),
/// warm it, run the measured window; return (build_ms, run_ms, total
/// envelopes sent).
fn chord_run<H: Population>(sim: &mut H, n: usize, warm: u64, window: u64) -> (f64, f64, u64) {
    let t0 = Instant::now();
    let chord = p2_chord::ChordConfig::default();
    let ring = build_ring(sim, n, &chord);
    for a in ring.addrs.clone() {
        sim.install(&a, &p2_monitor::ring::active_probe_program(2))
            .expect("install ring probes");
        sim.install(&a, &p2_monitor::watchpoints::suite_program(5))
            .expect("install watchpoint suite");
    }
    sim.run_for(TimeDelta::from_secs(warm));
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    sim.run_for(TimeDelta::from_secs(window));
    let run_ms = t1.elapsed().as_secs_f64() * 1e3;
    (build_ms, run_ms, sim.net_stats().total_sent())
}

/// Run the sweep. For each population: the sequential baseline first,
/// then each shard count, all at the same seed.
///
/// # Panics
///
/// Panics if any sharded run sends a different envelope count than the
/// sequential baseline — a determinism violation.
pub fn population_scale(params: &ScaleParams) -> Vec<ScaleRow> {
    let mut rows = Vec::new();
    for &n in &params.nodes {
        eprintln!("scale: {n} nodes, sequential baseline...");
        let mut sim = SimHarness::new(SimConfig::default(), NodeConfig::default(), params.seed);
        let (build_ms, base_ms, base_sent) =
            chord_run(&mut sim, n, params.warm_secs, params.window_secs);
        rows.push(ScaleRow {
            nodes: n,
            engine: "sequential",
            shards: 1,
            build_ms,
            run_ms: base_ms,
            speedup: 1.0,
            total_sent: base_sent,
            events: 0,
            barrier_waits: 0,
            mailbox_envelopes: 0,
        });
        for &shards in &params.shards {
            eprintln!("scale: {n} nodes, {shards} shard(s)...");
            let mut sim = ParallelHarness::new(
                SimConfig::default(),
                NodeConfig::default(),
                params.seed,
                shards,
            );
            let (build_ms, run_ms, sent) =
                chord_run(&mut sim, n, params.warm_secs, params.window_secs);
            assert_eq!(
                sent, base_sent,
                "{n} nodes at {shards} shards diverged from the sequential engine"
            );
            let stats = sim.shard_stats();
            rows.push(ScaleRow {
                nodes: n,
                engine: "sharded",
                shards,
                build_ms,
                run_ms,
                speedup: base_ms / run_ms.max(1e-9),
                total_sent: sent,
                events: stats.iter().map(|s| s.events).sum(),
                barrier_waits: stats.iter().map(|s| s.barrier_waits).sum(),
                mailbox_envelopes: stats.iter().map(|s| s.mailbox_envelopes).sum(),
            });
        }
    }
    rows
}

/// Render the sweep as an aligned text table.
pub fn print_scale_table(rows: &[ScaleRow]) {
    println!("\n== Population scaling — sharded conservative windows vs sequential");
    println!(
        "{:<7} {:<11} {:>7} {:>10} {:>10} {:>8} {:>11} {:>9} {:>9} {:>9}",
        "nodes",
        "engine",
        "shards",
        "build_ms",
        "run_ms",
        "speedup",
        "sent",
        "events",
        "barriers",
        "mailbox"
    );
    for r in rows {
        println!(
            "{:<7} {:<11} {:>7} {:>10.1} {:>10.1} {:>8.2} {:>11} {:>9} {:>9} {:>9}",
            r.nodes,
            r.engine,
            r.shards,
            r.build_ms,
            r.run_ms,
            r.speedup,
            r.total_sent,
            r.events,
            r.barrier_waits,
            r.mailbox_envelopes
        );
    }
}

/// Serialize the sweep to JSON (`BENCH_scale.json`). Hand-rolled like
/// `report::to_json`: the schema is flat.
pub fn scale_to_json(rows: &[ScaleRow]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"nodes\": {}, \"engine\": \"{}\", \"shards\": {}, \"build_ms\": {:.3}, \
             \"run_ms\": {:.3}, \"speedup\": {:.3}, \"total_sent\": {}, \"events\": {}, \
             \"barrier_waits\": {}, \"mailbox_envelopes\": {}}}",
            r.nodes,
            r.engine,
            r.shards,
            r.build_ms,
            r.run_ms,
            r.speedup,
            r.total_sent,
            r.events,
            r.barrier_waits,
            r.mailbox_envelopes
        ));
    }
    out.push_str("\n]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature sweep: every engine agrees on the envelope count
    /// (asserted inside `population_scale`) and the rows are sane.
    #[test]
    fn mini_sweep_is_deterministic_across_engines() {
        let params = ScaleParams {
            nodes: vec![6],
            shards: vec![1, 2],
            seed: 11,
            warm_secs: 10,
            window_secs: 10,
        };
        let rows = population_scale(&params);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.total_sent == rows[0].total_sent));
        assert!(rows[1].events > 0 && rows[1].barrier_waits > 0);
        let json = scale_to_json(&rows);
        assert!(json.contains("\"engine\": \"sequential\""));
        assert!(json.contains("\"shards\": 2"));
    }
}
