//! Result rows and table rendering.

use crate::harness::NodeSample;

/// One datapoint of one experiment, as printed and as exported to JSON.
#[derive(Debug, Clone)]
pub struct Row {
    /// Experiment identifier (`fig4`, `e1`, ...).
    pub experiment: String,
    /// X-axis label ("150 rules", "1/8 per sec", "tracing on", ...).
    pub x: String,
    /// Mean CPU utilization, percent.
    pub cpu_percent: f64,
    /// Stddev of CPU utilization.
    pub cpu_std: f64,
    /// Mean memory, bytes.
    pub mem_bytes: f64,
    /// Stddev of memory.
    pub mem_std: f64,
    /// Mean live tuples.
    pub live_tuples: f64,
    /// Mean messages transmitted in the window.
    pub tx_messages: f64,
    /// Mean tuples dispatched in the window (deterministic work proxy).
    pub dispatches: f64,
    /// Mean population-wide CPU percent.
    pub pop_cpu_percent: f64,
    /// Mean population-wide dispatches.
    pub pop_dispatches: f64,
}

impl Row {
    /// Build a row from aggregated samples.
    pub fn from_samples(
        experiment: &str,
        x: impl Into<String>,
        mean: NodeSample,
        std: NodeSample,
    ) -> Row {
        Row {
            experiment: experiment.to_string(),
            x: x.into(),
            cpu_percent: mean.cpu_percent,
            cpu_std: std.cpu_percent,
            mem_bytes: mean.mem_bytes,
            mem_std: std.mem_bytes,
            live_tuples: mean.live_tuples,
            tx_messages: mean.tx_messages,
            dispatches: mean.dispatches,
            pop_cpu_percent: mean.pop_cpu_percent,
            pop_dispatches: mean.pop_dispatches,
        }
    }
}

/// Print an experiment's rows as an aligned text table (the same series
/// the paper's figure plots, one row per x value).
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title}");
    println!(
        "{:<16} {:>9} {:>7} {:>10} {:>11} {:>9} {:>10} {:>9} {:>11}",
        "x", "cpu_%", "±", "mem_KB", "live_tuples", "tx_msgs", "dispatches", "popcpu_%", "popdisp"
    );
    for r in rows {
        println!(
            "{:<16} {:>9.3} {:>7.3} {:>10.1} {:>11.0} {:>9.0} {:>10.0} {:>9.2} {:>11.0}",
            r.x,
            r.cpu_percent,
            r.cpu_std,
            r.mem_bytes / 1024.0,
            r.live_tuples,
            r.tx_messages,
            r.dispatches,
            r.pop_cpu_percent,
            r.pop_dispatches
        );
    }
}

/// Serialize rows to a JSON string (one array per experiment), for
/// EXPERIMENTS.md bookkeeping and external plotting. Hand-rolled: the
/// schema is flat (strings and finite floats), so a serializer crate
/// would be overkill for this one emitter.
pub fn to_json(rows: &[Row]) -> String {
    let mut out = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let fields: [(&str, String); 11] = [
            ("experiment", json_str(&r.experiment)),
            ("x", json_str(&r.x)),
            ("cpu_percent", json_num(r.cpu_percent)),
            ("cpu_std", json_num(r.cpu_std)),
            ("mem_bytes", json_num(r.mem_bytes)),
            ("mem_std", json_num(r.mem_std)),
            ("live_tuples", json_num(r.live_tuples)),
            ("tx_messages", json_num(r.tx_messages)),
            ("dispatches", json_num(r.dispatches)),
            ("pop_cpu_percent", json_num(r.pop_cpu_percent)),
            ("pop_dispatches", json_num(r.pop_dispatches)),
        ];
        for (j, (name, value)) in fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&json_str(name));
            out.push_str(": ");
            out.push_str(value);
        }
        out.push_str("\n  }");
    }
    out.push_str("\n]");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_render_and_serialize() {
        let rows = vec![Row {
            experiment: "fig4".into(),
            x: "50 rules".into(),
            cpu_percent: 1.25,
            cpu_std: 0.1,
            mem_bytes: 2048.0,
            mem_std: 10.0,
            live_tuples: 123.0,
            tx_messages: 456.0,
            dispatches: 789.0,
            pop_cpu_percent: 2.0,
            pop_dispatches: 9999.0,
        }];
        print_table("test", &rows);
        let json = to_json(&rows);
        assert!(json.contains("\"fig4\""));
        assert!(json.contains("50 rules"));
    }
}
