//! # p2-bench — the Section 4 evaluation, regenerated
//!
//! One harness per measurement in the paper's evaluation:
//!
//! | target | paper result |
//! |---|---|
//! | [`experiments::e1_logging_cost`] | §4 text: execution logging adds ~40% CPU and ~66% memory to a running Chord node |
//! | [`experiments::fig4_periodic_rules`] | Figure 4: CPU/memory vs number of periodic rules (1 s period) |
//! | [`experiments::fig5_piggyback_rules`] | Figure 5: CPU/memory vs number of piggy-backed rules with a `bestSucc` lookup |
//! | [`experiments::fig6_consistency_probes`] | Figure 6: CPU/messages/memory/live-tuples vs probe rate (1/32 … 1 s⁻¹) |
//! | [`experiments::fig7_snapshots`] | Figure 7: the same four series for consistent snapshots |
//! | [`experiments::ablation_ring_checks`] | §3.1.1 trade-off: active probing vs passive checking message cost |
//!
//! The measurement protocol mirrors §4: a population of virtual nodes
//! (21 in full mode) runs Chord with fingers fixed every 10 s,
//! stabilization every 5 s, liveness pings every 5 s; the population
//! warms up, then one designated node is measured over a steady-state
//! window, three seeds per datapoint, mean ± standard deviation
//! reported. *CPU utilization* is measured wall-clock processing time of
//! the node's dataflow divided by the virtual window (the substitution
//! argument is in DESIGN.md §2.4); *memory* is live-tuple bytes
//! (tables + tracer); *Tx messages* and *live tuples* are exact counts.
//!
//! Run `cargo run -p p2-bench --release --bin figures -- all` to print
//! every table; `--quick` shrinks populations and windows for smoke
//! testing.

pub mod experiments;
pub mod harness;
pub mod report;
pub mod scale;

pub use harness::{BenchParams, NodeSample};
pub use report::{print_table, Row};
pub use scale::{population_scale, print_scale_table, scale_to_json, ScaleParams, ScaleRow};
