//! CLI: regenerate every table/figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p p2-bench --release --bin figures -- all
//! cargo run -p p2-bench --release --bin figures -- fig6 --quick
//! cargo run -p p2-bench --release --bin figures -- e1 --json out.json
//! ```

use p2_bench::experiments::*;
use p2_bench::report::{print_table, to_json, Row};
use p2_bench::BenchParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let which = args
        .iter()
        .find(|a| !a.starts_with("--") && Some(a.as_str()) != json_path.as_deref())
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let params = if quick {
        BenchParams::quick()
    } else {
        BenchParams::full()
    };
    let fig45_counts: &[usize] = if quick {
        &[0, 50, 100]
    } else {
        &[0, 50, 100, 150, 200, 250]
    };

    eprintln!(
        "p2ql evaluation: {} nodes, {}s warmup, {}s window, seeds {:?}",
        params.nodes, params.warmup_secs, params.window_secs, params.seeds
    );

    let mut all_rows: Vec<Row> = Vec::new();
    let run_e1 = |rows: &mut Vec<Row>| {
        let r = e1_logging_cost(&params);
        let (cpu, mem) = e1_ratios(&r);
        print_table(
            "E1 — execution logging cost (§4: paper +40% CPU, +66% memory)",
            &r,
        );
        println!("   measured: CPU x{cpu:.2}, memory x{mem:.2}");
        rows.extend(r);
    };
    let run_fig4 = |rows: &mut Vec<Row>| {
        let r = fig4_periodic_rules(&params, fig45_counts);
        print_table(
            "Figure 4 — periodic rules, period 1s (paper: ~linear CPU to ~4.5% @250)",
            &r,
        );
        rows.extend(r);
    };
    let run_fig5 = |rows: &mut Vec<Row>| {
        let r = fig5_piggyback_rules(&params, fig45_counts);
        print_table(
            "Figure 5 — piggy-backed rules with state lookup (paper: steeper than Fig 4)",
            &r,
        );
        rows.extend(r);
    };
    let run_fig6 = |rows: &mut Vec<Row>| {
        let r = fig6_consistency_probes(&params);
        print_table(
            "Figure 6 — proactive consistency probes vs rate (paper: superlinear CPU)",
            &r,
        );
        rows.extend(r);
    };
    let run_fig7 = |rows: &mut Vec<Row>| {
        let r = fig7_snapshots(&params);
        print_table(
            "Figure 7 — consistent snapshots vs rate (paper: much cheaper than Fig 6)",
            &r,
        );
        rows.extend(r);
    };
    let run_ablations = |rows: &mut Vec<Row>| {
        let r = ablation_ring_checks(&params);
        print_table(
            "Ablation — ring checks: active probing vs passive (§3.1.1 trade-off)",
            &r,
        );
        rows.extend(r);
        let budgets: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 16] };
        let r = ablation_record_budget(&params, budgets);
        print_table(
            "Ablation — tracer record budget per strand (§3.4 optimization)",
            &r,
        );
        rows.extend(r);
    };

    match which.as_str() {
        "e1" => run_e1(&mut all_rows),
        "fig4" => run_fig4(&mut all_rows),
        "fig5" => run_fig5(&mut all_rows),
        "fig6" => run_fig6(&mut all_rows),
        "fig7" => run_fig7(&mut all_rows),
        "ablations" => run_ablations(&mut all_rows),
        "all" => {
            run_e1(&mut all_rows);
            run_fig4(&mut all_rows);
            run_fig5(&mut all_rows);
            run_fig6(&mut all_rows);
            run_fig7(&mut all_rows);
            run_ablations(&mut all_rows);
        }
        other => {
            eprintln!("unknown experiment '{other}'; use e1|fig4|fig5|fig6|fig7|ablations|all");
            std::process::exit(2);
        }
    }

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&all_rows)).expect("write json");
        eprintln!("wrote {path}");
    }
}
