//! CLI: regenerate every table/figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p p2-bench --release --bin figures -- all
//! cargo run -p p2-bench --release --bin figures -- fig6 --quick
//! cargo run -p p2-bench --release --bin figures -- e1 --json out.json
//! cargo run -p p2-bench --release --bin figures -- fig4 --nodes 256
//! cargo run -p p2-bench --release --bin figures -- scale --json BENCH_scale.json
//! ```
//!
//! `--nodes N` overrides the population size for every figure (and the
//! node sweep for `scale`): the paper's 21-process testbed is the
//! default, but the sharded engine makes 256- or 1024-node populations
//! practical.

use p2_bench::experiments::*;
use p2_bench::report::{print_table, to_json, Row};
use p2_bench::scale::{population_scale, print_scale_table, scale_to_json, ScaleParams};
use p2_bench::BenchParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let nodes_override = args
        .iter()
        .position(|a| a == "--nodes")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--nodes takes a number"));
    let nodes_text = nodes_override.map(|n| n.to_string());
    let flag_values: Vec<&str> = [&json_path, &nodes_text]
        .iter()
        .filter_map(|v| v.as_deref())
        .collect();
    let which = args
        .iter()
        .find(|a| !a.starts_with("--") && !flag_values.contains(&a.as_str()))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let mut params = if quick {
        BenchParams::quick()
    } else {
        BenchParams::full()
    };
    if let Some(n) = nodes_override {
        assert!(n >= 2, "--nodes needs at least 2");
        params.nodes = n;
    }

    // The scaling sweep has its own row schema and JSON file.
    if which == "scale" {
        let mut sp = if quick {
            ScaleParams::quick()
        } else {
            ScaleParams::full()
        };
        if let Some(n) = nodes_override {
            sp.nodes = vec![n];
        }
        let rows = population_scale(&sp);
        print_scale_table(&rows);
        if let Some(path) = json_path {
            std::fs::write(&path, scale_to_json(&rows)).expect("write json");
            eprintln!("wrote {path}");
        }
        return;
    }
    let fig45_counts: &[usize] = if quick {
        &[0, 50, 100]
    } else {
        &[0, 50, 100, 150, 200, 250]
    };

    eprintln!(
        "p2ql evaluation: {} nodes, {}s warmup, {}s window, seeds {:?}",
        params.nodes, params.warmup_secs, params.window_secs, params.seeds
    );

    let mut all_rows: Vec<Row> = Vec::new();
    let run_e1 = |rows: &mut Vec<Row>| {
        let r = e1_logging_cost(&params);
        let (cpu, mem) = e1_ratios(&r);
        print_table(
            "E1 — execution logging cost (§4: paper +40% CPU, +66% memory)",
            &r,
        );
        println!("   measured: CPU x{cpu:.2}, memory x{mem:.2}");
        rows.extend(r);
    };
    let run_fig4 = |rows: &mut Vec<Row>| {
        let r = fig4_periodic_rules(&params, fig45_counts);
        print_table(
            "Figure 4 — periodic rules, period 1s (paper: ~linear CPU to ~4.5% @250)",
            &r,
        );
        rows.extend(r);
    };
    let run_fig5 = |rows: &mut Vec<Row>| {
        let r = fig5_piggyback_rules(&params, fig45_counts);
        print_table(
            "Figure 5 — piggy-backed rules with state lookup (paper: steeper than Fig 4)",
            &r,
        );
        rows.extend(r);
    };
    let run_fig6 = |rows: &mut Vec<Row>| {
        let r = fig6_consistency_probes(&params);
        print_table(
            "Figure 6 — proactive consistency probes vs rate (paper: superlinear CPU)",
            &r,
        );
        rows.extend(r);
    };
    let run_fig7 = |rows: &mut Vec<Row>| {
        let r = fig7_snapshots(&params);
        print_table(
            "Figure 7 — consistent snapshots vs rate (paper: much cheaper than Fig 6)",
            &r,
        );
        rows.extend(r);
    };
    let run_ablations = |rows: &mut Vec<Row>| {
        let r = ablation_ring_checks(&params);
        print_table(
            "Ablation — ring checks: active probing vs passive (§3.1.1 trade-off)",
            &r,
        );
        rows.extend(r);
        let budgets: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 16] };
        let r = ablation_record_budget(&params, budgets);
        print_table(
            "Ablation — tracer record budget per strand (§3.4 optimization)",
            &r,
        );
        rows.extend(r);
    };

    match which.as_str() {
        "e1" => run_e1(&mut all_rows),
        "fig4" => run_fig4(&mut all_rows),
        "fig5" => run_fig5(&mut all_rows),
        "fig6" => run_fig6(&mut all_rows),
        "fig7" => run_fig7(&mut all_rows),
        "ablations" => run_ablations(&mut all_rows),
        "all" => {
            run_e1(&mut all_rows);
            run_fig4(&mut all_rows);
            run_fig5(&mut all_rows);
            run_fig6(&mut all_rows);
            run_fig7(&mut all_rows);
            run_ablations(&mut all_rows);
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'; use e1|fig4|fig5|fig6|fig7|ablations|scale|all"
            );
            std::process::exit(2);
        }
    }

    if let Some(path) = json_path {
        std::fs::write(&path, to_json(&all_rows)).expect("write json");
        eprintln!("wrote {path}");
    }
}
