//! Ring identifier algebra.
//!
//! Chord places nodes and keys on a circular identifier space and every
//! correctness rule in the paper (`l1`–`l3`, `ri1`–`ri6`, …) is phrased in
//! terms of *ring interval membership*: `K in (NID, SID]`. The paper's P2
//! prototype uses 160-bit SHA-1 identifiers; we use 64-bit identifiers
//! (documented substitution in DESIGN.md §2.4 — only the ordering and
//! interval algebra matter to the rules, the width is a parameter).
//!
//! [`RingId`] provides wrapping arithmetic (distances on the ring) and
//! [`Interval`] provides membership with any combination of open/closed
//! endpoints, including the degenerate `a == b` cases that Chord relies on
//! (`(a, a]` denotes the *entire ring*).

use std::fmt;

/// A 64-bit identifier on the Chord ring. Arithmetic wraps modulo 2^64.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RingId(pub u64);

impl RingId {
    /// The zero identifier.
    pub const ZERO: RingId = RingId(0);
    /// The largest identifier.
    pub const MAX: RingId = RingId(u64::MAX);

    /// Clockwise distance from `self` to `other` (wrapping).
    ///
    /// `a.distance_to(b)` is the number of steps clockwise from `a` to `b`;
    /// it is `0` iff `a == b`.
    pub fn distance_to(self, other: RingId) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// Wrapping addition, used e.g. to compute finger targets `n + 2^i`.
    pub fn wrapping_add(self, k: u64) -> RingId {
        RingId(self.0.wrapping_add(k))
    }

    /// Wrapping subtraction.
    pub fn wrapping_sub(self, k: u64) -> RingId {
        RingId(self.0.wrapping_sub(k))
    }

    /// The `i`-th finger target of this identifier: `self + 2^i (mod 2^64)`.
    ///
    /// `i` must be below 64.
    pub fn finger_target(self, i: u32) -> RingId {
        debug_assert!(i < 64, "finger index out of range");
        self.wrapping_add(1u64 << i)
    }
}

impl fmt::Display for RingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl fmt::Debug for RingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({:#x})", self.0)
    }
}

impl From<u64> for RingId {
    fn from(v: u64) -> Self {
        RingId(v)
    }
}

/// A ring interval with independently open or closed endpoints.
///
/// OverLog's `X in (A, B]` expression compiles to
/// `Interval { lo: A, hi: B, lo_closed: false, hi_closed: true }`.
///
/// Degenerate intervals (`lo == hi`) follow the Chord conventions the
/// paper's rules depend on:
///
/// * `(a, a]`, `[a, a)`, `(a, a)` — the half-open and open empty-looking
///   intervals denote (almost) the **whole ring**: lookups must make
///   progress even when a node is its own successor. `(a, a]` and `[a, a)`
///   contain every identifier; `(a, a)` contains everything except `a`.
/// * `[a, a]` — the closed degenerate interval contains exactly `a`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Lower (counter-clockwise) endpoint.
    pub lo: RingId,
    /// Upper (clockwise) endpoint.
    pub hi: RingId,
    /// Whether `lo` itself is included.
    pub lo_closed: bool,
    /// Whether `hi` itself is included.
    pub hi_closed: bool,
}

impl Interval {
    /// The OverLog `(lo, hi]` interval — the common Chord successor test.
    pub fn open_closed(lo: RingId, hi: RingId) -> Self {
        Interval {
            lo,
            hi,
            lo_closed: false,
            hi_closed: true,
        }
    }

    /// The OverLog `(lo, hi)` interval.
    pub fn open_open(lo: RingId, hi: RingId) -> Self {
        Interval {
            lo,
            hi,
            lo_closed: false,
            hi_closed: false,
        }
    }

    /// The OverLog `[lo, hi)` interval.
    pub fn closed_open(lo: RingId, hi: RingId) -> Self {
        Interval {
            lo,
            hi,
            lo_closed: true,
            hi_closed: false,
        }
    }

    /// The OverLog `[lo, hi]` interval.
    pub fn closed_closed(lo: RingId, hi: RingId) -> Self {
        Interval {
            lo,
            hi,
            lo_closed: true,
            hi_closed: true,
        }
    }

    /// Ring membership test.
    ///
    /// Implemented over 128-bit clockwise distances from `lo` so the
    /// wrap-around and degenerate cases fall out of one comparison: with
    /// `dx = x - lo (mod 2^64)` and `dh = hi - lo (mod 2^64)`, `x` is in
    /// the interval iff `dx` lies between `0` and `dh` under the endpoint
    /// closedness — where a degenerate non-`[a,a]` interval promotes `dh`
    /// to the full ring size `2^64`.
    pub fn contains(&self, x: RingId) -> bool {
        const RING: u128 = 1 << 64;
        let dx = self.lo.distance_to(x) as u128;
        let mut dh = self.lo.distance_to(self.hi) as u128;
        if dh == 0 {
            if self.lo_closed && self.hi_closed {
                // [a, a] contains exactly a.
                return x == self.lo;
            }
            // (a, a], [a, a), (a, a): whole ring (modulo the open ends).
            // The point `a` is simultaneously the lower and upper endpoint,
            // so it is a member iff either endpoint is closed — this makes
            // `K in (n, n]` true for every K on a single-node ring, which
            // Chord's lookup rule `l1` requires for progress.
            if dx == 0 {
                return self.lo_closed || self.hi_closed;
            }
            dh = RING;
        }
        let lo_ok = if self.lo_closed { true } else { dx > 0 };
        let hi_ok = if self.hi_closed { dx <= dh } else { dx < dh };
        lo_ok && hi_ok
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}, {}{}",
            if self.lo_closed { '[' } else { '(' },
            self.lo,
            self.hi,
            if self.hi_closed { ']' } else { ')' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn id(v: u64) -> RingId {
        RingId(v)
    }

    #[test]
    fn distance_wraps() {
        assert_eq!(id(5).distance_to(id(7)), 2);
        assert_eq!(id(7).distance_to(id(5)), u64::MAX - 1);
        assert_eq!(id(0).distance_to(id(0)), 0);
        assert_eq!(RingId::MAX.distance_to(id(0)), 1);
    }

    #[test]
    fn finger_targets() {
        assert_eq!(id(0).finger_target(0), id(1));
        assert_eq!(id(0).finger_target(10), id(1024));
        assert_eq!(RingId::MAX.finger_target(0), id(0)); // wraps
    }

    #[test]
    fn simple_membership_no_wrap() {
        let i = Interval::open_closed(id(10), id(20));
        assert!(!i.contains(id(10)));
        assert!(i.contains(id(11)));
        assert!(i.contains(id(20)));
        assert!(!i.contains(id(21)));
        assert!(!i.contains(id(5)));
    }

    #[test]
    fn membership_wraps_around_zero() {
        let i = Interval::open_closed(id(u64::MAX - 2), id(3));
        assert!(!i.contains(id(u64::MAX - 2)));
        assert!(i.contains(id(u64::MAX)));
        assert!(i.contains(id(0)));
        assert!(i.contains(id(3)));
        assert!(!i.contains(id(4)));
        assert!(!i.contains(id(1000)));
    }

    #[test]
    fn degenerate_intervals() {
        // (a, a] is the whole ring.
        let full = Interval::open_closed(id(42), id(42));
        assert!(full.contains(id(42)));
        assert!(full.contains(id(0)));
        assert!(full.contains(id(u64::MAX)));
        // [a, a] is exactly {a}.
        let point = Interval::closed_closed(id(42), id(42));
        assert!(point.contains(id(42)));
        assert!(!point.contains(id(43)));
        // (a, a) is everything but a.
        let punct = Interval::open_open(id(42), id(42));
        assert!(!punct.contains(id(42)));
        assert!(punct.contains(id(43)));
        assert!(punct.contains(id(41)));
        // [a, a) is the whole ring including a (dx=0 passes the closed lo,
        // and is strictly below the promoted full-ring dh).
        let half = Interval::closed_open(id(42), id(42));
        assert!(half.contains(id(42)));
        assert!(half.contains(id(0)));
    }

    #[test]
    fn closed_open_basics() {
        let i = Interval::closed_open(id(10), id(20));
        assert!(i.contains(id(10)));
        assert!(!i.contains(id(20)));
        assert!(i.contains(id(19)));
    }

    proptest! {
        /// Every point is in the full-ring degenerate `(a, a]` interval.
        #[test]
        fn prop_full_ring(a: u64, x: u64) {
            prop_assert!(Interval::open_closed(id(a), id(a)).contains(id(x)));
        }

        /// `(a,b]` and `(b,a]` partition the ring when `a != b`:
        /// every `x` is in exactly one of the two.
        #[test]
        fn prop_partition(a: u64, b: u64, x: u64) {
            prop_assume!(a != b);
            let ab = Interval::open_closed(id(a), id(b)).contains(id(x));
            let ba = Interval::open_closed(id(b), id(a)).contains(id(x));
            prop_assert!(ab ^ ba, "x must be in exactly one half");
        }

        /// Closed endpoints are members; the matching open interval
        /// excludes them.
        #[test]
        fn prop_endpoints(a: u64, b: u64) {
            prop_assume!(a != b);
            prop_assert!(Interval::closed_closed(id(a), id(b)).contains(id(a)));
            prop_assert!(Interval::closed_closed(id(a), id(b)).contains(id(b)));
            prop_assert!(!Interval::open_open(id(a), id(b)).contains(id(a)));
            prop_assert!(!Interval::open_open(id(a), id(b)).contains(id(b)));
        }

        /// Membership in `(a,b]` agrees with a model using 128-bit
        /// unwrapped coordinates.
        #[test]
        fn prop_model_check(a: u64, b: u64, x: u64) {
            prop_assume!(a != b);
            let da = 0u128;
            let db = id(a).distance_to(id(b)) as u128;
            let dx = id(a).distance_to(id(x)) as u128;
            let model = dx > da && dx <= db;
            prop_assert_eq!(
                Interval::open_closed(id(a), id(b)).contains(id(x)),
                model
            );
        }

        /// Distances compose: d(a,b) + d(b,c) == d(a,c) (mod 2^64).
        #[test]
        fn prop_distance_additive(a: u64, b: u64, c: u64) {
            let lhs = id(a).distance_to(id(b)).wrapping_add(id(b).distance_to(id(c)));
            prop_assert_eq!(lhs, id(a).distance_to(id(c)));
        }
    }
}
