//! Immutable tuples.
//!
//! Tuples are the universal currency of P2: table rows, inter-node
//! messages, and internal events are all tuples (§2 of the paper). A tuple
//! is a relation name plus a vector of [`Value`]s; **field 0 is the
//! address of the node where the tuple lives** (the `@` location specifier
//! of OverLog desugars to field 0).
//!
//! Tuples are immutable and cheaply cloneable (`Arc` payloads). Tuple
//! *identity* for tracing purposes — the node-unique [`TupleId`] of
//! §2.1.3 — is assigned by the node runtime when a tuple is first created
//! there, and lives outside the tuple itself so that the same content
//! received on two nodes gets two distinct local IDs, as in the paper's
//! `tupleTable` example.

use crate::addr::Addr;
use crate::error::ValueError;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A node-local tuple identifier (§2.1.3).
///
/// IDs are unique *per node*; the `tupleTable` relates a local ID to the
/// (source address, source ID) pair for tuples that crossed the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TupleId(pub u64);

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An immutable, named tuple.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    name: Arc<str>,
    vals: Arc<[Value]>,
}

impl Tuple {
    /// Build a tuple from a relation name and its field values.
    ///
    /// By convention `vals[0]` should be the location address, but the
    /// constructor does not enforce it: introspection tuples and test
    /// fixtures sometimes omit it, and the network layer checks locations
    /// where it matters.
    pub fn new(name: impl AsRef<str>, vals: impl IntoIterator<Item = Value>) -> Tuple {
        Tuple {
            name: Arc::from(name.as_ref()),
            vals: vals.into_iter().collect(),
        }
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interned relation name (cheap to clone).
    pub fn name_arc(&self) -> Arc<str> {
        self.name.clone()
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.vals.len()
    }

    /// All field values.
    pub fn values(&self) -> &[Value] {
        &self.vals
    }

    /// The shared field-value slice (cheap to clone, like
    /// [`Tuple::name_arc`]). Lets callers that need an owned copy of
    /// every field share the tuple's own allocation.
    pub fn values_arc(&self) -> Arc<[Value]> {
        self.vals.clone()
    }

    /// Field accessor.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.vals.get(i)
    }

    /// The location field (field 0), if it is an address.
    pub fn location(&self) -> Result<&Addr, ValueError> {
        match self.vals.first() {
            Some(Value::Addr(a)) => Ok(a),
            Some(other) => Err(ValueError::type_mismatch("addr", other)),
            None => Err(ValueError::MissingField { index: 0 }),
        }
    }

    /// Rough in-memory footprint in bytes, used by the memory-utilization
    /// benchmarks (Figures 4–7 plot process memory / live tuples; we
    /// report live-tuple bytes from this estimate).
    pub fn approx_bytes(&self) -> usize {
        fn val_bytes(v: &Value) -> usize {
            std::mem::size_of::<Value>()
                + match v {
                    Value::Str(s) => s.len(),
                    Value::Addr(a) => a.as_str().len(),
                    Value::List(l) => l.iter().map(val_bytes).sum(),
                    _ => 0,
                }
        }
        std::mem::size_of::<Tuple>()
            + self.name.len()
            + self.vals.iter().map(val_bytes).sum::<usize>()
    }

    /// Project selected fields into a new tuple with a new name.
    pub fn project(&self, name: impl AsRef<str>, fields: &[usize]) -> Result<Tuple, ValueError> {
        let mut vals = Vec::with_capacity(fields.len());
        for &i in fields {
            vals.push(
                self.get(i)
                    .cloned()
                    .ok_or(ValueError::MissingField { index: i })?,
            );
        }
        Ok(Tuple::new(name, vals))
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, v) in self.vals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        Tuple::new("link", [Value::addr("a"), Value::addr("b"), Value::Int(3)])
    }

    #[test]
    fn accessors() {
        let t = t();
        assert_eq!(t.name(), "link");
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(2), Some(&Value::Int(3)));
        assert_eq!(t.get(3), None);
        assert_eq!(t.location().unwrap().as_str(), "a");
    }

    #[test]
    fn location_requires_addr() {
        let bad = Tuple::new("x", [Value::Int(1)]);
        assert!(bad.location().is_err());
        let empty = Tuple::new("x", []);
        assert!(matches!(
            empty.location(),
            Err(ValueError::MissingField { index: 0 })
        ));
    }

    #[test]
    fn projection() {
        let p = t().project("out", &[0, 2]).unwrap();
        assert_eq!(p.name(), "out");
        assert_eq!(p.values(), &[Value::addr("a"), Value::Int(3)]);
        assert!(t().project("out", &[7]).is_err());
    }

    #[test]
    fn display_format() {
        assert_eq!(t().to_string(), "link(a, b, 3)");
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(t(), t());
        let other = Tuple::new("link", [Value::addr("a"), Value::addr("b"), Value::Int(4)]);
        assert_ne!(t(), other);
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let small = Tuple::new("x", [Value::Int(1)]);
        let big = Tuple::new("x", [Value::str("a".repeat(100))]);
        assert!(big.approx_bytes() > small.approx_bytes());
    }
}
