//! Typed errors for value-level operations.

use crate::value::Value;
use std::fmt;

/// An error produced while evaluating an expression over [`Value`]s.
///
/// The runtime treats these as *rule-evaluation failures*, not crashes: a
/// rule whose expression fails for a given binding simply produces no
/// output for that binding (and the failure is counted in the node's
/// diagnostics). Malformed remote input must never panic a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueError {
    /// An operand had the wrong type.
    TypeMismatch {
        /// What the operation expected.
        expected: &'static str,
        /// The type it found.
        found: &'static str,
    },
    /// A binary operator was applied to an unsupported pair of types.
    BadOperands {
        /// The operator symbol.
        op: &'static str,
        /// Left operand type.
        lhs: &'static str,
        /// Right operand type.
        rhs: &'static str,
    },
    /// Integer or float division by zero.
    DivisionByZero,
    /// A tuple field index was out of range.
    MissingField {
        /// The requested index.
        index: usize,
    },
}

impl ValueError {
    /// Construct a [`ValueError::TypeMismatch`] from the found value.
    pub fn type_mismatch(expected: &'static str, found: &Value) -> ValueError {
        ValueError::TypeMismatch {
            expected,
            found: found.type_name(),
        }
    }

    /// Construct a [`ValueError::BadOperands`] from the operand values.
    pub fn bad_op(op: &'static str, lhs: &Value, rhs: &Value) -> ValueError {
        ValueError::BadOperands {
            op,
            lhs: lhs.type_name(),
            rhs: rhs.type_name(),
        }
    }
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ValueError::BadOperands { op, lhs, rhs } => {
                write!(f, "operator '{op}' not defined for {lhs} and {rhs}")
            }
            ValueError::DivisionByZero => write!(f, "division by zero"),
            ValueError::MissingField { index } => {
                write!(f, "tuple field {index} out of range")
            }
        }
    }
}

impl std::error::Error for ValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ValueError::type_mismatch("addr", &Value::Int(1));
        assert_eq!(e.to_string(), "type mismatch: expected addr, found int");
        let e = ValueError::bad_op("+", &Value::Bool(true), &Value::Bool(false));
        assert_eq!(e.to_string(), "operator '+' not defined for bool and bool");
        assert_eq!(ValueError::DivisionByZero.to_string(), "division by zero");
        assert_eq!(
            ValueError::MissingField { index: 3 }.to_string(),
            "tuple field 3 out of range"
        );
    }
}
