//! Dynamically-typed values.
//!
//! OverLog is dynamically typed: a tuple field can hold an address, a ring
//! identifier, a number, a string, a boolean, a timestamp, or a list (the
//! paper's quickstart rule builds paths with `[B,A] + P`). [`Value`] is the
//! closed set of those types together with the arithmetic and comparison
//! semantics the paper's rules rely on:
//!
//! * `Id` arithmetic **wraps** on the 2^64 ring (`D := K - FID - 1` in
//!   lookup rule `l2` is a ring distance);
//! * `Int / Int` produces a `Float` (rule `cs9` divides two counts to get
//!   a consistency metric in `[0, 1]` that is then compared against
//!   `0.5`);
//! * `Str + Str` concatenates (rule `sr10` builds channel keys as
//!   `Remote + E`), and mixed `+` with a string on either side coerces the
//!   other operand to its display form;
//! * `List + List` concatenates, and `List + x` / `x + List`
//!   appends/prepends;
//! * comparison is a **total order** across all variants (variant rank
//!   first, then value; floats via `f64::total_cmp`) so values can key
//!   tables deterministically.

use crate::addr::Addr;
use crate::error::ValueError;
use crate::ring::RingId;
use crate::time::Time;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single OverLog value.
#[derive(Clone, Debug)]
pub enum Value {
    /// Boolean (comparison results, flags such as `ruleExec`'s is-event).
    Bool(bool),
    /// Signed integer (counts, thresholds, wrap counters).
    Int(i64),
    /// Floating point (consistency metrics, rates).
    Float(f64),
    /// Ring identifier (node IDs, keys; arithmetic wraps mod 2^64).
    Id(RingId),
    /// Timestamp (produced by `f_now()`, consumed by profiling rules).
    Time(Time),
    /// Interned string.
    Str(Arc<str>),
    /// Node address (field 0 of every tuple).
    Addr(Addr),
    /// Immutable list (paths in the quickstart example).
    List(Arc<[Value]>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for addresses.
    pub fn addr(s: impl AsRef<str>) -> Value {
        Value::Addr(Addr::new(s))
    }

    /// Convenience constructor for ring IDs.
    pub fn id(v: u64) -> Value {
        Value::Id(RingId(v))
    }

    /// Convenience constructor for lists.
    pub fn list(vs: impl IntoIterator<Item = Value>) -> Value {
        Value::List(vs.into_iter().collect())
    }

    /// A short name of this value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Id(_) => "id",
            Value::Time(_) => "time",
            Value::Str(_) => "str",
            Value::Addr(_) => "addr",
            Value::List(_) => "list",
        }
    }

    /// Rank used for the cross-variant total order.
    fn rank(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Id(_) => 3,
            Value::Time(_) => 4,
            Value::Str(_) => 5,
            Value::Addr(_) => 6,
            Value::List(_) => 7,
        }
    }

    /// Extract an address, or fail with a typed error.
    pub fn as_addr(&self) -> Result<&Addr, ValueError> {
        match self {
            Value::Addr(a) => Ok(a),
            other => Err(ValueError::type_mismatch("addr", other)),
        }
    }

    /// Coerce to an address, accepting strings. `Str` and `Addr` compare
    /// and hash identically (rules match address fields against string
    /// literals like `"-"`), so address-valued strings flow through
    /// programs freely; Rust-side extractors use this to read them.
    pub fn to_addr(&self) -> Option<Addr> {
        match self {
            Value::Addr(a) => Some(a.clone()),
            Value::Str(s) => Some(Addr::new(&**s)),
            _ => None,
        }
    }

    /// Extract a ring identifier, accepting non-negative ints as IDs
    /// (OverLog literals like `0` are parsed as ints).
    pub fn as_ring_id(&self) -> Result<RingId, ValueError> {
        match self {
            Value::Id(i) => Ok(*i),
            Value::Int(n) if *n >= 0 => Ok(RingId(*n as u64)),
            other => Err(ValueError::type_mismatch("id", other)),
        }
    }

    /// Extract an integer.
    pub fn as_int(&self) -> Result<i64, ValueError> {
        match self {
            Value::Int(n) => Ok(*n),
            other => Err(ValueError::type_mismatch("int", other)),
        }
    }

    /// Extract a boolean.
    pub fn as_bool(&self) -> Result<bool, ValueError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ValueError::type_mismatch("bool", other)),
        }
    }

    /// Extract a timestamp, accepting raw ints as microseconds.
    pub fn as_time(&self) -> Result<Time, ValueError> {
        match self {
            Value::Time(t) => Ok(*t),
            Value::Int(n) if *n >= 0 => Ok(Time(*n as u64)),
            other => Err(ValueError::type_mismatch("time", other)),
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Result<&str, ValueError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(ValueError::type_mismatch("str", other)),
        }
    }

    /// Numeric view used by mixed int/float arithmetic.
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Addition / concatenation. See module docs for the full semantics.
    pub fn add(&self, rhs: &Value) -> Result<Value, ValueError> {
        use Value::*;
        Ok(match (self, rhs) {
            (Int(a), Int(b)) => Int(a.wrapping_add(*b)),
            (Id(a), Id(b)) => Id(RingId(a.0.wrapping_add(b.0))),
            (Id(a), Int(b)) => Id(RingId(a.0.wrapping_add(*b as u64))),
            (Int(a), Id(b)) => Id(RingId((*a as u64).wrapping_add(b.0))),
            // Time ± Int treats the integer as WHOLE SECONDS: the paper's
            // rules write `T < f_now() - 20` meaning twenty seconds (rule
            // cs9). Raw-microsecond arithmetic uses Time - Time -> Int.
            (Time(a), Int(b)) => Time(crate::time::Time(
                a.0.wrapping_add((*b as u64).wrapping_mul(1_000_000)),
            )),
            (Int(a), Time(b)) => Time(crate::time::Time(
                (*a as u64).wrapping_mul(1_000_000).wrapping_add(b.0),
            )),
            (List(a), List(b)) => List(a.iter().chain(b.iter()).cloned().collect()),
            (List(a), b) => List(
                a.iter()
                    .cloned()
                    .chain(std::iter::once(b.clone()))
                    .collect(),
            ),
            (a, List(b)) => List(
                std::iter::once(a.clone())
                    .chain(b.iter().cloned())
                    .collect(),
            ),
            (Str(a), Str(b)) => Value::str(format!("{a}{b}")),
            (Str(a), b) => Value::str(format!("{a}{b}")),
            (a, Str(b)) => Value::str(format!("{a}{b}")),
            // Mixed string-ish concatenation used by sr10 (`Remote + E`):
            // addr + anything coerces through display.
            (Addr(a), b) => Value::str(format!("{a}{b}")),
            (a, Addr(b)) => Value::str(format!("{a}{b}")),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Float(x + y),
                _ => return Err(ValueError::bad_op("+", a, b)),
            },
        })
    }

    /// Subtraction. `Id - Id` and `Id - Int` wrap on the ring; `Time -
    /// Time` yields the difference in microseconds as an `Int` (profiling
    /// rules `ep3`/`ep4` subtract timestamps and sum the results).
    pub fn sub(&self, rhs: &Value) -> Result<Value, ValueError> {
        use Value::*;
        Ok(match (self, rhs) {
            (Int(a), Int(b)) => Int(a.wrapping_sub(*b)),
            (Id(a), Id(b)) => Id(RingId(a.0.wrapping_sub(b.0))),
            (Id(a), Int(b)) => Id(RingId(a.0.wrapping_sub(*b as u64))),
            (Time(a), Time(b)) => Int(a.0.wrapping_sub(b.0) as i64),
            // Int interpreted as seconds; see `add`.
            (Time(a), Int(b)) => Time(crate::time::Time(
                a.0.wrapping_sub((*b as u64).wrapping_mul(1_000_000)),
            )),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Float(x - y),
                _ => return Err(ValueError::bad_op("-", a, b)),
            },
        })
    }

    /// Multiplication.
    pub fn mul(&self, rhs: &Value) -> Result<Value, ValueError> {
        use Value::*;
        Ok(match (self, rhs) {
            (Int(a), Int(b)) => Int(a.wrapping_mul(*b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Float(x * y),
                _ => return Err(ValueError::bad_op("*", a, b)),
            },
        })
    }

    /// Division. `Int / Int` deliberately yields a `Float`: the paper's
    /// rule `cs9` computes `RespCount / LookupCount` as a ratio in
    /// `[0, 1]`. Division by zero is a typed error, not a panic.
    pub fn div(&self, rhs: &Value) -> Result<Value, ValueError> {
        match (self.as_f64(), rhs.as_f64()) {
            (Some(_), Some(0.0)) => Err(ValueError::DivisionByZero),
            (Some(x), Some(y)) => Ok(Value::Float(x / y)),
            _ => Err(ValueError::bad_op("/", self, rhs)),
        }
    }

    /// Remainder on integers.
    pub fn rem(&self, rhs: &Value) -> Result<Value, ValueError> {
        match (self, rhs) {
            (Value::Int(_), Value::Int(0)) => Err(ValueError::DivisionByZero),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_rem(*b))),
            (a, b) => Err(ValueError::bad_op("%", a, b)),
        }
    }

    /// Total-order comparison across all variants.
    ///
    /// Numeric variants (`Int`/`Float`) compare by value against each
    /// other; otherwise different variants order by rank. `Id` vs `Int`
    /// also compares numerically (OverLog literals are ints, ring fields
    /// are IDs, and rules like `os4` compare them: `Count >= 3`).
    pub fn total_cmp(&self, rhs: &Value) -> Ordering {
        use Value::*;
        match (self, rhs) {
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Id(a), Id(b)) => a.cmp(b),
            (Id(a), Int(b)) if *b >= 0 => a.0.cmp(&(*b as u64)),
            (Int(a), Id(b)) if *a >= 0 => (*a as u64).cmp(&b.0),
            (Time(a), Time(b)) => a.cmp(b),
            (Time(a), Int(b)) if *b >= 0 => a.0.cmp(&(*b as u64)),
            (Int(a), Time(b)) if *a >= 0 => (*a as u64).cmp(&b.0),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Addr(a), Addr(b)) => a.cmp(b),
            // Str vs Addr compare textually: rules match address fields
            // against string literals like "-" (rule rp1).
            (Str(a), Addr(b)) => (**a).cmp(b.as_str()),
            (Addr(a), Str(b)) => a.as_str().cmp(&**b),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.total_cmp(y) {
                        Ordering::Equal => continue,
                        o => return o,
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash must agree with the Eq above: numeric variants that can
        // compare equal across variants hash through a canonical form.
        match self {
            Value::Bool(b) => {
                state.write_u8(0);
                b.hash(state);
            }
            Value::Int(n) => {
                if *n >= 0 {
                    // Non-negative ints may equal Ids/Times: canonical u64.
                    state.write_u8(100);
                    state.write_u64(*n as u64);
                } else {
                    state.write_u8(1);
                    state.write_i64(*n);
                }
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(f.to_bits());
            }
            Value::Id(i) => {
                state.write_u8(100);
                state.write_u64(i.0);
            }
            Value::Time(t) => {
                state.write_u8(100);
                state.write_u64(t.0);
            }
            Value::Str(s) => {
                state.write_u8(101);
                s.hash(state);
            }
            Value::Addr(a) => {
                state.write_u8(101);
                a.as_str().hash(state);
            }
            Value::List(l) => {
                state.write_u8(7);
                for v in l.iter() {
                    v.hash(state);
                }
                state.write_usize(l.len());
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Id(i) => write!(f, "{i}"),
            Value::Time(t) => write!(f, "{t}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Addr(a) => write!(f, "{a}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<RingId> for Value {
    fn from(i: RingId) -> Self {
        Value::Id(i)
    }
}
impl From<Time> for Value {
    fn from(t: Time) -> Self {
        Value::Time(t)
    }
}
impl From<Addr> for Value {
    fn from(a: Addr) -> Self {
        Value::Addr(a)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn int_arithmetic() {
        let a = Value::Int(7);
        let b = Value::Int(3);
        assert_eq!(a.add(&b).unwrap(), Value::Int(10));
        assert_eq!(a.sub(&b).unwrap(), Value::Int(4));
        assert_eq!(a.mul(&b).unwrap(), Value::Int(21));
        assert_eq!(a.rem(&b).unwrap(), Value::Int(1));
    }

    #[test]
    fn int_division_yields_float() {
        // cs9: RespCount / LookupCount must be a ratio, not truncated.
        let r = Value::Int(3).div(&Value::Int(4)).unwrap();
        assert_eq!(r, Value::Float(0.75));
        assert!(r.total_cmp(&Value::Float(0.5)) == Ordering::Greater);
    }

    #[test]
    fn division_by_zero_is_error() {
        assert!(matches!(
            Value::Int(1).div(&Value::Int(0)),
            Err(ValueError::DivisionByZero)
        ));
        assert!(matches!(
            Value::Int(1).rem(&Value::Int(0)),
            Err(ValueError::DivisionByZero)
        ));
    }

    #[test]
    fn id_arithmetic_wraps() {
        // l2: D := K - FID - 1 is a ring distance.
        let k = Value::id(5);
        let fid = Value::id(10);
        let d = k.sub(&fid).unwrap().sub(&Value::Int(1)).unwrap();
        assert_eq!(d, Value::Id(RingId(5u64.wrapping_sub(10).wrapping_sub(1))));
    }

    #[test]
    fn time_subtraction_gives_micros() {
        let a = Value::Time(Time::from_secs(2));
        let b = Value::Time(Time::from_secs(1));
        assert_eq!(a.sub(&b).unwrap(), Value::Int(1_000_000));
    }

    #[test]
    fn time_int_arithmetic_is_in_seconds() {
        // cs9: `T < f_now() - 20` subtracts twenty SECONDS.
        let now = Value::Time(Time::from_secs(100));
        assert_eq!(
            now.sub(&Value::Int(20)).unwrap(),
            Value::Time(Time::from_secs(80))
        );
        assert_eq!(
            now.add(&Value::Int(5)).unwrap(),
            Value::Time(Time::from_secs(105))
        );
    }

    #[test]
    fn list_concat_and_append() {
        // Quickstart: [B,A] + P prepends the new hop list to the path.
        let ba = Value::list([Value::str("b"), Value::str("a")]);
        let p = Value::list([Value::str("a"), Value::str("c")]);
        let got = ba.add(&p).unwrap();
        assert_eq!(
            got,
            Value::list([
                Value::str("b"),
                Value::str("a"),
                Value::str("a"),
                Value::str("c")
            ])
        );
        let appended = p.add(&Value::Int(9)).unwrap();
        assert_eq!(
            appended,
            Value::list([Value::str("a"), Value::str("c"), Value::Int(9)])
        );
    }

    #[test]
    fn string_concat_coerces() {
        // sr10 builds channel keys as Remote + E.
        let got = Value::addr("n3").add(&Value::Int(7)).unwrap();
        assert_eq!(got, Value::str("n37"));
    }

    #[test]
    fn addr_equals_str() {
        // rp1 compares a predecessor address against the literal "-".
        assert_eq!(Value::addr("-"), Value::str("-"));
        assert_ne!(Value::addr("n1"), Value::str("-"));
    }

    #[test]
    fn id_int_cross_compare() {
        assert_eq!(Value::id(3), Value::Int(3));
        assert!(Value::id(3) > Value::Int(2));
        assert!(Value::Int(2) < Value::id(3));
        assert_ne!(Value::id(3), Value::Int(-3));
    }

    #[test]
    fn eq_implies_same_hash() {
        let pairs = [
            (Value::id(3), Value::Int(3)),
            (Value::addr("-"), Value::str("-")),
            (Value::Time(Time(5)), Value::Int(5)),
        ];
        for (a, b) in pairs {
            assert_eq!(a, b);
            assert_eq!(h(&a), h(&b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn accessors_reject_wrong_types() {
        assert!(Value::Int(1).as_addr().is_err());
        assert!(Value::str("x").as_int().is_err());
        assert!(Value::Int(1).as_bool().is_err());
        assert!(Value::Bool(true).as_time().is_err());
        assert!(Value::Int(1).as_str().is_err());
        assert!(Value::str("x").as_ring_id().is_err());
        // Coercions that are allowed:
        assert_eq!(Value::Int(7).as_ring_id().unwrap(), RingId(7));
        assert_eq!(Value::Int(5).as_time().unwrap(), Time(5));
        assert_eq!(Value::str("n").to_addr().unwrap().as_str(), "n");
        assert_eq!(Value::addr("n").to_addr().unwrap().as_str(), "n");
        assert!(Value::Int(1).to_addr().is_none());
    }

    #[test]
    fn type_errors_are_typed() {
        let e = Value::Bool(true).add(&Value::Bool(false)).unwrap_err();
        assert!(e.to_string().contains('+'));
    }

    fn arb_scalar() -> impl Strategy<Value = Value> {
        prop_oneof![
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            any::<f64>().prop_map(Value::Float),
            any::<u64>().prop_map(Value::id),
            any::<u64>().prop_map(|t| Value::Time(Time(t))),
            "[a-z0-9:]{0,8}".prop_map(Value::str),
            "[a-z0-9:]{0,8}".prop_map(Value::addr),
        ]
    }

    proptest! {
        /// total_cmp is reflexive-equal and antisymmetric.
        #[test]
        fn prop_total_order(a in arb_scalar(), b in arb_scalar()) {
            prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
            let ab = a.total_cmp(&b);
            let ba = b.total_cmp(&a);
            prop_assert_eq!(ab, ba.reverse());
        }

        /// Eq values hash identically.
        #[test]
        fn prop_hash_consistent(a in arb_scalar(), b in arb_scalar()) {
            if a == b {
                prop_assert_eq!(h(&a), h(&b));
            }
        }

        /// Int addition is commutative.
        #[test]
        fn prop_add_commutes(a: i64, b: i64) {
            let x = Value::Int(a).add(&Value::Int(b)).unwrap();
            let y = Value::Int(b).add(&Value::Int(a)).unwrap();
            prop_assert_eq!(x, y);
        }
    }
}
