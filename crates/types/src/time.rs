//! Timestamps and durations.
//!
//! The paper's rules observe time through the `f_now()` built-in and
//! through table lifetimes (`materialize(oscill, 120, ...)`). Every
//! quantity that reaches a rule is either a timestamp or a difference of
//! timestamps, so a single monotonic microsecond counter suffices. In the
//! discrete-event simulator this is **virtual time** (fully
//! deterministic); in the threaded runtime it is wall-clock time since
//! node start. Nothing downstream can tell the difference, which is
//! exactly why the simulation substitution in DESIGN.md §2.4 is sound.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in time, in microseconds since the epoch of the owning clock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(pub u64);

impl Time {
    /// The clock epoch.
    pub const ZERO: Time = Time(0);

    /// Build a timestamp from whole seconds.
    pub fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000)
    }

    /// Build a timestamp from milliseconds.
    pub fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000)
    }

    /// Microseconds since the epoch.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: Time) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }
}

impl TimeDelta {
    /// Zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Build a span from whole seconds.
    pub fn from_secs(s: u64) -> TimeDelta {
        TimeDelta(s * 1_000_000)
    }

    /// Build a span from milliseconds.
    pub fn from_millis(ms: u64) -> TimeDelta {
        TimeDelta(ms * 1_000)
    }

    /// Build a span from microseconds.
    pub fn from_micros(us: u64) -> TimeDelta {
        TimeDelta(us)
    }

    /// Build a span from fractional seconds (rounds down to the
    /// microsecond). Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> TimeDelta {
        if s.is_finite() && s > 0.0 {
            TimeDelta((s * 1e6) as u64)
        } else {
            TimeDelta(0)
        }
    }

    /// The span in microseconds.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// The span as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<TimeDelta> for Time {
    type Output = Time;
    fn add(self, d: TimeDelta) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl AddAssign<TimeDelta> for Time {
    fn add_assign(&mut self, d: TimeDelta) {
        *self = *self + d;
    }
}

impl Sub<Time> for Time {
    type Output = TimeDelta;
    fn sub(self, other: Time) -> TimeDelta {
        self.since(other)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, other: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_add(other.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}us", self.0)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Time::from_secs(2).micros(), 2_000_000);
        assert_eq!(Time::from_millis(3).micros(), 3_000);
        assert_eq!(TimeDelta::from_secs(1).micros(), 1_000_000);
        assert_eq!(TimeDelta::from_secs_f64(0.5).micros(), 500_000);
        assert_eq!(TimeDelta::from_secs_f64(-1.0).micros(), 0);
        assert_eq!(TimeDelta::from_secs_f64(f64::NAN).micros(), 0);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(10) + TimeDelta::from_millis(250);
        assert_eq!(t.micros(), 10_250_000);
        assert_eq!((t - Time::from_secs(10)).micros(), 250_000);
        // Saturating: earlier - later == 0.
        assert_eq!((Time::from_secs(1) - Time::from_secs(5)).micros(), 0);
    }

    #[test]
    fn ordering() {
        assert!(Time::from_secs(1) < Time::from_secs(2));
        assert!(TimeDelta::from_millis(999) < TimeDelta::from_secs(1));
    }

    #[test]
    fn display() {
        assert_eq!(Time::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(TimeDelta::from_micros(1).to_string(), "0.000001s");
    }
}
