// Library code must justify every panic path: unwrap/expect are
// clippy-warned outside tests (see scripts/tier1.sh, which denies
// warnings). Fix the call or carry an #[allow] with a reason.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! # p2-types — core data model for the p2ql system
//!
//! This crate defines the vocabulary shared by every other subsystem in the
//! reproduction of *"Using Queries for Distributed Monitoring and
//! Forensics"* (EuroSys 2006):
//!
//! * [`Value`] — the dynamically-typed scalar/list values carried in tuples,
//! * [`Tuple`] — immutable named relation rows (also used as messages),
//! * [`Addr`] — node addresses (field 0 of every tuple, by P2 convention),
//! * [`RingId`] and [`Interval`] — Chord-style ring identifier algebra,
//! * [`Time`] / [`TimeDelta`] — the virtual/real timestamp type,
//! * [`ValueError`] — typed errors for ill-typed expression evaluation.
//!
//! Everything here is deterministic and `Send + Sync`; no interior
//! mutability, no `unsafe`.

pub mod addr;
pub mod error;
pub mod ring;
pub mod rng;
pub mod time;
pub mod tuple;
pub mod value;

pub use addr::Addr;
pub use error::ValueError;
pub use ring::{Interval, RingId};
pub use rng::DetRng;
pub use time::{Time, TimeDelta};
pub use tuple::{Tuple, TupleId};
pub use value::Value;
