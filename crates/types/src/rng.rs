//! Deterministic random number generation.
//!
//! The paper's rules draw randomness through the `f_rand()` / `f_randID()`
//! built-ins and the `periodic` event's nonce. For reproducible
//! simulations (and the "3 runs per datapoint" evaluation protocol of §4,
//! which we reproduce by varying seeds) every node owns a [`DetRng`]
//! seeded from the simulation seed and the node address, so runs are
//! bit-identical for identical seeds regardless of scheduling.
//!
//! Internally this is a thin wrapper over a SplitMix64 generator: tiny,
//! fast, and with well-understood statistical behaviour — cryptographic
//! strength is neither needed nor claimed (node IDs only need to spread
//! over the ring).

use crate::ring::RingId;

/// A small deterministic PRNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> DetRng {
        DetRng {
            // Avoid the all-zero fixed point for the first outputs.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derive a generator from a seed and a label (e.g. a node address),
    /// so each node gets an independent stream.
    pub fn derive(seed: u64, label: &str) -> DetRng {
        DetRng::new(seed ^ fnv1a(label.as_bytes()))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping (slight bias < 2^-64 * n,
        // irrelevant at our scales).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A fresh random ring identifier (`f_randID()`).
    pub fn ring_id(&mut self) -> RingId {
        RingId(self.next_u64())
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash, used to derive per-label seeds and as the stand-in for
/// the paper's `f_sha1` node-ID hash (see DESIGN.md §2.4: only the
/// spread over the ring matters to the protocol rules).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_separates_labels() {
        let mut a = DetRng::derive(7, "n1");
        let mut b = DetRng::derive(7, "n2");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ids_spread() {
        let mut r = DetRng::new(5);
        let ids: HashSet<u64> = (0..64).map(|_| r.ring_id().0).collect();
        assert_eq!(ids.len(), 64, "collisions in 64 draws are implausible");
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("a") from the reference spec.
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
    }
}
