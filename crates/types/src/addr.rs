//! Node addresses.
//!
//! P2 identifies nodes by network addresses (e.g. `"planetlab3:10000"`).
//! By convention the **first field of every tuple is the address of the
//! node where the tuple lives** — the planner and the network layer route
//! tuples by inspecting that field. We represent addresses as cheap,
//! interned, immutable strings.

use std::fmt;
use std::sync::Arc;

/// A node address.
///
/// Addresses are opaque to the query engine: the only operations it needs
/// are equality, ordering (for deterministic iteration), hashing (for
/// routing tables), and display. The conventional "null" address used by
/// the paper's listings is `"-"` (see rule `rp1`); [`Addr::is_nil`]
/// recognises it.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(Arc<str>);

impl Addr {
    /// Create an address from any string-like value.
    pub fn new(s: impl AsRef<str>) -> Self {
        Addr(Arc::from(s.as_ref()))
    }

    /// The conventional null address `"-"`, used by P2 programs to denote
    /// "no such neighbor" (e.g. an unset predecessor).
    pub fn nil() -> Self {
        Addr(Arc::from("-"))
    }

    /// Whether this is the conventional null address.
    pub fn is_nil(&self) -> bool {
        &*self.0 == "-"
    }

    /// The address as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<&str> for Addr {
    fn from(s: &str) -> Self {
        Addr::new(s)
    }
}

impl From<String> for Addr {
    fn from(s: String) -> Self {
        Addr::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nil_is_dash() {
        assert!(Addr::nil().is_nil());
        assert!(Addr::new("-").is_nil());
        assert!(!Addr::new("n1").is_nil());
    }

    #[test]
    fn equality_and_order() {
        let a = Addr::new("n1");
        let b = Addr::new("n1");
        let c = Addr::new("n2");
        assert_eq!(a, b);
        assert!(a < c);
        assert_eq!(a.to_string(), "n1");
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Addr::new("host:1234");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_str(), "host:1234");
    }
}
