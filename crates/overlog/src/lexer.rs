//! Tokenizer for OverLog source.
//!
//! Produces a flat token stream with [`Span`]s (line/column) so parse and
//! validation errors can point at the offending source. Supports `//`
//! line comments and `/* ... */` block comments.

use std::fmt;

/// A source position range: the byte span `start..end` plus the 1-based
/// line and column of `start`, so diagnostics can both slice the source
/// text (caret snippets) and render a human `line:col`.
///
/// Spans are *positions, not semantics*: two AST nodes that differ only
/// in where they were written are the same program. `PartialEq`
/// therefore treats every pair of spans as equal, which lets the AST
/// types keep their derived structural equality (pretty-print round
/// trips compare equal even though the reprinted spans moved). Compare
/// the `line`/`col`/`start`/`end` fields directly when a test cares
/// about actual positions.
#[derive(Debug, Clone, Copy, Default)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: u32,
    /// Byte offset one past the last byte.
    pub end: u32,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
}

impl PartialEq for Span {
    fn eq(&self, _other: &Span) -> bool {
        true // positions carry no semantics; see the type docs
    }
}

impl Eq for Span {}

impl Span {
    /// A span covering `self` through the end of `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            end: other.end.max(self.end),
            ..self
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Lower-case identifier (predicate names, constants, keywords).
    Ident(String),
    /// Capitalized identifier (variable).
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Hex literal (`0x...`): a 64-bit ring identifier.
    IdLit(u64),
    /// String literal (content, unquoted).
    Str(String),
    /// `_`
    Underscore,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.` (statement terminator)
    Dot,
    /// `@`
    At,
    /// `:-`
    Implies,
    /// `:=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    BangEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Var(s) => write!(f, "{s}"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::IdLit(v) => write!(f, "{v:#x}"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Underscore => write!(f, "_"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::At => write!(f, "@"),
            Tok::Implies => write!(f, ":-"),
            Tok::Assign => write!(f, ":="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::EqEq => write!(f, "=="),
            Tok::BangEq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Bang => write!(f, "!"),
        }
    }
}

/// A token plus its position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// Source position.
    pub span: Span,
}

/// A tokenization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Where it happened.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span {
            start: self.pos as u32,
            end: self.pos as u32 + 1,
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> LexError {
        LexError {
            message: msg.into(),
            span: self.span(),
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(LexError {
                                    message: "unterminated block comment".into(),
                                    span: start,
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Token, LexError> {
        let span = self.span();
        let start = self.pos;
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let hstart = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                self.bump();
            }
            if self.pos == hstart {
                return Err(self.err("hex literal needs digits"));
            }
            let text = std::str::from_utf8(&self.src[hstart..self.pos]).unwrap();
            let v =
                u64::from_str_radix(text, 16).map_err(|_| self.err("hex literal out of range"))?;
            // Hex literals denote ring identifiers: Chord node IDs span
            // the full 64-bit space, beyond i64.
            return Ok(Token {
                tok: Tok::IdLit(v),
                span,
            });
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        // A dot is part of the number only if followed by a digit;
        // otherwise it is the statement terminator (e.g. `periodic(E, 1).`).
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("bad float literal"))?;
            Ok(Token {
                tok: Tok::Float(v),
                span,
            })
        } else {
            let v: i64 = text
                .parse()
                .map_err(|_| self.err("integer literal out of range"))?;
            Ok(Token {
                tok: Tok::Int(v),
                span,
            })
        }
    }

    fn lex_ident(&mut self) -> Token {
        let span = self.span();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .to_string();
        let first = text.as_bytes()[0];
        let tok = if first.is_ascii_uppercase() {
            Tok::Var(text)
        } else {
            Tok::Ident(text)
        };
        Token { tok, span }
    }

    fn lex_string(&mut self) -> Result<Token, LexError> {
        let span = self.span();
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    other => {
                        return Err(LexError {
                            message: format!("bad escape {:?}", other.map(|c| c as char)),
                            span,
                        })
                    }
                },
                Some(c) => out.push(c as char),
                None => {
                    return Err(LexError {
                        message: "unterminated string".into(),
                        span,
                    })
                }
            }
        }
        Ok(Token {
            tok: Tok::Str(out),
            span,
        })
    }

    fn next_token(&mut self) -> Result<Option<Token>, LexError> {
        self.skip_trivia()?;
        let span = self.span();
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let simple = |l: &mut Self, t: Tok| {
            l.bump();
            Ok(Some(Token { tok: t, span }))
        };
        match c {
            b'0'..=b'9' => Ok(Some(self.lex_number()?)),
            b'a'..=b'z' | b'A'..=b'Z' => Ok(Some(self.lex_ident())),
            b'_' => {
                // `_` alone is a wildcard; `_foo` is an identifier.
                if matches!(self.peek2(), Some(c2) if c2.is_ascii_alphanumeric() || c2 == b'_') {
                    Ok(Some(self.lex_ident()))
                } else {
                    simple(self, Tok::Underscore)
                }
            }
            b'"' => Ok(Some(self.lex_string()?)),
            b'(' => simple(self, Tok::LParen),
            b')' => simple(self, Tok::RParen),
            b'[' => simple(self, Tok::LBracket),
            b']' => simple(self, Tok::RBracket),
            b',' => simple(self, Tok::Comma),
            b'.' => simple(self, Tok::Dot),
            b'@' => simple(self, Tok::At),
            b'+' => simple(self, Tok::Plus),
            b'-' => simple(self, Tok::Minus),
            b'*' => simple(self, Tok::Star),
            b'/' => simple(self, Tok::Slash),
            b'%' => simple(self, Tok::Percent),
            b':' => {
                self.bump();
                match self.peek() {
                    Some(b'-') => {
                        self.bump();
                        Ok(Some(Token {
                            tok: Tok::Implies,
                            span,
                        }))
                    }
                    Some(b'=') => {
                        self.bump();
                        Ok(Some(Token {
                            tok: Tok::Assign,
                            span,
                        }))
                    }
                    _ => Err(LexError {
                        message: "expected ':-' or ':='".into(),
                        span,
                    }),
                }
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Some(Token {
                        tok: Tok::EqEq,
                        span,
                    }))
                } else {
                    Err(LexError {
                        message: "expected '=='".into(),
                        span,
                    })
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Some(Token {
                        tok: Tok::BangEq,
                        span,
                    }))
                } else {
                    Ok(Some(Token {
                        tok: Tok::Bang,
                        span,
                    }))
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Some(Token { tok: Tok::Le, span }))
                } else {
                    Ok(Some(Token { tok: Tok::Lt, span }))
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Some(Token { tok: Tok::Ge, span }))
                } else {
                    Ok(Some(Token { tok: Tok::Gt, span }))
                }
            }
            b'&' => {
                self.bump();
                if self.peek() == Some(b'&') {
                    self.bump();
                    Ok(Some(Token {
                        tok: Tok::AndAnd,
                        span,
                    }))
                } else {
                    Err(LexError {
                        message: "expected '&&'".into(),
                        span,
                    })
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    Ok(Some(Token {
                        tok: Tok::OrOr,
                        span,
                    }))
                } else {
                    Err(LexError {
                        message: "expected '||'".into(),
                        span,
                    })
                }
            }
            other => Err(LexError {
                message: format!("unexpected character {:?}", other as char),
                span,
            }),
        }
    }
}

/// Tokenize a full source string.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(mut t) = lx.next_token()? {
        // The lexer sits one past the token's last byte here, which
        // completes the byte span started at the token's first byte.
        t.span.end = lx.pos as u32;
        out.push(t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_vars() {
        assert_eq!(
            toks("pred NAddr f_now"),
            vec![
                Tok::Ident("pred".into()),
                Tok::Var("NAddr".into()),
                Tok::Ident("f_now".into())
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 3.25 0x1f 0xffffffffffffffff"),
            vec![
                Tok::Int(42),
                Tok::Float(3.25),
                Tok::IdLit(31),
                Tok::IdLit(u64::MAX)
            ]
        );
    }

    #[test]
    fn dot_after_int_is_terminator() {
        // `periodic@N(E, 1).` — the `1.` must lex as Int(1), Dot.
        assert_eq!(toks("1."), vec![Tok::Int(1), Tok::Dot]);
        assert_eq!(toks("1.5."), vec![Tok::Float(1.5), Tok::Dot]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks(":- := == != <= >= < > && || + - * / % !"),
            vec![
                Tok::Implies,
                Tok::Assign,
                Tok::EqEq,
                Tok::BangEq,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Percent,
                Tok::Bang,
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            toks(r#""Snapping" "-" "a\"b""#),
            vec![
                Tok::Str("Snapping".into()),
                Tok::Str("-".into()),
                Tok::Str("a\"b".into()),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // comment\n b /* block \n over lines */ c"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ident("b".into()),
                Tok::Ident("c".into())
            ]
        );
    }

    #[test]
    fn wildcard_vs_underscore_ident() {
        assert_eq!(toks("_ _x"), vec![Tok::Underscore, Tok::Ident("_x".into())]);
    }

    #[test]
    fn spans_track_lines() {
        let ts = tokenize("a\n  b").unwrap();
        assert_eq!((ts[0].span.line, ts[0].span.col), (1, 1));
        assert_eq!((ts[1].span.line, ts[1].span.col), (2, 3));
    }

    #[test]
    fn spans_track_byte_offsets() {
        let ts = tokenize("ab  cde").unwrap();
        assert_eq!((ts[0].span.start, ts[0].span.end), (0, 2));
        assert_eq!((ts[1].span.start, ts[1].span.end), (4, 7));
        let ts = tokenize(r#""str" 0x1f"#).unwrap();
        assert_eq!((ts[0].span.start, ts[0].span.end), (0, 5));
        assert_eq!((ts[1].span.start, ts[1].span.end), (6, 10));
    }

    #[test]
    fn errors_are_positioned() {
        let e = tokenize("a $ b").unwrap_err();
        assert_eq!((e.span.line, e.span.col), (1, 3));
        let e = tokenize("\"unterminated").unwrap_err();
        assert!(e.message.contains("unterminated"));
        let e = tokenize("/* open").unwrap_err();
        assert!(e.message.contains("block comment"));
    }

    #[test]
    fn paper_rule_lexes() {
        let src = r#"rp3 inconsistentPred@NAddr() :-
            respBestSucc@NAddr(PAddr, Successor),
            pred@NAddr(PID, PAddr), Successor != NAddr."#;
        let ts = toks(src);
        assert!(ts.contains(&Tok::Implies));
        assert!(ts.contains(&Tok::BangEq));
        assert_eq!(ts.last(), Some(&Tok::Dot));
    }
}
