//! Static validation of parsed programs.
//!
//! Runs before planning — errors surface when a query is installed, not
//! when it first fires. The checks:
//!
//! 1. **Range restriction** — every variable used in a rule head (location,
//!    plain args, expression args, aggregate variables) must be bound by a
//!    body predicate or an assignment. Datalog safety; also what makes a
//!    rule executable as a strand.
//! 2. **Left-to-right binding for non-predicates** — an assignment's
//!    expression and every condition may only use variables bound by terms
//!    to their *left* (predicates bind; assignments bind their target).
//!    This matches the strand execution order of Figure 1.
//! 3. **Aggregate well-formedness** — at most one aggregate per head, only
//!    in heads, never in `delete` rules, aggregate variable bound.
//! 4. **Facts are ground** — a rule with no body must have constant args.
//! 5. **No duplicate `materialize`** of the same table in one program.
//! 6. **Wildcards only in body predicates.**
//! 7. **Arity consistency** — strict-arity matching (a tuple matches a
//!    predicate only with the exact field count) makes mixed arities for
//!    one relation almost certainly a bug; every occurrence of a relation
//!    within a program must agree, `periodic` is always
//!    `(loc, nonce, period)`, and a `materialize`'s `keys(...)` must fit
//!    within the relation's used arity.
//!
//! Findings are reported through the [`Diagnostics`] sink — every problem
//! in the program at once, each with a source span and a stable code.
//! [`validate`] returns the full sink; [`validate_strict`] is the
//! first-error bridge the planner and `overlog::compile` reject on.

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics, Severity};
use std::collections::HashSet;
use std::fmt;

/// A validation error. `rule` names the offending rule by label (or
/// 1-based index when unlabeled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Which rule or statement.
    pub rule: String,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in {}: {}", self.rule, self.message)
    }
}

impl std::error::Error for ValidateError {}

/// Validate a whole program, collecting **every** finding.
pub fn validate(program: &Program) -> Diagnostics {
    let mut diags = Diagnostics::new();
    validate_statements(program, &mut diags);
    validate_arities(program, &mut diags);
    diags
}

/// Validate and reject on the first error (the historical `Result`
/// surface; the planner and [`crate::compile`] gate installs on it).
pub fn validate_strict(program: &Program) -> Result<(), ValidateError> {
    match validate(program).first_error() {
        Some(d) => Err(ValidateError {
            rule: d.context.clone().unwrap_or_else(|| "program".into()),
            message: d.message.clone(),
        }),
        None => Ok(()),
    }
}

/// Checks 1–6: per-statement validation (everything except the
/// cross-statement arity pass). Exposed separately so the `analysis`
/// crate can run it per source unit and do arity checking across a
/// whole unit *stack* instead.
pub fn validate_statements(program: &Program, diags: &mut Diagnostics) {
    let mut seen_tables = HashSet::new();
    let mut rule_idx = 0usize;
    for s in &program.statements {
        match s {
            Statement::Materialize(m) => {
                let ctx = format!("materialize({})", m.table);
                if !seen_tables.insert(m.table.clone()) {
                    diags.push(
                        Diagnostic::new(
                            "P2E106",
                            Severity::Error,
                            "table declared twice in one program",
                        )
                        .with_span(m.span)
                        .with_context(ctx.clone()),
                    );
                }
                if m.keys.is_empty() {
                    diags.push(
                        Diagnostic::new(
                            "P2E106",
                            Severity::Error,
                            "keys(...) must name at least one field",
                        )
                        .with_span(m.span)
                        .with_context(ctx),
                    );
                }
            }
            Statement::Rule(r) => {
                rule_idx += 1;
                let name = r
                    .label
                    .clone()
                    .unwrap_or_else(|| format!("rule #{rule_idx}"));
                validate_rule(r, &name, diags);
            }
        }
    }
}

/// Check 7: arity consistency across the program, `periodic`'s fixed
/// shape, and `keys(...)` bounds.
pub fn validate_arities(program: &Program, diags: &mut Diagnostics) {
    use std::collections::HashMap;
    // relation -> (arity, rule where first seen)
    let mut firsts: HashMap<String, (usize, String)> = HashMap::new();
    let mut record = |p: &Predicate, rule: &str, diags: &mut Diagnostics| {
        let arity = p.args.len();
        if p.name == "periodic" {
            if arity != 3 {
                diags.push(
                    Diagnostic::new(
                        "P2E109",
                        Severity::Error,
                        format!("periodic takes (location, nonce, period); found {arity} fields"),
                    )
                    .with_span(p.span)
                    .with_context(rule),
                );
            }
            return;
        }
        if p.name == "past" {
            // The archive-scan predicate: its arity tracks the archived
            // relation it names, so cross-occurrence consistency does
            // not apply — only the fixed prefix shape is checked.
            if arity < 4 {
                diags.push(
                    Diagnostic::new(
                        "P2E109",
                        Severity::Error,
                        format!(
                            "past takes (location, relation, t0, t1, fields...); \
                             found {arity} fields"
                        ),
                    )
                    .with_span(p.span)
                    .with_context(rule),
                );
            }
            return;
        }
        match firsts.get(&p.name) {
            Some((a, first)) if *a != arity => {
                diags.push(
                    Diagnostic::new(
                        "P2E108",
                        Severity::Error,
                        format!(
                            "relation '{}' used with {arity} fields here but {a} fields in {first};                      strict-arity matching means these can never match each other",
                            p.name
                        ),
                    )
                    .with_span(p.span)
                    .with_context(rule),
                );
            }
            Some(_) => {}
            None => {
                firsts.insert(p.name.clone(), (arity, rule.to_string()));
            }
        }
    };
    let mut idx = 0usize;
    for s in &program.statements {
        let Statement::Rule(r) = s else { continue };
        idx += 1;
        let rname = r.label.clone().unwrap_or_else(|| format!("rule #{idx}"));
        record(&r.head, &rname, diags);
        for p in r.body_predicates() {
            record(p, &rname, diags);
        }
    }
    for m in program.materializations() {
        let Some(key_max) = m.keys.iter().max() else {
            continue; // empty keys already reported (P2E106)
        };
        if let Some((arity, first)) = firsts.get(&m.table) {
            if key_max > arity {
                diags.push(
                    Diagnostic::new(
                        "P2E110",
                        Severity::Error,
                        format!(
                            "keys(...) names field {key_max} but '{}' is used with                          {arity} fields (in {first})",
                            m.table
                        ),
                    )
                    .with_span(m.span)
                    .with_context(format!("materialize({})", m.table)),
                );
            }
        }
    }
}

fn validate_rule(r: &Rule, name: &str, diags: &mut Diagnostics) {
    let err = |diags: &mut Diagnostics, code: &'static str, span, message: String| {
        diags.push(
            Diagnostic::new(code, Severity::Error, message)
                .with_span(span)
                .with_context(name),
        );
    };

    // Facts: no body => all head args must be constants.
    if r.body.is_empty() {
        for a in &r.head.args {
            match a {
                Arg::Const(_) => {}
                other => err(
                    diags,
                    "P2E104",
                    r.head.span,
                    format!("fact argument must be a constant, found {other:?}"),
                ),
            }
        }
        if r.delete {
            err(diags, "P2E107", r.span, "a delete rule needs a body".into());
        }
        return;
    }

    if r.body_predicates().count() == 0 {
        err(
            diags,
            "P2E107",
            r.span,
            "rule body needs at least one predicate".into(),
        );
    }

    // Walk the body left to right, tracking bound variables.
    let mut bound: HashSet<String> = HashSet::new();
    for t in &r.body {
        match t {
            Term::Pred(p) => {
                // Expression args in body predicates are selections over
                // already-bound variables.
                for a in &p.args {
                    if let Arg::Expr(e) = a {
                        check_bound(e, &bound, p.span, "body predicate expression", name, diags);
                    }
                    if let Arg::Agg { .. } = a {
                        err(
                            diags,
                            "P2E103",
                            p.span,
                            format!("aggregate not allowed in body predicate '{}'", p.name),
                        );
                    }
                }
                // Then the predicate's variables become bound.
                for a in &p.args {
                    if let Arg::Var(v) = a {
                        bound.insert(v.clone());
                    }
                }
            }
            Term::Assign { var, expr, span } => {
                check_bound(expr, &bound, *span, "assignment", name, diags);
                bound.insert(var.clone());
            }
            Term::Cond { expr, span } => {
                check_bound(expr, &bound, *span, "condition", name, diags);
            }
        }
    }

    // Head checks.
    let mut agg_count = 0;
    for (i, a) in r.head.args.iter().enumerate() {
        match a {
            Arg::Var(v) => {
                if !bound.contains(v) {
                    if i == 0 {
                        err(
                            diags,
                            "P2E111",
                            r.head.span,
                            format!(
                                "head location {v} is not bound by the body — \
                                 the deduced tuple has no destination"
                            ),
                        );
                    } else {
                        err(
                            diags,
                            "P2E101",
                            r.head.span,
                            format!("head variable {v} is not bound by the body"),
                        );
                    }
                }
            }
            Arg::Const(_) => {}
            Arg::Wildcard => {
                err(
                    diags,
                    "P2E105",
                    r.head.span,
                    "wildcard '_' not allowed in rule head".into(),
                );
            }
            Arg::Agg { func, over } => {
                agg_count += 1;
                if i == 0 {
                    err(
                        diags,
                        "P2E103",
                        r.head.span,
                        "aggregate cannot be the location field".into(),
                    );
                }
                if r.delete {
                    err(
                        diags,
                        "P2E103",
                        r.head.span,
                        "aggregates not allowed in delete rules".into(),
                    );
                }
                if let Some(v) = over {
                    if !bound.contains(v) {
                        err(
                            diags,
                            "P2E103",
                            r.head.span,
                            format!(
                                "aggregate variable {v} in {}<{v}> is not bound",
                                func.name()
                            ),
                        );
                    }
                }
            }
            Arg::Expr(e) => {
                let mut vs = Vec::new();
                e.free_vars(&mut vs);
                for v in vs {
                    if !bound.contains(&v) {
                        err(
                            diags,
                            "P2E101",
                            r.head.span,
                            format!("head expression uses unbound variable {v}"),
                        );
                    }
                }
            }
        }
    }
    if agg_count > 1 {
        err(
            diags,
            "P2E103",
            r.head.span,
            "at most one aggregate per rule head".into(),
        );
    }
}

fn check_bound(
    e: &Expr,
    bound: &HashSet<String>,
    span: crate::lexer::Span,
    ctx: &str,
    rule: &str,
    diags: &mut Diagnostics,
) {
    let mut vs = Vec::new();
    e.free_vars(&mut vs);
    for v in vs {
        if !bound.contains(&v) {
            diags.push(
                Diagnostic::new(
                    "P2E102",
                    Severity::Error,
                    format!("{ctx} uses variable {v} before it is bound"),
                )
                .with_span(span)
                .with_context(rule),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<(), ValidateError> {
        validate_strict(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_paper_rules() {
        let srcs = [
            "rp3 inconsistentPred@NAddr() :- respBestSucc@NAddr(PAddr, S), pred@NAddr(PID, PAddr), S != NAddr.",
            "os3 c@N(A, count<*>) :- periodic@N(E, 60), oscill@N(A, T).",
            "cs1 conProbe@N(P, K, T) :- periodic@N(P, 40), K := f_randID(), T := f_now().",
            "l2 d@N(K, R, E, min<D>) :- node@N(NID), lookup@N(K, R, E), finger@N(FP, FID, FA), D := K - FID - 1, FID in (NID, K).",
            "cs10 delete t@N(P, T, C) :- c@N(P, X), t@N(P, T, C).",
            r#"node@"n1"(99)."#,
        ];
        for s in srcs {
            check(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn rejects_unbound_head_var() {
        let e = check("r h@A(X) :- t@A(Y).").unwrap_err();
        assert!(e.message.contains('X'));
    }

    #[test]
    fn rejects_unbound_head_loc() {
        let e = check("r h@Z(Y) :- t@A(Y).").unwrap_err();
        assert!(e.message.contains('Z'));
    }

    #[test]
    fn rejects_condition_before_binding() {
        let e = check("r h@A(X) :- t@A(X), Y > 3.").unwrap_err();
        assert!(e.message.contains('Y'));
        // Bound later doesn't help — strand order is left-to-right.
        let e = check("r h@A(X) :- t@A(X), Y > 3, u@A(Y).").unwrap_err();
        assert!(e.message.contains('Y'));
    }

    #[test]
    fn rejects_assignment_of_unbound() {
        let e = check("r h@A(X) :- t@A(Z), X := Y + 1.").unwrap_err();
        assert!(e.message.contains('Y'));
    }

    #[test]
    fn rejects_two_aggregates() {
        let e = check("r h@A(count<*>, max<X>) :- t@A(X).").unwrap_err();
        assert!(e.message.contains("one aggregate"));
    }

    #[test]
    fn rejects_aggregate_in_delete() {
        let e = check("r delete h@A(count<*>) :- t@A(X).").unwrap_err();
        assert!(e.message.contains("delete"));
    }

    #[test]
    fn rejects_unbound_aggregate_var() {
        let e = check("r h@A(min<D>) :- t@A(X).").unwrap_err();
        assert!(e.message.contains('D'));
    }

    #[test]
    fn rejects_nonground_fact() {
        let e = check("node@A(X).").unwrap_err();
        assert!(e.message.contains("constant"));
    }

    #[test]
    fn rejects_wildcard_in_head() {
        let e = check("r h@A(_) :- t@A(X).").unwrap_err();
        assert!(e.message.contains('_'));
    }

    #[test]
    fn rejects_duplicate_materialize() {
        let e =
            check("materialize(t, 10, 10, keys(1)). materialize(t, 20, 5, keys(1)).").unwrap_err();
        assert!(e.message.contains("twice"));
    }

    #[test]
    fn rejects_condition_only_body() {
        // A body with only conditions has nothing to trigger on.
        let e = check("r h@A() :- 1 == 1.").unwrap_err();
        assert!(e.message.contains("predicate"));
    }

    #[test]
    fn wildcard_in_body_ok() {
        check("r h@A(X) :- t@A(X, _).").unwrap();
    }

    #[test]
    fn rejects_mixed_arity_relation() {
        let e = check(
            "r1 out@N(X) :- ev@N(X).
             r2 out@N(X, Y) :- ev2@N(X, Y).",
        )
        .unwrap_err();
        assert!(e.message.contains("out"), "{e}");
        assert!(e.message.contains("never match"), "{e}");
    }

    #[test]
    fn rejects_bad_periodic_shape() {
        let e = check("r h@N(E) :- periodic@N(E).").unwrap_err();
        assert!(e.message.contains("periodic"), "{e}");
        let e = check("r h@N(E) :- periodic@N(E, 1, 2).").unwrap_err();
        assert!(e.message.contains("periodic"), "{e}");
    }

    #[test]
    fn rejects_keys_beyond_used_arity() {
        let e = check(
            "materialize(t, 10, 10, keys(1, 5)).
             r1 t@N(X) :- ev@N(X).",
        )
        .unwrap_err();
        assert!(e.message.contains("keys"), "{e}");
        // Without any use, keys can't be bounds-checked: accepted.
        check("materialize(t, 10, 10, keys(1, 5)).").unwrap();
    }

    #[test]
    fn head_agg_location_rejected() {
        let e = check("r h@A(X) :- t@A(X).").and(check("r h(count<*>, X) :- t@A(X)."));
        assert!(e.unwrap_err().message.contains("location"));
    }

    #[test]
    fn sink_collects_every_finding_with_codes_and_spans() {
        // Three independent errors in one program: the sink reports all
        // of them, where the old Result stopped at the first.
        let src = "r1 h@A(X) :- t@A(Y).
r2 g@A(_) :- t@A(Y).
r3 k@A(Y) :- t@A(Y), Z > 1.";
        let ds = validate(&parse_program(src).unwrap());
        assert_eq!(ds.count(Severity::Error), 3, "{ds:?}");
        let codes: Vec<&str> = ds.items.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"P2E101"));
        assert!(codes.contains(&"P2E105"));
        assert!(codes.contains(&"P2E102"));
        // Every finding is positioned on its own line.
        let lines: Vec<u32> = ds.items.iter().map(|d| d.span.unwrap().line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn unbound_head_location_has_its_own_code() {
        let ds = validate(&parse_program("r h@Z(Y) :- t@A(Y).").unwrap());
        assert_eq!(ds.items.len(), 1);
        assert_eq!(ds.items[0].code, "P2E111");
    }

    #[test]
    fn strict_matches_first_sink_error() {
        let src = "r1 h@A(X) :- t@A(Y). r2 g@A(_) :- t@A(Y).";
        let e = check(src).unwrap_err();
        assert_eq!(e.rule, "r1");
        assert!(e.message.contains('X'));
    }
}
