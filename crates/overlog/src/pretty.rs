//! Pretty-printer: regenerates parseable OverLog source from an AST.
//!
//! Used for round-trip testing, for the `sysRule` introspection table
//! (installed rules are reflected back as their source text), and for
//! debugging planner output.

use crate::ast::*;
use p2_types::Value;
use std::fmt::Write;

/// Render a full program, one statement per line.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for s in &p.statements {
        match s {
            Statement::Materialize(m) => {
                out.push_str(&materialize_to_string(m));
            }
            Statement::Rule(r) => {
                out.push_str(&rule_to_string(r));
            }
        }
        out.push('\n');
    }
    out
}

/// Render a `materialize` declaration.
pub fn materialize_to_string(m: &Materialize) -> String {
    let lifetime = match m.lifetime {
        Lifetime::Secs(s) => {
            if s.fract() == 0.0 {
                format!("{}", s as u64)
            } else {
                format!("{s:?}")
            }
        }
        Lifetime::Infinity => "infinity".to_string(),
    };
    let size = match m.max_size {
        SizeLimit::Rows(n) => n.to_string(),
        SizeLimit::Infinity => "infinity".to_string(),
    };
    let keys: Vec<String> = m.keys.iter().map(|k| k.to_string()).collect();
    format!(
        "materialize({}, {}, {}, keys({})).",
        m.table,
        lifetime,
        size,
        keys.join(", ")
    )
}

/// Render a rule.
pub fn rule_to_string(r: &Rule) -> String {
    let mut out = String::new();
    if let Some(l) = &r.label {
        write!(out, "{l} ").unwrap();
    }
    if r.delete {
        out.push_str("delete ");
    }
    out.push_str(&pred_to_string(&r.head));
    if !r.body.is_empty() {
        out.push_str(" :- ");
        let terms: Vec<String> = r.body.iter().map(term_to_string).collect();
        out.push_str(&terms.join(", "));
    }
    out.push('.');
    out
}

fn term_to_string(t: &Term) -> String {
    match t {
        Term::Pred(p) => pred_to_string(p),
        Term::Cond { expr, .. } => expr_to_string(expr),
        Term::Assign { var, expr, .. } => format!("{var} := {}", expr_to_string(expr)),
    }
}

/// Render a predicate, reproducing the `@`-form when the source used it.
pub fn pred_to_string(p: &Predicate) -> String {
    let mut out = String::new();
    out.push_str(&p.name);
    let rest: &[Arg] = if p.at_form && !p.args.is_empty() {
        write!(out, "@{}", arg_to_string(&p.args[0])).unwrap();
        &p.args[1..]
    } else {
        &p.args
    };
    out.push('(');
    let args: Vec<String> = rest.iter().map(arg_to_string).collect();
    out.push_str(&args.join(", "));
    out.push(')');
    out
}

fn arg_to_string(a: &Arg) -> String {
    match a {
        Arg::Var(v) => v.clone(),
        Arg::Const(c) => value_to_string(c),
        Arg::Wildcard => "_".to_string(),
        Arg::Agg { func, over } => match over {
            Some(v) => format!("{}<{v}>", func.name()),
            None => format!("{}<*>", func.name()),
        },
        Arg::Expr(e) => expr_to_string(e),
    }
}

/// Render a literal value as OverLog source.
pub fn value_to_string(v: &Value) -> String {
    match v {
        Value::Bool(b) => b.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Float(x) => format!("{x:?}"),
        Value::Id(i) => format!("{:#x}", i.0),
        Value::Time(t) => t.0.to_string(),
        Value::Str(s) => format!("{:?}", &**s),
        Value::Addr(a) => format!("{:?}", a.as_str()),
        Value::List(items) => {
            let xs: Vec<String> = items.iter().map(value_to_string).collect();
            format!("[{}]", xs.join(", "))
        }
    }
}

/// Render an expression (fully parenthesized where precedence demands).
pub fn expr_to_string(e: &Expr) -> String {
    prec_print(e, 0)
}

fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 5,
    }
}

fn prec_print(e: &Expr, parent: u8) -> String {
    match e {
        Expr::Var(v) => v.clone(),
        Expr::Const(c) => value_to_string(c),
        Expr::Unary(UnOp::Neg, inner) => format!("-{}", prec_print(inner, 6)),
        Expr::Unary(UnOp::Not, inner) => format!("!{}", prec_print(inner, 6)),
        Expr::Binary(op, a, b) => {
            let p = prec(*op);
            let s = format!(
                "{} {} {}",
                prec_print(a, p),
                op.symbol(),
                // Right operand binds one tighter to preserve shape of
                // left-associative chains.
                prec_print(b, p + 1)
            );
            if p < parent {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::In {
            expr,
            lo,
            hi,
            lo_closed,
            hi_closed,
        } => {
            let s = format!(
                "{} in {}{}, {}{}",
                prec_print(expr, 4),
                if *lo_closed { '[' } else { '(' },
                prec_print(lo, 0),
                prec_print(hi, 0),
                if *hi_closed { ']' } else { ')' },
            );
            if parent > 3 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Call { func, args } => {
            let xs: Vec<String> = args.iter().map(|a| prec_print(a, 0)).collect();
            format!("{func}({})", xs.join(", "))
        }
        Expr::List(items) => {
            let xs: Vec<String> = items.iter().map(|a| prec_print(a, 0)).collect();
            format!("[{}]", xs.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// The paper's listings, verbatim modulo whitespace — each must
    /// survive a parse → print → parse round trip structurally intact.
    const SAMPLES: &[&str] = &[
        "materialize(link, 100, 5, keys(1)).",
        "materialize(oscill, 120, infinity, keys(2, 3)).",
        "rp1 reqBestSucc@PAddr(NAddr) :- periodic@NAddr(E, 30), pred@NAddr(PID, PAddr), PAddr != \"-\".",
        "rp3 inconsistentPred@NAddr() :- respBestSucc@NAddr(PAddr, Successor), pred@NAddr(PID, PAddr), Successor != NAddr.",
        "ri4 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps + 1) :- ordering@NAddr(E, SrcAddr, MyID, Wraps), bestSucc@NAddr(SAddr, SID), MyID >= SID.",
        "os3 countOscill@NAddr(OscillAddr, count<*>) :- periodic@NAddr(E, 60), oscill@NAddr(OscillAddr, Time).",
        "cs1 conProbe@NAddr(ProbeID, K, T) :- periodic@NAddr(ProbeID, 40), K := f_randID(), T := f_now().",
        "cs9 consistency@NAddr(ProbeID, RespCount / LookupCount) :- periodic@NAddr(E, 20), lookupCluster@NAddr(ProbeID, T, LookupCount), T < f_now() - 20, maxCluster@NAddr(ProbeID, RespCount).",
        "cs10 delete lookupCluster@NAddr(ProbeID, T, Count) :- consistency@NAddr(ProbeID, Consistency).",
        "l1 lookupResults@ReqAddr(K, SID, SAddr, E, RespAddr) :- node@NAddr(NID), lookup@NAddr(K, ReqAddr, E), bestSucc@NAddr(SAddr, SID), K in (NID, SID].",
        "l2 bestLookupDist@NAddr(K, ReqAddr, E, min<D>) :- node@NAddr(NID), lookup@NAddr(K, ReqAddr, E), finger@NAddr(FPos, FID, FAddr), D := K - FID - 1, FID in (NID, K).",
        "sr11 channelState@NAddr(Src, E, \"Done\") :- haveSnap@NAddr(Src, E, C), backPointer@NAddr(Remote), (C > 0) || (Src == Remote).",
        "path(B, C, [B, A] + P, W + Y) :- link(A, B, W), path(A, C, P, Y).",
    ];

    #[test]
    fn round_trip_paper_samples() {
        for src in SAMPLES {
            let p1 = parse_program(src).unwrap_or_else(|e| panic!("parse {src}: {e}"));
            let printed = program_to_string(&p1);
            let p2 = parse_program(&printed)
                .unwrap_or_else(|e| panic!("reparse failed for {printed}: {e}"));
            assert_eq!(
                p1, p2,
                "round trip changed structure for: {src}\nprinted: {printed}"
            );
        }
    }

    #[test]
    fn precedence_parenthesization() {
        // (a + b) * c must print with parens; a + b * c must not.
        let p = parse_program("r x@A((X + Y) * Z) :- t@A(X, Y, Z).").unwrap();
        let s = program_to_string(&p);
        assert!(s.contains("(X + Y) * Z"), "{s}");
        let p = parse_program("r x@A(X + Y * Z) :- t@A(X, Y, Z).").unwrap();
        let s = program_to_string(&p);
        assert!(s.contains("x@A(X + Y * Z)"), "{s}");
    }

    #[test]
    fn left_assoc_chain_stable() {
        let src = "r x@A(X - Y - Z) :- t@A(X, Y, Z).";
        let p1 = parse_program(src).unwrap();
        let p2 = parse_program(&program_to_string(&p1)).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn strings_are_quoted() {
        let p = parse_program(r#"r x@A("Done") :- t@A(X), X != "-"."#).unwrap();
        let s = program_to_string(&p);
        assert!(s.contains("\"Done\""));
        assert!(s.contains("\"-\""));
    }
}
