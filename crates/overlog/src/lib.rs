//! # p2-overlog — the OverLog language
//!
//! OverLog is the Datalog variant in which P2 programs — and, crucially
//! for this paper, the *monitoring queries over those programs* — are
//! written. This crate implements the complete front end:
//!
//! * [`lexer`] — tokenization with source positions,
//! * [`ast`] — the abstract syntax (programs, `materialize` declarations,
//!   rules, predicates, expressions, aggregates),
//! * [`parser`] — a recursive-descent parser for the dialect used by every
//!   listing in the paper (location specifiers `pred@A(...)`, rule labels,
//!   `delete` rules, `count<*>`/`min<X>`/`max<X>` head aggregates,
//!   assignments `X := expr`, ring-interval membership `K in (A, B]`),
//! * [`validate()`] — static checks (range restriction: every head variable
//!   must be bound by the body; aggregate well-formedness; duplicate
//!   tables), run before planning so errors surface with positions,
//! * [`pretty`] — a printer that regenerates parseable source
//!   (round-trip-tested).
//!
//! The grammar is documented on [`parser::parse_program`].

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod validate;

pub use ast::{
    AggFunc, Arg, BinOp, Expr, Lifetime, Materialize, Predicate, Program, Rule, SizeLimit,
    Statement, Term, UnOp,
};
pub use diag::{Diagnostic, Diagnostics, Severity, SourceUnit};
pub use lexer::{LexError, Span};
pub use parser::{parse_program, ParseError};
pub use validate::{
    validate, validate_arities, validate_statements, validate_strict, ValidateError,
};

/// Parse and validate a program in one step.
///
/// This is the entry point the node runtime uses when a query is
/// installed on-line; both phases report positioned, typed errors.
/// Validation is strict here (first error rejects); use
/// [`validate`] directly — or the `p2-analysis` crate — for the
/// collect-everything diagnostics surface.
pub fn compile(src: &str) -> Result<Program, CompileError> {
    let program = parse_program(src).map_err(CompileError::Parse)?;
    validate_strict(&program).map_err(CompileError::Validate)?;
    Ok(program)
}

/// Error from [`compile`]: either a parse error or a validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Syntax error with position.
    Parse(ParseError),
    /// Semantic error with position.
    Validate(ValidateError),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Validate(e) => write!(f, "validation error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_accepts_paper_rule() {
        let p = compile(
            r#"rp4 inconsistentPred@NAddr() :-
                 stabilizeRequest@NAddr(SomeID, SomeAddr),
                 pred@NAddr(PID, PAddr), SomeAddr != PAddr."#,
        )
        .unwrap();
        assert_eq!(p.rules().count(), 1);
    }

    #[test]
    fn compile_rejects_unbound_head_var() {
        let err = compile("r1 out@A(X) :- trigger@A(Y).").unwrap_err();
        assert!(matches!(err, CompileError::Validate(_)));
        assert!(err.to_string().contains('X'));
    }

    #[test]
    fn compile_rejects_syntax_error() {
        let err = compile("r1 out@A(X :- trigger@A(X).").unwrap_err();
        assert!(matches!(err, CompileError::Parse(_)));
    }
}
