//! Recursive-descent parser for OverLog.
//!
//! Grammar (in rough EBNF; `IDENT` is lower-case, `VAR` capitalized):
//!
//! ```text
//! program     := statement*
//! statement   := materialize | rule | fact
//! materialize := "materialize" "(" IDENT "," lifetime "," size ","
//!                "keys" "(" INT ("," INT)* ")" ")" "."
//! lifetime    := NUMBER | "infinity"
//! size        := INT | "infinity"
//! rule        := label? "delete"? predicate ":-" term ("," term)* "."
//! fact        := label? predicate "."
//! label       := IDENT            (when followed by another IDENT)
//!              | "[" IDENT "]"    (the §2 bracketed form)
//! term        := predicate | VAR ":=" expr | expr
//! predicate   := IDENT ("@" simple)? "(" (arg ("," arg)*)? ")"
//! arg         := AGGNAME "<" ("*" | VAR) ">"   (heads only)
//!              | expr
//! expr        := or-chain with C-like precedence; comparisons; and
//!                "x in (lo, hi]" ring intervals with any bracket mix
//! ```
//!
//! Disambiguation notes:
//!
//! * A body term starting `IDENT(` is a **predicate** unless the
//!   identifier begins with `f_` — P2's convention reserves the `f_`
//!   prefix for built-in functions, and we adopt it (so `f_now() - 20 > T`
//!   is a condition, while `pred(NAddr, ...)` is a match).
//! * `1.` lexes as the integer one followed by the statement terminator
//!   (see the lexer), so `periodic@N(E, 1).` parses as the paper writes it.
//! * Facts (rules with no body, e.g. `node@"n1"(0x17).`) are accepted and
//!   represent initial state injected at install time.

use crate::ast::*;
use crate::lexer::{tokenize, LexError, Span, Tok, Token};
use p2_types::Value;
use std::fmt;

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.message, self.span)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parse a complete OverLog program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut statements = Vec::new();
    while !p.at_end() {
        statements.push(p.statement()?);
    }
    Ok(Program { statements })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, n: usize) -> Option<&Tok> {
        self.tokens.get(self.pos + n).map(|t| &t.tok)
    }

    fn span(&self) -> Span {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.span)
            .unwrap_or_default()
    }

    /// Span of the most recently consumed token (for closing a multi-token
    /// span with [`Span::to`]).
    fn prev_span(&self) -> Span {
        self.tokens
            .get(self.pos.wrapping_sub(1))
            .map(|t| t.span)
            .unwrap_or_default()
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            span: self.span(),
        })
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.bump();
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected '{want}', found '{t}'"))
            }
            None => self.err(format!("expected '{want}', found end of input")),
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => {
                self.pos -= 1;
                self.err(format!("expected identifier, found '{t}'"))
            }
            None => self.err("expected identifier, found end of input"),
        }
    }

    // ---------------------------------------------------------- statements

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.peek() == Some(&Tok::Ident("materialize".into()))
            && self.peek_at(1) == Some(&Tok::LParen)
        {
            return self.materialize();
        }
        self.rule().map(Statement::Rule)
    }

    fn materialize(&mut self) -> Result<Statement, ParseError> {
        self.bump(); // materialize
        self.expect(&Tok::LParen)?;
        let span = self.span(); // the table-name token
        let table = self.ident()?;
        self.expect(&Tok::Comma)?;
        let lifetime = match self.bump() {
            Some(Tok::Int(n)) if n >= 0 => Lifetime::Secs(n as f64),
            Some(Tok::Float(x)) if x >= 0.0 => Lifetime::Secs(x),
            Some(Tok::Ident(s)) if s == "infinity" => Lifetime::Infinity,
            _ => {
                self.pos -= 1;
                return self.err("expected lifetime (seconds or 'infinity')");
            }
        };
        self.expect(&Tok::Comma)?;
        let max_size = match self.bump() {
            Some(Tok::Int(n)) if n >= 0 => SizeLimit::Rows(n as usize),
            Some(Tok::Ident(s)) if s == "infinity" => SizeLimit::Infinity,
            _ => {
                self.pos -= 1;
                return self.err("expected size (row count or 'infinity')");
            }
        };
        self.expect(&Tok::Comma)?;
        let kw = self.ident()?;
        if kw != "keys" {
            return self.err(format!("expected 'keys', found '{kw}'"));
        }
        self.expect(&Tok::LParen)?;
        let mut keys = Vec::new();
        loop {
            match self.bump() {
                Some(Tok::Int(n)) if n >= 1 => keys.push(n as usize),
                _ => {
                    self.pos -= 1;
                    return self.err("expected 1-based key field number");
                }
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Dot)?;
        Ok(Statement::Materialize(Materialize {
            table,
            lifetime,
            max_size,
            keys,
            span,
        }))
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        // The rule's span anchors at its first token: the label when
        // present, the head name otherwise.
        let span = self.span();
        // Optional label: bare identifier followed by another identifier,
        // or the bracketed `[ruleID]` form from §2 of the paper.
        let mut label = None;
        if self.peek() == Some(&Tok::LBracket) {
            if let (Some(Tok::Ident(_)), Some(Tok::RBracket)) = (self.peek_at(1), self.peek_at(2)) {
                self.bump();
                if let Some(Tok::Ident(l)) = self.bump() {
                    label = Some(l);
                }
                self.bump();
            }
        } else if let Some(Tok::Ident(first)) = self.peek() {
            if first != "delete" && matches!(self.peek_at(1), Some(Tok::Ident(_))) {
                if let Some(Tok::Ident(l)) = self.bump() {
                    label = Some(l);
                }
            }
        }

        let delete = matches!(self.peek(), Some(Tok::Ident(kw)) if kw == "delete")
            && matches!(self.peek_at(1), Some(Tok::Ident(_)));
        if delete {
            self.bump();
        }

        let head = self.predicate(true)?;

        let mut body = Vec::new();
        if self.eat(&Tok::Implies) {
            loop {
                body.push(self.term()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::Dot)?;
        Ok(Rule {
            label,
            delete,
            head,
            body,
            span,
        })
    }

    // --------------------------------------------------------------- terms

    fn term(&mut self) -> Result<Term, ParseError> {
        let start = self.span();
        // Assignment: VAR := expr
        if matches!(self.peek(), Some(Tok::Var(_))) && self.peek_at(1) == Some(&Tok::Assign) {
            let var = match self.bump() {
                Some(Tok::Var(v)) => v,
                _ => unreachable!("peeked"),
            };
            self.bump(); // :=
            let expr = self.expr()?;
            let span = start.to(self.prev_span());
            return Ok(Term::Assign { var, expr, span });
        }
        // Predicate: IDENT not starting with f_, followed by '@' or '('.
        if let Some(Tok::Ident(name)) = self.peek() {
            let is_builtin_fn = name.starts_with("f_");
            if !is_builtin_fn && matches!(self.peek_at(1), Some(Tok::At) | Some(Tok::LParen)) {
                return Ok(Term::Pred(self.predicate(false)?));
            }
        }
        // Otherwise: a condition expression.
        let expr = self.expr()?;
        let span = start.to(self.prev_span());
        Ok(Term::Cond { expr, span })
    }

    /// Parse a predicate. `in_head` permits aggregate arguments.
    fn predicate(&mut self, in_head: bool) -> Result<Predicate, ParseError> {
        let span = self.span(); // the relation-name token
        let name = self.ident()?;
        let mut args = Vec::new();
        let at_form = self.eat(&Tok::At);
        if at_form {
            // Location: a variable or a simple constant.
            let loc = match self.bump() {
                Some(Tok::Var(v)) => Arg::Var(v),
                Some(Tok::Ident(c)) => Arg::Const(Value::str(c)),
                Some(Tok::Str(s)) => Arg::Const(Value::str(s)),
                _ => {
                    self.pos -= 1;
                    return self.err("expected location variable or constant after '@'");
                }
            };
            args.push(loc);
        }
        self.expect(&Tok::LParen)?;
        if !self.eat(&Tok::RParen) {
            loop {
                args.push(self.arg(in_head)?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        if !at_form && args.is_empty() {
            return self.err(format!(
                "predicate '{name}' needs a location argument (either '@Loc' or a first field)"
            ));
        }
        Ok(Predicate {
            name,
            args,
            at_form,
            span,
        })
    }

    fn arg(&mut self, in_head: bool) -> Result<Arg, ParseError> {
        // Aggregate: AGGNAME '<' ('*' | VAR) '>'
        if in_head {
            if let Some(Tok::Ident(name)) = self.peek() {
                if let Some(func) = AggFunc::from_name(name) {
                    if self.peek_at(1) == Some(&Tok::Lt)
                        && matches!(self.peek_at(2), Some(Tok::Star) | Some(Tok::Var(_)))
                        && self.peek_at(3) == Some(&Tok::Gt)
                    {
                        self.bump(); // name
                        self.bump(); // <
                        let over = match self.bump() {
                            Some(Tok::Star) => None,
                            Some(Tok::Var(v)) => Some(v),
                            _ => unreachable!("peeked"),
                        };
                        self.bump(); // >
                        if func == AggFunc::Count && over.is_some() {
                            // count<V> is fine too: count non-null V's.
                        } else if func != AggFunc::Count && over.is_none() {
                            return self.err(format!(
                                "{}<*> is not meaningful; give a variable",
                                func.name()
                            ));
                        }
                        return Ok(Arg::Agg { func, over });
                    }
                }
            }
        }
        if self.eat(&Tok::Underscore) {
            return Ok(Arg::Wildcard);
        }
        let e = self.expr()?;
        Ok(match e {
            Expr::Var(v) => Arg::Var(v),
            Expr::Const(c) => Arg::Const(c),
            other => Arg::Expr(other),
        })
    }

    // --------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        // `x in (lo, hi]` — ring-interval membership.
        if matches!(self.peek(), Some(Tok::Ident(kw)) if kw == "in") {
            self.bump();
            let lo_closed = match self.bump() {
                Some(Tok::LParen) => false,
                Some(Tok::LBracket) => true,
                _ => {
                    self.pos -= 1;
                    return self.err("expected '(' or '[' after 'in'");
                }
            };
            let lo = self.add_expr()?;
            self.expect(&Tok::Comma)?;
            let hi = self.add_expr()?;
            let hi_closed = match self.bump() {
                Some(Tok::RParen) => false,
                Some(Tok::RBracket) => true,
                _ => {
                    self.pos -= 1;
                    return self.err("expected ')' or ']' to close interval");
                }
            };
            return Ok(Expr::In {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
                lo_closed,
                hi_closed,
            });
        }
        let op = match self.peek() {
            Some(Tok::EqEq) => Some(BinOp::Eq),
            Some(Tok::BangEq) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(e)));
        }
        if self.eat(&Tok::Bang) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(n)) => {
                self.bump();
                Ok(Expr::Const(Value::Int(n)))
            }
            Some(Tok::Float(x)) => {
                self.bump();
                Ok(Expr::Const(Value::Float(x)))
            }
            Some(Tok::IdLit(v)) => {
                self.bump();
                Ok(Expr::Const(Value::id(v)))
            }
            Some(Tok::Str(s)) => {
                self.bump();
                Ok(Expr::Const(Value::str(s)))
            }
            Some(Tok::Var(v)) => {
                self.bump();
                Ok(Expr::Var(v))
            }
            Some(Tok::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::LBracket) => {
                self.bump();
                let mut items = Vec::new();
                if !self.eat(&Tok::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RBracket)?;
                }
                Ok(Expr::List(items))
            }
            Some(Tok::Ident(name)) => {
                self.bump();
                if self.peek() == Some(&Tok::LParen) {
                    // Function call (f_now(), f_sha1(X), ...).
                    self.bump();
                    let mut call_args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            call_args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    Ok(Expr::Call {
                        func: name,
                        args: call_args,
                    })
                } else {
                    // Lower-case identifier in expression position is a
                    // symbolic constant (paper footnote 1: `n` is the ID
                    // of a specific node). `true`/`false` are booleans.
                    Ok(match name.as_str() {
                        "true" => Expr::Const(Value::Bool(true)),
                        "false" => Expr::Const(Value::Bool(false)),
                        _ => Expr::Const(Value::str(name)),
                    })
                }
            }
            Some(t) => self.err(format!("expected expression, found '{t}'")),
            None => self.err("expected expression, found end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse1(src: &str) -> Rule {
        let p = parse_program(src).unwrap();
        match &p.statements[0] {
            Statement::Rule(r) => r.clone(),
            _ => panic!("expected rule"),
        }
    }

    #[test]
    fn materialize_statement() {
        let p = parse_program("materialize(link, 100, 5, keys(1)).").unwrap();
        let m = p.materializations().next().unwrap();
        assert_eq!(m.table, "link");
        assert_eq!(m.lifetime, Lifetime::Secs(100.0));
        assert_eq!(m.max_size, SizeLimit::Rows(5));
        assert_eq!(m.keys, vec![1]);
    }

    #[test]
    fn materialize_infinity() {
        let p = parse_program("materialize(oscill, 120, infinity, keys(2,3)).").unwrap();
        let m = p.materializations().next().unwrap();
        assert_eq!(m.max_size, SizeLimit::Infinity);
        assert_eq!(m.keys, vec![2, 3]);
    }

    #[test]
    fn labeled_rule_with_at_form() {
        let r = parse1(
            "rp2 respBestSucc@ReqAddr(NAddr, SAddr) :- reqBestSucc@NAddr(ReqAddr), bestSucc@NAddr(SID, SAddr).",
        );
        assert_eq!(r.label.as_deref(), Some("rp2"));
        assert!(!r.delete);
        assert_eq!(r.head.name, "respBestSucc");
        // @-form desugars: location is arg 0.
        assert_eq!(r.head.args[0], Arg::Var("ReqAddr".into()));
        assert_eq!(r.head.args.len(), 3);
        assert_eq!(r.body.len(), 2);
    }

    #[test]
    fn bracketed_label() {
        let r = parse1("[r7] out@A(X) :- in@A(X).");
        assert_eq!(r.label.as_deref(), Some("r7"));
    }

    #[test]
    fn unlabeled_rule_without_at() {
        let r = parse1("path(B, C, P, W) :- link(A, B, W2), path(A, C, P, W3).");
        assert_eq!(r.label, None);
        assert!(!r.head.at_form);
        assert_eq!(r.head.args[0], Arg::Var("B".into()));
    }

    #[test]
    fn delete_rule() {
        let r = parse1(
            "cs10 delete lookupCluster@NAddr(ProbeID, T, Count) :- consistency@NAddr(ProbeID, C).",
        );
        assert_eq!(r.label.as_deref(), Some("cs10"));
        assert!(r.delete);
        assert_eq!(r.head.name, "lookupCluster");
    }

    #[test]
    fn unlabeled_delete_rule() {
        let r = parse1("delete foo@A(X) :- bar@A(X).");
        assert_eq!(r.label, None);
        assert!(r.delete);
    }

    #[test]
    fn fact() {
        let r = parse1(r#"node@"n1:0"(42)."#);
        assert!(r.body.is_empty());
        assert_eq!(r.head.args[0], Arg::Const(Value::str("n1:0")));
        assert_eq!(r.head.args[1], Arg::Const(Value::Int(42)));
    }

    #[test]
    fn hex_fact_is_ring_id() {
        let r = parse1(r#"node@"n1"(0xDEADBEEFDEADBEEF)."#);
        assert_eq!(r.head.args[1], Arg::Const(Value::id(0xDEAD_BEEF_DEAD_BEEF)));
    }

    #[test]
    fn assignment_and_builtin() {
        let r = parse1(
            "os1 oscill@NAddr(SAddr, T) :- faultyNode@NAddr(SAddr, T1), sendPred@NAddr(SID, SAddr), T := f_now().",
        );
        match &r.body[2] {
            Term::Assign { var, expr, .. } => {
                assert_eq!(var, "T");
                assert_eq!(
                    expr,
                    &Expr::Call {
                        func: "f_now".into(),
                        args: vec![]
                    }
                );
            }
            other => panic!("expected assignment, got {other:?}"),
        }
    }

    #[test]
    fn interval_membership_variants() {
        let r = parse1(
            "l1 res@R(K) :- node@N(NID), lookup@N(K, R, E), bestSucc@N(SA, SID), K in (NID, SID].",
        );
        match &r.body[3] {
            Term::Cond {
                expr:
                    Expr::In {
                        lo_closed,
                        hi_closed,
                        ..
                    },
                ..
            } => {
                assert!(!lo_closed);
                assert!(hi_closed);
            }
            other => panic!("expected In, got {other:?}"),
        }
        let r = parse1("x res@R() :- a@R(FID, NID, K), FID in (NID, K).");
        match &r.body[1] {
            Term::Cond {
                expr:
                    Expr::In {
                        lo_closed,
                        hi_closed,
                        ..
                    },
                ..
            } => {
                assert!(!lo_closed);
                assert!(!hi_closed);
            }
            other => panic!("expected In, got {other:?}"),
        }
    }

    #[test]
    fn aggregates() {
        let r = parse1(
            "os3 countOscill@NAddr(OscillAddr, count<*>) :- periodic@NAddr(E, 60), oscill@NAddr(OscillAddr, Time).",
        );
        assert!(r.is_aggregate());
        assert_eq!(
            r.head.args[2],
            Arg::Agg {
                func: AggFunc::Count,
                over: None
            }
        );

        let r = parse1(
            "l2 bestLookupDist@NAddr(K, R, E, min<D>) :- node@NAddr(NID), lookup@NAddr(K, R, E), finger@NAddr(FP, FID, FA), D := K - FID - 1, FID in (NID, K).",
        );
        assert_eq!(
            r.head.args[4],
            Arg::Agg {
                func: AggFunc::Min,
                over: Some("D".into())
            }
        );

        let r = parse1(
            "cs7 maxCluster@NAddr(ProbeID, max<Count>) :- respCluster@NAddr(ProbeID, SAddr, Count).",
        );
        assert_eq!(
            r.head.args[2],
            Arg::Agg {
                func: AggFunc::Max,
                over: Some("Count".into())
            }
        );
    }

    #[test]
    fn head_expressions() {
        let r = parse1(
            "ri4 countWraps@NAddr(SAddr, E, SrcAddr, SID, Wraps + 1) :- ordering@NAddr(E, SrcAddr, MyID, Wraps), bestSucc@NAddr(SAddr, SID), MyID >= SID.",
        );
        match &r.head.args[5] {
            Arg::Expr(Expr::Binary(BinOp::Add, _, _)) => {}
            other => panic!("expected expr arg, got {other:?}"),
        }

        let r = parse1(
            "cs9 consistency@NAddr(ProbeID, RespCount / LookupCount) :- periodic@NAddr(E, 20), lookupCluster@NAddr(ProbeID, T, LookupCount), T < f_now() - 20, maxCluster@NAddr(ProbeID, RespCount).",
        );
        match &r.head.args[2] {
            Arg::Expr(Expr::Binary(BinOp::Div, _, _)) => {}
            other => panic!("expected div expr, got {other:?}"),
        }
    }

    #[test]
    fn boolean_connectives() {
        let r = parse1(
            r#"sr11 channelState@NAddr(Src, E, "Done") :- haveSnap@NAddr(Src, E, C), backPointer@NAddr(Remote), (C > 0) || (Src == Remote)."#,
        );
        match &r.body[2] {
            Term::Cond {
                expr: Expr::Binary(BinOp::Or, _, _),
                ..
            } => {}
            other => panic!("expected ||, got {other:?}"),
        }
    }

    #[test]
    fn string_constants_in_predicates() {
        let r = parse1(r#"sr2 snapState@NAddr(I, "Snapping") :- snap@NAddr(I)."#);
        assert_eq!(r.head.args[2], Arg::Const(Value::str("Snapping")));
    }

    #[test]
    fn lowercase_constant_in_expr() {
        // rule comparison against the rule-label constant "cs2" uses a
        // string literal in the paper; bare lower idents also work.
        let r = parse1(r#"ep6 report@N(ID) :- forward@N(ID, R), R != cs2."#);
        match &r.body[1] {
            Term::Cond {
                expr: Expr::Binary(BinOp::Ne, _, rhs),
                ..
            } => {
                assert_eq!(**rhs, Expr::Const(Value::str("cs2")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wildcard_arg() {
        let r = parse1("r out@A(X) :- in@A(X, _).");
        match &r.body[0] {
            Term::Pred(p) => assert_eq!(p.args[2], Arg::Wildcard),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn periodic_int_then_dot() {
        // Regression: `periodic@N(E, 1).` must not lex `1.` as a float.
        let r = parse1("r1 result@NAddr() :- periodic@NAddr(E, 1).");
        match &r.body[0] {
            Term::Pred(p) => assert_eq!(p.args[2], Arg::Const(Value::Int(1))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_positions() {
        let e = parse_program("r1 out@A(X :- in@A(X).").unwrap_err();
        assert!(e.span.line == 1 && e.span.col > 1);
        let e = parse_program("materialize(t, -1, 5, keys(1)).").unwrap_err();
        assert!(e.message.contains("lifetime"));
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// No input — token soup, truncations, weird unicode — may
            /// panic the front end; it must fail with a positioned error.
            #[test]
            fn prop_parser_never_panics(src in ".{0,200}") {
                let _ = parse_program(&src);
            }

            /// Valid-ish rule skeletons with arbitrary identifiers parse
            /// or error cleanly.
            #[test]
            fn prop_rule_shapes(
                head in "[a-z][a-zA-Z0-9]{0,8}",
                v in "[A-Z][a-zA-Z0-9]{0,8}",
                n in 0i64..1000,
            ) {
                let src = format!("r1 {head}@{v}(X, {n}) :- ev@{v}(X).");
                let p = parse_program(&src);
                // `delete`/`materialize` as predicate names can shift the
                // parse; anything else must succeed.
                if head != "delete" && head != "materialize" {
                    prop_assert!(p.is_ok(), "{src}: {p:?}");
                }
            }
        }
    }

    #[test]
    fn multiple_statements() {
        let src = r#"
            materialize(pred, 100, 1, keys(1)).
            materialize(bestSucc, 100, 1, keys(1)).
            rp4 inconsistentPred@NAddr() :-
                stabilizeRequest@NAddr(SomeID, SomeAddr),
                pred@NAddr(PID, PAddr), SomeAddr != PAddr.
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.statements.len(), 3);
        assert_eq!(p.rules().count(), 1);
        assert_eq!(p.materializations().count(), 2);
    }
}
