//! Abstract syntax for OverLog.
//!
//! The shapes here mirror the paper's listings one-to-one. After parsing,
//! location specifiers are already desugared: `pred@A(X, Y)` becomes a
//! predicate whose argument list is `[A, X, Y]` — by P2 convention field 0
//! of every tuple is the address where the tuple lives (§2 of the paper:
//! *"OverLog allows `link@A(B,W)` instead of `link(A,B,W)`"*).

use crate::lexer::Span;
use p2_types::Value;
use std::fmt;

/// A parsed OverLog program: an ordered list of statements.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Statements in source order.
    pub statements: Vec<Statement>,
}

impl Program {
    /// Iterate over the rules in the program.
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.statements.iter().filter_map(|s| match s {
            Statement::Rule(r) => Some(r),
            _ => None,
        })
    }

    /// Iterate over the `materialize` declarations.
    pub fn materializations(&self) -> impl Iterator<Item = &Materialize> {
        self.statements.iter().filter_map(|s| match s {
            Statement::Materialize(m) => Some(m),
            _ => None,
        })
    }

    /// Concatenate two programs (used to stack monitoring programs onto a
    /// base application, the paper's "deployed piecemeal" usage).
    pub fn extend(&mut self, other: Program) {
        self.statements.extend(other.statements);
    }
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `materialize(name, lifetime, size, keys(...))` declaration.
    Materialize(Materialize),
    /// A deduction rule.
    Rule(Rule),
}

/// Table lifetime from a `materialize` declaration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Lifetime {
    /// Tuples expire after this many seconds.
    Secs(f64),
    /// Tuples never expire.
    Infinity,
}

/// Table size bound from a `materialize` declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeLimit {
    /// At most this many tuples; oldest are evicted first.
    Rows(usize),
    /// Unbounded.
    Infinity,
}

/// A `materialize(name, lifetime, max_size, keys(k1, k2, ...))` statement.
///
/// Key field numbers are **1-based over the full tuple including the
/// location field**, exactly as in the paper (e.g. `materialize(path, 100,
/// 5, keys(1,2))` keys the `path@A(B, ...)` table on `A` then `B`).
#[derive(Debug, Clone, PartialEq)]
pub struct Materialize {
    /// Table (relation) name.
    pub table: String,
    /// Row lifetime.
    pub lifetime: Lifetime,
    /// Row-count bound.
    pub max_size: SizeLimit,
    /// 1-based primary-key field numbers.
    pub keys: Vec<usize>,
    /// Source span of the table name (positions only — ignored by `==`,
    /// see [`Span`]).
    pub span: Span,
}

/// A deduction rule: `label head :- term, term, ... .`
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Optional rule label (`rp1`, `cs9`, ...). Labels are how the tracer's
    /// `ruleExec` rows and the profiler refer to rules, so the planner
    /// generates one (`rule#N`) when the source omits it.
    pub label: Option<String>,
    /// `true` for `delete head :- body.` rules, which remove the matching
    /// tuples from the head's table instead of inserting.
    pub delete: bool,
    /// Head predicate. Its arguments may be expressions and (at most one)
    /// aggregate.
    pub head: Predicate,
    /// Body terms, in source order (the order is meaningful: it fixes the
    /// join order of the compiled rule strand, as in Figure 1).
    pub body: Vec<Term>,
    /// Source span of the rule's first token (positions only — ignored
    /// by `==`, see [`Span`]).
    pub span: Span,
}

impl Rule {
    /// All body predicates, in order.
    pub fn body_predicates(&self) -> impl Iterator<Item = &Predicate> {
        self.body.iter().filter_map(|t| match t {
            Term::Pred(p) => Some(p),
            _ => None,
        })
    }

    /// Whether the head carries an aggregate argument.
    pub fn is_aggregate(&self) -> bool {
        self.head.args.iter().any(|a| matches!(a, Arg::Agg { .. }))
    }
}

/// A body term.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A predicate (event or table match).
    Pred(Predicate),
    /// A boolean condition (selection), e.g. `SomeAddr != PAddr` or
    /// `ResltNodeID in (PID, SID)`.
    Cond {
        /// The condition expression.
        expr: Expr,
        /// Source span of the whole condition.
        span: Span,
    },
    /// An assignment `Var := expr`, e.g. `T := f_now()`.
    Assign {
        /// The variable being bound.
        var: String,
        /// Its defining expression.
        expr: Expr,
        /// Source span of the whole assignment.
        span: Span,
    },
}

impl Term {
    /// The term's source span (a predicate's is its name token).
    pub fn span(&self) -> Span {
        match self {
            Term::Pred(p) => p.span,
            Term::Cond { span, .. } | Term::Assign { span, .. } => *span,
        }
    }
}

/// A predicate occurrence, head or body.
///
/// `args[0]` is the location argument. `at_form` records whether the
/// source used the `name@Loc(rest...)` sugar, so the pretty-printer can
/// reproduce the original shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Relation name.
    pub name: String,
    /// Arguments, location first.
    pub args: Vec<Arg>,
    /// Whether the source used the `@` location-specifier form.
    pub at_form: bool,
    /// Source span of the relation-name token — the caret target for
    /// diagnostics about this occurrence (positions only — ignored by
    /// `==`, see [`Span`]).
    pub span: Span,
}

impl Predicate {
    /// The location argument (always present after desugaring).
    pub fn loc(&self) -> &Arg {
        &self.args[0]
    }
}

/// A predicate argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// A variable (capitalized identifier in the source).
    Var(String),
    /// A literal constant.
    Const(Value),
    /// `_`: matches anything, binds nothing.
    Wildcard,
    /// A head aggregate: `count<*>`, `min<D>`, `max<Count>`.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated variable; `None` for `count<*>`.
        over: Option<String>,
    },
    /// A head expression, e.g. `Wraps + 1` (rule `ri4`) or
    /// `RespCount / LookupCount` (rule `cs9`). Only meaningful in heads.
    Expr(Expr),
}

/// Aggregate functions. The paper uses `count`, `min`, and `max`; `sum`
/// and `avg` are natural extensions and come for free in the evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `count<*>` — number of matching derivations (0 for an empty set).
    Count,
    /// `min<V>` — minimum of `V` over the matches.
    Min,
    /// `max<V>` — maximum of `V` over the matches.
    Max,
    /// `sum<V>` — sum of `V` over the matches (extension).
    Sum,
    /// `avg<V>` — mean of `V` over the matches (extension).
    Avg,
}

impl AggFunc {
    /// The source-level keyword.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
        }
    }

    /// Parse a source-level keyword.
    pub fn from_name(s: &str) -> Option<AggFunc> {
        Some(match s {
            "count" => AggFunc::Count,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }
}

/// Binary operators, in OverLog surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (numeric add, ring add, string/list concatenation)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (int/int yields float — see `p2_types::Value::div`)
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// The operator's source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Boolean not.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable reference.
    Var(String),
    /// Literal.
    Const(Value),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Ring-interval membership: `x in (lo, hi]` et al.
    In {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower endpoint.
        lo: Box<Expr>,
        /// Upper endpoint.
        hi: Box<Expr>,
        /// Whether the lower endpoint is included (`[`).
        lo_closed: bool,
        /// Whether the upper endpoint is included (`]`).
        hi_closed: bool,
    },
    /// Built-in function call, e.g. `f_now()`, `f_sha1(X)`.
    Call {
        /// Function name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// List literal `[B, A]`.
    List(Vec<Expr>),
}

impl Expr {
    /// Collect the free variables of the expression into `out`.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
            Expr::Const(_) => {}
            Expr::Unary(_, e) => e.free_vars(out),
            Expr::Binary(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            Expr::In { expr, lo, hi, .. } => {
                expr.free_vars(out);
                lo.free_vars(out);
                hi.free_vars(out);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.free_vars(out);
                }
            }
            Expr::List(items) => {
                for i in items {
                    i.free_vars(out);
                }
            }
        }
    }

    /// Visit every built-in function name called anywhere inside the
    /// expression (the planner's rewrite passes classify purity with
    /// this).
    pub fn for_each_call(&self, f: &mut impl FnMut(&str)) {
        match self {
            Expr::Var(_) | Expr::Const(_) => {}
            Expr::Unary(_, e) => e.for_each_call(f),
            Expr::Binary(_, a, b) => {
                a.for_each_call(f);
                b.for_each_call(f);
            }
            Expr::In { expr, lo, hi, .. } => {
                expr.for_each_call(f);
                lo.for_each_call(f);
                hi.for_each_call(f);
            }
            Expr::Call { func, args } => {
                f(func);
                for a in args {
                    a.for_each_call(f);
                }
            }
            Expr::List(items) => {
                for i in items {
                    i.for_each_call(f);
                }
            }
        }
    }
}

impl Predicate {
    /// Collect the free variables of every argument — plain `Var` fields
    /// and the free variables of embedded `Expr` args — into `out`.
    pub fn arg_vars(&self, out: &mut Vec<String>) {
        for a in &self.args {
            match a {
                Arg::Var(v) if !out.iter().any(|x| x == v) => out.push(v.clone()),
                Arg::Expr(e) => e.free_vars(out),
                _ => {}
            }
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::pretty::program_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_dedup() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Var("X".into())),
            Box::new(Expr::Binary(
                BinOp::Mul,
                Box::new(Expr::Var("X".into())),
                Box::new(Expr::Var("Y".into())),
            )),
        );
        let mut vs = Vec::new();
        e.free_vars(&mut vs);
        assert_eq!(vs, vec!["X".to_string(), "Y".to_string()]);
    }

    #[test]
    fn agg_func_round_trip() {
        for f in [
            AggFunc::Count,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::Sum,
            AggFunc::Avg,
        ] {
            assert_eq!(AggFunc::from_name(f.name()), Some(f));
        }
        assert_eq!(AggFunc::from_name("median"), None);
    }

    #[test]
    fn rule_helpers() {
        let rule = Rule {
            label: Some("r1".into()),
            delete: false,
            head: Predicate {
                name: "h".into(),
                args: vec![
                    Arg::Var("A".into()),
                    Arg::Agg {
                        func: AggFunc::Count,
                        over: None,
                    },
                ],
                at_form: true,
                span: Span::default(),
            },
            body: vec![Term::Pred(Predicate {
                name: "b".into(),
                args: vec![Arg::Var("A".into())],
                at_form: true,
                span: Span::default(),
            })],
            span: Span::default(),
        };
        assert!(rule.is_aggregate());
        assert_eq!(rule.body_predicates().count(), 1);
    }
}
