//! The multi-finding diagnostics sink and its rustc-style renderer.
//!
//! Every front-end and analysis pass reports through a [`Diagnostics`]
//! collection instead of returning on the first error, so one `p2ql
//! check` run (or one `Node::install`) surfaces *everything* wrong with
//! a program. Each [`Diagnostic`] carries a stable code (`P2Exxx` hard
//! error / `P2Wxxx` warning / `P2Nxxx` note), an optional source
//! [`Span`], and renders as a `file:line:col` header with a caret
//! snippet when the source text is available.

use crate::lexer::Span;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: stylistic or intentional-looking patterns worth a
    /// second look (does not fail `p2ql check`).
    Note,
    /// Probably a bug, but the program is executable (fails `check`,
    /// does not reject an install).
    Warning,
    /// The program is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`P2E101`, `P2W301`, ...). See DESIGN.md §2.9 for the
    /// full table.
    pub code: &'static str,
    /// Error / warning / note.
    pub severity: Severity,
    /// One-line description of the problem.
    pub message: String,
    /// Where in the source, when known. Planner diagnostics resolved
    /// from strand ids may have none.
    pub span: Option<Span>,
    /// Which source unit (index into the slice handed to the renderer)
    /// the span refers to. Multi-file checks — a monitor stacked on the
    /// program it observes — give each file its own unit.
    pub unit: usize,
    /// The rule label or `materialize(table)` context, when applicable.
    pub context: Option<String>,
    /// A follow-up hint ("did you mean `bestSucc`?").
    pub help: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic; attach span/context/help with the `with_*`
    /// methods.
    pub fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: None,
            unit: 0,
            context: None,
            help: None,
        }
    }

    /// Attach a source span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attach a rule / materialize context label.
    pub fn with_context(mut self, ctx: impl Into<String>) -> Self {
        self.context = Some(ctx.into());
        self
    }

    /// Attach a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

/// A named source text, for rendering spans back to their file.
#[derive(Debug, Clone, Copy)]
pub struct SourceUnit<'a> {
    /// Display name (usually the file path).
    pub name: &'a str,
    /// Full source text.
    pub src: &'a str,
}

/// An ordered collection of findings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    /// The findings, in the order emitted (sort with
    /// [`Diagnostics::sort_by_position`] before rendering).
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty sink.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Add a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Move every finding from `other` into `self`, stamping them as
    /// belonging to source unit `unit`.
    pub fn absorb(&mut self, mut other: Diagnostics, unit: usize) {
        for d in &mut other.items {
            d.unit = unit;
        }
        self.items.append(&mut other.items);
    }

    /// Whether any finding is a hard error.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of findings at `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.items.iter().filter(|d| d.severity == sev).count()
    }

    /// The first error, if any (the `validate_strict` bridge).
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.items.iter().find(|d| d.severity == Severity::Error)
    }

    /// Sort by (unit, byte offset, code) for deterministic rendering;
    /// span-less findings sort after positioned ones within their unit.
    pub fn sort_by_position(&mut self) {
        self.items.sort_by_key(|d| {
            (
                d.unit,
                d.span.map(|s| s.start).unwrap_or(u32::MAX),
                d.code,
                d.message.clone(),
            )
        });
    }

    /// Render every finding with caret snippets against `units`.
    pub fn render(&self, units: &[SourceUnit<'_>]) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&render_one(d, units));
        }
        out
    }
}

fn render_one(d: &Diagnostic, units: &[SourceUnit<'_>]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(out, "{}[{}]: {}", d.severity, d.code, d.message);
    out.push('\n');
    let unit = units.get(d.unit);
    if let (Some(u), Some(span)) = (unit, d.span) {
        let _ = write!(out, "  --> {}:{}:{}", u.name, span.line, span.col);
        if let Some(ctx) = &d.context {
            let _ = write!(out, " (in {ctx})");
        }
        out.push('\n');
        out.push_str(&caret_snippet(u.src, span));
    } else if let Some(ctx) = &d.context {
        let _ = writeln!(out, "  --> (in {ctx})");
    }
    if let Some(h) = &d.help {
        let _ = writeln!(out, "   = help: {h}");
    }
    out
}

/// The `| source line` / `| ^^^^` block under a diagnostic header.
fn caret_snippet(src: &str, span: Span) -> String {
    use std::fmt::Write;
    let line_no = span.line as usize;
    let Some(line) = src.lines().nth(line_no.saturating_sub(1)) else {
        return String::new();
    };
    let gutter = line_no.to_string();
    let pad = " ".repeat(gutter.len());
    let col = (span.col as usize).saturating_sub(1).min(line.len());
    // Caret width: the span's extent, capped at the end of its first
    // line (multi-line spans underline only their opening line).
    let width = (span.end.saturating_sub(span.start) as usize)
        .min(line.len() - col)
        .max(1);
    let mut out = String::new();
    let _ = writeln!(out, "{pad} |");
    let _ = writeln!(out, "{gutter} | {line}");
    let _ = writeln!(out, "{pad} | {}{}", " ".repeat(col), "^".repeat(width));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }

    #[test]
    fn render_with_caret_points_at_the_name() {
        let src = "r1 out@A(X) :- trigger@A(X).";
        let p = parse_program(src).unwrap();
        let pred = p.rules().next().unwrap().body_predicates().next().unwrap();
        let mut ds = Diagnostics::new();
        ds.push(
            Diagnostic::new("P2W301", Severity::Warning, "nothing produces 'trigger'")
                .with_span(pred.span)
                .with_context("rule r1")
                .with_help("did you mean `tricker`?"),
        );
        let rendered = ds.render(&[SourceUnit { name: "x.olg", src }]);
        assert!(rendered.contains("warning[P2W301]"), "{rendered}");
        assert!(
            rendered.contains("--> x.olg:1:16 (in rule r1)"),
            "{rendered}"
        );
        assert!(rendered.contains("^^^^^^^"), "{rendered}");
        assert!(rendered.contains("= help: did you mean"), "{rendered}");
        // The caret row aligns under the 'trigger' token.
        let lines: Vec<&str> = rendered.lines().collect();
        let src_row = lines.iter().position(|l| l.contains("r1 out@A")).unwrap();
        let caret_row = &lines[src_row + 1];
        assert_eq!(
            caret_row.find('^').unwrap(),
            lines[src_row].find("trigger").unwrap(),
            "{rendered}"
        );
    }

    #[test]
    fn spanless_diagnostics_render_context_only() {
        let mut ds = Diagnostics::new();
        ds.push(
            Diagnostic::new("P2W501", Severity::Warning, "rule d1: dead").with_context("strand d1"),
        );
        let rendered = ds.render(&[]);
        assert!(rendered.contains("--> (in strand d1)"), "{rendered}");
    }

    #[test]
    fn sort_is_by_unit_then_offset() {
        let mut ds = Diagnostics::new();
        let sp = |start: u32| Span {
            start,
            end: start + 1,
            line: 1,
            col: start + 1,
        };
        let mut d1 = Diagnostic::new("P2E101", Severity::Error, "b").with_span(sp(5));
        d1.unit = 1;
        ds.push(d1);
        ds.push(Diagnostic::new("P2E101", Severity::Error, "a").with_span(sp(9)));
        ds.push(Diagnostic::new("P2E101", Severity::Error, "c").with_span(sp(2)));
        ds.sort_by_position();
        let msgs: Vec<&str> = ds.items.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(msgs, ["c", "a", "b"]);
    }

    #[test]
    fn counts_and_first_error() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::new("P2N302", Severity::Note, "n"));
        assert!(!ds.has_errors());
        assert_eq!(ds.first_error(), None);
        ds.push(Diagnostic::new("P2E101", Severity::Error, "e"));
        assert!(ds.has_errors());
        assert_eq!(ds.count(Severity::Error), 1);
        assert_eq!(ds.first_error().unwrap().message, "e");
    }
}
