//! Amplification bounds (P2W602) and the static cost model backing the
//! runtime lint oracle.
//!
//! Every trigger edge carries a fan-out estimate (see
//! [`cascade::rule_fanout`]): the product of join multiplicities — a
//! fully keyed probe contributes ×1, a probe into a declared table
//! contributes its `max_size`, a probe into a declared-`infinity` table
//! contributes a symbolic ×N. Two results are computed over the trigger
//! graph:
//!
//! * **Amplification** — for each relation R, an upper bound on the
//!   total number of tuples one R-tuple can transitively derive:
//!   `amp(R) = Σ_edges fanout × (1 + amp(head))`. This is what the
//!   runtime oracle's per-episode output counter is compared against
//!   (measured ≤ static, asserted on the Chord corpus). Relations that
//!   can reach a trigger cycle — even a provably bounded one — are
//!   `Unbounded`: the static model bounds shapes, not iteration counts.
//! * **Cascade depth** — the longest chain of trigger edges out of R;
//!   the oracle's per-episode depth counter is compared against this.
//!
//! `P2W602` flags super-linear paths: a root event whose cascade
//! multiplies through **two or more** unbounded-table joins — the
//! monitoring layer would scale quadratically with the very state it
//! watches (ACME's motivation for bounding sensor cost). One unbounded
//! join is ordinary fan-out (a broadcast over neighbors); two is almost
//! always a missing key.

use crate::cascade::{strongly_connected, FlowModel};
use crate::{AnalysisCtx, Bound};
use p2_overlog::{Diagnostic, Diagnostics, Severity};
use std::collections::{BTreeMap, BTreeSet};

const MAX_SUPERLINEAR_REPORTS: usize = 8;

pub(crate) struct CostReport {
    pub depth: BTreeMap<String, Bound>,
    pub amplification: BTreeMap<String, Bound>,
    pub roots: Vec<String>,
}

/// Compute per-relation depth and amplification bounds.
pub(crate) fn analyze(model: &FlowModel, ctx: &AnalysisCtx) -> CostReport {
    let mut adj: BTreeMap<&str, BTreeMap<&str, Vec<usize>>> = BTreeMap::new();
    let mut out_edges: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut nodes_set: BTreeSet<&str> = BTreeSet::new();
    for (i, e) in model.edges.iter().enumerate() {
        adj.entry(e.from.as_str())
            .or_default()
            .entry(e.to.as_str())
            .or_default()
            .push(i);
        out_edges.entry(e.from.as_str()).or_default().push(i);
        nodes_set.insert(e.from.as_str());
        nodes_set.insert(e.to.as_str());
    }
    let nodes: Vec<&str> = nodes_set.iter().copied().collect();

    // Relations inside a cyclic SCC, then everything that reaches one.
    let sccs = strongly_connected(&nodes, &adj);
    let mut tainted: BTreeSet<&str> = BTreeSet::new();
    for scc in &sccs {
        let self_loop = scc
            .first()
            .map(|n| adj.get(n).and_then(|m| m.get(n)).is_some())
            .unwrap_or(false);
        if scc.len() > 1 || self_loop {
            tainted.extend(scc.iter().copied());
        }
    }
    loop {
        let mut changed = false;
        for e in &model.edges {
            if tainted.contains(e.to.as_str()) && tainted.insert(e.from.as_str()) {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Bounds over the cycle-free part, in reverse dependency order. A
    // worklist would do; the graph is small, so iterate to fixpoint
    // with memoization via repeated sweeps.
    let mut depth: BTreeMap<String, Bound> = BTreeMap::new();
    let mut amp: BTreeMap<String, Bound> = BTreeMap::new();
    for n in &nodes {
        if tainted.contains(n) {
            depth.insert((*n).to_string(), Bound::Unbounded);
            amp.insert((*n).to_string(), Bound::Unbounded);
        }
    }
    loop {
        let mut changed = false;
        for n in &nodes {
            if depth.contains_key(*n) {
                continue;
            }
            let edges = out_edges.get(n).map(Vec::as_slice).unwrap_or(&[]);
            // All heads resolved?
            let ready = edges
                .iter()
                .all(|&i| depth.contains_key(model.edges[i].to.as_str()));
            if !ready {
                continue;
            }
            let mut d_bound: u64 = 0;
            let mut a_bound: Option<u64> = Some(0);
            for &i in edges {
                let e = &model.edges[i];
                let (hd, ha) = (
                    depth
                        .get(e.to.as_str())
                        .copied()
                        .unwrap_or(Bound::Unbounded),
                    amp.get(e.to.as_str()).copied().unwrap_or(Bound::Unbounded),
                );
                match hd {
                    Bound::Finite(x) => d_bound = d_bound.max(1 + x),
                    Bound::Unbounded => {
                        d_bound = u64::MAX;
                    }
                }
                let f = match (e.fanout.coeff, e.fanout.degree) {
                    (Some(c), 0) => Some(c),
                    _ => None,
                };
                a_bound = match (a_bound, f, ha) {
                    (Some(acc), Some(f), Bound::Finite(sub)) => {
                        Some(acc.saturating_add(f.saturating_mul(1u64.saturating_add(sub))))
                    }
                    _ => None,
                };
            }
            depth.insert(
                (*n).to_string(),
                if d_bound == u64::MAX {
                    Bound::Unbounded
                } else {
                    Bound::Finite(d_bound)
                },
            );
            amp.insert(
                (*n).to_string(),
                match a_bound {
                    Some(a) => Bound::Finite(a),
                    None => Bound::Unbounded,
                },
            );
            changed = true;
        }
        if !changed {
            break;
        }
    }
    // Anything unresolved reaches a cycle through edges the taint sweep
    // missed (defensive; taint propagation should have caught it).
    for n in &nodes {
        depth.entry((*n).to_string()).or_insert(Bound::Unbounded);
        amp.entry((*n).to_string()).or_insert(Bound::Unbounded);
    }

    let mut roots: BTreeSet<String> = BTreeSet::new();
    if model.edges.iter().any(|e| e.periodic) {
        roots.insert("periodic".to_string());
    }
    for ev in &ctx.external_events {
        if out_edges.contains_key(ev.as_str()) {
            roots.insert(ev.clone());
        }
    }

    CostReport {
        depth,
        amplification: amp,
        roots: roots.into_iter().collect(),
    }
}

/// Emit P2W602 for super-linear root paths.
pub(crate) fn check(model: &FlowModel, ctx: &AnalysisCtx, diags: &mut Diagnostics) {
    let mut out_edges: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, e) in model.edges.iter().enumerate() {
        out_edges.entry(e.from.as_str()).or_default().push(i);
    }
    let report = analyze(model, ctx);

    let mut reported: BTreeSet<(String, usize)> = BTreeSet::new();
    for root in &report.roots {
        // DFS over simple paths accumulating unbounded-join degree;
        // report the shortest prefix that turns super-linear.
        let mut stack: Vec<(Vec<usize>, u32)> = out_edges
            .get(root.as_str())
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .map(|&i| (vec![i], model.edges[i].fanout.degree))
            .collect();
        // Deterministic order: smallest edge index first off the stack.
        stack.reverse();
        while let Some((path, degree)) = stack.pop() {
            if reported.len() >= MAX_SUPERLINEAR_REPORTS {
                return;
            }
            let Some(&last) = path.last() else { continue };
            if degree >= 2 {
                let key = (root.clone(), model.edges[last].rule);
                if reported.insert(key) {
                    let rendered = render_hops(model, root, &path);
                    let factors: Vec<&str> = path
                        .iter()
                        .flat_map(|&i| model.edges[i].fanout.factors.iter())
                        .filter(|f| f.ends_with("\u{d7}N") || f.contains("\u{d7}N"))
                        .map(String::as_str)
                        .collect();
                    let anchor = &model.rules[model.edges[last].rule];
                    let mut d = Diagnostic::new(
                        "P2W602",
                        Severity::Warning,
                        format!(
                            "event '{root}' amplifies super-linearly: {rendered} \
                             multiplies through unbounded tables ({})",
                            factors.join(", ")
                        ),
                    )
                    .with_span(anchor.span)
                    .with_context(anchor.label.clone())
                    .with_help(
                        "key the probed tables (or bound their size) so each hop \
                         matches a bounded row set",
                    );
                    d.unit = anchor.unit;
                    diags.push(d);
                }
                continue; // do not extend past the first violation
            }
            if path.len() >= 16 {
                continue;
            }
            let head = model.edges[last].to.as_str();
            // Simple paths only: never revisit a relation on the path.
            let on_path = |rel: &str| {
                model.edges[path[0]].from == rel || path.iter().any(|&i| model.edges[i].to == rel)
            };
            if let Some(next) = out_edges.get(head) {
                for &i in next.iter().rev() {
                    if on_path(model.edges[i].to.as_str()) {
                        continue;
                    }
                    let mut p = path.clone();
                    p.push(i);
                    stack.push((p, degree + model.edges[i].fanout.degree));
                }
            }
        }
    }
}

/// `periodic -[r0]-> start -[r1]-> mid -[r2]-> out`.
fn render_hops(model: &FlowModel, root: &str, path: &[usize]) -> String {
    use std::fmt::Write;
    let mut out = String::from(root);
    for &i in path {
        let e = &model.edges[i];
        let arrow = if e.remote { "=>" } else { "->" };
        let _ = write!(out, " -[{}]{arrow} {}", model.rules[e.rule].label, e.to);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::build_model;
    use p2_overlog::parse_program;

    fn model_of(src: &str) -> (FlowModel, AnalysisCtx) {
        let p = parse_program(src).unwrap();
        let ctx = AnalysisCtx::default();
        (build_model(&[&p], &ctx), ctx)
    }

    #[test]
    fn linear_chain_has_exact_bounds() {
        let (m, ctx) = model_of(
            "materialize(peer, infinity, 8, keys(1, 2)).\n\
             hb1 beat@P(N, E) :- periodic@N(E, 5), peer@N(P).\n\
             hb2 seen@N(F) :- beat@N(F, E).",
        );
        let r = analyze(&m, &ctx);
        // periodic fires hb1: ≤8 beats, each derives ≤1 seen → 8·(1+1).
        assert_eq!(r.amplification.get("periodic"), Some(&Bound::Finite(16)));
        assert_eq!(r.depth.get("periodic"), Some(&Bound::Finite(2)));
        assert_eq!(r.amplification.get("beat"), Some(&Bound::Finite(1)));
        assert_eq!(r.roots, vec!["periodic".to_string()]);
    }

    #[test]
    fn cycle_reaching_roots_are_unbounded() {
        let (m, ctx) = model_of(
            "r0 ping@N(E) :- periodic@N(E, 5).\n\
             r1 pong@N(X) :- ping@N(X).\n\
             r2 ping@N(X) :- pong@N(X).",
        );
        let r = analyze(&m, &ctx);
        assert_eq!(r.amplification.get("periodic"), Some(&Bound::Unbounded));
        assert_eq!(r.depth.get("ping"), Some(&Bound::Unbounded));
    }

    #[test]
    fn superlinear_path_warns() {
        let (m, ctx) = model_of(
            "materialize(big1, infinity, infinity, keys(1, 2)).\n\
             materialize(big2, infinity, infinity, keys(1, 2)).\n\
             r0 start@N(E) :- periodic@N(E, 10).\n\
             r1 mid@N(Y) :- start@N(E), big1@N(Y).\n\
             r2 fan@N(Y, Z) :- mid@N(Y), big2@N(Z).",
        );
        let mut d = Diagnostics::new();
        check(&m, &ctx, &mut d);
        assert_eq!(d.items.len(), 1, "{d:?}");
        assert_eq!(d.items[0].code, "P2W602");
        assert!(
            d.items[0].message.contains("big1"),
            "{}",
            d.items[0].message
        );
        assert!(
            d.items[0].message.contains("big2"),
            "{}",
            d.items[0].message
        );
    }

    #[test]
    fn single_unbounded_join_is_linear_enough() {
        let (m, ctx) = model_of(
            "materialize(big, infinity, infinity, keys(1, 2)).\n\
             r0 start@N(E) :- periodic@N(E, 10).\n\
             r1 out@N(Y) :- start@N(E), big@N(Y).",
        );
        let mut d = Diagnostics::new();
        check(&m, &ctx, &mut d);
        assert!(d.items.is_empty(), "{d:?}");
    }

    #[test]
    fn keyed_probe_is_multiplicity_one() {
        let (m, ctx) = model_of(
            "materialize(big, infinity, infinity, keys(1, 2)).\n\
             r0 start@N(Y) :- periodic@N(E, 10), Y := E.\n\
             r1 out@N(Y) :- start@N(Y), big@N(Y).",
        );
        let r = analyze(&m, &ctx);
        // keys(1,2) = (N, Y), both bound by the trigger: ×1.
        assert_eq!(r.amplification.get("start"), Some(&Bound::Finite(1)));
    }
}
