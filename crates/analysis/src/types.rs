//! Field/variable type inference by unification (P2W201, P2W202).
//!
//! OverLog is dynamically typed, so a monitor that compares a ring
//! identifier against a string compiles and runs — and never matches.
//! This pass recovers a static typing by unifying, across the whole
//! unit stack, every (relation, field) slot with the variables and
//! constants that flow through it. The type lattice is deliberately
//! coarse — it exists to catch *confusions*, not to type-check
//! arithmetic:
//!
//! ```text
//!        int literal ──┬──> num  (int / float / time)
//!                      └──> id   (ring identifiers, hex literals)
//!        "…" / addr ──────> str/addr   (a string stores fine in an
//!                                       address field: `succ@N(0, "-")`)
//!        bool, list ──────> themselves
//! ```
//!
//! Arithmetic results are `unknown` (ring subtraction, time deltas and
//! list concatenation all share operators, so constraining operands
//! would drown real findings in false ones); comparisons unify their
//! operands; `in` intervals unify the scrutinee with both endpoints.
//! A class that receives two incompatible types is reported once
//! (`P2W201`) and then muted. `keys(...)` naming a conflicted field is
//! `P2W202` — rows can never be compared reliably under such a key.

use p2_overlog::{
    AggFunc, Arg, BinOp, Diagnostic, Diagnostics, Expr, Predicate, Program, Rule, Severity, Span,
    Statement, Term, UnOp,
};
use p2_types::Value;
use std::collections::HashMap;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Ty {
    Unknown,
    /// An integer literal: compatible with both `Num` and `Id`.
    IntLike,
    /// Int / float / time — ordinary numbers.
    Num,
    /// Ring identifiers (hex literals, `f_sha1`, `f_randID`, ...).
    Id,
    /// Strings and addresses (interchangeable in P2 source).
    StrAddr,
    Bool,
    List,
}

impl Ty {
    fn name(self) -> &'static str {
        match self {
            Ty::Unknown => "unknown",
            Ty::IntLike => "int",
            Ty::Num => "num",
            Ty::Id => "id",
            Ty::StrAddr => "string/address",
            Ty::Bool => "bool",
            Ty::List => "list",
        }
    }

    /// Least upper bound; `Err` when the two are incompatible.
    fn join(self, other: Ty) -> Result<Ty, ()> {
        use Ty::*;
        Ok(match (self, other) {
            (Unknown, t) | (t, Unknown) => t,
            (a, b) if a == b => a,
            (IntLike, Num) | (Num, IntLike) => Num,
            (IntLike, Id) | (Id, IntLike) => Id,
            _ => return Err(()),
        })
    }
}

fn value_ty(v: &Value) -> Ty {
    match v {
        Value::Bool(_) => Ty::Bool,
        Value::Int(_) => Ty::IntLike,
        Value::Float(_) | Value::Time(_) => Ty::Num,
        Value::Id(_) => Ty::Id,
        Value::Str(_) | Value::Addr(_) => Ty::StrAddr,
        Value::List(_) => Ty::List,
    }
}

/// Union-find key: a relation field slot or a rule-scoped variable.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    /// (relation, 0-based field index)
    Field(String, usize),
    /// (rule uid unique across the stack, variable name)
    Var(usize, String),
}

/// Where a constraint came from, for reporting.
#[derive(Clone)]
struct Site {
    unit: usize,
    span: Span,
    ctx: String,
}

/// An expression's type: a class to unify with, or a fixed type.
enum Slot {
    Class(usize),
    Fixed(Ty),
}

#[derive(Default)]
struct Classes {
    ids: HashMap<Key, usize>,
    parent: Vec<usize>,
    ty: Vec<Ty>,
    /// Human name of the class ("field 2 of 'pred'", "variable K").
    /// Field descriptions win merges — they are what the user keys on.
    desc: Vec<(bool, String)>,
    /// Rule context that established the class's current type.
    prov: Vec<Option<String>>,
    conflicted: Vec<bool>,
}

impl Classes {
    fn slot(&mut self, key: Key, is_field: bool, desc: impl FnOnce() -> String) -> usize {
        if let Some(&i) = self.ids.get(&key) {
            return i;
        }
        let i = self.parent.len();
        self.parent.push(i);
        self.ty.push(Ty::Unknown);
        self.desc.push((is_field, desc()));
        self.prov.push(None);
        self.conflicted.push(false);
        self.ids.insert(key, i);
        i
    }

    fn field(&mut self, rel: &str, idx: usize) -> usize {
        self.slot(Key::Field(rel.to_string(), idx), true, || {
            // 1-based over the full tuple, matching the keys(...) syntax.
            format!("field {} of '{rel}'", idx + 1)
        })
    }

    fn var(&mut self, uid: usize, name: &str) -> usize {
        self.slot(Key::Var(uid, name.to_string()), false, || {
            format!("variable {name}")
        })
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn conflict(&mut self, root: usize, got: Ty, site: &Site, diags: &mut Diagnostics) {
        if self.conflicted[root] {
            return; // one report per class
        }
        self.conflicted[root] = true;
        let (_, desc) = &self.desc[root];
        let mut d = Diagnostic::new(
            "P2W201",
            Severity::Warning,
            format!(
                "{desc} is used as {} here but was inferred as {}",
                got.name(),
                self.ty[root].name()
            ),
        )
        .with_span(site.span)
        .with_context(site.ctx.clone());
        if let Some(p) = &self.prov[root] {
            d = d.with_help(format!("the earlier type comes from {p}"));
        }
        d.unit = site.unit;
        diags.push(d);
        // Mute the class: further uses unify freely.
        self.ty[root] = Ty::Unknown;
        self.prov[root] = None;
    }

    fn constrain(&mut self, i: usize, t: Ty, site: &Site, diags: &mut Diagnostics) {
        if t == Ty::Unknown {
            return;
        }
        let root = self.find(i);
        if self.conflicted[root] {
            return;
        }
        match self.ty[root].join(t) {
            Ok(joined) => {
                if self.ty[root] == Ty::Unknown {
                    self.prov[root] = Some(site.ctx.clone());
                }
                self.ty[root] = joined;
            }
            Err(()) => self.conflict(root, t, site, diags),
        }
    }

    fn union(&mut self, a: usize, b: usize, site: &Site, diags: &mut Diagnostics) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let joined = match self.ty[ra].join(self.ty[rb]) {
            Ok(t) => Some(t),
            Err(()) => {
                let got = self.ty[rb];
                self.conflict(ra, got, site, diags);
                None
            }
        };
        // Field-named classes absorb variable-named ones.
        let (keep, gone) = if self.desc[ra].0 || !self.desc[rb].0 {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[gone] = keep;
        self.conflicted[keep] = self.conflicted[ra] || self.conflicted[rb];
        match joined {
            Some(t) if !self.conflicted[keep] => {
                if self.ty[keep] == Ty::Unknown && t != Ty::Unknown {
                    self.prov[keep] = self.prov[ra]
                        .clone()
                        .or_else(|| self.prov[rb].clone())
                        .or_else(|| Some(site.ctx.clone()));
                }
                self.ty[keep] = t;
            }
            _ => {
                self.ty[keep] = Ty::Unknown;
                self.prov[keep] = None;
            }
        }
    }

    fn unify(&mut self, a: Slot, b: Slot, site: &Site, diags: &mut Diagnostics) {
        match (a, b) {
            (Slot::Class(x), Slot::Class(y)) => self.union(x, y, site, diags),
            (Slot::Class(x), Slot::Fixed(t)) | (Slot::Fixed(t), Slot::Class(x)) => {
                self.constrain(x, t, site, diags)
            }
            (Slot::Fixed(t1), Slot::Fixed(t2)) => {
                if t1.join(t2).is_err() {
                    push_at(
                        diags,
                        site,
                        Diagnostic::new(
                            "P2W201",
                            Severity::Warning,
                            format!(
                                "comparison between incompatible types {} and {} never holds",
                                t1.name(),
                                t2.name()
                            ),
                        ),
                    );
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr, uid: usize, site: &Site, diags: &mut Diagnostics) -> Slot {
        match e {
            Expr::Var(v) => Slot::Class(self.var(uid, v)),
            Expr::Const(v) => Slot::Fixed(value_ty(v)),
            Expr::Unary(UnOp::Not, a) => {
                let s = self.expr(a, uid, site, diags);
                self.unify(s, Slot::Fixed(Ty::Bool), site, diags);
                Slot::Fixed(Ty::Bool)
            }
            Expr::Unary(UnOp::Neg, a) => {
                self.expr(a, uid, site, diags);
                Slot::Fixed(Ty::Unknown)
            }
            Expr::Binary(op, a, b) => {
                let sa = self.expr(a, uid, site, diags);
                let sb = self.expr(b, uid, site, diags);
                match op {
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        self.unify(sa, sb, site, diags);
                        Slot::Fixed(Ty::Bool)
                    }
                    BinOp::And | BinOp::Or => {
                        self.unify(sa, Slot::Fixed(Ty::Bool), site, diags);
                        self.unify(sb, Slot::Fixed(Ty::Bool), site, diags);
                        Slot::Fixed(Ty::Bool)
                    }
                    // Arithmetic is overloaded across num/id/str/list;
                    // constraining operands would be noise.
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                        Slot::Fixed(Ty::Unknown)
                    }
                }
            }
            Expr::In { expr, lo, hi, .. } => {
                let se = self.expr(expr, uid, site, diags);
                let sl = self.expr(lo, uid, site, diags);
                let sh = self.expr(hi, uid, site, diags);
                // The scrutinee and both endpoints live on one ring.
                let anchor = match se {
                    Slot::Class(i) => i,
                    Slot::Fixed(t) => {
                        self.unify(Slot::Fixed(t), sl, site, diags);
                        self.unify(Slot::Fixed(t), sh, site, diags);
                        return Slot::Fixed(Ty::Bool);
                    }
                };
                self.unify(Slot::Class(anchor), sl, site, diags);
                self.unify(Slot::Class(anchor), sh, site, diags);
                Slot::Fixed(Ty::Bool)
            }
            Expr::Call { func, args } => {
                for a in args {
                    self.expr(a, uid, site, diags);
                }
                match func.as_str() {
                    "f_rand" | "f_randID" | "f_sha1" | "f_pow2" => Slot::Fixed(Ty::Id),
                    "f_now" => Slot::Fixed(Ty::Num),
                    _ => Slot::Fixed(Ty::Unknown),
                }
            }
            Expr::List(items) => {
                for i in items {
                    self.expr(i, uid, site, diags);
                }
                Slot::Fixed(Ty::List)
            }
        }
    }
}

pub(crate) fn check(programs: &[&Program], diags: &mut Diagnostics) {
    let mut cl = Classes::default();
    // Seed the builtin: periodic(location, nonce, period).
    let nonce = cl.field("periodic", 1);
    let period = cl.field("periodic", 2);
    let seed = Site {
        unit: 0,
        span: Span::default(),
        ctx: "builtin periodic".into(),
    };
    cl.ty[nonce] = Ty::Id;
    cl.ty[period] = Ty::Num;
    cl.prov[nonce] = Some(seed.ctx.clone());
    cl.prov[period] = Some(seed.ctx);

    let mut uid = 0usize;
    for (unit, program) in programs.iter().enumerate() {
        let mut idx = 0usize;
        for s in &program.statements {
            let Statement::Rule(r) = s else { continue };
            idx += 1;
            uid += 1;
            let ctx = r.label.clone().unwrap_or_else(|| format!("rule #{idx}"));
            walk_rule(&mut cl, r, uid, unit, &ctx, diags);
        }
    }

    // P2W202: a primary-key field whose class never settled.
    for (unit, program) in programs.iter().enumerate() {
        for m in program.materializations() {
            for &k in &m.keys {
                if k == 0 {
                    continue;
                }
                let Some(&i) = cl.ids.get(&Key::Field(m.table.clone(), k - 1)) else {
                    continue;
                };
                let root = cl.find(i);
                if cl.conflicted[root] {
                    push_at(
                        diags,
                        &Site {
                            unit,
                            span: m.span,
                            ctx: format!("materialize({})", m.table),
                        },
                        Diagnostic::new(
                            "P2W202",
                            Severity::Warning,
                            format!(
                                "key field {k} of '{}' never gets a consistent comparable \
                                 type — rows will collide or duplicate unpredictably",
                                m.table
                            ),
                        ),
                    );
                }
            }
        }
    }
}

fn walk_rule(
    cl: &mut Classes,
    r: &Rule,
    uid: usize,
    unit: usize,
    ctx: &str,
    diags: &mut Diagnostics,
) {
    walk_pred(cl, &r.head, uid, unit, ctx, diags);
    for t in &r.body {
        match t {
            Term::Pred(p) => walk_pred(cl, p, uid, unit, ctx, diags),
            Term::Cond { expr, span } => {
                let site = Site {
                    unit,
                    span: *span,
                    ctx: ctx.to_string(),
                };
                let s = cl.expr(expr, uid, &site, diags);
                cl.unify(s, Slot::Fixed(Ty::Bool), &site, diags);
            }
            Term::Assign { var, expr, span } => {
                let site = Site {
                    unit,
                    span: *span,
                    ctx: ctx.to_string(),
                };
                let s = cl.expr(expr, uid, &site, diags);
                let v = cl.var(uid, var);
                cl.unify(Slot::Class(v), s, &site, diags);
            }
        }
    }
}

fn walk_pred(
    cl: &mut Classes,
    p: &Predicate,
    uid: usize,
    unit: usize,
    ctx: &str,
    diags: &mut Diagnostics,
) {
    let site = Site {
        unit,
        span: p.span,
        ctx: ctx.to_string(),
    };
    // `past@N("rel", T0, T1, fields...)` scans rel's archived history:
    // its field args are rel's own fields, so unify against *that*
    // relation's classes — a forensic rule type-checks exactly like a
    // live join. The location and interval bounds stay unconstrained
    // (bounds accept integer seconds and time values alike).
    if p.name == "past" {
        let Some(Arg::Const(Value::Str(rel))) = p.args.get(1) else {
            return;
        };
        let rel = rel.to_string();
        for (i, a) in p.args.iter().enumerate().skip(4) {
            let f = cl.field(&rel, i - 4);
            walk_arg(cl, f, a, uid, &site, diags);
        }
        return;
    }
    for (i, a) in p.args.iter().enumerate() {
        let f = cl.field(&p.name, i);
        walk_arg(cl, f, a, uid, &site, diags);
    }
}

/// Unify one predicate argument against field class `f`.
fn walk_arg(cl: &mut Classes, f: usize, a: &Arg, uid: usize, site: &Site, diags: &mut Diagnostics) {
    match a {
        Arg::Var(v) => {
            let s = cl.var(uid, v);
            cl.union(f, s, site, diags);
        }
        Arg::Const(v) => cl.constrain(f, value_ty(v), site, diags),
        Arg::Wildcard => {}
        Arg::Agg { func, over } => match func {
            AggFunc::Count => cl.constrain(f, Ty::Num, site, diags),
            AggFunc::Sum | AggFunc::Avg => {
                cl.constrain(f, Ty::Num, site, diags);
                if let Some(v) = over {
                    let s = cl.var(uid, v);
                    cl.constrain(s, Ty::Num, site, diags);
                }
            }
            AggFunc::Min | AggFunc::Max => {
                if let Some(v) = over {
                    let s = cl.var(uid, v);
                    cl.union(f, s, site, diags);
                }
            }
        },
        Arg::Expr(e) => {
            let s = cl.expr(e, uid, site, diags);
            cl.unify(Slot::Class(f), s, site, diags);
        }
    }
}

fn push_at(diags: &mut Diagnostics, site: &Site, d: Diagnostic) {
    let mut d = d.with_span(site.span).with_context(site.ctx.clone());
    d.unit = site.unit;
    diags.push(d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_overlog::parse_program;

    fn run(srcs: &[&str]) -> Diagnostics {
        let programs: Vec<Program> = srcs.iter().map(|s| parse_program(s).unwrap()).collect();
        let refs: Vec<&Program> = programs.iter().collect();
        let mut d = Diagnostics::new();
        check(&refs, &mut d);
        d
    }

    #[test]
    fn conflicting_field_types_warn_once() {
        let d = run(&[r#"f1 t@"n"(7).
r1 out@N(X) :- ev@N(X), t@N("seven")."#]);
        let w: Vec<_> = d.items.iter().filter(|x| x.code == "P2W201").collect();
        assert_eq!(w.len(), 1, "{d:?}");
        assert!(w[0].message.contains("field 2 of 't'"), "{}", w[0].message);
    }

    #[test]
    fn int_literals_unify_with_ids() {
        // Chord's pred stores 0 as a sentinel next to ring ids.
        let d = run(&[r#"f1 pred@"n"(0x42, "n2").
f2 pred@"n"(0, "-")."#]);
        assert_eq!(d.items.len(), 0, "{d:?}");
    }

    #[test]
    fn strings_store_in_address_fields() {
        let d = run(&[r#"f1 succ@"n"("other").
f2 succ@"n"("-")."#]);
        assert_eq!(d.items.len(), 0, "{d:?}");
    }

    #[test]
    fn arithmetic_does_not_constrain_operands() {
        // Ring distance: id minus int is fine.
        let d = run(&["r1 d@N(D) :- lookup@N(K), node@N(NID), D := K - NID - 1, K in (NID, D]."]);
        assert_eq!(d.items.len(), 0, "{d:?}");
    }

    #[test]
    fn comparison_propagates_types_across_rules() {
        // X flows through ev's field into a string comparison in r1 and
        // a numeric comparison in r2: the field class conflicts.
        let d = run(&["r1 a@N(X) :- ev@N(X), X == \"s\".
r2 b@N(X) :- ev@N(X), X < 3."]);
        assert_eq!(d.items.iter().filter(|x| x.code == "P2W201").count(), 1);
    }

    #[test]
    fn conflicted_key_field_warns() {
        let d = run(&[r#"materialize(t, infinity, 10, keys(2)).
f1 t@"n"(1).
r1 out@N(X) :- ev@N(X), t@N("s")."#]);
        assert!(d.items.iter().any(|x| x.code == "P2W202"), "{d:?}");
    }

    #[test]
    fn keyed_list_field_is_fine() {
        // paths.olg keys a list-valued field; consistent => no warning.
        let d = run(&["materialize(path, infinity, 100, keys(1, 2, 3)).
p1 path@A(B, P) :- link@A(B, W), P := [A, B]."]);
        assert_eq!(d.items.len(), 0, "{d:?}");
    }

    #[test]
    fn aggregate_results_are_numbers() {
        let d = run(&["r1 c@N(count<*>) :- t@N(X).
r2 out@N(C) :- cEvt@N(C), C > \"high\"."]);
        // c's field and cEvt's field are separate relations — only the
        // cEvt comparison conflicts... with nothing (C is only StrAddr).
        // But count<*> in c forces Num; comparing c's field elsewhere
        // would conflict:
        let d2 = run(&["r1 c@N(count<*>) :- t@N(X).
r2 out@N(C) :- c@N(C), C == \"high\"."]);
        assert!(d.items.is_empty());
        assert_eq!(d2.items.iter().filter(|x| x.code == "P2W201").count(), 1);
    }
}
