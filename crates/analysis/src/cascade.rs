//! Cascade-termination analysis (P2W601, P2N604, P2N605) and the shared
//! flow model the deep passes run over.
//!
//! OverLog rules re-execute eagerly: a derived tuple is a delta that can
//! trigger the rule that derived it, directly or through other rules. A
//! cycle in that trigger graph is an *event storm* unless something
//! narrows it on every round. This module builds the trigger graph —
//! one edge per (triggering relation, rule) pair, mirroring the
//! planner's strand triggers — enumerates the simple cycles of each
//! strongly connected component, and classifies every cycle by the best
//! edge it contains:
//!
//! * **Guarded** — the rule carries a narrowing predicate on its
//!   trigger: a body condition referencing a trigger-bound variable, or
//!   a constant / repeated-variable / expression match inside the
//!   trigger pattern itself. Each round discards part of the space
//!   (Chord's `l2` `FID in (NID, K)`, the snapshot protocol's
//!   `haveSnap@N(Src, I, 0)`).
//! * **Converging** — the rule is pure (no fresh-value built-ins) and
//!   derives plain variables/constants into a keyed materialized table:
//!   re-deriving an existing row refreshes it without raising a delta,
//!   so the loop runs out of new rows (Chord's `ft4`).
//! * **Weak** — pure into a keyed table, but the head *computes* new
//!   values (`path(..., [B,A] + P, W + Y)`): set semantics only bounds
//!   the loop if the generated value domain is finite. Worth a note.
//! * **Free** — nothing narrows the edge.
//!
//! A cycle whose safest edge is Free is `P2W601` (potential event
//! storm, the path rendered rule by rule); Weak is the `P2N605`
//! value-generation note; Guarded/Converging is the `P2N604` bounded
//! note naming the bounding rule. Cycles are judged by their most
//! dangerous rule choice per hop, so one guarded rule between two
//! relations does not excuse an unguarded sibling rule on the same hop.

use crate::liveness::BUILTIN_PRODUCED;
use crate::AnalysisCtx;
use p2_overlog::{
    Arg, Diagnostic, Diagnostics, Expr, Predicate, Program, Severity, SizeLimit, Span, Statement,
    Term,
};
use std::collections::{BTreeMap, BTreeSet};

/// Built-ins that mint a fresh value on every call. A rule calling one
/// can emit a brand-new tuple each round even from identical inputs, so
/// it never converges by set semantics.
const FRESH_BUILTINS: &[&str] = &["f_now", "f_rand", "f_randID"];

/// Keep cycle enumeration bounded on hostile inputs.
const MAX_CYCLES: usize = 64;
const MAX_CYCLE_LEN: usize = 12;

/// What the model knows about a declared table.
pub(crate) struct TableInfo {
    /// 0-based key field positions (location included).
    pub keys: Vec<usize>,
    /// Row bound; `None` = `infinity`.
    pub max_rows: Option<u64>,
}

/// How many rows one probe of a body table can yield.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Mult {
    /// Fully keyed (or fully bound) probe: at most one row.
    One,
    /// Bounded by the table's declared `max_size`.
    Rows(u64),
    /// A runtime table with no declaration in the stack (trace or
    /// introspection tables, the node's own catalog): finite, size
    /// unknown.
    FiniteUnknown,
    /// Declared `infinity` size and the probe is not keyed.
    Unbounded,
}

/// Per-firing output bound of one rule edge: a single product term
/// `coeff · N^degree` where `N` stands for the rows of an unbounded
/// table.
#[derive(Clone, Debug)]
pub(crate) struct Fanout {
    /// Numeric part; `None` when a finite-but-undeclared table poisons
    /// the number (the bound is finite but cannot be stated).
    pub coeff: Option<u64>,
    /// Number of unbounded-table factors.
    pub degree: u32,
    /// Human-readable factors, e.g. `finger×64`, `path×N`.
    pub factors: Vec<String>,
}

impl Fanout {
    fn unit() -> Fanout {
        Fanout {
            coeff: Some(1),
            degree: 0,
            factors: Vec::new(),
        }
    }

    fn apply(&mut self, table: &str, mult: Mult) {
        match mult {
            Mult::One => {}
            Mult::Rows(n) => {
                self.coeff = self.coeff.map(|c| c.saturating_mul(n.max(1)));
                if n > 1 {
                    self.factors.push(format!("{table}\u{d7}{n}"));
                }
            }
            Mult::FiniteUnknown => {
                self.coeff = None;
                self.factors.push(format!("{table}\u{d7}?"));
            }
            Mult::Unbounded => {
                self.degree += 1;
                self.factors.push(format!("{table}\u{d7}N"));
            }
        }
    }
}

/// Safety classification of one trigger edge, safest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum EdgeClass {
    Guarded,
    Converging,
    Weak,
    Free,
}

/// One (triggering relation → head relation) edge of the trigger graph.
pub(crate) struct FlowEdge {
    pub from: String,
    pub to: String,
    /// Index into [`FlowModel::rules`].
    pub rule: usize,
    pub class: EdgeClass,
    pub fanout: Fanout,
    /// The trigger is the `periodic` timer (a root, never producible).
    pub periodic: bool,
    /// The head is sent to a different location than the body runs at.
    pub remote: bool,
}

/// A (body table → materialized head) edge for stratification.
pub(crate) struct StratEdge {
    pub from: String,
    pub to: String,
    pub agg: bool,
    pub rule: usize,
}

/// Positioning info for one rule, shared by every deep pass.
pub(crate) struct FlowRuleInfo {
    pub label: String,
    pub unit: usize,
    pub span: Span,
}

/// The flow model: trigger edges, stratification edges, table facts.
pub(crate) struct FlowModel {
    pub rules: Vec<FlowRuleInfo>,
    pub edges: Vec<FlowEdge>,
    pub strat_edges: Vec<StratEdge>,
    pub tables: BTreeMap<String, TableInfo>,
}

/// Build the flow model over a unit stack. Mirrors the planner's
/// trigger selection: a rule with event predicates gets one edge per
/// event; an all-table rule gets one delta edge per body table (`past`
/// scans are sources, never triggers); `delete` rules contribute no
/// edges — deletions do not raise insert deltas.
pub(crate) fn build_model(programs: &[&Program], ctx: &AnalysisCtx) -> FlowModel {
    let mut tables: BTreeMap<String, TableInfo> = BTreeMap::new();
    for program in programs {
        for m in program.materializations() {
            tables.insert(
                m.table.clone(),
                TableInfo {
                    keys: m.keys.iter().map(|k| k.saturating_sub(1)).collect(),
                    max_rows: match m.max_size {
                        SizeLimit::Rows(n) => Some(n as u64),
                        SizeLimit::Infinity => None,
                    },
                },
            );
        }
    }

    let builtin_table = |n: &str| n != "periodic" && BUILTIN_PRODUCED.contains(&n);
    let is_table =
        |n: &str| tables.contains_key(n) || ctx.known_tables.contains(n) || builtin_table(n);

    let mut model = FlowModel {
        rules: Vec::new(),
        edges: Vec::new(),
        strat_edges: Vec::new(),
        tables: BTreeMap::new(),
    };

    for (unit, program) in programs.iter().enumerate() {
        let mut idx = 0usize;
        for s in &program.statements {
            let Statement::Rule(r) = s else { continue };
            idx += 1;
            let label = r.label.clone().unwrap_or_else(|| format!("rule #{idx}"));
            let rule_id = model.rules.len();
            model.rules.push(FlowRuleInfo {
                label,
                unit,
                span: r.span,
            });
            if r.delete {
                continue;
            }
            let body_preds: Vec<&Predicate> = r.body_predicates().collect();
            if body_preds.is_empty() {
                continue; // a fact
            }

            // Stratification edges: body tables feeding a materialized
            // head, aggregate-marked. Event heads and `past` scans are
            // cascade territory, not fixpoint strata.
            if is_table(&r.head.name) {
                for p in &body_preds {
                    if p.name != "past" && p.name != "periodic" && is_table(&p.name) {
                        model.strat_edges.push(StratEdge {
                            from: p.name.clone(),
                            to: r.head.name.clone(),
                            agg: r.is_aggregate(),
                            rule: rule_id,
                        });
                    }
                }
            }

            let pure = rule_is_pure(r);
            let head_expr_args = r.head.args.iter().any(|a| matches!(a, Arg::Expr(_)));
            let triggers: Vec<usize> = {
                let events: Vec<usize> = (0..body_preds.len())
                    .filter(|&i| {
                        let n = body_preds[i].name.as_str();
                        n == "periodic" || !is_table(n)
                    })
                    .collect();
                if events.is_empty() {
                    (0..body_preds.len())
                        .filter(|&i| body_preds[i].name != "past")
                        .collect()
                } else {
                    events
                }
            };

            for t in triggers {
                let trig = body_preds[t];
                let trigger_vars = pred_vars(trig);
                let narrowed = trigger_narrows(trig) || guarded_cond(r, &trigger_vars);
                let fanout = rule_fanout(r, t, &trigger_vars, &tables, &is_table);
                let class = if narrowed {
                    EdgeClass::Guarded
                } else if pure && is_table(&r.head.name) && r.is_aggregate() {
                    // A pure aggregate into a keyed table: the group's
                    // value is a function of the (set-semantic) input.
                    EdgeClass::Converging
                } else if pure && is_table(&r.head.name) && !head_expr_args {
                    EdgeClass::Converging
                } else if pure && is_table(&r.head.name) {
                    EdgeClass::Weak
                } else {
                    EdgeClass::Free
                };
                model.edges.push(FlowEdge {
                    from: trig.name.clone(),
                    to: r.head.name.clone(),
                    rule: rule_id,
                    class,
                    fanout,
                    periodic: trig.name == "periodic",
                    remote: is_remote(&r.head, trig),
                });
            }
        }
    }

    model.tables = tables;
    model
}

/// All variables a predicate occurrence binds (location included,
/// embedded match expressions contribute their free variables).
fn pred_vars(p: &Predicate) -> BTreeSet<String> {
    let mut vars = Vec::new();
    p.arg_vars(&mut vars);
    vars.into_iter().collect()
}

/// Does the trigger pattern itself narrow the match — a constant, an
/// expression, or a repeated variable among its arguments?
fn trigger_narrows(p: &Predicate) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for a in &p.args {
        match a {
            Arg::Const(_) | Arg::Expr(_) => return true,
            Arg::Var(v) if !seen.insert(v.as_str()) => return true,
            _ => {}
        }
    }
    false
}

/// Does some body condition reference a trigger-bound variable?
fn guarded_cond(r: &p2_overlog::Rule, trigger_vars: &BTreeSet<String>) -> bool {
    r.body.iter().any(|t| match t {
        Term::Cond { expr, .. } => {
            let mut vars = Vec::new();
            expr.free_vars(&mut vars);
            vars.iter().any(|v| trigger_vars.contains(v))
        }
        _ => false,
    })
}

/// No fresh-value built-in anywhere in the rule.
fn rule_is_pure(r: &p2_overlog::Rule) -> bool {
    let mut pure = true;
    let mut check = |e: &Expr| {
        e.for_each_call(&mut |f| {
            if FRESH_BUILTINS.contains(&f) {
                pure = false;
            }
        });
    };
    for a in &r.head.args {
        if let Arg::Expr(e) = a {
            check(e);
        }
    }
    for t in &r.body {
        match t {
            Term::Cond { expr, .. } | Term::Assign { expr, .. } => check(expr),
            Term::Pred(p) => {
                for a in &p.args {
                    if let Arg::Expr(e) = a {
                        check(e);
                    }
                }
            }
        }
    }
    pure
}

/// Is the head delivered somewhere other than where the trigger lives?
fn is_remote(head: &Predicate, trig: &Predicate) -> bool {
    match (head.loc(), trig.loc()) {
        (Arg::Var(a), Arg::Var(b)) => a != b,
        (Arg::Const(a), Arg::Const(b)) => a != b,
        (Arg::Wildcard, Arg::Wildcard) => false,
        _ => true,
    }
}

/// Join-multiplicity product over the rule's non-trigger body tables,
/// walking terms in source order and tracking the bound-variable set.
fn rule_fanout(
    r: &p2_overlog::Rule,
    trigger_idx: usize,
    trigger_vars: &BTreeSet<String>,
    tables: &BTreeMap<String, TableInfo>,
    is_table: &dyn Fn(&str) -> bool,
) -> Fanout {
    let mut bound = trigger_vars.clone();
    let mut fanout = Fanout::unit();
    let mut pred_no = 0usize;
    for term in &r.body {
        match term {
            Term::Assign { var, .. } => {
                bound.insert(var.clone());
            }
            Term::Cond { .. } => {}
            Term::Pred(p) => {
                let this = pred_no;
                pred_no += 1;
                if this == trigger_idx {
                    continue;
                }
                let arg_bound = |a: &Arg| match a {
                    Arg::Const(_) => true,
                    Arg::Var(v) => bound.contains(v),
                    Arg::Expr(e) => {
                        let mut vars = Vec::new();
                        e.free_vars(&mut vars);
                        vars.iter().all(|v| bound.contains(v))
                    }
                    Arg::Wildcard | Arg::Agg { .. } => false,
                };
                let all_bound = p.args.iter().all(arg_bound);
                let mult = if let Some(info) = tables.get(&p.name) {
                    let keyed = !info.keys.is_empty()
                        && info
                            .keys
                            .iter()
                            .all(|&k| p.args.get(k).map(arg_bound).unwrap_or(false));
                    if keyed || all_bound {
                        Mult::One
                    } else {
                        match info.max_rows {
                            Some(n) => Mult::Rows(n),
                            None => Mult::Unbounded,
                        }
                    }
                } else if is_table(&p.name) || p.name == "past" {
                    if all_bound {
                        Mult::One
                    } else {
                        Mult::FiniteUnknown
                    }
                } else {
                    // Another event predicate (a two-event body, already
                    // flagged as P2W303): one instant, one tuple.
                    Mult::One
                };
                fanout.apply(&p.name, mult);
                for v in pred_vars(p) {
                    bound.insert(v);
                }
            }
        }
    }
    if r.is_aggregate() {
        // An aggregate emits one row per group per firing; the join
        // product already bounds the group count, but never goes below
        // the single row a zero-count emission produces.
        fanout.coeff = fanout.coeff.map(|c| c.max(1));
    }
    fanout
}

// ---------------------------------------------------------------------
// Cycle detection and classification
// ---------------------------------------------------------------------

/// Run the cascade-termination pass: enumerate trigger cycles, classify
/// each, emit P2W601 / P2N604 / P2N605.
pub(crate) fn check(model: &FlowModel, diags: &mut Diagnostics) {
    // Relation-level adjacency with the edge indices per hop.
    let mut adj: BTreeMap<&str, BTreeMap<&str, Vec<usize>>> = BTreeMap::new();
    for (i, e) in model.edges.iter().enumerate() {
        adj.entry(e.from.as_str())
            .or_default()
            .entry(e.to.as_str())
            .or_default()
            .push(i);
    }

    let nodes: Vec<&str> = {
        let mut set: BTreeSet<&str> = BTreeSet::new();
        for e in &model.edges {
            set.insert(e.from.as_str());
            set.insert(e.to.as_str());
        }
        set.into_iter().collect()
    };
    let sccs = strongly_connected(&nodes, &adj);
    let scc_of: BTreeMap<&str, usize> = sccs
        .iter()
        .enumerate()
        .flat_map(|(i, scc)| scc.iter().map(move |n| (*n, i)))
        .collect();

    let mut cycles: Vec<Vec<&str>> = Vec::new();
    for scc in &sccs {
        let members: BTreeSet<&str> = scc.iter().copied().collect();
        let cyclic = scc.len() > 1
            || scc
                .first()
                .map(|n| adj.get(n).and_then(|m| m.get(n)).is_some())
                .unwrap_or(false);
        if !cyclic {
            continue;
        }
        // Enumerate node-simple cycles, each rooted at its smallest
        // member so every cycle is found exactly once.
        let mut sorted: Vec<&str> = members.iter().copied().collect();
        sorted.sort_unstable();
        for (ri, root) in sorted.iter().enumerate() {
            let allowed: BTreeSet<&str> = sorted[ri..].iter().copied().collect();
            let mut path = vec![*root];
            dfs_cycles(root, root, &adj, &allowed, &mut path, &mut cycles);
            if cycles.len() >= MAX_CYCLES {
                break;
            }
        }
    }
    let _ = scc_of; // membership only guides enumeration scope

    for cycle in cycles {
        // Most dangerous rule choice per hop; the cycle is as safe as
        // the safest edge of that choice.
        let mut chosen: Vec<usize> = Vec::with_capacity(cycle.len());
        for (i, from) in cycle.iter().enumerate() {
            let to = cycle[(i + 1) % cycle.len()];
            let Some(edge_ids) = adj.get(from).and_then(|m| m.get(to)) else {
                chosen.clear();
                break;
            };
            let worst = edge_ids
                .iter()
                .copied()
                .max_by_key(|&id| (model.edges[id].class, std::cmp::Reverse(id)));
            match worst {
                Some(w) => chosen.push(w),
                None => {
                    chosen.clear();
                    break;
                }
            }
        }
        if chosen.is_empty() {
            continue;
        }
        let overall = chosen
            .iter()
            .map(|&id| model.edges[id].class)
            .min()
            .unwrap_or(EdgeClass::Free);
        let path = render_path(model, &chosen);
        let anchor = &model.rules[model.edges[chosen[0]].rule];
        let mut d = match overall {
            EdgeClass::Free => Diagnostic::new(
                "P2W601",
                Severity::Warning,
                format!(
                    "rules re-trigger themselves with no narrowing guard — \
                     potential event storm: {path}"
                ),
            )
            .with_help(
                "add a condition on a triggering field, or derive into a keyed \
                 materialized table so re-derivations converge",
            ),
            EdgeClass::Weak => {
                let weak = chosen
                    .iter()
                    .find(|&&id| model.edges[id].class == EdgeClass::Weak)
                    .map(|&id| model.rules[model.edges[id].rule].label.clone())
                    .unwrap_or_default();
                Diagnostic::new(
                    "P2N605",
                    Severity::Note,
                    format!(
                        "recursive cycle {path} generates computed values in rule \
                         '{weak}' — it terminates only if the generated value \
                         domain is finite"
                    ),
                )
            }
            EdgeClass::Guarded | EdgeClass::Converging => {
                let (why_rule, why) = chosen
                    .iter()
                    .map(|&id| &model.edges[id])
                    .filter(|e| e.class <= EdgeClass::Converging)
                    .map(|e| {
                        let label = model.rules[e.rule].label.clone();
                        let why = if e.class == EdgeClass::Guarded {
                            "guards the loop with a condition on its trigger".to_string()
                        } else {
                            format!("converges through keyed table '{}'", e.to)
                        };
                        (label, why)
                    })
                    .next()
                    .unwrap_or_default();
                Diagnostic::new(
                    "P2N604",
                    Severity::Note,
                    format!("recursive cycle {path} is bounded: rule '{why_rule}' {why}"),
                )
            }
        };
        d.unit = anchor.unit;
        d = d.with_span(anchor.span).with_context(anchor.label.clone());
        diags.push(d);
    }
}

/// `ping -[r1]-> pong -[r2]=> ping` (`=>` marks a location hop).
fn render_path(model: &FlowModel, chosen: &[usize]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for &id in chosen {
        let e = &model.edges[id];
        let arrow = if e.remote { "=>" } else { "->" };
        let _ = write!(out, "{} -[{}]{arrow} ", e.from, model.rules[e.rule].label);
    }
    out.push_str(&model.edges[chosen[0]].from);
    out
}

fn dfs_cycles<'a>(
    root: &'a str,
    at: &'a str,
    adj: &BTreeMap<&'a str, BTreeMap<&'a str, Vec<usize>>>,
    allowed: &BTreeSet<&'a str>,
    path: &mut Vec<&'a str>,
    cycles: &mut Vec<Vec<&'a str>>,
) {
    if cycles.len() >= MAX_CYCLES || path.len() > MAX_CYCLE_LEN {
        return;
    }
    let Some(next) = adj.get(at) else { return };
    for &to in next.keys() {
        if to == root {
            cycles.push(path.clone());
            if cycles.len() >= MAX_CYCLES {
                return;
            }
            continue;
        }
        if !allowed.contains(to) || path.contains(&to) {
            continue;
        }
        path.push(to);
        dfs_cycles(root, to, adj, allowed, path, cycles);
        path.pop();
    }
}

/// Iterative Tarjan over the relation graph; returns SCCs, each sorted.
pub(crate) fn strongly_connected<'a>(
    nodes: &[&'a str],
    adj: &BTreeMap<&'a str, BTreeMap<&'a str, Vec<usize>>>,
) -> Vec<Vec<&'a str>> {
    struct State<'a> {
        index: BTreeMap<&'a str, usize>,
        low: BTreeMap<&'a str, usize>,
        on_stack: BTreeSet<&'a str>,
        stack: Vec<&'a str>,
        next: usize,
        out: Vec<Vec<&'a str>>,
    }
    let mut st = State {
        index: BTreeMap::new(),
        low: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    // Explicit work stack: (node, iterator position over successors).
    for &start in nodes {
        if st.index.contains_key(start) {
            continue;
        }
        let mut work: Vec<(&str, Vec<&str>, usize)> = Vec::new();
        let succs = |n: &str| -> Vec<&'a str> {
            adj.get(n)
                .map(|m| m.keys().copied().collect())
                .unwrap_or_default()
        };
        st.index.insert(start, st.next);
        st.low.insert(start, st.next);
        st.next += 1;
        st.stack.push(start);
        st.on_stack.insert(start);
        work.push((start, succs(start), 0));
        while let Some((node, kids, pos)) = work.pop() {
            if pos < kids.len() {
                let child = kids[pos];
                work.push((node, kids, pos + 1));
                if !st.index.contains_key(child) {
                    st.index.insert(child, st.next);
                    st.low.insert(child, st.next);
                    st.next += 1;
                    st.stack.push(child);
                    st.on_stack.insert(child);
                    let k = succs(child);
                    work.push((child, k, 0));
                } else if st.on_stack.contains(child) {
                    let ci = st.index.get(child).copied().unwrap_or(0);
                    if let Some(l) = st.low.get_mut(node) {
                        *l = (*l).min(ci);
                    }
                }
            } else {
                if let Some(&(parent, _, _)) = work.last() {
                    let nl = st.low.get(node).copied().unwrap_or(0);
                    if let Some(pl) = st.low.get_mut(parent) {
                        *pl = (*pl).min(nl);
                    }
                }
                if st.low.get(node) == st.index.get(node) {
                    let mut scc = Vec::new();
                    while let Some(n) = st.stack.pop() {
                        st.on_stack.remove(n);
                        scc.push(n);
                        if n == node {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    st.out.push(scc);
                }
            }
        }
    }
    st.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_overlog::parse_program;

    fn run(src: &str) -> Diagnostics {
        let p = parse_program(src).unwrap();
        let model = build_model(&[&p], &AnalysisCtx::default());
        let mut d = Diagnostics::new();
        check(&model, &mut d);
        d
    }

    fn codes(d: &Diagnostics) -> Vec<&'static str> {
        d.items.iter().map(|x| x.code).collect()
    }

    #[test]
    fn self_trigger_is_a_storm() {
        let d = run("r1 ping@N(X) :- ping@N(X).");
        assert_eq!(codes(&d), ["P2W601"]);
        assert!(d.items[0].message.contains("ping -[r1]-> ping"), "{d:?}");
    }

    #[test]
    fn ping_pong_is_a_storm_with_a_remote_hop() {
        let d = run("r1 pong@B(A) :- ping@A(B).\nr2 ping@A(B) :- pong@B(A).");
        assert_eq!(codes(&d), ["P2W601"]);
        assert!(d.items[0].message.contains("=>"), "{d:?}");
    }

    #[test]
    fn guarded_cycle_is_a_bounded_note() {
        let d = run("r1 token@N(C) :- token@N(C), C > 0.");
        assert_eq!(codes(&d), ["P2N604"], "{d:?}");
    }

    #[test]
    fn constant_trigger_match_bounds() {
        let d = run("r1 step@N(X) :- step@N(X), probe@N(Y).\nr2 probe@N(X) :- step@N(X).");
        // step(X) has no guard anywhere: storm.
        assert!(codes(&d).contains(&"P2W601"), "{d:?}");
        let d = run("r1 snap@N(I) :- have@N(I, 0).\nr2 have@N(I, X) :- snap@N(I).");
        assert_eq!(codes(&d), ["P2N604"], "{d:?}");
    }

    #[test]
    fn pure_keyed_table_recursion_converges() {
        let d = run("materialize(pred, infinity, 1, keys(1)).\n\
                     materialize(faultyNode, 30, 64, keys(1, 2)).\n\
                     ft4 pred@N(0) :- faultyNode@N(F, T), pred@N(F).");
        assert_eq!(codes(&d), ["P2N604"], "{d:?}");
        assert!(d.items[0].message.contains("converges"), "{d:?}");
    }

    #[test]
    fn value_generating_table_recursion_notes() {
        let d = run("materialize(path, infinity, infinity, keys(1, 2, 3)).\n\
                     materialize(link, infinity, infinity, keys(1, 2)).\n\
                     p1 path@B(C, P + 1) :- link@A(B, W), path@A(C, P).");
        assert_eq!(codes(&d), ["P2N605"], "{d:?}");
    }

    #[test]
    fn impure_table_recursion_is_a_storm() {
        let d = run("materialize(t, infinity, 10, keys(1)).\n\
                     r1 t@N(X) :- t@N(X2), X := f_rand().");
        assert_eq!(codes(&d), ["P2W601"], "{d:?}");
    }

    #[test]
    fn worst_rule_per_hop_decides() {
        // r1 guards the hop but its sibling r2 does not: still a storm.
        let d = run("r1 pong@N(X) :- ping@N(X), X > 0.\n\
                     r2 pong@N(X) :- ping@N(X).\n\
                     r3 ping@N(X) :- pong@N(X).");
        assert_eq!(codes(&d), ["P2W601"], "{d:?}");
        assert!(d.items[0].message.contains("r2"), "{d:?}");
    }
}
