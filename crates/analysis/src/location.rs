//! Location safety (P2W111, P2W112).
//!
//! A P2 rule is evaluated at a single node: every body predicate must
//! match tuples stored *there* (§2 — the location specifier names where
//! the tuple lives, and rules with bodies spanning locations must be
//! rewritten into localizable steps by hand). The front end already
//! rejects heads addressed by an unbound location (P2E111); this pass
//! flags the two body-side hazards:
//!
//! * **P2W111** — body predicates at more than one distinct location:
//!   the rule can never be installed at a node that holds all its
//!   inputs.
//! * **P2W112** — a wildcard as a body location: it matches tuples
//!   regardless of address, which is almost always a forgotten
//!   variable.

use p2_overlog::{Arg, Diagnostic, Diagnostics, Program, Severity, Statement};

pub(crate) fn check(programs: &[&Program], diags: &mut Diagnostics) {
    for (unit, program) in programs.iter().enumerate() {
        let mut idx = 0usize;
        for s in &program.statements {
            let Statement::Rule(r) = s else { continue };
            idx += 1;
            if r.body.is_empty() {
                continue; // facts
            }
            let ctx = r.label.clone().unwrap_or_else(|| format!("rule #{idx}"));
            // Distinct location terms across the body, in order.
            let mut locs: Vec<String> = Vec::new();
            for p in r.body_predicates() {
                match p.loc() {
                    Arg::Var(v) => {
                        if !locs.contains(v) {
                            locs.push(v.clone());
                        }
                    }
                    Arg::Const(c) => {
                        let d = format!("{c}");
                        if !locs.contains(&d) {
                            locs.push(d);
                        }
                    }
                    Arg::Wildcard => {
                        let mut d = Diagnostic::new(
                            "P2W112",
                            Severity::Warning,
                            format!(
                                "wildcard as the location of '{}' matches tuples at any \
                                 address",
                                p.name
                            ),
                        )
                        .with_span(p.span)
                        .with_context(ctx.clone())
                        .with_help("bind the location to a variable instead");
                        d.unit = unit;
                        diags.push(d);
                    }
                    // An expression or aggregate in location position is
                    // caught elsewhere (selection / P2E103).
                    Arg::Expr(_) | Arg::Agg { .. } => {}
                }
            }
            if locs.len() > 1 {
                let mut d = Diagnostic::new(
                    "P2W111",
                    Severity::Warning,
                    format!(
                        "body predicates live at {} different locations ({}) — a rule \
                         runs at one node and cannot join them directly",
                        locs.len(),
                        locs.join(", ")
                    ),
                )
                .with_span(r.span)
                .with_context(ctx)
                .with_help(
                    "split the rule: derive an event at one location and ship it to the other",
                );
                d.unit = unit;
                diags.push(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_overlog::parse_program;

    fn run(src: &str) -> Diagnostics {
        let p = parse_program(src).unwrap();
        let mut d = Diagnostics::new();
        check(&[&p], &mut d);
        d
    }

    #[test]
    fn single_location_rule_is_fine() {
        let d = run("r1 sendPred@SAddr(PAddr) :- stabilize@NAddr(SAddr), pred@NAddr(PAddr).");
        assert!(d.items.is_empty(), "{d:?}");
    }

    #[test]
    fn cross_location_join_warns() {
        let d = run("r1 out@A(B) :- link@A(B), node@B(N).");
        assert_eq!(d.items.len(), 1);
        assert_eq!(d.items[0].code, "P2W111");
        assert!(
            d.items[0].message.contains("A, B"),
            "{}",
            d.items[0].message
        );
    }

    #[test]
    fn wildcard_location_warns() {
        // `@_` does not parse; a wildcard location arrives through the
        // unsugared form where args[0] is the location.
        let d = run("r1 out@A(X) :- ev@A(X), t(_, X).");
        assert_eq!(d.items.len(), 1);
        assert_eq!(d.items[0].code, "P2W112");
    }
}
