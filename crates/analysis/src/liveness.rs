//! Program dependency graph and liveness lints
//! (P2W301, P2N302, P2N303, P2W303, P2W304, P2N401).
//!
//! Builds producer/consumer sets over the whole unit stack and walks
//! the relation dependency graph:
//!
//! * **P2W301** — a relation is read but nothing writes it: the classic
//!   typo'd-name failure (the monitor silently matches nothing). Comes
//!   with a did-you-mean hint when a produced name is within edit
//!   distance 2. Declared tables are exempt (see P2N303) — they may be
//!   filled at install time.
//! * **P2N302** — a relation is written but nothing reads it.
//! * **P2N303** — a *declared* table is read but never written by the
//!   stack: legitimate when rows arrive from a program installed later,
//!   so only a note.
//! * **P2W303** — two transient events joined in one body. An event
//!   exists for one dataflow instant; the join can only ever see one of
//!   them (the planner rejects this at install; here it carries a span).
//! * **P2W304** — soft-state leak: a table with *infinite* lifetime and
//!   *infinite* size transitively fed by `periodic` rules grows without
//!   bound.
//! * **P2N401** — a `delete` rule inside a derivation cycle: deletion
//!   can retrigger the derivation that feeds it. Intentional in the
//!   paper's eager-reexecution idiom, hence a note. The scan of the
//!   delete rule's own head table (which *binds* what to delete) is not
//!   counted as a cycle edge.

use crate::AnalysisCtx;
use p2_overlog::{
    Diagnostic, Diagnostics, Lifetime, Program, Severity, SizeLimit, Span, Statement,
};
use std::collections::{BTreeMap, BTreeSet};

/// Relations the runtime itself produces: reading them is always
/// legitimate, and writing `periodic`/`past` is rejected elsewhere. All
/// but `periodic` (a timer) and `past` (an archive scan) are real
/// *tables* the node registers (introspection always; the trace tables
/// when tracing is on), so event classification must not treat them as
/// transients.
pub(crate) const BUILTIN_PRODUCED: &[&str] = &[
    "periodic",
    "past",
    "sysTable",
    "sysRule",
    "sysStat",
    "sysDiag",
    "ruleExec",
    "tupleTable",
    "eventLog",
];

/// First place a relation was seen in some role.
#[derive(Clone)]
struct Occ {
    unit: usize,
    span: Span,
    ctx: String,
}

pub(crate) fn check(programs: &[&Program], ctx: &AnalysisCtx, diags: &mut Diagnostics) {
    let mut declared: BTreeMap<String, Occ> = BTreeMap::new();
    let mut declared_unbounded: BTreeSet<String> = BTreeSet::new();
    let mut produced: BTreeMap<String, Occ> = BTreeMap::new();
    let mut consumed: BTreeMap<String, Occ> = BTreeMap::new();
    // body relations -> head relation, per rule (for W304/N401).
    struct RuleEdge {
        head: String,
        body: Vec<String>,
        delete: bool,
        occ: Occ,
        label: String,
    }
    let mut edges: Vec<RuleEdge> = Vec::new();

    for (unit, program) in programs.iter().enumerate() {
        let mut idx = 0usize;
        for s in &program.statements {
            match s {
                Statement::Materialize(m) => {
                    declared.entry(m.table.clone()).or_insert(Occ {
                        unit,
                        span: m.span,
                        ctx: format!("materialize({})", m.table),
                    });
                    if m.lifetime == Lifetime::Infinity && m.max_size == SizeLimit::Infinity {
                        declared_unbounded.insert(m.table.clone());
                    }
                }
                Statement::Rule(r) => {
                    idx += 1;
                    let label = r.label.clone().unwrap_or_else(|| format!("rule #{idx}"));
                    let occ = |span| Occ {
                        unit,
                        span,
                        ctx: label.clone(),
                    };
                    if r.delete {
                        consumed
                            .entry(r.head.name.clone())
                            .or_insert(occ(r.head.span));
                    } else {
                        produced
                            .entry(r.head.name.clone())
                            .or_insert(occ(r.head.span));
                    }
                    let mut body = Vec::new();
                    for p in r.body_predicates() {
                        consumed.entry(p.name.clone()).or_insert(occ(p.span));
                        body.push(p.name.clone());
                    }
                    if !r.body.is_empty() {
                        edges.push(RuleEdge {
                            head: r.head.name.clone(),
                            body,
                            delete: r.delete,
                            occ: occ(r.span),
                            label,
                        });
                    }
                }
            }
        }
    }

    let is_builtin = |name: &str| BUILTIN_PRODUCED.contains(&name);
    let is_known = |name: &str| ctx.known_tables.contains(name);

    // P2W301 / P2N303: consumed but never produced.
    for (name, occ) in &consumed {
        if produced.contains_key(name)
            || is_builtin(name)
            || is_known(name)
            || ctx.external_events.contains(name.as_str())
        {
            continue;
        }
        if declared.contains_key(name) {
            push(
                diags,
                occ,
                Diagnostic::new(
                    "P2N303",
                    Severity::Note,
                    format!(
                        "table '{name}' is declared and read but never written by this \
                         program (fine when rows arrive at install time or from a \
                         stacked program)"
                    ),
                ),
            );
        } else {
            let mut d = Diagnostic::new(
                "P2W301",
                Severity::Warning,
                format!("nothing produces '{name}' — this match can never fire"),
            );
            // Reserved introspection tables (`sysStat`, `sysTable`, ...)
            // stay out of the suggestion pool: a typo'd application name
            // is never one edit away from them on purpose, and "did you
            // mean `sysStat`?" for a misspelled monitor relation only
            // misleads. They remain valid *producers* above — reading
            // them never warns.
            let candidates: Vec<&str> = produced
                .keys()
                .chain(declared.keys())
                .map(String::as_str)
                .chain(ctx.known_tables.iter().map(String::as_str))
                .chain(BUILTIN_PRODUCED.iter().copied())
                .filter(|c| !c.starts_with("sys"))
                .collect();
            if let Some(best) = did_you_mean(name, &candidates) {
                d = d.with_help(format!("did you mean `{best}`?"));
            }
            push(diags, occ, d);
        }
    }

    // P2N302: produced but never consumed.
    for (name, occ) in &produced {
        if consumed.contains_key(name) || is_builtin(name) || is_known(name) {
            continue;
        }
        push(
            diags,
            occ,
            Diagnostic::new(
                "P2N302",
                Severity::Note,
                format!("nothing consumes '{name}' (fine for watched output relations)"),
            ),
        );
    }

    // P2W303: two events in one body. Mirrors the planner's
    // classification: periodic is always an event; otherwise a
    // predicate is an event unless some unit, the node, or the runtime
    // itself (trace/introspection builtins) materializes it.
    let is_builtin_table = |name: &str| name != "periodic" && is_builtin(name);
    for e in &edges {
        let events: Vec<&String> = e
            .body
            .iter()
            .filter(|n| {
                *n == "periodic"
                    || (!declared.contains_key(*n) && !is_known(n) && !is_builtin_table(n))
            })
            .collect();
        if events.len() > 1 {
            push(
                diags,
                &e.occ,
                Diagnostic::new(
                    "P2W303",
                    Severity::Warning,
                    format!(
                        "'{}' and '{}' are both transient events — a rule joins at most \
                         one event against materialized tables",
                        events[0], events[1]
                    ),
                )
                .with_help("declare one of them with materialize(...) if it should persist"),
            );
        }
    }

    // P2W304: infinite-lifetime, infinite-size tables transitively fed
    // by periodic rules. Fixpoint over the derivation edges.
    let mut fed: BTreeSet<String> = BTreeSet::new();
    fed.insert("periodic".to_string());
    loop {
        let mut changed = false;
        for e in &edges {
            if e.delete || fed.contains(&e.head) {
                continue;
            }
            if e.body.iter().any(|b| fed.contains(b)) {
                fed.insert(e.head.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for name in &declared_unbounded {
        if fed.contains(name) && produced.contains_key(name) {
            if let Some(occ) = declared.get(name) {
                push(
                    diags,
                    occ,
                    Diagnostic::new(
                        "P2W304",
                        Severity::Warning,
                        format!(
                            "'{name}' never expires (lifetime and size both infinity) but \
                             is filled from periodic rules — it grows without bound"
                        ),
                    )
                    .with_help("give the table a lifetime or a row bound"),
                );
            }
        }
    }

    // P2N401: delete rules on derivation cycles. The delete rule's own
    // scan of its head table is the binding idiom, not recursion.
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        for b in &e.body {
            if e.delete && b == &e.head {
                continue;
            }
            graph.entry(b.as_str()).or_default().insert(e.head.as_str());
        }
    }
    for e in &edges {
        if !e.delete {
            continue;
        }
        if reaches(&graph, &e.head, &e.head) {
            push(
                diags,
                &e.occ,
                Diagnostic::new(
                    "P2N401",
                    Severity::Note,
                    format!(
                        "delete rule '{}' sits on a derivation cycle through '{}' — \
                         deleting can retrigger the rules that refill it",
                        e.label, e.head
                    ),
                ),
            );
        }
    }
}

/// Is `to` reachable from `from` following at least one edge?
fn reaches(graph: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut stack: Vec<&str> = graph
        .get(from)
        .map(|s| s.iter().copied().collect())
        .unwrap_or_default();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = graph.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Closest produced name within edit distance 2 (ties broken towards
/// the lexicographically smaller candidate by the caller's ordering).
fn did_you_mean<'a>(name: &str, candidates: &[&'a str]) -> Option<&'a str> {
    let mut best: Option<(usize, &str)> = None;
    for c in candidates {
        if *c == name {
            continue;
        }
        let d = levenshtein(name, c);
        if d <= 2 && d < name.len() && best.map(|(bd, _)| d < bd).unwrap_or(true) {
            best = Some((d, c));
        }
    }
    best.map(|(_, c)| c)
}

fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

fn push(diags: &mut Diagnostics, occ: &Occ, d: Diagnostic) {
    let mut d = d.with_span(occ.span).with_context(occ.ctx.clone());
    d.unit = occ.unit;
    diags.push(d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_overlog::parse_program;

    fn run(srcs: &[&str]) -> Diagnostics {
        let programs: Vec<Program> = srcs.iter().map(|s| parse_program(s).unwrap()).collect();
        let refs: Vec<&Program> = programs.iter().collect();
        let mut d = Diagnostics::new();
        check(&refs, &AnalysisCtx::default(), &mut d);
        d
    }

    fn with_code<'a>(d: &'a Diagnostics, code: &str) -> Vec<&'a Diagnostic> {
        d.items.iter().filter(|x| x.code == code).collect()
    }

    #[test]
    fn typo_gets_did_you_mean() {
        let d = run(&[r#"materialize(bestSucc, infinity, 1, keys(1)).
b0 bestSucc@"n1"(42).
t1 report@N(S) :- bestSucc2@N(S)."#]);
        let w = with_code(&d, "P2W301");
        assert_eq!(w.len(), 1, "{d:?}");
        assert_eq!(w[0].help.as_deref(), Some("did you mean `bestSucc`?"));
    }

    #[test]
    fn reserved_sys_tables_are_not_suggested() {
        // 'sysStab' is one edit from 'sysStat', but reserved tables stay
        // out of the pool — the warning stands, with no (or a non-sys)
        // suggestion. Reading a real 'sys*' table still never warns.
        let d = run(&[r#"t1 report@N(S) :- sysStab@N(S).
t2 audit@N(T, R) :- sysStat@N(T, R)."#]);
        let w = with_code(&d, "P2W301");
        assert_eq!(w.len(), 1, "{d:?}");
        assert!(w[0].message.contains("sysStab"));
        assert!(
            !w[0].help.as_deref().unwrap_or("").contains("sys"),
            "{:?}",
            w[0].help
        );
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("bestSucc2", "bestSucc"), 1);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn declared_but_unwritten_is_a_note() {
        let d = run(&["materialize(node, infinity, 1, keys(1)).
r1 out@N(X) :- ev@N(E), node@N(X)."]);
        assert_eq!(with_code(&d, "P2N303").len(), 1, "{d:?}");
        assert!(
            with_code(&d, "P2W301").is_empty() || {
                // 'ev' is undeclared+unproduced: it *does* warn; 'node' must not.
                with_code(&d, "P2W301")
                    .iter()
                    .all(|w| !w.message.contains("node"))
            }
        );
    }

    #[test]
    fn two_events_in_one_body_warn() {
        let d = run(&["r1 out@N(X, Y) :- evA@N(X), evB@N(Y)."]);
        assert_eq!(with_code(&d, "P2W303").len(), 1, "{d:?}");
    }

    #[test]
    fn periodic_feeding_unbounded_table_warns() {
        let d = run(&["materialize(log, infinity, infinity, keys(1, 2)).
r1 tick@N(E) :- periodic@N(E, 10).
r2 log@N(E) :- tick@N(E)."]);
        assert_eq!(with_code(&d, "P2W304").len(), 1, "{d:?}");
    }

    #[test]
    fn bounded_table_fed_by_periodic_is_fine() {
        let d = run(&["materialize(log, 30, infinity, keys(1, 2)).
r1 log@N(E) :- periodic@N(E, 10)."]);
        assert!(with_code(&d, "P2W304").is_empty(), "{d:?}");
    }

    #[test]
    fn delete_binding_scan_is_not_recursion() {
        // The paper's cs10 idiom: scan t to bind what to delete.
        let d = run(&["materialize(t, infinity, 10, keys(1, 2)).
cs10 delete t@N(P) :- c@N(P), t@N(P)."]);
        assert!(with_code(&d, "P2N401").is_empty(), "{d:?}");
    }

    #[test]
    fn delete_on_a_real_cycle_notes() {
        let d = run(&["materialize(t, infinity, 10, keys(1)).
materialize(u, infinity, 10, keys(1)).
r1 u@N(X) :- t@N(X).
r2 t@N(X) :- u@N(X).
d1 delete t@N(X) :- kill@N(X), t@N(X)."]);
        assert_eq!(with_code(&d, "P2N401").len(), 1, "{d:?}");
    }
}
