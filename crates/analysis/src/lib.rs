//! # p2-analysis — static analysis of OverLog programs
//!
//! The paper's monitoring queries are deployed piecemeal onto live
//! systems; a typo'd relation name or a mis-typed key field silently
//! matches nothing and the monitor reports a healthy system. This crate
//! is the defence: a multi-diagnostic pipeline that runs over a *stack*
//! of source units (a base application plus the monitors installed on
//! top of it) and reports everything it finds through the
//! [`Diagnostics`] sink, each finding with a stable code and a source
//! span.
//!
//! Three analysis passes, on top of the front end's validation:
//!
//! * [`types`] *(private)* — **field/variable type inference** by
//!   unification across every rule, fact, and `materialize` in the
//!   stack. Conflicting uses of a relation field are `P2W201`;
//!   `keys(...)` over a field that never settles on a comparable type
//!   is `P2W202`.
//! * [`location`] *(private)* — **location safety**: a rule whose body
//!   predicates live at more than one location is not localizable
//!   (`P2W111`); a wildcard as a body location matches tuples
//!   regardless of their address (`P2W112`).
//! * [`liveness`] *(private)* — the **program dependency graph**:
//!   relations consumed but never produced (`P2W301`, with a
//!   did-you-mean hint), produced but never consumed (`P2N302`),
//!   declared tables nothing writes (`P2N303`), two transient events
//!   joined in one body (`P2W303`), soft-state leaks — an
//!   infinite-lifetime, infinite-size table transitively fed by
//!   `periodic` rules (`P2W304`) — and recursion through `delete`
//!   rules (`P2N401`).
//!
//! [`analyze`] runs the three passes over parsed programs (this is what
//! `Node::install` uses, with the node's catalog as
//! [`AnalysisCtx::known_tables`]). [`check_sources`] is the full `p2ql
//! check` driver: parse, per-unit validation, stack-wide arity
//! checking, the analysis passes, and — when the program is error-free
//! — a planner dry run that merges plan-time diagnostics (`P2W501`
//! dead rule, `P2W502` non-boolean selection) mapped back to rule
//! spans. See `DESIGN.md` §2.9 for the full code table.

mod cascade;
mod cost;
mod liveness;
mod location;
mod stratify;
mod types;

use p2_overlog::{
    parse_program, validate_statements, Diagnostic, Diagnostics, Predicate, Program, Severity,
    SourceUnit, Span, Statement,
};
use p2_planner::{compile_program_with, PlanError, PlanOpts};
use std::collections::{BTreeMap, HashSet};

/// What the analysis knows about the world outside the source text.
#[derive(Debug, Clone, Default)]
pub struct AnalysisCtx {
    /// Relations already materialized where the program will run (the
    /// node's catalog at install time). Reads from and writes to these
    /// are legitimate even when no statement in the stack declares or
    /// produces them.
    pub known_tables: HashSet<String>,
    /// Event relations injected from outside the stack — an operator
    /// console or test harness (e.g. the profiling monitor's
    /// `traceResp` walk starts). Consuming one is legitimate even
    /// though no rule produces it; it still counts as a transient
    /// event everywhere else.
    pub external_events: HashSet<String>,
}

/// Run the analysis passes over a stack of parsed programs.
///
/// `programs[0]` is the bottom of the stack (the base application);
/// later units see earlier ones. Findings are stamped with the unit
/// index they refer to. This never reports the front end's validation
/// errors — run [`p2_overlog::validate`] (or [`check_sources`]) for
/// those.
pub fn analyze(programs: &[&Program], ctx: &AnalysisCtx) -> Diagnostics {
    let mut diags = Diagnostics::new();
    types::check(programs, &mut diags);
    location::check(programs, &mut diags);
    liveness::check(programs, ctx, &mut diags);
    diags
}

/// Options for [`check_sources_with`].
#[derive(Debug, Clone, Default)]
pub struct CheckOpts {
    /// Run the deep flow passes (cascade termination, stratification,
    /// amplification bounds) after the shallow pipeline. They only run
    /// when the shallow stages found no errors — the flow graph is
    /// meaningless over a program that does not even plan.
    pub deep: bool,
}

/// A statically derived upper bound: either a concrete count or
/// provably unboundable by this analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// At most this many (tuples, or trigger hops).
    Finite(u64),
    /// No finite static bound — the relation reaches a trigger cycle or
    /// multiplies through a table with no declared size.
    Unbounded,
}

impl std::fmt::Display for Bound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bound::Finite(n) => write!(f, "{n}"),
            Bound::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// What the deep flow passes derived about a program stack. This is the
/// contract the runtime lint oracle is validated against: with lint
/// counters enabled, a node's measured per-episode cascade depth and
/// output count for root relation R must never exceed `depth[R]` /
/// `amplification[R]`.
#[derive(Debug, Clone, Default)]
pub struct FlowReport {
    /// Stratum per materialized relation: every relation an aggregate
    /// ranges over sits in a strictly lower stratum.
    pub strata: BTreeMap<String, usize>,
    /// Worst-case trigger-cascade depth out of each relation.
    pub depth: BTreeMap<String, Bound>,
    /// Worst-case count of tuples one tuple of each relation can
    /// transitively derive.
    pub amplification: BTreeMap<String, Bound>,
    /// External cascade roots: `periodic` (if any rule uses it) plus
    /// every [`AnalysisCtx::external_events`] entry that triggers a
    /// rule.
    pub roots: Vec<String>,
}

/// The result of [`check_sources`].
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Every finding, sorted by (unit, position).
    pub diags: Diagnostics,
    /// The parsed programs, one per unit. Empty when any unit failed to
    /// parse (analysis needs the whole stack).
    pub programs: Vec<Program>,
    /// Flow-analysis results; present only for deep, error-free runs.
    pub flow: Option<FlowReport>,
}

impl CheckReport {
    /// `check` passes when there are neither errors nor warnings
    /// (notes are informational).
    pub fn passes(&self) -> bool {
        !self.diags.has_errors() && self.diags.count(Severity::Warning) == 0
    }
}

/// The full `p2ql check` pipeline over a stack of source units.
///
/// Stages, each feeding the same sink:
///
/// 1. parse every unit (`P2E001` on syntax errors; later stages need
///    all units, so any parse failure short-circuits),
/// 2. per-unit statement validation ([`validate_statements`]),
/// 3. arity consistency across the whole stack (`P2E108`/`P2E109`/
///    `P2E110`, plus `P2E106` for a table declared by two units),
/// 4. the [`analyze`] passes,
/// 5. if nothing so far is an error: a planner dry run, merging
///    `P2W501`/`P2W502` strand diagnostics back onto rule spans.
pub fn check_sources(units: &[SourceUnit<'_>], ctx: &AnalysisCtx) -> CheckReport {
    check_sources_with(units, ctx, &CheckOpts::default())
}

/// [`check_sources`] with options; `opts.deep` adds the flow passes
/// (`P2W601` event storms, `P2W602` super-linear amplification,
/// `P2E603` unstratifiable aggregation) and populates
/// [`CheckReport::flow`].
pub fn check_sources_with(
    units: &[SourceUnit<'_>],
    ctx: &AnalysisCtx,
    opts: &CheckOpts,
) -> CheckReport {
    let mut diags = Diagnostics::new();
    let mut programs = Vec::with_capacity(units.len());
    for (i, u) in units.iter().enumerate() {
        match parse_program(u.src) {
            Ok(p) => programs.push(p),
            Err(e) => {
                let mut d =
                    Diagnostic::new("P2E001", Severity::Error, e.message.clone()).with_span(e.span);
                d.unit = i;
                diags.push(d);
            }
        }
    }
    if programs.len() < units.len() {
        diags.sort_by_position();
        return CheckReport {
            diags,
            programs: Vec::new(),
            flow: None,
        };
    }

    for (i, p) in programs.iter().enumerate() {
        let mut unit_diags = Diagnostics::new();
        validate_statements(p, &mut unit_diags);
        diags.absorb(unit_diags, i);
    }

    let refs: Vec<&Program> = programs.iter().collect();
    let unit_names: Vec<&str> = units.iter().map(|u| u.name).collect();
    stack_arities(&refs, &unit_names, &mut diags);

    let mut analysis = analyze(&refs, ctx);
    diags.items.append(&mut analysis.items);

    if !diags.has_errors() {
        planner_merge(&refs, ctx, &mut diags);
    }

    let mut flow = None;
    if opts.deep && !diags.has_errors() {
        let model = cascade::build_model(&refs, ctx);
        cascade::check(&model, &mut diags);
        let strata = stratify::check(&model, &mut diags);
        cost::check(&model, ctx, &mut diags);
        let cost = cost::analyze(&model, ctx);
        flow = Some(FlowReport {
            strata,
            depth: cost.depth,
            amplification: cost.amplification,
            roots: cost.roots,
        });
    }

    diags.sort_by_position();
    CheckReport {
        diags,
        programs,
        flow,
    }
}

/// Run only the flow passes over already-parsed programs and return the
/// report, discarding diagnostics. This is the API the runtime lint
/// oracle's tests use to obtain static bounds to compare measurements
/// against, and what the planner mirrors for its per-strand
/// annotations.
pub fn flow_report(programs: &[&Program], ctx: &AnalysisCtx) -> FlowReport {
    let model = cascade::build_model(programs, ctx);
    let mut scratch = Diagnostics::new();
    let strata = stratify::check(&model, &mut scratch);
    let cost = cost::analyze(&model, ctx);
    FlowReport {
        strata,
        depth: cost.depth,
        amplification: cost.amplification,
        roots: cost.roots,
    }
}

/// Arity consistency across the whole unit stack (the multi-unit
/// version of `p2_overlog::validate_arities`, which sees one program at
/// a time): every occurrence of a relation must use one field count,
/// `periodic` is always `(location, nonce, period)`, `keys(...)` must
/// fit the used arity, and no two units may declare the same table.
fn stack_arities(programs: &[&Program], unit_names: &[&str], diags: &mut Diagnostics) {
    // relation -> (arity, rule label first seen in, unit)
    let mut firsts: BTreeMap<String, (usize, String, usize)> = BTreeMap::new();
    let mut record = |p: &Predicate, rule: &str, unit: usize, diags: &mut Diagnostics| {
        let arity = p.args.len();
        if p.name == "periodic" {
            if arity != 3 {
                push_at(
                    diags,
                    unit,
                    Diagnostic::new(
                        "P2E109",
                        Severity::Error,
                        format!("periodic takes (location, nonce, period); found {arity} fields"),
                    )
                    .with_span(p.span)
                    .with_context(rule),
                );
            }
            return;
        }
        if p.name == "past" {
            // Archive scan: arity tracks the named relation; only the
            // fixed (location, relation, t0, t1, ...) prefix is checked.
            if arity < 4 {
                push_at(
                    diags,
                    unit,
                    Diagnostic::new(
                        "P2E109",
                        Severity::Error,
                        format!(
                            "past takes (location, relation, t0, t1, fields...); \
                             found {arity} fields"
                        ),
                    )
                    .with_span(p.span)
                    .with_context(rule),
                );
            }
            return;
        }
        match firsts.get(&p.name) {
            Some((a, first, first_unit)) if *a != arity => {
                let wher = if *first_unit == unit {
                    first.clone()
                } else {
                    format!("{first} ({})", unit_names[*first_unit])
                };
                push_at(
                        diags,
                        unit,
                        Diagnostic::new(
                            "P2E108",
                            Severity::Error,
                            format!(
                                "relation '{}' used with {arity} fields here but {a} fields in {wher}; \
                                 strict-arity matching means these can never match each other",
                                p.name
                            ),
                        )
                        .with_span(p.span)
                        .with_context(rule),
                    );
            }
            Some(_) => {}
            None => {
                firsts.insert(p.name.clone(), (arity, rule.to_string(), unit));
            }
        }
    };

    let mut declared: BTreeMap<String, usize> = BTreeMap::new();
    for (unit, program) in programs.iter().enumerate() {
        let mut idx = 0usize;
        for s in &program.statements {
            match s {
                Statement::Rule(r) => {
                    idx += 1;
                    let rname = r.label.clone().unwrap_or_else(|| format!("rule #{idx}"));
                    record(&r.head, &rname, unit, diags);
                    for p in r.body_predicates() {
                        record(p, &rname, unit, diags);
                    }
                }
                Statement::Materialize(m) => {
                    // Same-unit duplicates are validate_statements'
                    // P2E106; here only cross-unit collisions.
                    if let Some(&first_unit) = declared.get(&m.table) {
                        if first_unit != unit {
                            push_at(
                                diags,
                                unit,
                                Diagnostic::new(
                                    "P2E106",
                                    Severity::Error,
                                    format!(
                                        "table '{}' is already declared by {}",
                                        m.table, unit_names[first_unit]
                                    ),
                                )
                                .with_span(m.span)
                                .with_context(format!("materialize({})", m.table)),
                            );
                        }
                    } else {
                        declared.insert(m.table.clone(), unit);
                    }
                }
            }
        }
    }

    for (unit, program) in programs.iter().enumerate() {
        for m in program.materializations() {
            let Some(key_max) = m.keys.iter().max() else {
                continue; // empty keys already reported (P2E106)
            };
            if let Some((arity, first, _)) = firsts.get(&m.table) {
                if key_max > arity {
                    push_at(
                        diags,
                        unit,
                        Diagnostic::new(
                            "P2E110",
                            Severity::Error,
                            format!(
                                "keys(...) names field {key_max} but '{}' is used with \
                                 {arity} fields (in {first})",
                                m.table
                            ),
                        )
                        .with_span(m.span)
                        .with_context(format!("materialize({})", m.table)),
                    );
                }
            }
        }
    }
}

/// Dry-run the planner over the concatenated stack and fold its
/// strand-level diagnostics into the sink, resolved back to rule spans.
fn planner_merge(programs: &[&Program], ctx: &AnalysisCtx, diags: &mut Diagnostics) {
    let mut combined = Program::default();
    // label -> (unit, span); generated labels follow the planner's
    // rule#N numbering over the concatenated statement order.
    let mut rule_spans: BTreeMap<String, (usize, Span)> = BTreeMap::new();
    let mut ordinal = 0usize;
    for (unit, program) in programs.iter().enumerate() {
        for s in &program.statements {
            if let Statement::Rule(r) = s {
                ordinal += 1;
                let label = r.label.clone().unwrap_or_else(|| format!("rule#{ordinal}"));
                rule_spans.entry(label).or_insert((unit, r.span));
            }
        }
        combined.extend((*program).clone());
    }

    // The dry run sees the caller's catalog plus the runtime's own
    // tables (introspection and trace), which every node registers
    // before user programs install — without them the planner would
    // misclassify e.g. `ruleExec` probes as transient events.
    let mut known = ctx.known_tables.clone();
    known.extend(
        liveness::BUILTIN_PRODUCED
            .iter()
            .filter(|n| **n != "periodic")
            .map(|n| n.to_string()),
    );

    match compile_program_with(&combined, &known, &PlanOpts::default()) {
        Ok(compiled) => {
            for d in compiled.diagnostics {
                // Strand ids are `label` or `label~K` for multi-trigger
                // rules; strip the suffix to find the rule.
                let label = d.strand_id.split('~').next().unwrap_or(&d.strand_id);
                let mut out = Diagnostic::new(d.code, Severity::Warning, d.message.clone())
                    .with_context(label.to_string());
                if let Some((unit, span)) = rule_spans.get(label) {
                    out.unit = *unit;
                    out = out.with_span(*span);
                }
                diags.push(out);
            }
        }
        // The analysis passes flag two-event joins themselves (P2W303,
        // with the offending predicate's span); everything else the
        // planner alone can reject gets a positioned-by-rule error.
        Err(PlanError::TwoEventPredicates {
            rule,
            first,
            second,
        }) => {
            if !diags.items.iter().any(|d| d.code == "P2W303") {
                push_plan_error(
                    diags,
                    &rule_spans,
                    "P2E120",
                    &rule,
                    format!("body joins two event predicates '{first}' and '{second}'"),
                );
            }
        }
        Err(PlanError::BadPeriodic { rule, message }) => {
            push_plan_error(diags, &rule_spans, "P2E121", &rule, message);
        }
        Err(PlanError::BadPast { rule, message }) => {
            push_plan_error(diags, &rule_spans, "P2E124", &rule, message);
        }
        Err(PlanError::ReservedRelation { name }) => {
            diags.push(Diagnostic::new(
                "P2E122",
                Severity::Error,
                format!("'{name}' is a reserved relation and cannot be declared or derived"),
            ));
        }
        Err(PlanError::Expr { rule, error }) => {
            push_plan_error(diags, &rule_spans, "P2E123", &rule, error.to_string());
        }
        // Unreachable when the earlier stages found no errors, but keep
        // the pipeline total.
        Err(PlanError::Invalid(e)) => {
            diags.push(Diagnostic::new("P2E100", Severity::Error, e.message).with_context(e.rule));
        }
    }
}

fn push_plan_error(
    diags: &mut Diagnostics,
    rule_spans: &BTreeMap<String, (usize, Span)>,
    code: &'static str,
    rule: &str,
    message: String,
) {
    let mut d = Diagnostic::new(code, Severity::Error, message).with_context(rule.to_string());
    if let Some((unit, span)) = rule_spans.get(rule) {
        d.unit = *unit;
        d = d.with_span(*span);
    }
    diags.push(d);
}

fn push_at(diags: &mut Diagnostics, unit: usize, mut d: Diagnostic) {
    d.unit = unit;
    diags.push(d);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_one(src: &str) -> Diagnostics {
        check_sources(
            &[SourceUnit {
                name: "test.olg",
                src,
            }],
            &AnalysisCtx::default(),
        )
        .diags
    }

    fn codes(d: &Diagnostics) -> Vec<&'static str> {
        d.items.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_checks_clean() {
        let d = check_one(
            "materialize(link, infinity, 50, keys(1, 2)).
             l1 link@\"n1\"(\"n2\", 3).
             r1 probe@B(A) :- periodic@A(E, 10), link@A(B, W).",
        );
        assert!(
            !d.has_errors() && d.count(Severity::Warning) == 0,
            "{}",
            d.render(&[])
        );
    }

    #[test]
    fn parse_error_is_a_diagnostic() {
        let d = check_one("r1 out@A(X :- ev@A(X).");
        assert_eq!(codes(&d), ["P2E001"]);
        assert!(d.items[0].span.is_some());
    }

    #[test]
    fn cross_unit_arity_drift_names_the_other_unit() {
        let units = [
            SourceUnit {
                name: "base.olg",
                src: "r1 out@N(X) :- ev@N(X).",
            },
            SourceUnit {
                name: "monitor.olg",
                src: "m1 alarm@N(X, Y) :- out@N(X, Y).",
            },
        ];
        let report = check_sources(&units, &AnalysisCtx::default());
        let drift: Vec<_> = report
            .diags
            .items
            .iter()
            .filter(|d| d.code == "P2E108")
            .collect();
        assert_eq!(drift.len(), 1, "{}", report.diags.render(&units));
        assert_eq!(drift[0].unit, 1);
        assert!(
            drift[0].message.contains("base.olg"),
            "{}",
            drift[0].message
        );
    }

    #[test]
    fn cross_unit_duplicate_materialize() {
        let units = [
            SourceUnit {
                name: "a.olg",
                src: "materialize(t, infinity, 10, keys(1)).",
            },
            SourceUnit {
                name: "b.olg",
                src: "materialize(t, 30, 10, keys(1)).",
            },
        ];
        let report = check_sources(&units, &AnalysisCtx::default());
        assert!(report
            .diags
            .items
            .iter()
            .any(|d| d.code == "P2E106" && d.unit == 1 && d.message.contains("a.olg")));
    }

    #[test]
    fn planner_dead_rule_maps_to_rule_span() {
        let d = check_one("d1 out@N(X) :- ev@N(X), 1 == 2.");
        assert!(
            codes(&d).contains(&"P2W501"),
            "{codes:?}",
            codes = codes(&d)
        );
        let w = d.items.iter().find(|x| x.code == "P2W501").unwrap();
        assert!(w.span.is_some(), "dead-rule warning carries the rule span");
        assert_eq!(w.context.as_deref(), Some("d1"));
    }

    #[test]
    fn known_tables_suppress_liveness_warnings() {
        let mut ctx = AnalysisCtx::default();
        ctx.known_tables.insert("bestSucc".into());
        let units = [SourceUnit {
            name: "m.olg",
            src: "m1 report@N(S) :- bestSucc@N(S).",
        }];
        let report = check_sources(&units, &ctx);
        assert!(
            !report.diags.items.iter().any(|d| d.code == "P2W301"),
            "{}",
            report.diags.render(&units)
        );
    }

    #[test]
    fn external_events_suppress_consumed_never_produced() {
        // An operator-injected event (e.g. profiling's traceResp) is
        // consumed by the program but produced by the harness: no
        // P2W301 — but it is still a transient event, so joining it
        // with another event stays flagged (P2W303).
        let src = "e1 out@N(X) :- probe@N(X), other@N(X).";
        let units = [SourceUnit { name: "m.olg", src }];
        let mut ctx = AnalysisCtx::default();
        ctx.external_events.insert("probe".into());
        ctx.external_events.insert("other".into());
        let report = check_sources(&units, &ctx);
        let got = codes(&report.diags);
        assert!(!got.contains(&"P2W301"), "{}", report.diags.render(&units));
        assert!(got.contains(&"P2W303"), "{}", report.diags.render(&units));
    }

    #[test]
    fn analysis_errors_skip_the_planner() {
        // Unbound head var: front-end error; the planner dry run must
        // not run (it would reject with the same first error).
        let d = check_one("r1 out@A(X) :- ev@A(Y).");
        assert!(d.has_errors());
        assert!(!codes(&d).contains(&"P2E100"));
    }
}
