//! Stratification safety (P2E603) and stratum assignment.
//!
//! Aggregation over a relation that recursively depends on the
//! aggregate's own output has no well-defined fixpoint: every round of
//! the loop can revise the aggregate, which revises the loop. Classic
//! Datalog rejects such programs; this pass does the same over the
//! **materialized-relation** dependency graph — edges run from each
//! body table to a materialized (non-`delete`) head, marked aggregating
//! when the rule's head carries an aggregate. An aggregating edge whose
//! endpoints share a cyclic strongly connected component is `P2E603`.
//!
//! Event relations are deliberately excluded: an aggregate on an event
//! path (Chord's `l2` min over fingers, the ping protocol's
//! round-trip counts) ranges over *table* state per event instant and
//! recurses through time, which is cascade-analysis territory
//! (`P2W601`), not a fixpoint violation. `delete` heads are excluded
//! for the same reason the cascade graph drops them: a deletion
//! revises, it does not derive.
//!
//! The same graph yields the **stratum order**: stratum(R) is the
//! maximum number of aggregating edges on any path into R's component,
//! so every relation an aggregate ranges over sits in a strictly lower
//! stratum and the planner may settle stratum k before firing stratum
//! k+1. The assignment depends only on the edge set, never on rule
//! order (a property the test suite pins with a reordering proptest).

use crate::cascade::{strongly_connected, FlowModel};
use p2_overlog::{Diagnostic, Diagnostics, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// Emit P2E603 findings and return the relation → stratum map for every
/// materialized relation in the model.
pub(crate) fn check(model: &FlowModel, diags: &mut Diagnostics) -> BTreeMap<String, usize> {
    let mut adj: BTreeMap<&str, BTreeMap<&str, Vec<usize>>> = BTreeMap::new();
    for (i, e) in model.strat_edges.iter().enumerate() {
        adj.entry(e.from.as_str())
            .or_default()
            .entry(e.to.as_str())
            .or_default()
            .push(i);
    }
    let nodes: Vec<&str> = {
        let mut set: BTreeSet<&str> = BTreeSet::new();
        for e in &model.strat_edges {
            set.insert(e.from.as_str());
            set.insert(e.to.as_str());
        }
        set.into_iter().collect()
    };
    let sccs = strongly_connected(&nodes, &adj);
    let mut scc_of: BTreeMap<&str, usize> = BTreeMap::new();
    let mut cyclic: Vec<bool> = Vec::with_capacity(sccs.len());
    for (i, scc) in sccs.iter().enumerate() {
        for n in scc {
            scc_of.insert(n, i);
        }
        let self_loop = scc
            .first()
            .map(|n| adj.get(n).and_then(|m| m.get(n)).is_some())
            .unwrap_or(false);
        cyclic.push(scc.len() > 1 || self_loop);
    }

    // P2E603: an aggregating edge inside a cyclic component.
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for e in &model.strat_edges {
        if !e.agg {
            continue;
        }
        let (Some(&sf), Some(&st)) = (scc_of.get(e.from.as_str()), scc_of.get(e.to.as_str()))
        else {
            continue;
        };
        if sf == st && cyclic[sf] && flagged.insert(e.rule) {
            let rule = &model.rules[e.rule];
            let mut d = Diagnostic::new(
                "P2E603",
                Severity::Error,
                format!(
                    "aggregate head '{}' is derived, through recursion, from the \
                     relation '{}' it ranges over — no stratification exists and \
                     the fixpoint is undefined",
                    e.to, e.from
                ),
            )
            .with_span(rule.span)
            .with_context(rule.label.clone())
            .with_help(
                "break the recursive loop, or aggregate from a snapshot copy of \
                 the table instead of the table itself",
            );
            d.unit = rule.unit;
            diags.push(d);
        }
    }

    // Stratum per component: longest aggregating-edge path over the
    // condensation. Cross-component edges only; the graph of components
    // is a DAG, so a fixpoint sweep settles in ≤ |SCC| rounds.
    let mut stratum: Vec<usize> = vec![0; sccs.len()];
    loop {
        let mut changed = false;
        for e in &model.strat_edges {
            let (Some(&sf), Some(&st)) = (scc_of.get(e.from.as_str()), scc_of.get(e.to.as_str()))
            else {
                continue;
            };
            if sf == st {
                continue;
            }
            let want = stratum[sf] + usize::from(e.agg);
            if want > stratum[st] {
                stratum[st] = want;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = BTreeMap::new();
    for (i, scc) in sccs.iter().enumerate() {
        for n in scc {
            out.insert((*n).to_string(), stratum[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::build_model;
    use crate::AnalysisCtx;
    use p2_overlog::parse_program;

    fn run(src: &str) -> (BTreeMap<String, usize>, Diagnostics) {
        let p = parse_program(src).unwrap();
        let model = build_model(&[&p], &AnalysisCtx::default());
        let mut d = Diagnostics::new();
        let strata = check(&model, &mut d);
        (strata, d)
    }

    #[test]
    fn aggregate_through_recursion_is_rejected() {
        let (_, d) = run("materialize(item, infinity, 10, keys(1, 2)).\n\
                          materialize(total, infinity, 1, keys(1)).\n\
                          r1 total@N(sum<V>) :- item@N(V).\n\
                          r2 item@N(T) :- total@N(T).");
        assert_eq!(d.items.len(), 1, "{d:?}");
        assert_eq!(d.items[0].code, "P2E603");
    }

    #[test]
    fn aggregate_on_event_path_is_not_flagged() {
        // Chord's l2 shape: a min over fingers on a recursive *event*
        // path. Temporal recursion, not a fixpoint violation.
        let (_, d) = run("materialize(finger, infinity, 64, keys(1, 2)).\n\
                          l2 best@N(K, min<D>) :- lookup@N(K), finger@N(P, F), D := K - F.\n\
                          l3 lookup@N(K) :- best@N(K, D), K > D.");
        assert!(d.items.is_empty(), "{d:?}");
    }

    #[test]
    fn strata_count_aggregate_hops() {
        let (strata, d) = run("materialize(raw, 30, 100, keys(1, 2)).\n\
             materialize(perNode, 30, 10, keys(1, 2)).\n\
             materialize(totals, 30, 1, keys(1)).\n\
             r0 raw@N(X) :- ev@N(X).\n\
             r1 perNode@N(X, count<*>) :- raw@N(X).\n\
             r2 totals@N(sum<C>) :- perNode@N(X, C).");
        assert!(d.items.is_empty(), "{d:?}");
        assert_eq!(strata.get("raw"), Some(&0));
        assert_eq!(strata.get("perNode"), Some(&1));
        assert_eq!(strata.get("totals"), Some(&2));
    }

    #[test]
    fn plain_table_recursion_is_stratifiable() {
        let (strata, d) = run("materialize(t, infinity, 10, keys(1)).\n\
                               materialize(u, infinity, 10, keys(1)).\n\
                               r1 u@N(X) :- t@N(X).\n\
                               r2 t@N(X) :- u@N(X).");
        assert!(d.items.is_empty(), "{d:?}");
        assert_eq!(strata.get("t"), strata.get("u"));
    }
}
