//! The frozen tier: an epoch-segmented archive of expired soft state.
//!
//! Live tables (DESIGN.md §2.7) forget: rows expire, get evicted,
//! replaced, or deleted, and with them goes everything a forensic query
//! (§3 of the paper) could have asked after the fact. For
//! archive-enrolled relations the store spills every dropped row here
//! instead, stamped with its **validity interval** `[inserted_at,
//! dropped_at]`, and freezes runs of spilled rows into immutable,
//! compactly-encoded [`Segment`]s bucketed by the virtual-time *epoch*
//! their drop time falls in (DESIGN.md §2.11).
//!
//! Three properties matter:
//!
//! * **Determinism.** Per-table drop order is deterministic (expiry
//!   pops ascend in due time and run as the prologue of every
//!   mutation), and a relation's archive is a pure function of its
//!   spill stream — independent of when the catalog drains spill
//!   buffers. The sharded harness therefore produces bit-identical
//!   archives at any shard count.
//! * **Bounded memory.** Sealed bytes per relation are capped by a
//!   retention budget (oldest segments dropped first), and adjacent
//!   undersized segments are compacted into one, so a chatty relation
//!   cannot grow the archive without bound.
//! * **No panics on hostile bytes.** Segment encode/decode reuses the
//!   `p2_net::wire` value codec; truncation, tag corruption, and absurd
//!   length prefixes all surface as typed [`SegmentError`]s.

use crate::durable::{DurableStats, DurableStore};
use p2_net::wire::{decode_value_from, encode_value_into, WireError};
use p2_types::{Time, TimeDelta, Tuple, Value};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Leading bytes of every encoded segment.
pub const SEGMENT_MAGIC: [u8; 4] = *b"P2AR";
/// Format version byte (bumped on incompatible layout changes).
/// Version 2 added the per-column min/max summary used for equality
/// pruning.
pub const SEGMENT_VERSION: u8 = 2;

/// Drop-time sentinel marking a row that was **still live** when its
/// segment frame was built. Export uses it so a shipped history covers
/// live rows too; import maps it back onto an open validity interval.
/// `u64::MAX` microseconds is ~585 millennia of virtual time — no real
/// expiry deadline reaches it.
pub const LIVE_SENTINEL: Time = Time(u64::MAX);

/// Archive tuning knobs (per node; see `NodeConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveConfig {
    /// Epoch width: spilled rows whose drop times fall in the same
    /// epoch seal into the same segment.
    pub epoch: TimeDelta,
    /// Per-relation budget for sealed segment bytes; the oldest
    /// segments are dropped once it is exceeded (the newest segment is
    /// always kept, even oversized).
    pub retention_bytes: usize,
    /// Adjacent sealed segments both smaller than this are merged, so
    /// sparse relations don't fragment into per-epoch crumbs.
    pub compact_min_bytes: usize,
    /// Age-based retention: sealed segments whose newest drop epoch
    /// trails the relation's newest sealed epoch by more than this many
    /// epochs are dropped, independent of the byte budget. `None`
    /// disables age retention (the default).
    pub max_age_epochs: Option<u64>,
}

impl Default for ArchiveConfig {
    fn default() -> ArchiveConfig {
        ArchiveConfig {
            epoch: TimeDelta::from_secs(30),
            retention_bytes: 1 << 20,
            compact_min_bytes: 1024,
            max_age_epochs: None,
        }
    }
}

/// A row that left the live tier, with its closed validity interval.
#[derive(Debug, Clone, PartialEq)]
pub struct SpilledRow {
    /// The archived tuple.
    pub tuple: Tuple,
    /// When the row entered the live table.
    pub inserted_at: Time,
    /// When it left (expiry deadline, eviction/replacement/delete time).
    pub dropped_at: Time,
}

/// A row returned by a history scan: archived rows carry their drop
/// time, rows still live in the table don't have one yet.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchivedRow {
    /// The tuple.
    pub tuple: Tuple,
    /// When the row entered the live table.
    pub inserted_at: Time,
    /// When it left the live table; `None` while still live.
    pub dropped_at: Option<Time>,
}

impl ArchivedRow {
    /// Whether the row was valid at instant `t` (half-open interval:
    /// a row replaced at `t` is no longer the valid version at `t`).
    pub fn valid_at(&self, t: Time) -> bool {
        self.inserted_at <= t && self.dropped_at.map(|d| t < d).unwrap_or(true)
    }
}

/// Typed decoding errors for segment bytes. Hostile input must never
/// panic a node: every malformed frame maps onto one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// A value failed to decode (truncation, bad tag, bad UTF-8, …).
    Wire(WireError),
    /// The frame does not start with [`SEGMENT_MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown format version byte.
    BadVersion(u8),
    /// A header or row field held a value of the wrong type.
    BadField(&'static str),
    /// Bytes remained after the declared rows were decoded.
    TrailingBytes(usize),
}

impl From<WireError> for SegmentError {
    fn from(e: WireError) -> SegmentError {
        SegmentError::Wire(e)
    }
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Wire(e) => write!(f, "segment value: {e}"),
            SegmentError::BadMagic(m) => write!(f, "bad segment magic {m:02x?}"),
            SegmentError::BadVersion(v) => write!(f, "unknown segment version {v}"),
            SegmentError::BadField(what) => write!(f, "segment field '{what}' has wrong type"),
            SegmentError::TrailingBytes(n) => write!(f, "{n} trailing bytes after segment rows"),
        }
    }
}

impl std::error::Error for SegmentError {}

fn get_val(buf: &[u8], pos: &mut usize) -> Result<Value, SegmentError> {
    Ok(decode_value_from(buf, pos)?)
}

fn expect_str(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<String, SegmentError> {
    match get_val(buf, pos)? {
        Value::Str(s) => Ok(s.to_string()),
        _ => Err(SegmentError::BadField(what)),
    }
}

fn expect_u64(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, SegmentError> {
    // Two's-complement cast: the encoder writes `u64 as i64`, so this
    // round-trips the whole range (the live frame's epoch is u64::MAX).
    match get_val(buf, pos)? {
        Value::Int(n) => Ok(n as u64),
        _ => Err(SegmentError::BadField(what)),
    }
}

fn expect_time(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<Time, SegmentError> {
    match get_val(buf, pos)? {
        Value::Time(t) => Ok(t),
        _ => Err(SegmentError::BadField(what)),
    }
}

/// An immutable frozen run of spilled rows of one relation.
///
/// The segment *is* its encoded byte frame; the parsed header fields
/// are cached beside it so range pruning never touches the body.
/// Frame layout: [`SEGMENT_MAGIC`], [`SEGMENT_VERSION`], then wire
/// values — relation name, epoch range, row count, interval bounds,
/// column summary (count, then per-column min/max) — then per row its
/// validity interval, arity, and values.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    relation: String,
    epoch_lo: u64,
    epoch_hi: u64,
    row_count: u64,
    min_inserted: Time,
    max_dropped: Time,
    /// Per-column minimum over the first `col_min.len()` fields shared
    /// by every row (`Value` is totally ordered). Equality predicates
    /// outside `[col_min[i], col_max[i]]` cannot match any row, so the
    /// body never gets decoded.
    col_min: Vec<Value>,
    col_max: Vec<Value>,
    bytes: Vec<u8>,
}

impl Segment {
    /// Freeze `rows` (all of `relation`, drop epochs within
    /// `[epoch_lo, epoch_hi]`) into an encoded segment.
    pub fn build(relation: &str, epoch_lo: u64, epoch_hi: u64, rows: &[SpilledRow]) -> Segment {
        let min_inserted = rows
            .iter()
            .map(|r| r.inserted_at)
            .min()
            .unwrap_or(Time::ZERO);
        let max_dropped = rows
            .iter()
            .map(|r| r.dropped_at)
            .max()
            .unwrap_or(Time::ZERO);
        // Column summary over the arity prefix every row shares (trace
        // relations can in principle vary arity; the common prefix is
        // what an equality predicate can safely be tested against).
        let ncols = rows.iter().map(|r| r.tuple.arity()).min().unwrap_or(0);
        let mut col_min: Vec<Value> = Vec::with_capacity(ncols);
        let mut col_max: Vec<Value> = Vec::with_capacity(ncols);
        for i in 0..ncols {
            let mut lo: Option<&Value> = None;
            let mut hi: Option<&Value> = None;
            for row in rows {
                if let Some(v) = row.tuple.get(i) {
                    if lo.map(|l| v < l).unwrap_or(true) {
                        lo = Some(v);
                    }
                    if hi.map(|h| v > h).unwrap_or(true) {
                        hi = Some(v);
                    }
                }
            }
            match (lo, hi) {
                (Some(l), Some(h)) => {
                    col_min.push(l.clone());
                    col_max.push(h.clone());
                }
                _ => break,
            }
        }
        let mut out = Vec::with_capacity(64 + rows.len() * 32);
        out.extend_from_slice(&SEGMENT_MAGIC);
        out.push(SEGMENT_VERSION);
        encode_value_into(&mut out, &Value::str(relation));
        encode_value_into(&mut out, &Value::Int(epoch_lo as i64));
        encode_value_into(&mut out, &Value::Int(epoch_hi as i64));
        encode_value_into(&mut out, &Value::Int(rows.len() as i64));
        encode_value_into(&mut out, &Value::Time(min_inserted));
        encode_value_into(&mut out, &Value::Time(max_dropped));
        encode_value_into(&mut out, &Value::Int(col_min.len() as i64));
        for (lo, hi) in col_min.iter().zip(&col_max) {
            encode_value_into(&mut out, lo);
            encode_value_into(&mut out, hi);
        }
        for row in rows {
            encode_value_into(&mut out, &Value::Time(row.inserted_at));
            encode_value_into(&mut out, &Value::Time(row.dropped_at));
            encode_value_into(&mut out, &Value::Int(row.tuple.arity() as i64));
            for v in row.tuple.values() {
                encode_value_into(&mut out, v);
            }
        }
        Segment {
            relation: relation.to_string(),
            epoch_lo,
            epoch_hi,
            row_count: rows.len() as u64,
            min_inserted,
            max_dropped,
            col_min,
            col_max,
            bytes: out,
        }
    }

    /// Decode and fully validate an encoded segment frame. Every byte
    /// is checked: header, each row, and that nothing trails.
    pub fn from_bytes(buf: &[u8]) -> Result<Segment, SegmentError> {
        let (mut seg, _rows) = Segment::parse(buf, true)?;
        seg.bytes = buf.to_vec();
        Ok(seg)
    }

    /// Decode the segment's rows.
    pub fn rows(&self) -> Result<Vec<SpilledRow>, SegmentError> {
        let (_seg, rows) = Segment::parse(&self.bytes, true)?;
        Ok(rows)
    }

    fn parse(buf: &[u8], want_rows: bool) -> Result<(Segment, Vec<SpilledRow>), SegmentError> {
        if buf.len() < 5 {
            return Err(SegmentError::Wire(WireError::Truncated));
        }
        let magic: [u8; 4] = buf[0..4].try_into().map_err(|_| WireError::Truncated)?;
        if magic != SEGMENT_MAGIC {
            return Err(SegmentError::BadMagic(magic));
        }
        if buf[4] != SEGMENT_VERSION {
            return Err(SegmentError::BadVersion(buf[4]));
        }
        let mut pos = 5;
        let relation = expect_str(buf, &mut pos, "relation")?;
        let epoch_lo = expect_u64(buf, &mut pos, "epoch_lo")?;
        let epoch_hi = expect_u64(buf, &mut pos, "epoch_hi")?;
        let row_count = expect_u64(buf, &mut pos, "row_count")?;
        // Guard against absurd counts on hostile input (each row costs
        // at least one byte), exactly as the envelope decoder does.
        if row_count > buf.len() as u64 {
            return Err(SegmentError::Wire(WireError::Truncated));
        }
        let min_inserted = expect_time(buf, &mut pos, "min_inserted")?;
        let max_dropped = expect_time(buf, &mut pos, "max_dropped")?;
        let ncols = expect_u64(buf, &mut pos, "col_count")?;
        if ncols > buf.len() as u64 {
            return Err(SegmentError::Wire(WireError::Truncated));
        }
        let mut col_min = Vec::with_capacity(ncols as usize);
        let mut col_max = Vec::with_capacity(ncols as usize);
        for _ in 0..ncols {
            col_min.push(get_val(buf, &mut pos)?);
            col_max.push(get_val(buf, &mut pos)?);
        }
        let mut rows = Vec::with_capacity(if want_rows { row_count as usize } else { 0 });
        for _ in 0..row_count {
            let inserted_at = expect_time(buf, &mut pos, "inserted_at")?;
            let dropped_at = expect_time(buf, &mut pos, "dropped_at")?;
            let arity = expect_u64(buf, &mut pos, "arity")?;
            if arity > buf.len() as u64 {
                return Err(SegmentError::Wire(WireError::Truncated));
            }
            let mut vals = Vec::with_capacity((arity as usize).min(1024));
            for _ in 0..arity {
                vals.push(get_val(buf, &mut pos)?);
            }
            if want_rows {
                rows.push(SpilledRow {
                    tuple: Tuple::new(&relation, vals),
                    inserted_at,
                    dropped_at,
                });
            }
        }
        if pos != buf.len() {
            return Err(SegmentError::TrailingBytes(buf.len() - pos));
        }
        Ok((
            Segment {
                relation,
                epoch_lo,
                epoch_hi,
                row_count,
                min_inserted,
                max_dropped,
                col_min,
                col_max,
                bytes: Vec::new(),
            },
            rows,
        ))
    }

    /// The relation this segment holds rows of.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Lowest drop epoch covered.
    pub fn epoch_lo(&self) -> u64 {
        self.epoch_lo
    }

    /// Highest drop epoch covered.
    pub fn epoch_hi(&self) -> u64 {
        self.epoch_hi
    }

    /// Number of rows frozen in the segment.
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// Earliest `inserted_at` among the rows.
    pub fn min_inserted(&self) -> Time {
        self.min_inserted
    }

    /// Latest `dropped_at` among the rows.
    pub fn max_dropped(&self) -> Time {
        self.max_dropped
    }

    /// `[min, max]` over column `i`, if the summary covers it.
    pub fn col_range(&self, i: usize) -> Option<(&Value, &Value)> {
        Some((self.col_min.get(i)?, self.col_max.get(i)?))
    }

    /// Whether any row could satisfy every equality predicate in `eqs`
    /// (`(field, value)` pairs), judged from the column summary alone.
    /// Fields past the summary are conservatively assumed to match.
    pub fn may_match_eqs(&self, eqs: &[(usize, Value)]) -> bool {
        eqs.iter().all(|(i, v)| match self.col_range(*i) {
            Some((lo, hi)) => v >= lo && v <= hi,
            None => true,
        })
    }

    /// Encoded size in bytes (what the retention budget counts).
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The raw encoded frame.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Point-in-time counters for one relation's archive, surfaced as
/// `archive.*` sysStat rows by `core::introspect`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Sealed segments currently held.
    pub segments: u64,
    /// Bytes across sealed segments currently held.
    pub sealed_bytes: u64,
    /// Rows waiting in the open (not yet sealed) buffer.
    pub open_rows: u64,
    /// Rows ever spilled into this relation's archive.
    pub spilled_rows: u64,
    /// History scans served.
    pub scans: u64,
    /// Rows returned across all history scans.
    pub scan_hits: u64,
    /// Segments dropped by the retention budget.
    pub dropped_segments: u64,
    /// Compaction merges performed.
    pub compactions: u64,
    /// Segments skipped without body decode during scans (header time
    /// range or column-summary equality miss).
    pub pruned_segments: u64,
    /// Segments dropped by age retention (`max_age_epochs`).
    pub age_dropped_segments: u64,
}

#[derive(Debug, Default)]
struct RelationArchive {
    sealed: VecDeque<Segment>,
    open: Vec<SpilledRow>,
    open_epoch: u64,
    spilled_rows: u64,
    scans: u64,
    scan_hits: u64,
    dropped_segments: u64,
    compactions: u64,
    pruned_segments: u64,
    age_dropped_segments: u64,
}

fn seal_open(
    relation: &str,
    ra: &mut RelationArchive,
    config: &ArchiveConfig,
    durable: Option<&mut Box<dyn DurableStore>>,
) {
    if ra.open.is_empty() {
        return;
    }
    let seg = Segment::build(relation, ra.open_epoch, ra.open_epoch, &ra.open);
    ra.open.clear();
    // The durability barrier sits exactly here: the freshly built frame
    // is logged (and made crash-safe) *before* it becomes visible in
    // memory, so the log is always a superset of the sealed state and
    // recovery replays it through `enforce` to the identical in-memory
    // archive. Compacted/merged frames are deliberately NOT re-logged:
    // the append-only log keeps pre-compaction frames and the replay
    // re-derives every merge (DESIGN.md §2.14).
    if let Some(store) = durable {
        store.append(relation, seg.as_bytes());
        store.barrier();
    }
    ra.sealed.push_back(seg);
    enforce(relation, ra, config);
}

/// Compaction and retention over `ra.sealed` — the enforcement half of
/// [`seal_open`], shared with durable recovery so replaying logged
/// frames reproduces the exact segmentation the live run had.
fn enforce(relation: &str, ra: &mut RelationArchive, config: &ArchiveConfig) {
    let compact_min = config.compact_min_bytes;
    // Compact: merge the trailing pair while both are undersized. The
    // merged segment keeps the combined epoch range.
    while ra.sealed.len() >= 2 {
        let n = ra.sealed.len();
        if ra.sealed[n - 1].len_bytes() >= compact_min
            || ra.sealed[n - 2].len_bytes() >= compact_min
        {
            break;
        }
        let (Some(b), Some(a)) = (ra.sealed.pop_back(), ra.sealed.pop_back()) else {
            break;
        };
        match (a.rows(), b.rows()) {
            (Ok(mut rows), Ok(more)) => {
                rows.extend(more);
                ra.sealed
                    .push_back(Segment::build(relation, a.epoch_lo(), b.epoch_hi(), &rows));
                ra.compactions += 1;
            }
            // Own bytes never fail to decode; if they somehow did,
            // restore both rather than lose history.
            _ => {
                ra.sealed.push_back(a);
                ra.sealed.push_back(b);
                break;
            }
        }
    }
    // Retention: oldest segments go first; the newest always stays.
    let mut total: usize = ra.sealed.iter().map(Segment::len_bytes).sum();
    while total > config.retention_bytes && ra.sealed.len() > 1 {
        if let Some(seg) = ra.sealed.pop_front() {
            total -= seg.len_bytes();
            ra.dropped_segments += 1;
        }
    }
    // Age retention: measured in epochs behind the newest sealed drop
    // epoch, so it is a pure function of the spill stream (no wall
    // clock involved). The newest segment always stays.
    if let Some(max_age) = config.max_age_epochs {
        let newest = ra.sealed.back().map(Segment::epoch_hi).unwrap_or(0);
        while ra.sealed.len() > 1 {
            let Some(front) = ra.sealed.front() else {
                break;
            };
            if front.epoch_hi().saturating_add(max_age) >= newest {
                break;
            }
            ra.sealed.pop_front();
            ra.age_dropped_segments += 1;
        }
    }
}

/// Whether `tuple` satisfies every `(field, value)` equality predicate.
fn eqs_match(tuple: &Tuple, eqs: &[(usize, Value)]) -> bool {
    eqs.iter().all(|(i, v)| tuple.get(*i) == Some(v))
}

/// The per-node frozen tier: one epoch-segmented history per enrolled
/// relation. Owned by the catalog; fed by table spill buffers.
#[derive(Debug)]
pub struct Archive {
    config: ArchiveConfig,
    relations: BTreeMap<String, RelationArchive>,
    /// Crash-surviving sink for sealed frames (DESIGN.md §2.14); `None`
    /// — the default — costs the seal path nothing and leaves behavior
    /// byte-identical to the pre-durability engine.
    durable: Option<Box<dyn DurableStore>>,
}

impl Archive {
    /// An empty archive.
    pub fn new(config: ArchiveConfig) -> Archive {
        Archive {
            config,
            relations: BTreeMap::new(),
            durable: None,
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &ArchiveConfig {
        &self.config
    }

    /// Boot (or re-boot) this archive from a durable store: run the
    /// store's recovery pass, replay every recovered frame through the
    /// same push-and-enforce pipeline the live seal path uses — which
    /// re-derives compaction and retention decisions and therefore the
    /// exact in-memory segmentation the pre-crash node held for its
    /// sealed epochs — then adopt the store as this archive's sink.
    ///
    /// Rows that were still in open (unsealed) buffers at the crash are
    /// gone: the durability contract covers the clean prefix of *sealed*
    /// epochs, nothing more. Soft counters (`spilled_rows`, scans, …)
    /// restart from the replay.
    pub fn recover_from(&mut self, mut store: Box<dyn DurableStore>) {
        let recovery = store.recover();
        let config = self.config;
        for (relation, segments) in recovery.relations {
            let ra = self.relations.entry(relation.clone()).or_default();
            for seg in segments {
                ra.sealed.push_back(seg);
                enforce(&relation, ra, &config);
            }
        }
        self.durable = Some(store);
    }

    /// Detach the durable store (crash teardown: the harness moves it to
    /// the node's next incarnation). Open buffers are *not* sealed first
    /// — a crash loses them, by contract.
    pub fn take_durable(&mut self) -> Option<Box<dyn DurableStore>> {
        self.durable.take()
    }

    /// Durable-tier counters, when durability is on.
    pub fn durable_stats(&self) -> Option<DurableStats> {
        self.durable.as_ref().map(|d| d.stats())
    }

    /// Append spilled rows to `relation`'s history. Rows must arrive in
    /// non-decreasing `dropped_at` order per relation (the table spill
    /// paths guarantee this); crossing an epoch boundary seals the open
    /// buffer into a segment and applies compaction and retention.
    pub fn spill(&mut self, relation: &str, rows: impl IntoIterator<Item = SpilledRow>) {
        let epoch_len = self.config.epoch.0.max(1);
        let config = self.config;
        let durable = &mut self.durable;
        let ra = self.relations.entry(relation.to_string()).or_default();
        for row in rows {
            let epoch = row.dropped_at.0 / epoch_len;
            if !ra.open.is_empty() && epoch > ra.open_epoch {
                seal_open(relation, ra, &config, durable.as_mut());
            }
            if ra.open.is_empty() {
                ra.open_epoch = epoch;
            }
            ra.open.push(row);
            ra.spilled_rows += 1;
        }
    }

    /// [`spill`](Archive::spill), but adopting an owned buffer. When the
    /// whole run lands in one epoch (the common case: a maintenance
    /// drain runs far more often than an epoch rolls over) the buffer is
    /// moved — or bulk-appended — without per-row work. This is the
    /// write-through hot path from [`Catalog::archive_maintain`]
    /// (`crate::Catalog::archive_maintain`); the per-row path only runs
    /// when the drain itself straddles an epoch boundary.
    pub fn spill_vec(&mut self, relation: &str, rows: Vec<SpilledRow>) {
        let epoch_len = self.config.epoch.0.max(1);
        let (Some(first), Some(last)) = (rows.first(), rows.last()) else {
            return;
        };
        let e0 = first.dropped_at.0 / epoch_len;
        let e1 = last.dropped_at.0 / epoch_len;
        if e0 == e1 {
            let ra = self.relations.entry(relation.to_string()).or_default();
            if ra.open.is_empty() || ra.open_epoch == e0 {
                if ra.open.is_empty() {
                    ra.open_epoch = e0;
                }
                ra.spilled_rows += rows.len() as u64;
                if ra.open.is_empty() {
                    ra.open = rows;
                } else {
                    ra.open.extend(rows);
                }
                return;
            }
        }
        self.spill(relation, rows);
    }

    /// Seal every open buffer whose epoch is strictly older than
    /// `now`'s epoch. Rows spill in non-decreasing drop order per
    /// relation, so once the clock has left an epoch no further row can
    /// land in it — sealing it produces exactly the segment the next
    /// spill would have sealed anyway, just earlier. This is the
    /// durability checkpoint's hook: expired history becomes crash-safe
    /// at every sweep instead of waiting for the next epoch-crossing
    /// spill. The current epoch stays open (sealing it early would
    /// split an epoch across segments and diverge from the no-crash
    /// segmentation).
    pub fn seal_aged(&mut self, now: Time) {
        let epoch_len = self.config.epoch.0.max(1);
        let current = now.0 / epoch_len;
        let config = self.config;
        let durable = &mut self.durable;
        for (relation, ra) in self.relations.iter_mut() {
            if !ra.open.is_empty() && ra.open_epoch < current {
                seal_open(relation, ra, &config, durable.as_mut());
            }
        }
    }

    /// Seal every open buffer, freezing all spilled rows into segments.
    /// Forensic readers call this so answers come from segments alone.
    pub fn seal_all(&mut self) {
        let config = self.config;
        let durable = &mut self.durable;
        for (relation, ra) in self.relations.iter_mut() {
            seal_open(relation, ra, &config, durable.as_mut());
        }
    }

    /// All archived rows of `relation` whose validity interval
    /// intersects `[t0, t1]` and that satisfy every `(field, value)`
    /// equality predicate in `eqs`, in spill order. Segments whose
    /// header bounds miss the time range — or whose per-column summary
    /// proves no row can satisfy `eqs` — are pruned without decoding.
    pub fn scan_range(
        &mut self,
        relation: &str,
        t0: Time,
        t1: Time,
        eqs: &[(usize, Value)],
    ) -> Result<Vec<SpilledRow>, SegmentError> {
        let Some(ra) = self.relations.get_mut(relation) else {
            return Ok(Vec::new());
        };
        ra.scans += 1;
        let mut out = Vec::new();
        for seg in &ra.sealed {
            if seg.min_inserted() > t1 || seg.max_dropped() < t0 || !seg.may_match_eqs(eqs) {
                ra.pruned_segments += 1;
                continue;
            }
            for row in seg.rows()? {
                if row.inserted_at <= t1 && row.dropped_at >= t0 && eqs_match(&row.tuple, eqs) {
                    out.push(row);
                }
            }
        }
        for row in &ra.open {
            if row.inserted_at <= t1 && row.dropped_at >= t0 && eqs_match(&row.tuple, eqs) {
                out.push(row.clone());
            }
        }
        ra.scan_hits += out.len() as u64;
        Ok(out)
    }

    /// Snapshot `relation`'s entire archived history as encoded segment
    /// frames: clones of every sealed segment (oldest first) followed
    /// by a synthetic segment freezing the open buffer. A **pure read**
    /// — the relation's own segmentation (and therefore every later
    /// local scan, compaction, and retention decision) is untouched, so
    /// exporting never perturbs the origin node's determinism.
    pub fn export_frames(&self, relation: &str) -> Vec<Segment> {
        let Some(ra) = self.relations.get(relation) else {
            return Vec::new();
        };
        let mut out: Vec<Segment> = ra.sealed.iter().cloned().collect();
        if !ra.open.is_empty() {
            out.push(Segment::build(
                relation,
                ra.open_epoch,
                ra.open_epoch,
                &ra.open,
            ));
        }
        out
    }

    /// Sealed segments of one relation, oldest first.
    pub fn segments(&self, relation: &str) -> Vec<&Segment> {
        self.relations
            .get(relation)
            .map(|ra| ra.sealed.iter().collect())
            .unwrap_or_default()
    }

    /// Per-relation counters, sorted by relation name.
    pub fn stats(&self) -> Vec<(String, ArchiveStats)> {
        self.relations
            .iter()
            .map(|(name, ra)| {
                (
                    name.clone(),
                    ArchiveStats {
                        segments: ra.sealed.len() as u64,
                        sealed_bytes: ra.sealed.iter().map(|s| s.len_bytes() as u64).sum(),
                        open_rows: ra.open.len() as u64,
                        spilled_rows: ra.spilled_rows,
                        scans: ra.scans,
                        scan_hits: ra.scan_hits,
                        dropped_segments: ra.dropped_segments,
                        compactions: ra.compactions,
                        pruned_segments: ra.pruned_segments,
                        age_dropped_segments: ra.age_dropped_segments,
                    },
                )
            })
            .collect()
    }
}

/// Shipped history, indexed by origin node: per `(origin, relation)`
/// the validated segment frames most recently received from that node,
/// replaced wholesale on every import (each shipment is a complete
/// snapshot of the origin's history for the relation, so merging would
/// only duplicate rows). `BTreeMap` keys give scans a deterministic
/// origin order independent of arrival order.
#[derive(Debug, Default)]
pub struct ImportedHistory {
    by_origin: BTreeMap<String, BTreeMap<String, Vec<Segment>>>,
    /// Cumulative segments age-dropped per `(origin, relation)` —
    /// survives wholesale replacement, like any monotone counter.
    age_dropped: BTreeMap<(String, String), u64>,
}

impl ImportedHistory {
    /// Replace the history held for `(origin, relation)`, applying the
    /// holder's age policy on the way in: with `max_age_epochs` set,
    /// sealed segments whose newest epoch trails the shipment's newest
    /// sealed epoch by more than that many epochs are dropped — the
    /// same predicate the origin's own frozen tier uses (`seal_open`),
    /// so a collector with the policy holds no more history than the
    /// origin itself would. The newest sealed segment always stays, and
    /// the live-row frame (epoch `u64::MAX`, not a seal) neither drops
    /// nor ages anything out.
    pub fn replace(
        &mut self,
        origin: &str,
        relation: &str,
        mut segments: Vec<Segment>,
        max_age_epochs: Option<u64>,
    ) {
        self.apply_age(origin, relation, &mut segments, max_age_epochs);
        self.by_origin
            .entry(origin.to_string())
            .or_default()
            .insert(relation.to_string(), segments);
    }

    /// Apply a **delta** shipment for `(origin, relation)`: the origin
    /// promises that its sealed baseline up to epoch `prev_hi` is
    /// unchanged (no compaction crossed it — it falls back to a full
    /// shipment otherwise), so the holder keeps its sealed frames at or
    /// below that watermark, drops everything newer (the previous
    /// shipment's open-buffer and live-row tail frames, now re-frozen
    /// into the incoming sealed segments), mirrors the origin's front
    /// retention by dropping sealed frames older than `oldest`, and
    /// appends the incoming frames. The result is byte-identical to the
    /// full export the origin would have shipped.
    pub fn apply_delta(
        &mut self,
        origin: &str,
        relation: &str,
        prev_hi: u64,
        oldest: u64,
        segments: Vec<Segment>,
        max_age_epochs: Option<u64>,
    ) {
        let held = self
            .by_origin
            .entry(origin.to_string())
            .or_default()
            .entry(relation.to_string())
            .or_default();
        held.retain(|s| s.epoch_hi() <= prev_hi && s.epoch_lo() >= oldest);
        held.extend(segments);
        let mut merged = std::mem::take(held);
        self.apply_age(origin, relation, &mut merged, max_age_epochs);
        self.by_origin
            .entry(origin.to_string())
            .or_default()
            .insert(relation.to_string(), merged);
    }

    /// The holder's age policy, shared by wholesale and delta imports:
    /// with `max_age_epochs` set, sealed segments whose newest epoch
    /// trails the shipment's newest sealed epoch by more than that many
    /// epochs are dropped — the same predicate the origin's own frozen
    /// tier uses — and the live-row frame (epoch `u64::MAX`, not a
    /// seal) neither drops nor ages anything out.
    fn apply_age(
        &mut self,
        origin: &str,
        relation: &str,
        segments: &mut Vec<Segment>,
        max_age_epochs: Option<u64>,
    ) {
        let Some(max_age) = max_age_epochs else {
            return;
        };
        let newest = segments
            .iter()
            .map(Segment::epoch_hi)
            .filter(|&e| e != u64::MAX)
            .max();
        if let Some(newest) = newest {
            let before = segments.len() as u64;
            segments.retain(|s| s.epoch_hi().saturating_add(max_age) >= newest);
            let dropped = before - segments.len() as u64;
            if dropped > 0 {
                *self
                    .age_dropped
                    .entry((origin.to_string(), relation.to_string()))
                    .or_default() += dropped;
            }
        }
    }

    /// Whether any import (possibly empty) has been recorded for
    /// `(origin, relation)` — "we asked and the origin answered", as
    /// distinct from "never heard from them".
    pub fn covers(&self, origin: &str, relation: &str) -> bool {
        self.by_origin
            .get(origin)
            .map(|rels| rels.contains_key(relation))
            .unwrap_or(false)
    }

    /// Origins holding history for `relation`, sorted.
    pub fn origins(&self, relation: &str) -> Vec<String> {
        self.by_origin
            .iter()
            .filter(|(_, rels)| rels.contains_key(relation))
            .map(|(o, _)| o.clone())
            .collect()
    }

    /// `(origin, relation, segment count, bytes, age-dropped)` rows,
    /// sorted by origin then relation.
    pub fn stats(&self) -> Vec<(String, String, u64, u64, u64)> {
        let mut out = Vec::new();
        for (origin, rels) in &self.by_origin {
            for (relation, segs) in rels {
                let dropped = self
                    .age_dropped
                    .get(&(origin.clone(), relation.clone()))
                    .copied()
                    .unwrap_or(0);
                out.push((
                    origin.clone(),
                    relation.clone(),
                    segs.len() as u64,
                    segs.iter().map(|s| s.len_bytes() as u64).sum(),
                    dropped,
                ));
            }
        }
        out
    }

    /// Scan one origin's shipped history of `relation` for rows whose
    /// validity interval intersects `[t0, t1]` and that satisfy `eqs`.
    /// Rows frozen while still live at the origin (drop time
    /// [`LIVE_SENTINEL`]) come back with an open interval, exactly as
    /// the origin's own live rows would.
    pub fn scan(
        &self,
        origin: &str,
        relation: &str,
        t0: Time,
        t1: Time,
        eqs: &[(usize, Value)],
    ) -> Result<Vec<ArchivedRow>, SegmentError> {
        let Some(segments) = self.by_origin.get(origin).and_then(|r| r.get(relation)) else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        for seg in segments {
            if seg.min_inserted() > t1 || seg.max_dropped() < t0 || !seg.may_match_eqs(eqs) {
                continue;
            }
            for row in seg.rows()? {
                if !eqs_match(&row.tuple, eqs) {
                    continue;
                }
                if row.dropped_at == LIVE_SENTINEL {
                    if row.inserted_at <= t1 {
                        out.push(ArchivedRow {
                            tuple: row.tuple,
                            inserted_at: row.inserted_at,
                            dropped_at: None,
                        });
                    }
                } else if row.inserted_at <= t1 && row.dropped_at >= t0 {
                    out.push(ArchivedRow {
                        tuple: row.tuple,
                        inserted_at: row.inserted_at,
                        dropped_at: Some(row.dropped_at),
                    });
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: i64, ins: u64, dropd: u64) -> SpilledRow {
        SpilledRow {
            tuple: Tuple::new("t", [Value::addr("n1"), Value::Int(i)]),
            inserted_at: Time::from_secs(ins),
            dropped_at: Time::from_secs(dropd),
        }
    }

    #[test]
    fn segment_round_trip() {
        let rows: Vec<SpilledRow> = (0..10).map(|i| row(i, i as u64, 100 + i as u64)).collect();
        let seg = Segment::build("t", 3, 3, &rows);
        let back = Segment::from_bytes(seg.as_bytes()).unwrap();
        assert_eq!(back, seg);
        assert_eq!(back.rows().unwrap(), rows);
        assert_eq!(back.relation(), "t");
        assert_eq!(back.row_count(), 10);
        assert_eq!(back.min_inserted(), Time::ZERO);
        assert_eq!(back.max_dropped(), Time::from_secs(109));
    }

    #[test]
    fn segment_truncation_is_error_not_panic() {
        let rows: Vec<SpilledRow> = (0..4).map(|i| row(i, 0, 10)).collect();
        let seg = Segment::build("t", 0, 0, &rows);
        let bytes = seg.as_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Segment::from_bytes(&bytes[..cut]).is_err(),
                "decoding a {cut}-byte prefix must fail cleanly"
            );
        }
    }

    #[test]
    fn segment_bad_magic_version_tag() {
        let seg = Segment::build("t", 0, 0, &[row(1, 0, 10)]);
        let mut bytes = seg.as_bytes().to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            Segment::from_bytes(&bytes),
            Err(SegmentError::BadMagic(_))
        ));
        let mut bytes = seg.as_bytes().to_vec();
        bytes[4] = 99;
        assert_eq!(
            Segment::from_bytes(&bytes),
            Err(SegmentError::BadVersion(99))
        );
        let mut bytes = seg.as_bytes().to_vec();
        bytes[5] = 0xFF; // relation-name value tag
        assert_eq!(
            Segment::from_bytes(&bytes),
            Err(SegmentError::Wire(WireError::BadTag(0xFF)))
        );
        let mut bytes = seg.as_bytes().to_vec();
        bytes.push(0);
        assert_eq!(
            Segment::from_bytes(&bytes),
            Err(SegmentError::TrailingBytes(1))
        );
    }

    #[test]
    fn epoch_boundary_seals() {
        let mut a = Archive::new(ArchiveConfig {
            epoch: TimeDelta::from_secs(10),
            ..ArchiveConfig::default()
        });
        a.spill("t", vec![row(1, 0, 5), row(2, 0, 9)]);
        assert_eq!(a.stats()[0].1.segments, 0);
        assert_eq!(a.stats()[0].1.open_rows, 2);
        // Crossing into epoch 1 seals epoch 0.
        a.spill("t", vec![row(3, 0, 11)]);
        let s = a.stats()[0].1;
        assert_eq!(s.segments, 1);
        assert_eq!(s.open_rows, 1);
        assert_eq!(s.spilled_rows, 3);
        assert_eq!(a.segments("t")[0].row_count(), 2);
    }

    #[test]
    fn scan_range_filters_on_validity_interval() {
        let mut a = Archive::new(ArchiveConfig {
            epoch: TimeDelta::from_secs(10),
            ..ArchiveConfig::default()
        });
        a.spill("t", vec![row(1, 0, 5), row(2, 3, 15), row(3, 20, 25)]);
        a.seal_all();
        let hits = a
            .scan_range("t", Time::from_secs(6), Time::from_secs(14), &[])
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].tuple.get(1), Some(&Value::Int(2)));
        // Unknown relations scan empty, not error.
        assert!(a
            .scan_range("nope", Time::ZERO, Time::from_secs(99), &[])
            .unwrap()
            .is_empty());
        let s = a.stats()[0].1;
        assert_eq!(s.scans, 1);
        assert_eq!(s.scan_hits, 1);
    }

    #[test]
    fn retention_drops_oldest_segments() {
        let mut a = Archive::new(ArchiveConfig {
            epoch: TimeDelta::from_secs(1),
            retention_bytes: 400,
            compact_min_bytes: 0, // no merging: isolate retention
            max_age_epochs: None,
        });
        for e in 0..50u64 {
            a.spill("t", vec![row(e as i64, 0, e)]);
        }
        a.seal_all();
        let s = a.stats()[0].1;
        assert!(s.dropped_segments > 0, "budget must have evicted segments");
        assert!(
            s.sealed_bytes <= 400,
            "sealed bytes {} over budget",
            s.sealed_bytes
        );
        // The newest rows survive; the oldest are gone.
        let hits = a
            .scan_range("t", Time::ZERO, Time::from_secs(100), &[])
            .unwrap();
        assert!(hits.iter().any(|r| r.dropped_at == Time::from_secs(49)));
        assert!(!hits.iter().any(|r| r.dropped_at == Time::ZERO));
    }

    #[test]
    fn eq_predicate_pushdown_prunes_segments() {
        // Three sealed segments, disjoint key ranges. An equality hint
        // on the key column must skip the non-matching segments via
        // their per-column min/max summaries — without decoding them —
        // and still return exactly the matching rows.
        let mut a = Archive::new(ArchiveConfig {
            epoch: TimeDelta::from_secs(10),
            compact_min_bytes: 0,
            ..ArchiveConfig::default()
        });
        a.spill("t", vec![row(1, 0, 5), row(2, 1, 6)]);
        a.spill("t", vec![row(10, 11, 15), row(11, 12, 16)]);
        a.spill("t", vec![row(20, 21, 25), row(21, 22, 26)]);
        a.seal_all();
        assert_eq!(a.stats()[0].1.segments, 3);

        let eqs = [(1usize, Value::Int(11))];
        let hits = a
            .scan_range("t", Time::ZERO, Time::from_secs(100), &eqs)
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].tuple.get(1), Some(&Value::Int(11)));
        let s = a.stats()[0].1;
        assert_eq!(
            s.pruned_segments, 2,
            "the two non-overlapping segments must be pruned by min/max"
        );

        // A hint outside every summary prunes everything.
        let hits = a
            .scan_range(
                "t",
                Time::ZERO,
                Time::from_secs(100),
                &[(1, Value::Int(99))],
            )
            .unwrap();
        assert!(hits.is_empty());
        assert_eq!(a.stats()[0].1.pruned_segments, 5);

        // An unprunable hint (non-key column shared by all rows) decodes
        // everything and filters row-by-row to the same answer as a full
        // scan plus a filter.
        let all = a
            .scan_range("t", Time::ZERO, Time::from_secs(100), &[])
            .unwrap();
        let filtered = a
            .scan_range(
                "t",
                Time::ZERO,
                Time::from_secs(100),
                &[(0, Value::addr("n1"))],
            )
            .unwrap();
        assert_eq!(filtered, all, "shared-value hint filters nothing out");
    }

    #[test]
    fn age_retention_drops_stale_epochs() {
        let mut a = Archive::new(ArchiveConfig {
            epoch: TimeDelta::from_secs(1),
            compact_min_bytes: 0,
            max_age_epochs: Some(5),
            ..ArchiveConfig::default()
        });
        for e in 0..30u64 {
            a.spill("t", vec![row(e as i64, 0, e)]);
        }
        a.seal_all();
        let s = a.stats()[0].1;
        assert!(
            s.age_dropped_segments > 0,
            "epochs older than the window must age out: {s:?}"
        );
        let hits = a
            .scan_range("t", Time::ZERO, Time::from_secs(100), &[])
            .unwrap();
        assert!(hits.iter().any(|r| r.dropped_at == Time::from_secs(29)));
        assert!(!hits.iter().any(|r| r.dropped_at == Time::ZERO));
    }

    #[test]
    fn compaction_merges_small_neighbours() {
        let mut a = Archive::new(ArchiveConfig {
            epoch: TimeDelta::from_secs(1),
            retention_bytes: 1 << 20,
            compact_min_bytes: 4096, // everything is "small"
            max_age_epochs: None,
        });
        for e in 0..20u64 {
            a.spill("t", vec![row(e as i64, 0, e)]);
        }
        a.seal_all();
        let s = a.stats()[0].1;
        assert!(s.compactions > 0);
        assert_eq!(s.segments, 1, "all crumbs merge into one segment");
        let segs = a.segments("t");
        assert_eq!(segs[0].epoch_lo(), 0);
        assert_eq!(segs[0].epoch_hi(), 19);
        assert_eq!(segs[0].row_count(), 20);
        // Merged content is intact and ordered.
        let hits = a
            .scan_range("t", Time::ZERO, Time::from_secs(100), &[])
            .unwrap();
        assert_eq!(hits.len(), 20);
        assert!(hits.windows(2).all(|w| w[0].dropped_at <= w[1].dropped_at));
    }
}
