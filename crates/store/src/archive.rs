//! The frozen tier: an epoch-segmented archive of expired soft state.
//!
//! Live tables (DESIGN.md §2.7) forget: rows expire, get evicted,
//! replaced, or deleted, and with them goes everything a forensic query
//! (§3 of the paper) could have asked after the fact. For
//! archive-enrolled relations the store spills every dropped row here
//! instead, stamped with its **validity interval** `[inserted_at,
//! dropped_at]`, and freezes runs of spilled rows into immutable,
//! compactly-encoded [`Segment`]s bucketed by the virtual-time *epoch*
//! their drop time falls in (DESIGN.md §2.11).
//!
//! Three properties matter:
//!
//! * **Determinism.** Per-table drop order is deterministic (expiry
//!   pops ascend in due time and run as the prologue of every
//!   mutation), and a relation's archive is a pure function of its
//!   spill stream — independent of when the catalog drains spill
//!   buffers. The sharded harness therefore produces bit-identical
//!   archives at any shard count.
//! * **Bounded memory.** Sealed bytes per relation are capped by a
//!   retention budget (oldest segments dropped first), and adjacent
//!   undersized segments are compacted into one, so a chatty relation
//!   cannot grow the archive without bound.
//! * **No panics on hostile bytes.** Segment encode/decode reuses the
//!   `p2_net::wire` value codec; truncation, tag corruption, and absurd
//!   length prefixes all surface as typed [`SegmentError`]s.

use p2_net::wire::{decode_value_from, encode_value_into, WireError};
use p2_types::{Time, TimeDelta, Tuple, Value};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Leading bytes of every encoded segment.
pub const SEGMENT_MAGIC: [u8; 4] = *b"P2AR";
/// Format version byte (bumped on incompatible layout changes).
pub const SEGMENT_VERSION: u8 = 1;

/// Archive tuning knobs (per node; see `NodeConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveConfig {
    /// Epoch width: spilled rows whose drop times fall in the same
    /// epoch seal into the same segment.
    pub epoch: TimeDelta,
    /// Per-relation budget for sealed segment bytes; the oldest
    /// segments are dropped once it is exceeded (the newest segment is
    /// always kept, even oversized).
    pub retention_bytes: usize,
    /// Adjacent sealed segments both smaller than this are merged, so
    /// sparse relations don't fragment into per-epoch crumbs.
    pub compact_min_bytes: usize,
}

impl Default for ArchiveConfig {
    fn default() -> ArchiveConfig {
        ArchiveConfig {
            epoch: TimeDelta::from_secs(30),
            retention_bytes: 1 << 20,
            compact_min_bytes: 1024,
        }
    }
}

/// A row that left the live tier, with its closed validity interval.
#[derive(Debug, Clone, PartialEq)]
pub struct SpilledRow {
    /// The archived tuple.
    pub tuple: Tuple,
    /// When the row entered the live table.
    pub inserted_at: Time,
    /// When it left (expiry deadline, eviction/replacement/delete time).
    pub dropped_at: Time,
}

/// A row returned by a history scan: archived rows carry their drop
/// time, rows still live in the table don't have one yet.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchivedRow {
    /// The tuple.
    pub tuple: Tuple,
    /// When the row entered the live table.
    pub inserted_at: Time,
    /// When it left the live table; `None` while still live.
    pub dropped_at: Option<Time>,
}

impl ArchivedRow {
    /// Whether the row was valid at instant `t` (half-open interval:
    /// a row replaced at `t` is no longer the valid version at `t`).
    pub fn valid_at(&self, t: Time) -> bool {
        self.inserted_at <= t && self.dropped_at.map(|d| t < d).unwrap_or(true)
    }
}

/// Typed decoding errors for segment bytes. Hostile input must never
/// panic a node: every malformed frame maps onto one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// A value failed to decode (truncation, bad tag, bad UTF-8, …).
    Wire(WireError),
    /// The frame does not start with [`SEGMENT_MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown format version byte.
    BadVersion(u8),
    /// A header or row field held a value of the wrong type.
    BadField(&'static str),
    /// Bytes remained after the declared rows were decoded.
    TrailingBytes(usize),
}

impl From<WireError> for SegmentError {
    fn from(e: WireError) -> SegmentError {
        SegmentError::Wire(e)
    }
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Wire(e) => write!(f, "segment value: {e}"),
            SegmentError::BadMagic(m) => write!(f, "bad segment magic {m:02x?}"),
            SegmentError::BadVersion(v) => write!(f, "unknown segment version {v}"),
            SegmentError::BadField(what) => write!(f, "segment field '{what}' has wrong type"),
            SegmentError::TrailingBytes(n) => write!(f, "{n} trailing bytes after segment rows"),
        }
    }
}

impl std::error::Error for SegmentError {}

fn get_val(buf: &[u8], pos: &mut usize) -> Result<Value, SegmentError> {
    Ok(decode_value_from(buf, pos)?)
}

fn expect_str(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<String, SegmentError> {
    match get_val(buf, pos)? {
        Value::Str(s) => Ok(s.to_string()),
        _ => Err(SegmentError::BadField(what)),
    }
}

fn expect_u64(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, SegmentError> {
    match get_val(buf, pos)? {
        Value::Int(n) if n >= 0 => Ok(n as u64),
        _ => Err(SegmentError::BadField(what)),
    }
}

fn expect_time(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<Time, SegmentError> {
    match get_val(buf, pos)? {
        Value::Time(t) => Ok(t),
        _ => Err(SegmentError::BadField(what)),
    }
}

/// An immutable frozen run of spilled rows of one relation.
///
/// The segment *is* its encoded byte frame; the parsed header fields
/// are cached beside it so range pruning never touches the body.
/// Frame layout: [`SEGMENT_MAGIC`], [`SEGMENT_VERSION`], then wire
/// values — relation name, epoch range, row count, interval bounds —
/// then per row its validity interval, arity, and values.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    relation: String,
    epoch_lo: u64,
    epoch_hi: u64,
    row_count: u64,
    min_inserted: Time,
    max_dropped: Time,
    bytes: Vec<u8>,
}

impl Segment {
    /// Freeze `rows` (all of `relation`, drop epochs within
    /// `[epoch_lo, epoch_hi]`) into an encoded segment.
    pub fn build(relation: &str, epoch_lo: u64, epoch_hi: u64, rows: &[SpilledRow]) -> Segment {
        let min_inserted = rows
            .iter()
            .map(|r| r.inserted_at)
            .min()
            .unwrap_or(Time::ZERO);
        let max_dropped = rows
            .iter()
            .map(|r| r.dropped_at)
            .max()
            .unwrap_or(Time::ZERO);
        let mut out = Vec::with_capacity(64 + rows.len() * 32);
        out.extend_from_slice(&SEGMENT_MAGIC);
        out.push(SEGMENT_VERSION);
        encode_value_into(&mut out, &Value::str(relation));
        encode_value_into(&mut out, &Value::Int(epoch_lo as i64));
        encode_value_into(&mut out, &Value::Int(epoch_hi as i64));
        encode_value_into(&mut out, &Value::Int(rows.len() as i64));
        encode_value_into(&mut out, &Value::Time(min_inserted));
        encode_value_into(&mut out, &Value::Time(max_dropped));
        for row in rows {
            encode_value_into(&mut out, &Value::Time(row.inserted_at));
            encode_value_into(&mut out, &Value::Time(row.dropped_at));
            encode_value_into(&mut out, &Value::Int(row.tuple.arity() as i64));
            for v in row.tuple.values() {
                encode_value_into(&mut out, v);
            }
        }
        Segment {
            relation: relation.to_string(),
            epoch_lo,
            epoch_hi,
            row_count: rows.len() as u64,
            min_inserted,
            max_dropped,
            bytes: out,
        }
    }

    /// Decode and fully validate an encoded segment frame. Every byte
    /// is checked: header, each row, and that nothing trails.
    pub fn from_bytes(buf: &[u8]) -> Result<Segment, SegmentError> {
        let (mut seg, _rows) = Segment::parse(buf, true)?;
        seg.bytes = buf.to_vec();
        Ok(seg)
    }

    /// Decode the segment's rows.
    pub fn rows(&self) -> Result<Vec<SpilledRow>, SegmentError> {
        let (_seg, rows) = Segment::parse(&self.bytes, true)?;
        Ok(rows)
    }

    fn parse(buf: &[u8], want_rows: bool) -> Result<(Segment, Vec<SpilledRow>), SegmentError> {
        if buf.len() < 5 {
            return Err(SegmentError::Wire(WireError::Truncated));
        }
        let magic: [u8; 4] = buf[0..4].try_into().map_err(|_| WireError::Truncated)?;
        if magic != SEGMENT_MAGIC {
            return Err(SegmentError::BadMagic(magic));
        }
        if buf[4] != SEGMENT_VERSION {
            return Err(SegmentError::BadVersion(buf[4]));
        }
        let mut pos = 5;
        let relation = expect_str(buf, &mut pos, "relation")?;
        let epoch_lo = expect_u64(buf, &mut pos, "epoch_lo")?;
        let epoch_hi = expect_u64(buf, &mut pos, "epoch_hi")?;
        let row_count = expect_u64(buf, &mut pos, "row_count")?;
        // Guard against absurd counts on hostile input (each row costs
        // at least one byte), exactly as the envelope decoder does.
        if row_count > buf.len() as u64 {
            return Err(SegmentError::Wire(WireError::Truncated));
        }
        let min_inserted = expect_time(buf, &mut pos, "min_inserted")?;
        let max_dropped = expect_time(buf, &mut pos, "max_dropped")?;
        let mut rows = Vec::with_capacity(if want_rows { row_count as usize } else { 0 });
        for _ in 0..row_count {
            let inserted_at = expect_time(buf, &mut pos, "inserted_at")?;
            let dropped_at = expect_time(buf, &mut pos, "dropped_at")?;
            let arity = expect_u64(buf, &mut pos, "arity")?;
            if arity > buf.len() as u64 {
                return Err(SegmentError::Wire(WireError::Truncated));
            }
            let mut vals = Vec::with_capacity((arity as usize).min(1024));
            for _ in 0..arity {
                vals.push(get_val(buf, &mut pos)?);
            }
            if want_rows {
                rows.push(SpilledRow {
                    tuple: Tuple::new(&relation, vals),
                    inserted_at,
                    dropped_at,
                });
            }
        }
        if pos != buf.len() {
            return Err(SegmentError::TrailingBytes(buf.len() - pos));
        }
        Ok((
            Segment {
                relation,
                epoch_lo,
                epoch_hi,
                row_count,
                min_inserted,
                max_dropped,
                bytes: Vec::new(),
            },
            rows,
        ))
    }

    /// The relation this segment holds rows of.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Lowest drop epoch covered.
    pub fn epoch_lo(&self) -> u64 {
        self.epoch_lo
    }

    /// Highest drop epoch covered.
    pub fn epoch_hi(&self) -> u64 {
        self.epoch_hi
    }

    /// Number of rows frozen in the segment.
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// Earliest `inserted_at` among the rows.
    pub fn min_inserted(&self) -> Time {
        self.min_inserted
    }

    /// Latest `dropped_at` among the rows.
    pub fn max_dropped(&self) -> Time {
        self.max_dropped
    }

    /// Encoded size in bytes (what the retention budget counts).
    pub fn len_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The raw encoded frame.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Point-in-time counters for one relation's archive, surfaced as
/// `archive.*` sysStat rows by `core::introspect`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Sealed segments currently held.
    pub segments: u64,
    /// Bytes across sealed segments currently held.
    pub sealed_bytes: u64,
    /// Rows waiting in the open (not yet sealed) buffer.
    pub open_rows: u64,
    /// Rows ever spilled into this relation's archive.
    pub spilled_rows: u64,
    /// History scans served.
    pub scans: u64,
    /// Rows returned across all history scans.
    pub scan_hits: u64,
    /// Segments dropped by the retention budget.
    pub dropped_segments: u64,
    /// Compaction merges performed.
    pub compactions: u64,
}

#[derive(Debug, Default)]
struct RelationArchive {
    sealed: VecDeque<Segment>,
    open: Vec<SpilledRow>,
    open_epoch: u64,
    spilled_rows: u64,
    scans: u64,
    scan_hits: u64,
    dropped_segments: u64,
    compactions: u64,
}

fn seal_open(relation: &str, ra: &mut RelationArchive, retention: usize, compact_min: usize) {
    if ra.open.is_empty() {
        return;
    }
    let seg = Segment::build(relation, ra.open_epoch, ra.open_epoch, &ra.open);
    ra.open.clear();
    ra.sealed.push_back(seg);
    // Compact: merge the trailing pair while both are undersized. The
    // merged segment keeps the combined epoch range.
    while ra.sealed.len() >= 2 {
        let n = ra.sealed.len();
        if ra.sealed[n - 1].len_bytes() >= compact_min
            || ra.sealed[n - 2].len_bytes() >= compact_min
        {
            break;
        }
        let (Some(b), Some(a)) = (ra.sealed.pop_back(), ra.sealed.pop_back()) else {
            break;
        };
        match (a.rows(), b.rows()) {
            (Ok(mut rows), Ok(more)) => {
                rows.extend(more);
                ra.sealed
                    .push_back(Segment::build(relation, a.epoch_lo(), b.epoch_hi(), &rows));
                ra.compactions += 1;
            }
            // Own bytes never fail to decode; if they somehow did,
            // restore both rather than lose history.
            _ => {
                ra.sealed.push_back(a);
                ra.sealed.push_back(b);
                break;
            }
        }
    }
    // Retention: oldest segments go first; the newest always stays.
    let mut total: usize = ra.sealed.iter().map(Segment::len_bytes).sum();
    while total > retention && ra.sealed.len() > 1 {
        if let Some(seg) = ra.sealed.pop_front() {
            total -= seg.len_bytes();
            ra.dropped_segments += 1;
        }
    }
}

/// The per-node frozen tier: one epoch-segmented history per enrolled
/// relation. Owned by the catalog; fed by table spill buffers.
#[derive(Debug)]
pub struct Archive {
    config: ArchiveConfig,
    relations: BTreeMap<String, RelationArchive>,
}

impl Archive {
    /// An empty archive.
    pub fn new(config: ArchiveConfig) -> Archive {
        Archive {
            config,
            relations: BTreeMap::new(),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &ArchiveConfig {
        &self.config
    }

    /// Append spilled rows to `relation`'s history. Rows must arrive in
    /// non-decreasing `dropped_at` order per relation (the table spill
    /// paths guarantee this); crossing an epoch boundary seals the open
    /// buffer into a segment and applies compaction and retention.
    pub fn spill(&mut self, relation: &str, rows: impl IntoIterator<Item = SpilledRow>) {
        let epoch_len = self.config.epoch.0.max(1);
        let retention = self.config.retention_bytes;
        let compact_min = self.config.compact_min_bytes;
        let ra = self.relations.entry(relation.to_string()).or_default();
        for row in rows {
            let epoch = row.dropped_at.0 / epoch_len;
            if !ra.open.is_empty() && epoch > ra.open_epoch {
                seal_open(relation, ra, retention, compact_min);
            }
            if ra.open.is_empty() {
                ra.open_epoch = epoch;
            }
            ra.open.push(row);
            ra.spilled_rows += 1;
        }
    }

    /// [`spill`](Archive::spill), but adopting an owned buffer. When the
    /// whole run lands in one epoch (the common case: a maintenance
    /// drain runs far more often than an epoch rolls over) the buffer is
    /// moved — or bulk-appended — without per-row work. This is the
    /// write-through hot path from [`Catalog::archive_maintain`]
    /// (`crate::Catalog::archive_maintain`); the per-row path only runs
    /// when the drain itself straddles an epoch boundary.
    pub fn spill_vec(&mut self, relation: &str, rows: Vec<SpilledRow>) {
        let epoch_len = self.config.epoch.0.max(1);
        let (Some(first), Some(last)) = (rows.first(), rows.last()) else {
            return;
        };
        let e0 = first.dropped_at.0 / epoch_len;
        let e1 = last.dropped_at.0 / epoch_len;
        if e0 == e1 {
            let ra = self.relations.entry(relation.to_string()).or_default();
            if ra.open.is_empty() || ra.open_epoch == e0 {
                if ra.open.is_empty() {
                    ra.open_epoch = e0;
                }
                ra.spilled_rows += rows.len() as u64;
                if ra.open.is_empty() {
                    ra.open = rows;
                } else {
                    ra.open.extend(rows);
                }
                return;
            }
        }
        self.spill(relation, rows);
    }

    /// Seal every open buffer, freezing all spilled rows into segments.
    /// Forensic readers call this so answers come from segments alone.
    pub fn seal_all(&mut self) {
        let retention = self.config.retention_bytes;
        let compact_min = self.config.compact_min_bytes;
        for (relation, ra) in self.relations.iter_mut() {
            seal_open(relation, ra, retention, compact_min);
        }
    }

    /// All archived rows of `relation` whose validity interval
    /// intersects `[t0, t1]`, in spill order. Segments whose header
    /// bounds miss the range are pruned without decoding.
    pub fn scan_range(
        &mut self,
        relation: &str,
        t0: Time,
        t1: Time,
    ) -> Result<Vec<SpilledRow>, SegmentError> {
        let Some(ra) = self.relations.get_mut(relation) else {
            return Ok(Vec::new());
        };
        ra.scans += 1;
        let mut out = Vec::new();
        for seg in &ra.sealed {
            if seg.min_inserted() > t1 || seg.max_dropped() < t0 {
                continue;
            }
            for row in seg.rows()? {
                if row.inserted_at <= t1 && row.dropped_at >= t0 {
                    out.push(row);
                }
            }
        }
        for row in &ra.open {
            if row.inserted_at <= t1 && row.dropped_at >= t0 {
                out.push(row.clone());
            }
        }
        ra.scan_hits += out.len() as u64;
        Ok(out)
    }

    /// Sealed segments of one relation, oldest first.
    pub fn segments(&self, relation: &str) -> Vec<&Segment> {
        self.relations
            .get(relation)
            .map(|ra| ra.sealed.iter().collect())
            .unwrap_or_default()
    }

    /// Per-relation counters, sorted by relation name.
    pub fn stats(&self) -> Vec<(String, ArchiveStats)> {
        self.relations
            .iter()
            .map(|(name, ra)| {
                (
                    name.clone(),
                    ArchiveStats {
                        segments: ra.sealed.len() as u64,
                        sealed_bytes: ra.sealed.iter().map(|s| s.len_bytes() as u64).sum(),
                        open_rows: ra.open.len() as u64,
                        spilled_rows: ra.spilled_rows,
                        scans: ra.scans,
                        scan_hits: ra.scan_hits,
                        dropped_segments: ra.dropped_segments,
                        compactions: ra.compactions,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: i64, ins: u64, dropd: u64) -> SpilledRow {
        SpilledRow {
            tuple: Tuple::new("t", [Value::addr("n1"), Value::Int(i)]),
            inserted_at: Time::from_secs(ins),
            dropped_at: Time::from_secs(dropd),
        }
    }

    #[test]
    fn segment_round_trip() {
        let rows: Vec<SpilledRow> = (0..10).map(|i| row(i, i as u64, 100 + i as u64)).collect();
        let seg = Segment::build("t", 3, 3, &rows);
        let back = Segment::from_bytes(seg.as_bytes()).unwrap();
        assert_eq!(back, seg);
        assert_eq!(back.rows().unwrap(), rows);
        assert_eq!(back.relation(), "t");
        assert_eq!(back.row_count(), 10);
        assert_eq!(back.min_inserted(), Time::ZERO);
        assert_eq!(back.max_dropped(), Time::from_secs(109));
    }

    #[test]
    fn segment_truncation_is_error_not_panic() {
        let rows: Vec<SpilledRow> = (0..4).map(|i| row(i, 0, 10)).collect();
        let seg = Segment::build("t", 0, 0, &rows);
        let bytes = seg.as_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Segment::from_bytes(&bytes[..cut]).is_err(),
                "decoding a {cut}-byte prefix must fail cleanly"
            );
        }
    }

    #[test]
    fn segment_bad_magic_version_tag() {
        let seg = Segment::build("t", 0, 0, &[row(1, 0, 10)]);
        let mut bytes = seg.as_bytes().to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            Segment::from_bytes(&bytes),
            Err(SegmentError::BadMagic(_))
        ));
        let mut bytes = seg.as_bytes().to_vec();
        bytes[4] = 99;
        assert_eq!(
            Segment::from_bytes(&bytes),
            Err(SegmentError::BadVersion(99))
        );
        let mut bytes = seg.as_bytes().to_vec();
        bytes[5] = 0xFF; // relation-name value tag
        assert_eq!(
            Segment::from_bytes(&bytes),
            Err(SegmentError::Wire(WireError::BadTag(0xFF)))
        );
        let mut bytes = seg.as_bytes().to_vec();
        bytes.push(0);
        assert_eq!(
            Segment::from_bytes(&bytes),
            Err(SegmentError::TrailingBytes(1))
        );
    }

    #[test]
    fn epoch_boundary_seals() {
        let mut a = Archive::new(ArchiveConfig {
            epoch: TimeDelta::from_secs(10),
            ..ArchiveConfig::default()
        });
        a.spill("t", vec![row(1, 0, 5), row(2, 0, 9)]);
        assert_eq!(a.stats()[0].1.segments, 0);
        assert_eq!(a.stats()[0].1.open_rows, 2);
        // Crossing into epoch 1 seals epoch 0.
        a.spill("t", vec![row(3, 0, 11)]);
        let s = a.stats()[0].1;
        assert_eq!(s.segments, 1);
        assert_eq!(s.open_rows, 1);
        assert_eq!(s.spilled_rows, 3);
        assert_eq!(a.segments("t")[0].row_count(), 2);
    }

    #[test]
    fn scan_range_filters_on_validity_interval() {
        let mut a = Archive::new(ArchiveConfig {
            epoch: TimeDelta::from_secs(10),
            ..ArchiveConfig::default()
        });
        a.spill("t", vec![row(1, 0, 5), row(2, 3, 15), row(3, 20, 25)]);
        a.seal_all();
        let hits = a
            .scan_range("t", Time::from_secs(6), Time::from_secs(14))
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].tuple.get(1), Some(&Value::Int(2)));
        // Unknown relations scan empty, not error.
        assert!(a
            .scan_range("nope", Time::ZERO, Time::from_secs(99))
            .unwrap()
            .is_empty());
        let s = a.stats()[0].1;
        assert_eq!(s.scans, 1);
        assert_eq!(s.scan_hits, 1);
    }

    #[test]
    fn retention_drops_oldest_segments() {
        let mut a = Archive::new(ArchiveConfig {
            epoch: TimeDelta::from_secs(1),
            retention_bytes: 400,
            compact_min_bytes: 0, // no merging: isolate retention
        });
        for e in 0..50u64 {
            a.spill("t", vec![row(e as i64, 0, e)]);
        }
        a.seal_all();
        let s = a.stats()[0].1;
        assert!(s.dropped_segments > 0, "budget must have evicted segments");
        assert!(
            s.sealed_bytes <= 400,
            "sealed bytes {} over budget",
            s.sealed_bytes
        );
        // The newest rows survive; the oldest are gone.
        let hits = a.scan_range("t", Time::ZERO, Time::from_secs(100)).unwrap();
        assert!(hits.iter().any(|r| r.dropped_at == Time::from_secs(49)));
        assert!(!hits.iter().any(|r| r.dropped_at == Time::ZERO));
    }

    #[test]
    fn compaction_merges_small_neighbours() {
        let mut a = Archive::new(ArchiveConfig {
            epoch: TimeDelta::from_secs(1),
            retention_bytes: 1 << 20,
            compact_min_bytes: 4096, // everything is "small"
        });
        for e in 0..20u64 {
            a.spill("t", vec![row(e as i64, 0, e)]);
        }
        a.seal_all();
        let s = a.stats()[0].1;
        assert!(s.compactions > 0);
        assert_eq!(s.segments, 1, "all crumbs merge into one segment");
        let segs = a.segments("t");
        assert_eq!(segs[0].epoch_lo(), 0);
        assert_eq!(segs[0].epoch_hi(), 19);
        assert_eq!(segs[0].row_count(), 20);
        // Merged content is intact and ordered.
        let hits = a.scan_range("t", Time::ZERO, Time::from_secs(100)).unwrap();
        assert_eq!(hits.len(), 20);
        assert!(hits.windows(2).all(|w| w[0].dropped_at <= w[1].dropped_at));
    }
}
