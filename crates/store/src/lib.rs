// Library code must justify every panic path: unwrap/expect are
// clippy-warned outside tests (see scripts/tier1.sh, which denies
// warnings). Fix the call or carry an #[allow] with a reason.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

//! # p2-store — soft-state tables
//!
//! P2 represents *all* state — routing tables, protocol timers, logs,
//! execution traces — as tuples in **soft-state tables** declared with
//! `materialize(name, lifetime, max_size, keys(...))` (§2 of the paper).
//! This crate implements those tables and the per-node catalog:
//!
//! * rows are keyed by the declared primary-key fields; inserting a tuple
//!   with an existing key **replaces** the old row,
//! * rows expire `lifetime` seconds after insertion (lazily, against the
//!   clock the caller passes in — virtual in simulation, real otherwise),
//! * tables hold at most `max_size` rows; inserting into a full table
//!   evicts the **oldest** row,
//! * every mutation reports what happened so the node runtime can fire
//!   delta rules (a replaced or evicted row does not fire an insertion
//!   event for itself, but the caller needs to know for refcounts and
//!   metrics).

pub mod archive;
pub mod catalog;
pub mod durable;
pub mod hash;
pub mod table;

pub use archive::{
    Archive, ArchiveConfig, ArchiveStats, ArchivedRow, ImportedHistory, Segment, SegmentError,
    SpilledRow, LIVE_SENTINEL,
};
pub use catalog::{Catalog, CatalogError, HistorySource};
pub use durable::{
    recover_log, recovery_report, DurableStats, DurableStore, Fault, FaultPlan, FaultingStore,
    FileDurable, MemDurable, Recovery,
};
pub use hash::{FxHashMap, FxHashSet};
pub use table::{
    BatchOutcome, InsertOutcome, Key, ProbeStats, Table, TableSpec, DEFAULT_AUTO_INDEX_THRESHOLD,
};
