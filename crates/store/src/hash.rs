//! A fast, deterministic hasher for the store's hot maps.
//!
//! Every tuple insert hashes its primary key (a `Vec<Value>`) at least
//! twice; with SipHash that dominates the per-row cost of the wholesale
//! `insert_batch` path. This is the classic Fx multiply-rotate mix
//! (as used by rustc's FxHashMap), hand-rolled here because the image
//! vendors no external hash crate.
//!
//! Determinism note: unlike `RandomState`, this hasher is **not**
//! seeded per process, so map iteration order is stable across runs.
//! Nothing observable may depend on map iteration order either way —
//! scans iterate the table's explicit insertion-order queue — and the
//! golden-trace test already proved that under per-process random
//! seeding. DoS-resistant hashing is not a goal here: keys come from
//! the node's own tables, not from attacker-chosen map keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate word hasher (the rustc "Fx" mix).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(c);
            self.add(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Length folded in so "ab\0" and "ab" cannot collide by
            // padding alone.
            self.add(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_types::Value;

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut seen = FxHashSet::default();
        for i in 0..1000i64 {
            assert!(seen.insert(vec![Value::addr("n1"), Value::Int(i)]));
        }
        assert_eq!(seen.len(), 1000);
        assert!(seen.contains(&vec![Value::addr("n1"), Value::Int(500)]));
    }

    #[test]
    fn string_tails_fold_length() {
        use std::hash::Hash;
        let h = |s: &str| {
            let mut hasher = FxHasher::default();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_ne!(h("ab"), h("ab\u{0}"));
        assert_ne!(h("n1"), h("n2"));
    }
}
