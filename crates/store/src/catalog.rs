//! The per-node table catalog.
//!
//! One [`Catalog`] per node holds every materialized table, looked up by
//! relation name. The node runtime registers tables when a program's
//! `materialize` statements are installed (possibly on-line, long after
//! boot — the paper's "piecemeal deployment") and routes tuple insertions
//! here.

use crate::archive::{
    Archive, ArchiveConfig, ArchiveStats, ArchivedRow, ImportedHistory, Segment, SegmentError,
    SpilledRow, LIVE_SENTINEL,
};
use crate::durable::{DurableStats, DurableStore};
use crate::table::{BatchOutcome, InsertOutcome, ProbeStats, Table, TableSpec};
use p2_types::{Time, Tuple, Value};
use std::collections::HashMap;
use std::fmt;

/// Catalog errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A table with this name already exists with a different spec.
    SpecConflict {
        /// The table name.
        name: String,
    },
    /// The named relation is not materialized here.
    NoSuchTable {
        /// The table name.
        name: String,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::SpecConflict { name } => {
                write!(
                    f,
                    "table '{name}' already materialized with a different spec"
                )
            }
            CatalogError::NoSuchTable { name } => {
                write!(f, "no materialized table named '{name}'")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// A history export plus the sealed-tier metadata delta shipping needs.
/// See [`Catalog::export_history_meta`].
#[derive(Debug)]
pub struct HistoryExport {
    /// Sealed segment frames (oldest first), then the synthetic
    /// open-buffer frame (if any rows are open) and live-row frame (if
    /// any rows are live).
    pub frames: Vec<Segment>,
    /// How many leading `frames` are sealed segments.
    pub sealed: usize,
    /// `epoch_hi` of the newest sealed segment (`None`: nothing sealed).
    pub watermark: Option<u64>,
    /// `epoch_lo` of the oldest retained sealed segment.
    pub oldest: Option<u64>,
}

/// All materialized tables of one node.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    /// The frozen tier (DESIGN.md §2.11); `None` = archiving disabled,
    /// which costs the live path nothing.
    archive: Option<Archive>,
    /// Enrolled relation names in enrollment order — the deterministic
    /// drain order for [`Catalog::archive_maintain`].
    enrolled: Vec<String>,
    /// Segment frames shipped here from other nodes, keyed by origin
    /// (DESIGN.md §2.12). Only [`Catalog::deployment_scan`] reads it;
    /// the local tiers never mix with it.
    imported: ImportedHistory,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table. Re-registering with an **identical** spec is a
    /// no-op (monitoring programs often re-declare application tables they
    /// read); a differing spec is an error.
    pub fn register(&mut self, spec: TableSpec) -> Result<(), CatalogError> {
        if let Some(existing) = self.tables.get(&spec.name) {
            if existing.spec() == &spec {
                return Ok(());
            }
            return Err(CatalogError::SpecConflict { name: spec.name });
        }
        self.tables.insert(spec.name.clone(), Table::new(spec));
        Ok(())
    }

    /// Whether a relation is materialized (the planner uses this to
    /// classify predicates as table matches vs transient events).
    pub fn is_materialized(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Access a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Access a table immutably.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Insert a tuple into its table (by relation name).
    pub fn insert(&mut self, tuple: Tuple, now: Time) -> Result<InsertOutcome, CatalogError> {
        let name = tuple.name().to_string();
        match self.tables.get_mut(&name) {
            Some(t) => Ok(t.insert(tuple, now)),
            None => Err(CatalogError::NoSuchTable { name }),
        }
    }

    /// Insert a same-relation run of tuples in one go, resolving the
    /// table once and paying its expiry/compaction prologue once. The
    /// observable table state afterwards is identical to inserting the
    /// run one tuple at a time at the same instant.
    pub fn insert_batch(
        &mut self,
        name: &str,
        tuples: impl IntoIterator<Item = Tuple>,
        now: Time,
    ) -> Result<BatchOutcome, CatalogError> {
        match self.tables.get_mut(name) {
            Some(t) => Ok(t.insert_batch(tuples, now)),
            None => Err(CatalogError::NoSuchTable {
                name: name.to_string(),
            }),
        }
    }

    /// A table's mutation version (0 for unknown tables, which never
    /// change). See [`Table::version`].
    pub fn version_of(&self, name: &str) -> u64 {
        self.tables.get(name).map(|t| t.version()).unwrap_or(0)
    }

    /// Delete by primary key from the tuple's table.
    pub fn delete_by_key(
        &mut self,
        tuple: &Tuple,
        now: Time,
    ) -> Result<Option<Tuple>, CatalogError> {
        match self.tables.get_mut(tuple.name()) {
            Some(t) => Ok(t.delete_by_key(tuple, now)),
            None => Err(CatalogError::NoSuchTable {
                name: tuple.name().to_string(),
            }),
        }
    }

    /// Scan a table (empty vec if the table doesn't exist — reads of
    /// unknown relations are just empty, matching query semantics).
    pub fn scan(&mut self, name: &str, now: Time) -> Vec<Tuple> {
        self.tables
            .get_mut(name)
            .map(|t| t.scan(now))
            .unwrap_or_default()
    }

    /// Scan with an equality filter on one field.
    pub fn scan_eq(&mut self, name: &str, field: usize, value: &Value, now: Time) -> Vec<Tuple> {
        self.tables
            .get_mut(name)
            .map(|t| t.scan_eq(field, value, now))
            .unwrap_or_default()
    }

    /// Expire stale rows in every table. Returns total rows dropped.
    pub fn expire_all(&mut self, now: Time) -> usize {
        self.tables.values_mut().map(|t| t.expire(now)).sum()
    }

    /// Total live tuples across all tables (the "live tuples" series of
    /// Figures 6 and 7).
    pub fn live_tuples(&self) -> usize {
        self.tables.values().map(|t| t.raw_len()).sum()
    }

    /// Approximate bytes of live tuples (the "process memory" proxy).
    pub fn approx_bytes(&self) -> usize {
        self.tables.values().map(|t| t.approx_bytes()).sum()
    }

    /// Register a secondary index on `(table, field)`, backfilling from
    /// current rows. Idempotent. The planner calls this at install time
    /// for every join-probe field it finds in a compiled program.
    pub fn ensure_index(&mut self, name: &str, field: usize) -> Result<(), CatalogError> {
        match self.tables.get_mut(name) {
            Some(t) => {
                t.ensure_index(field);
                Ok(())
            }
            None => Err(CatalogError::NoSuchTable {
                name: name.to_string(),
            }),
        }
    }

    /// Indexed fields of one table (empty for unknown tables).
    pub fn indexed_fields(&self, name: &str) -> Vec<usize> {
        self.tables
            .get(name)
            .map(|t| t.indexed_fields())
            .unwrap_or_default()
    }

    /// Per-table probe counters, sorted by table name (the sysStat feed).
    pub fn index_stats(&self) -> Vec<(String, ProbeStats)> {
        let mut out: Vec<_> = self
            .tables
            .values()
            .map(|t| (t.spec().name.clone(), t.probe_stats()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Turn the archive tier on. Idempotent; tables still need
    /// [`Catalog::enroll_archive`] to start spilling.
    pub fn enable_archive(&mut self, config: ArchiveConfig) {
        if self.archive.is_none() {
            self.archive = Some(Archive::new(config));
        }
    }

    /// Whether the archive tier is on.
    pub fn archive_enabled(&self) -> bool {
        self.archive.is_some()
    }

    /// Boot the durable tier (DESIGN.md §2.14): run `store`'s recovery
    /// pass — rebuilding the archive's sealed segments from the logs —
    /// and adopt it as the sink every future seal writes through. A
    /// no-op when the archive tier is off (there is nothing to persist).
    pub fn recover_durability(&mut self, store: Box<dyn DurableStore>) {
        if let Some(a) = self.archive.as_mut() {
            a.recover_from(store);
        }
    }

    /// Durability checkpoint, run at every periodic GC sweep: expire
    /// every table at `now`, drain the spill buffers, and seal open
    /// epochs strictly older than `now`'s — so everything that
    /// logically expired before the sweep is in the durable log when
    /// the node crashes. Expiry is logical (a row's drop time is its
    /// lifetime boundary, not the instant this ran), so checkpointing
    /// changes *when* rows drain, never what any query answers. A no-op
    /// when no durable store is attached, which keeps durability-off
    /// runs byte-identical to the pre-durability engine.
    pub fn durable_checkpoint(&mut self, now: Time) {
        if self.durable_stats().is_none() {
            return;
        }
        self.expire_all(now);
        self.archive_maintain();
        if let Some(a) = self.archive.as_mut() {
            a.seal_aged(now);
        }
    }

    /// Detach the durable store for handover to the node's next
    /// incarnation (crash teardown: open buffers are lost, by contract).
    pub fn take_durable(&mut self) -> Option<Box<dyn DurableStore>> {
        self.archive.as_mut().and_then(Archive::take_durable)
    }

    /// Durable-tier counters (`None` when durability is off) — the
    /// `durable.*` sysStat feed.
    pub fn durable_stats(&self) -> Option<DurableStats> {
        self.archive.as_ref().and_then(Archive::durable_stats)
    }

    /// Enroll a table: its dropped rows spill into the archive from now
    /// on. A no-op when archiving is disabled (no buffer can grow
    /// unbounded without a drain). Idempotent.
    pub fn enroll_archive(&mut self, name: &str) -> Result<(), CatalogError> {
        if self.archive.is_none() {
            return Ok(());
        }
        match self.tables.get_mut(name) {
            Some(t) => {
                if !t.archive_enrolled() {
                    t.set_archive_enrolled(true);
                    self.enrolled.push(name.to_string());
                }
                Ok(())
            }
            None => Err(CatalogError::NoSuchTable {
                name: name.to_string(),
            }),
        }
    }

    /// Drain every enrolled table's spill buffer into the archive.
    /// Cheap when nothing spilled. The archive's per-relation state is a
    /// pure function of each relation's spill stream, so *when* this
    /// runs never changes what a later scan sees.
    pub fn archive_maintain(&mut self) {
        let Some(archive) = self.archive.as_mut() else {
            return;
        };
        for name in &self.enrolled {
            if let Some(t) = self.tables.get_mut(name) {
                let rows = t.take_spilled();
                if !rows.is_empty() {
                    archive.spill_vec(name, rows);
                }
            }
        }
    }

    /// History scan: every row of `name` whose validity interval
    /// intersects `[t0, t1]` and satisfies the `(field, value)`
    /// equality predicates in `eqs` — archived rows (closed intervals,
    /// spill order) followed by still-live rows (open intervals,
    /// insertion order). Returns empty when archiving is disabled: a
    /// partial live-only answer would masquerade as history.
    pub fn archive_scan(
        &mut self,
        name: &str,
        t0: Time,
        t1: Time,
        now: Time,
        eqs: &[(usize, Value)],
    ) -> Result<Vec<ArchivedRow>, SegmentError> {
        if self.archive.is_none() {
            return Ok(Vec::new());
        }
        // Touch the live table FIRST: its expiry prologue spills rows
        // past due at `now`, and those must land in the archive before
        // the segment walk below — otherwise a row expiring at scan
        // time would be neither live nor archived.
        let live: Vec<(Tuple, Time)> = self
            .tables
            .get_mut(name)
            .filter(|t| t.archive_enrolled())
            .map(|t| t.scan_with_birth(now))
            .unwrap_or_default();
        self.archive_maintain();
        let mut out = Vec::new();
        if let Some(archive) = self.archive.as_mut() {
            for row in archive.scan_range(name, t0, t1, eqs)? {
                out.push(ArchivedRow {
                    tuple: row.tuple,
                    inserted_at: row.inserted_at,
                    dropped_at: Some(row.dropped_at),
                });
            }
        }
        for (tuple, inserted_at) in live {
            if inserted_at <= t1 && eqs.iter().all(|(i, v)| tuple.get(*i) == Some(v)) {
                out.push(ArchivedRow {
                    tuple,
                    inserted_at,
                    dropped_at: None,
                });
            }
        }
        Ok(out)
    }

    /// Export `name`'s complete visible history as encoded segment
    /// frames for shipping: every sealed segment, a synthetic frame for
    /// the open buffer, and a synthetic frame for the still-live rows
    /// (drop time [`LIVE_SENTINEL`], mapped back to an open interval on
    /// import). The frame sequence replays on the importer in exactly
    /// the order [`Catalog::archive_scan`] walks the local tiers, which
    /// is what makes a shipped answer byte-identical to a local one.
    /// `None` when archiving is disabled here — the peer must be told
    /// "no history" rather than silently handed an empty snapshot.
    pub fn export_history(&mut self, name: &str, now: Time) -> Option<Vec<Segment>> {
        self.export_history_meta(name, now).map(|e| e.frames)
    }

    /// [`export_history`](Catalog::export_history), plus the sealed-tier
    /// metadata the ship layer's delta-announce protocol keys on: how
    /// many leading frames are sealed segments (the rest are the
    /// synthetic open-buffer and live-row frames), the newest sealed
    /// epoch (the shipment's watermark) and the oldest retained one.
    pub fn export_history_meta(&mut self, name: &str, now: Time) -> Option<HistoryExport> {
        self.archive.as_ref()?;
        let live: Vec<(Tuple, Time)> = self
            .tables
            .get_mut(name)
            .filter(|t| t.archive_enrolled())
            .map(|t| t.scan_with_birth(now))
            .unwrap_or_default();
        self.archive_maintain();
        let mut frames = self
            .archive
            .as_ref()
            .map(|a| a.export_frames(name))
            .unwrap_or_default();
        let sealed = self
            .archive
            .as_ref()
            .map(|a| a.segments(name).len())
            .unwrap_or(0);
        let watermark = frames.get(sealed.wrapping_sub(1)).map(Segment::epoch_hi);
        let oldest = if sealed > 0 {
            frames.first().map(Segment::epoch_lo)
        } else {
            None
        };
        if !live.is_empty() {
            let rows: Vec<SpilledRow> = live
                .into_iter()
                .map(|(tuple, inserted_at)| SpilledRow {
                    tuple,
                    inserted_at,
                    dropped_at: LIVE_SENTINEL,
                })
                .collect();
            frames.push(Segment::build(name, u64::MAX, u64::MAX, &rows));
        }
        Some(HistoryExport {
            frames,
            sealed,
            watermark,
            oldest,
        })
    }

    /// Install segment frames shipped from `origin` as that node's
    /// history of `relation`, replacing whatever was held before. The
    /// caller has already validated the frames ([`Segment::from_bytes`]
    /// rejects hostile bytes with typed errors). Imports obey the same
    /// `max_age_epochs` policy as this node's own frozen tier — a
    /// collector ages shipped history out exactly like local history.
    /// With archiving disabled there is no policy; shipments are held
    /// whole.
    pub fn import_history(&mut self, origin: &str, relation: &str, segments: Vec<Segment>) {
        let max_age = self
            .archive
            .as_ref()
            .and_then(|a| a.config().max_age_epochs);
        self.imported.replace(origin, relation, segments, max_age);
    }

    /// Apply a delta shipment from `origin` on top of the history held
    /// for it (see [`ImportedHistory::apply_delta`]). The caller — the
    /// ship layer — has already verified its held watermark matches the
    /// delta's `prev_hi`; a mismatch means a missed announce and must
    /// re-fetch the full history instead.
    pub fn import_history_delta(
        &mut self,
        origin: &str,
        relation: &str,
        prev_hi: u64,
        oldest: u64,
        segments: Vec<Segment>,
    ) {
        let max_age = self
            .archive
            .as_ref()
            .and_then(|a| a.config().max_age_epochs);
        self.imported
            .apply_delta(origin, relation, prev_hi, oldest, segments, max_age);
    }

    /// The shipped-history index (coverage checks, introspection).
    pub fn imported(&self) -> &ImportedHistory {
        &self.imported
    }

    /// Deployment-wide history scan: the union of every known node's
    /// history of `name` over `[t0, t1]`, origins in sorted address
    /// order — this node's own tiers contribute under `local` (its
    /// address), shipped histories under their origin addresses. Rows
    /// within an origin keep that origin's spill order, so the result
    /// is a pure function of the imported snapshots plus local state,
    /// independent of fetch timing or shard count.
    pub fn deployment_scan(
        &mut self,
        local: &str,
        name: &str,
        t0: Time,
        t1: Time,
        now: Time,
        eqs: &[(usize, Value)],
    ) -> Result<Vec<ArchivedRow>, SegmentError> {
        let mut origins = self.imported.origins(name);
        if self.archive.is_some() && !origins.iter().any(|o| o == local) {
            origins.push(local.to_string());
            origins.sort();
        }
        let mut out = Vec::new();
        for origin in origins {
            if origin == local {
                out.extend(self.archive_scan(name, t0, t1, now, eqs)?);
            } else {
                out.extend(self.imported.scan(&origin, name, t0, t1, eqs)?);
            }
        }
        Ok(out)
    }

    /// Relations enrolled for archiving, in enrollment order.
    pub fn enrolled_relations(&self) -> &[String] {
        &self.enrolled
    }

    /// Per-relation archive counters (empty when disabled). Buffers are
    /// drained first so the numbers are current.
    pub fn archive_stats(&mut self) -> Vec<(String, ArchiveStats)> {
        self.archive_maintain();
        self.archive
            .as_ref()
            .map(Archive::stats)
            .unwrap_or_default()
    }

    /// Direct access to the archive tier (forensic readers seal and
    /// walk segments through this).
    pub fn archive_mut(&mut self) -> Option<&mut Archive> {
        self.archive_maintain();
        self.archive.as_mut()
    }

    /// `(origin, relation, segments, bytes, age-dropped)` rows for
    /// shipped history held here, sorted — the `archive.ship.*` sysStat
    /// feed.
    pub fn imported_stats(&self) -> Vec<(String, String, u64, u64, u64)> {
        self.imported.stats()
    }

    /// Iterate over (name, live-row-count, spec) for introspection.
    pub fn table_stats(&self) -> Vec<(String, usize, TableSpec)> {
        let mut out: Vec<_> = self
            .tables
            .values()
            .map(|t| (t.spec().name.clone(), t.raw_len(), t.spec().clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Transport-agnostic provider of history rows for `past()` stages.
///
/// The dataflow engine's archive-scan stage reads history *only*
/// through this trait (DESIGN.md §2.12): `Local` scans resolve against
/// the node's own frozen tier, `Deployment` scans against the union of
/// every known origin's history. What filled the deployment view —
/// rows born local, segments fetched on demand, or segments streamed
/// to a collector — is invisible to the query, which is exactly the
/// determinism contract distributed forensics needs.
pub trait HistorySource {
    /// This node's own history of `name` over `[t0, t1]`, filtered by
    /// the `(field, value)` equality predicates in `eqs`.
    fn local_history(
        &mut self,
        name: &str,
        t0: Time,
        t1: Time,
        now: Time,
        eqs: &[(usize, Value)],
    ) -> Result<Vec<ArchivedRow>, SegmentError>;

    /// The whole deployment's history of `name` visible from this node
    /// (`local` is its address), origins in sorted address order.
    fn deployment_history(
        &mut self,
        local: &str,
        name: &str,
        t0: Time,
        t1: Time,
        now: Time,
        eqs: &[(usize, Value)],
    ) -> Result<Vec<ArchivedRow>, SegmentError>;
}

impl HistorySource for Catalog {
    fn local_history(
        &mut self,
        name: &str,
        t0: Time,
        t1: Time,
        now: Time,
        eqs: &[(usize, Value)],
    ) -> Result<Vec<ArchivedRow>, SegmentError> {
        self.archive_scan(name, t0, t1, now, eqs)
    }

    fn deployment_history(
        &mut self,
        local: &str,
        name: &str,
        t0: Time,
        t1: Time,
        now: Time,
        eqs: &[(usize, Value)],
    ) -> Result<Vec<ArchivedRow>, SegmentError> {
        self.deployment_scan(local, name, t0, t1, now, eqs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2_types::TimeDelta;

    fn spec(name: &str) -> TableSpec {
        TableSpec::new(name, Some(TimeDelta::from_secs(100)), Some(10), vec![0])
    }

    #[test]
    fn register_and_insert() {
        let mut c = Catalog::new();
        c.register(spec("link")).unwrap();
        assert!(c.is_materialized("link"));
        assert!(!c.is_materialized("path"));
        let t = Tuple::new("link", [Value::addr("a"), Value::Int(1)]);
        c.insert(t.clone(), Time::ZERO).unwrap();
        assert_eq!(c.scan("link", Time::ZERO), vec![t]);
    }

    #[test]
    fn idempotent_reregistration() {
        let mut c = Catalog::new();
        c.register(spec("link")).unwrap();
        c.register(spec("link")).unwrap(); // same spec: fine
        let mut other = spec("link");
        other.max_rows = Some(99);
        assert!(matches!(
            c.register(other),
            Err(CatalogError::SpecConflict { .. })
        ));
    }

    #[test]
    fn insert_unknown_table_errors() {
        let mut c = Catalog::new();
        let t = Tuple::new("ghost", [Value::addr("a")]);
        assert!(matches!(
            c.insert(t, Time::ZERO),
            Err(CatalogError::NoSuchTable { .. })
        ));
    }

    #[test]
    fn scan_unknown_is_empty() {
        let mut c = Catalog::new();
        assert!(c.scan("nothing", Time::ZERO).is_empty());
    }

    #[test]
    fn imported_history_obeys_local_age_policy() {
        fn seg(epoch: u64) -> Segment {
            let t = if epoch == u64::MAX { 100 } else { epoch };
            let rows = vec![crate::SpilledRow {
                tuple: Tuple::new("seen", [Value::addr("a"), Value::Int(t as i64)]),
                inserted_at: Time::from_secs(t),
                dropped_at: Time::from_secs(t + 1),
            }];
            Segment::build("seen", epoch, epoch, &rows)
        }
        let mut c = Catalog::new();
        c.enable_archive(ArchiveConfig {
            max_age_epochs: Some(2),
            ..ArchiveConfig::default()
        });
        // Epochs 0..=9 plus a live-row frame: only epochs within 2 of
        // the newest seal (9) survive; the live frame is not a seal and
        // never drops.
        let mut frames: Vec<Segment> = (0..10).map(seg).collect();
        frames.push(seg(u64::MAX));
        c.import_history("a", "seen", frames);
        let stats = c.imported_stats();
        assert_eq!(stats.len(), 1);
        let (origin, relation, segs, _bytes, age_dropped) = &stats[0];
        assert_eq!((origin.as_str(), relation.as_str()), ("a", "seen"));
        assert_eq!(*segs, 4, "epochs 7..=9 plus the live frame stay");
        assert_eq!(*age_dropped, 7);

        // Re-import accumulates the counter (wholesale replacement).
        let frames: Vec<Segment> = (0..5).map(seg).collect();
        c.import_history("a", "seen", frames);
        assert_eq!(c.imported_stats()[0].4, 9);

        // No archive tier → no policy → shipments held whole.
        let mut plain = Catalog::new();
        plain.import_history("a", "seen", (0..10).map(seg).collect());
        assert_eq!(plain.imported_stats()[0].2, 10);
        assert_eq!(plain.imported_stats()[0].4, 0);
    }

    #[test]
    fn metrics_roll_up() {
        let mut c = Catalog::new();
        c.register(spec("a")).unwrap();
        c.register(spec("b")).unwrap();
        c.insert(Tuple::new("a", [Value::addr("x")]), Time::ZERO)
            .unwrap();
        c.insert(Tuple::new("b", [Value::addr("y")]), Time::ZERO)
            .unwrap();
        c.insert(Tuple::new("b", [Value::addr("z")]), Time::ZERO)
            .unwrap();
        assert_eq!(c.live_tuples(), 3);
        assert!(c.approx_bytes() > 0);
        let stats = c.table_stats();
        assert_eq!(stats[0].0, "a");
        assert_eq!(stats[1].1, 2);
    }

    #[test]
    fn expire_all() {
        let mut c = Catalog::new();
        c.register(spec("a")).unwrap();
        c.insert(Tuple::new("a", [Value::addr("x")]), Time::ZERO)
            .unwrap();
        assert_eq!(c.expire_all(Time::from_secs(1000)), 1);
        assert_eq!(c.live_tuples(), 0);
    }
}
